// Tests for the non-IID partitioners and the heterogeneity statistics.
#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/synthetic.hpp"

namespace fedclust::partition {
namespace {

data::Dataset balanced_pool(std::size_t per_class = 50) {
  const data::ImageSpec spec{1, 4, 4, 10};
  data::Dataset ds(spec);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      Tensor img({1, 4, 4});
      img.fill(static_cast<float>(c));
      ds.add(img, static_cast<std::int32_t>(c));
    }
  }
  return ds;
}

/// Every pool sample is assigned exactly once across clients.
void expect_exact_cover(const data::Dataset& pool, const Partition& part) {
  std::vector<int> hits(pool.size(), 0);
  for (const auto& client : part.client_indices) {
    for (std::size_t i : client) {
      ASSERT_LT(i, pool.size());
      ++hits[i];
    }
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "sample " << i;
  }
}

TEST(DirichletPartition, CoversPoolExactly) {
  const data::Dataset pool = balanced_pool();
  Rng rng(1);
  const Partition part = dirichlet_partition(pool, 10, 0.5, rng);
  EXPECT_EQ(part.num_clients(), 10u);
  expect_exact_cover(pool, part);
}

TEST(DirichletPartition, RespectsMinSamples) {
  const data::Dataset pool = balanced_pool();
  Rng rng(2);
  const Partition part = dirichlet_partition(pool, 10, 0.1, rng, 15);
  for (const auto& client : part.client_indices) {
    EXPECT_GE(client.size(), 15u);
  }
}

TEST(DirichletPartition, SmallBetaIsMoreSkewedThanLargeBeta) {
  const data::Dataset pool = balanced_pool();
  Rng rng1(3), rng2(3);
  const Partition skewed = dirichlet_partition(pool, 10, 0.05, rng1);
  const Partition flat = dirichlet_partition(pool, 10, 100.0, rng2);
  EXPECT_GT(heterogeneity_index(pool, skewed),
            heterogeneity_index(pool, flat) + 0.2);
}

TEST(DirichletPartition, LargeBetaApproachesIid) {
  const data::Dataset pool = balanced_pool();
  Rng rng(4);
  const Partition part = dirichlet_partition(pool, 5, 1000.0, rng);
  EXPECT_LT(heterogeneity_index(pool, part), 0.15);
}

TEST(DirichletPartition, ValidatesArguments) {
  const data::Dataset pool = balanced_pool(2);
  Rng rng(5);
  EXPECT_THROW(dirichlet_partition(pool, 0, 0.1, rng), Error);
  EXPECT_THROW(dirichlet_partition(pool, 10, 0.0, rng), Error);
  EXPECT_THROW(dirichlet_partition(pool, 10, 0.1, rng, 1000), Error);
}

TEST(DirichletPartition, DeterministicGivenRngState) {
  const data::Dataset pool = balanced_pool();
  Rng a(6), b(6);
  const Partition pa = dirichlet_partition(pool, 8, 0.1, a);
  const Partition pb = dirichlet_partition(pool, 8, 0.1, b);
  EXPECT_EQ(pa.client_indices, pb.client_indices);
}

TEST(ShardPartition, EachClientGetsLimitedLabels) {
  const data::Dataset pool = balanced_pool();
  Rng rng(7);
  const Partition part = shard_partition(pool, 10, 2, rng);
  expect_exact_cover(pool, part);
  // With 2 shards per client over label-sorted data, each client sees at
  // most ~3 distinct labels (shards may straddle one boundary each).
  for (const auto& client : part.client_indices) {
    std::set<std::int32_t> labels;
    for (std::size_t i : client) labels.insert(pool.label(i));
    EXPECT_LE(labels.size(), 4u);
  }
}

TEST(ShardPartition, HighlyNonIid) {
  const data::Dataset pool = balanced_pool();
  Rng rng(8);
  const Partition part = shard_partition(pool, 10, 2, rng);
  EXPECT_GT(heterogeneity_index(pool, part), 0.5);
}

TEST(IidPartition, BalancedSizesAndLowSkew) {
  const data::Dataset pool = balanced_pool();
  Rng rng(9);
  const Partition part = iid_partition(pool, 10, rng);
  expect_exact_cover(pool, part);
  for (const auto& client : part.client_indices) {
    EXPECT_EQ(client.size(), 50u);
  }
  // 50 samples per client over 10 classes leaves ~0.25 of small-sample
  // TV noise even for a perfectly IID split.
  EXPECT_LT(heterogeneity_index(pool, part), 0.35);
}

TEST(QuantitySkew, CoversPoolWithSkewedSizes) {
  const data::Dataset pool = balanced_pool();  // 500 samples
  Rng rng(20);
  const Partition part = quantity_skew_partition(pool, 10, 0.3, rng, 10);
  expect_exact_cover(pool, part);
  std::size_t smallest = pool.size();
  std::size_t largest = 0;
  for (const auto& client : part.client_indices) {
    EXPECT_GE(client.size(), 10u);
    smallest = std::min(smallest, client.size());
    largest = std::max(largest, client.size());
  }
  // Low beta -> strongly unequal sizes.
  EXPECT_GT(largest, 3 * smallest);
}

TEST(QuantitySkew, LabelsStayRoughlyIid) {
  const data::Dataset pool = balanced_pool();
  Rng rng(21);
  const Partition part = quantity_skew_partition(pool, 5, 0.5, rng, 20);
  // Quantity skew must not introduce label skew beyond sampling noise.
  EXPECT_LT(heterogeneity_index(pool, part), 0.4);
}

TEST(QuantitySkew, LargeBetaApproachesEqualSizes) {
  const data::Dataset pool = balanced_pool();
  Rng rng(22);
  const Partition part = quantity_skew_partition(pool, 5, 1000.0, rng, 10);
  for (const auto& client : part.client_indices) {
    EXPECT_NEAR(static_cast<double>(client.size()), 100.0, 15.0);
  }
}

TEST(QuantitySkew, ValidatesArguments) {
  const data::Dataset pool = balanced_pool(2);
  Rng rng(23);
  EXPECT_THROW(quantity_skew_partition(pool, 0, 0.5, rng), Error);
  EXPECT_THROW(quantity_skew_partition(pool, 5, 0.0, rng), Error);
  EXPECT_THROW(quantity_skew_partition(pool, 5, 0.5, rng, 1000), Error);
}

TEST(GroupedPartition, DisjointLabelSets) {
  const data::Dataset pool = balanced_pool();
  Rng rng(10);
  const std::vector<std::vector<std::int32_t>> groups{{0, 1, 2, 3, 4},
                                                      {5, 6, 7, 8, 9}};
  const Partition part = grouped_label_partition(pool, 10, groups, rng);
  expect_exact_cover(pool, part);
  ASSERT_EQ(part.true_groups.size(), 10u);

  for (std::size_t c = 0; c < 10; ++c) {
    const std::size_t g = part.true_groups[c];
    for (std::size_t i : part.client_indices[c]) {
      const std::int32_t label = pool.label(i);
      const bool in_group =
          std::find(groups[g].begin(), groups[g].end(), label) !=
          groups[g].end();
      ASSERT_TRUE(in_group) << "client " << c << " got foreign label "
                            << label;
    }
  }
}

TEST(GroupedPartition, RoundRobinGroupAssignment) {
  const data::Dataset pool = balanced_pool();
  Rng rng(11);
  const std::vector<std::vector<std::int32_t>> groups{{0, 1}, {2, 3}, {4, 5}};
  const Partition part = grouped_label_partition(pool, 9, groups, rng);
  EXPECT_EQ(part.true_groups,
            (std::vector<std::size_t>{0, 1, 2, 0, 1, 2, 0, 1, 2}));
}

TEST(GroupedPartition, WithinGroupDirichletAddsSkew) {
  const data::Dataset pool = balanced_pool();
  Rng r1(12), r2(12);
  const std::vector<std::vector<std::int32_t>> groups{{0, 1, 2, 3, 4},
                                                      {5, 6, 7, 8, 9}};
  const Partition flat = grouped_label_partition(pool, 10, groups, r1, 0.0);
  const Partition skew = grouped_label_partition(pool, 10, groups, r2, 0.2);
  EXPECT_GT(heterogeneity_index(pool, skew),
            heterogeneity_index(pool, flat));
}

TEST(GroupedPartition, ValidatesArguments) {
  const data::Dataset pool = balanced_pool();
  Rng rng(13);
  EXPECT_THROW(grouped_label_partition(pool, 1, {{0}, {1}}, rng), Error);
  EXPECT_THROW(grouped_label_partition(pool, 4, {}, rng), Error);
  EXPECT_THROW(grouped_label_partition(pool, 4, {{0}, {99}}, rng), Error);
}

TEST(FeatureSkew, NoiseGrowsWithClientIndex) {
  const data::Dataset pool = balanced_pool(20);  // 200 samples
  Rng rng(30);
  const auto datasets = feature_skew_split(pool, 4, 2.0, rng);
  ASSERT_EQ(datasets.size(), 4u);
  // Client 0 gets clean data; later clients get noisier pixels. The pool
  // images are constant per class, so per-image pixel variance is a
  // direct readout of the injected noise.
  auto mean_pixel_variance = [](const data::Dataset& ds) {
    double total = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const Tensor img = ds.image(i);
      const float mean = img.mean();
      double var = 0.0;
      for (std::size_t d = 0; d < img.numel(); ++d) {
        var += (img[d] - mean) * (img[d] - mean);
      }
      total += var / static_cast<double>(img.numel());
    }
    return total / static_cast<double>(ds.size());
  };
  const double v0 = mean_pixel_variance(datasets[0]);
  const double v3 = mean_pixel_variance(datasets[3]);
  EXPECT_LT(v0, 1e-9);  // clean constant images
  EXPECT_GT(v3, 1.0);   // sigma = 2 noise
}

TEST(FeatureSkew, LabelsStayBalanced) {
  const data::Dataset pool = balanced_pool(20);
  Rng rng(31);
  const auto datasets = feature_skew_split(pool, 4, 1.0, rng);
  std::size_t total = 0;
  for (const auto& ds : datasets) {
    total += ds.size();
    const auto hist = ds.label_histogram();
    for (std::size_t c : hist) EXPECT_GT(c, 0u);  // every class present
  }
  EXPECT_EQ(total, pool.size());
}

TEST(FeatureSkew, ValidatesArguments) {
  const data::Dataset pool = balanced_pool(4);
  Rng rng(32);
  EXPECT_THROW(feature_skew_split(pool, 0, 1.0, rng), Error);
  EXPECT_THROW(feature_skew_split(pool, 2, -1.0, rng), Error);
}

TEST(Materialize, BuildsPerClientDatasets) {
  const data::Dataset pool = balanced_pool(5);
  Rng rng(14);
  const Partition part = iid_partition(pool, 5, rng);
  const auto datasets = materialize(pool, part);
  ASSERT_EQ(datasets.size(), 5u);
  std::size_t total = 0;
  for (const auto& ds : datasets) total += ds.size();
  EXPECT_EQ(total, pool.size());
}

TEST(LabelHistograms, SumsMatchPartition) {
  const data::Dataset pool = balanced_pool(5);
  Rng rng(15);
  const Partition part = dirichlet_partition(pool, 5, 0.5, rng, 1);
  const auto hists = label_histograms(pool, part);
  ASSERT_EQ(hists.size(), 5u);
  for (std::size_t c = 0; c < 5; ++c) {
    const std::size_t total = std::accumulate(
        hists[c].begin(), hists[c].end(), std::size_t{0});
    EXPECT_EQ(total, part.client_indices[c].size());
  }
}

TEST(HeterogeneityIndex, ExtremesBehave) {
  const data::Dataset pool = balanced_pool(4);
  // Hand-build a perfectly disjoint partition: client 0 gets classes 0-4,
  // client 1 gets 5-9.
  Partition part;
  part.client_indices.assign(2, {});
  for (std::size_t i = 0; i < pool.size(); ++i) {
    part.client_indices[pool.label(i) < 5 ? 0 : 1].push_back(i);
  }
  EXPECT_NEAR(heterogeneity_index(pool, part), 1.0, 1e-9);

  // Identical marginals -> 0.
  Partition same;
  same.client_indices.assign(2, {});
  for (std::size_t i = 0; i < pool.size(); ++i) {
    same.client_indices[i % 2].push_back(i);
  }
  EXPECT_NEAR(heterogeneity_index(pool, same), 0.0, 1e-9);
}

}  // namespace
}  // namespace fedclust::partition
