// Tests for the baseline algorithms: FedAvg, FedProx, IFCA, CFL, PACFL.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/cfl.hpp"
#include "algorithms/common.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/fedper.hpp"
#include "algorithms/local_only.hpp"
#include "algorithms/pacfl.hpp"
#include "nn/slicing.hpp"
#include "cluster/metrics.hpp"
#include "test_helpers.hpp"

namespace fedclust::algorithms {
namespace {

using testing::make_dirichlet_federation;
using testing::make_grouped_federation;

fl::FederationConfig fast_config() {
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  cfg.threads = 2;
  return cfg;
}

TEST(FedAvg, ImprovesAccuracyOverRounds) {
  auto [fed, groups] = make_grouped_federation(4, 400, 21, fast_config());
  FedAvg algo;
  const fl::RunResult r = algo.run(fed, 6);
  EXPECT_EQ(r.algorithm, "FedAvg");
  ASSERT_GE(r.rounds.size(), 2u);
  EXPECT_GT(r.final_round().acc_mean, r.rounds.front().acc_mean);
  EXPECT_GT(r.final_accuracy.mean, 0.4);
  // Global method: everyone in cluster 0.
  for (std::size_t l : r.cluster_labels) EXPECT_EQ(l, 0u);
}

TEST(FedAvg, CommBytesMatchFormula) {
  auto [fed, groups] = make_grouped_federation(4, 400, 22, fast_config());
  FedAvg algo;
  const std::size_t rounds = 3;
  const fl::RunResult r = algo.run(fed, rounds);
  const std::uint64_t model_bytes =
      fl::CommMeter::float_bytes(fed.model_size());
  // Full participation: every round, 4 clients download + upload a model.
  EXPECT_EQ(r.final_round().cum_download, model_bytes * 4 * rounds);
  EXPECT_EQ(r.final_round().cum_upload, model_bytes * 4 * rounds);
}

TEST(FedAvg, DeterministicAcrossRuns) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(4, 400, 23, cfg);
  auto [fed2, g2] = make_grouped_federation(4, 400, 23, cfg);
  FedAvg algo;
  const fl::RunResult a = algo.run(fed1, 3);
  const fl::RunResult b = algo.run(fed2, 3);
  EXPECT_DOUBLE_EQ(a.final_accuracy.mean, b.final_accuracy.mean);
}

TEST(FedProx, RunsAndReportsName) {
  auto [fed, groups] = make_grouped_federation(4, 400, 24, fast_config());
  FedProx algo(0.1);
  EXPECT_DOUBLE_EQ(algo.mu(), 0.1);
  const fl::RunResult r = algo.run(fed, 4);
  EXPECT_EQ(r.algorithm, "FedProx");
  EXPECT_GT(r.final_accuracy.mean, 0.3);
}

TEST(FedProx, LimitsDriftRelativeToFedAvg) {
  // Under strong heterogeneity the FedProx global model's round-to-round
  // movement is smaller; proxy check: the two algorithms produce
  // different results (the prox term is live).
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(4, 400, 25, cfg);
  auto [fed2, g2] = make_grouped_federation(4, 400, 25, cfg);
  const fl::RunResult avg = FedAvg().run(fed1, 3);
  const fl::RunResult prox = FedProx(1.0).run(fed2, 3);
  EXPECT_NE(avg.final_accuracy.mean, prox.final_accuracy.mean);
}

TEST(Ifca, RecoversGroundTruthGroups) {
  auto [fed, groups] = make_grouped_federation(6, 480, 26, fast_config());
  Ifca algo({.num_clusters = 2, .init_perturbation = 0.05});
  const fl::RunResult r = algo.run(fed, 6);
  ASSERT_EQ(r.cluster_labels.size(), 6u);
  // Cluster identities should align with the two label groups by the end.
  EXPECT_GE(cluster::adjusted_rand_index(r.cluster_labels, groups), 0.9);
  EXPECT_GT(r.final_accuracy.mean, 0.5);
}

TEST(Ifca, DownloadCostScalesWithK) {
  auto cfg = fast_config();
  auto [fed2, g2] = make_grouped_federation(4, 320, 27, cfg);
  auto [fed4, g4] = make_grouped_federation(4, 320, 27, cfg);
  const fl::RunResult rk2 = Ifca({.num_clusters = 2}).run(fed2, 2);
  const fl::RunResult rk4 = Ifca({.num_clusters = 4}).run(fed4, 2);
  EXPECT_NEAR(static_cast<double>(rk4.final_round().cum_download) /
                  static_cast<double>(rk2.final_round().cum_download),
              2.0, 1e-9);
}

TEST(Ifca, SingleClusterDegeneratesToFedAvg) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(4, 320, 28, cfg);
  auto [fed2, g2] = make_grouped_federation(4, 320, 28, cfg);
  const fl::RunResult ifca = Ifca({.num_clusters = 1}).run(fed1, 3);
  const fl::RunResult avg = FedAvg().run(fed2, 3);
  EXPECT_NEAR(ifca.final_accuracy.mean, avg.final_accuracy.mean, 1e-9);
}

TEST(Cfl, SplitsUnderConflictingUpdates) {
  auto cfg = fast_config();
  auto [fed, groups] = make_grouped_federation(6, 480, 29, cfg);
  CflConfig ccfg;
  ccfg.warmup_rounds = 1;
  // Generous thresholds so the split triggers within the short test run.
  ccfg.eps1 = 1e9;
  ccfg.eps2 = 0.0;
  // 3 keeps the recursion from shattering the 6 clients past the first
  // bipartition, so the split aligns with the two ground-truth groups.
  ccfg.min_cluster_size = 3;
  Cfl algo(ccfg);
  const fl::RunResult r = algo.run(fed, 6);
  EXPECT_GT(r.final_round().num_clusters, 1u);
  // The first bipartition should reflect the two label groups.
  EXPECT_GE(cluster::adjusted_rand_index(r.cluster_labels, groups), 0.5);
}

TEST(Cfl, ConservativeThresholdsNeverSplit) {
  auto [fed, groups] = make_grouped_federation(4, 320, 30, fast_config());
  CflConfig ccfg;
  ccfg.eps1 = 0.0;  // mean norm can never be below zero
  ccfg.eps2 = 1e9;
  Cfl algo(ccfg);
  const fl::RunResult r = algo.run(fed, 4);
  EXPECT_EQ(r.final_round().num_clusters, 1u);
  for (std::size_t l : r.cluster_labels) EXPECT_EQ(l, 0u);
}

TEST(Pacfl, ClusterAssignmentsMatchDataGroups) {
  auto [fed, groups] = make_grouped_federation(6, 480, 31, fast_config());
  Pacfl algo({.subspace_rank = 2, .samples_per_class_cap = 20});
  Matrix dis;
  std::uint64_t upload = 0;
  const std::vector<std::size_t> labels =
      algo.cluster_clients(fed, &dis, &upload);
  EXPECT_EQ(labels.size(), 6u);
  EXPECT_GT(upload, 0u);
  EXPECT_GE(cluster::adjusted_rand_index(labels, groups), 0.9);
  // Within-group principal angles smaller than across-group.
  EXPECT_GT(cluster::block_contrast(dis, groups), 1.05);
}

TEST(Pacfl, FullRunImprovesOverInitialModel) {
  auto [fed, groups] = make_grouped_federation(6, 480, 32, fast_config());
  Pacfl algo({.subspace_rank = 2, .samples_per_class_cap = 20});
  const fl::RunResult r = algo.run(fed, 5);
  EXPECT_EQ(r.algorithm, "PACFL");
  EXPECT_GT(r.final_accuracy.mean, r.rounds.front().acc_mean);
  EXPECT_GT(r.final_accuracy.mean, 0.5);
}

TEST(Pacfl, RequiresFormationPlusTraining) {
  auto [fed, groups] = make_grouped_federation(4, 320, 33, fast_config());
  Pacfl algo({});
  EXPECT_THROW(algo.run(fed, 1), Error);
}

TEST(LocalOnly, NoCommunicationAndPersonalModels) {
  auto [fed, groups] = make_grouped_federation(4, 320, 36, fast_config());
  LocalOnly algo;
  const fl::RunResult r = algo.run(fed, 3);
  EXPECT_EQ(fed.comm().total(), 0u);
  // Each client is its own cluster.
  EXPECT_EQ(r.cluster_labels, (std::vector<std::size_t>{0, 1, 2, 3}));
  // Personal models fit local data well on this easy grouped task.
  EXPECT_GT(r.final_accuracy.mean, 0.5);
}

TEST(LocalOnly, WeightsPersistAcrossRounds) {
  auto cfg = fast_config();
  auto [fed3, g3] = make_grouped_federation(4, 320, 37, cfg);
  auto [fed1, g1] = make_grouped_federation(4, 320, 37, cfg);
  // 3 rounds of LocalOnly should beat 1 round (training accumulates).
  const double acc3 = LocalOnly().run(fed3, 3).final_accuracy.mean;
  const double acc1 = LocalOnly().run(fed1, 1).final_accuracy.mean;
  EXPECT_GE(acc3, acc1);
}

TEST(FedAvgM, ZeroMomentumMatchesFedAvg) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(4, 320, 38, cfg);
  auto [fed2, g2] = make_grouped_federation(4, 320, 38, cfg);
  const double m = FedAvgM(0.0).run(fed1, 3).final_accuracy.mean;
  const double a = FedAvg().run(fed2, 3).final_accuracy.mean;
  EXPECT_NEAR(m, a, 1e-9);
}

TEST(FedAvgM, MomentumChangesTrajectory) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(4, 320, 39, cfg);
  auto [fed2, g2] = make_grouped_federation(4, 320, 39, cfg);
  const double m = FedAvgM(0.9).run(fed1, 3).final_accuracy.mean;
  const double a = FedAvg().run(fed2, 3).final_accuracy.mean;
  EXPECT_NE(m, a);
}

TEST(FedAvgM, CommCostMatchesFedAvg) {
  auto cfg = fast_config();
  auto [fed, groups] = make_grouped_federation(4, 320, 40, cfg);
  FedAvgM algo(0.9);
  algo.run(fed, 2);
  const std::uint64_t model_bytes =
      fl::CommMeter::float_bytes(fed.model_size());
  EXPECT_EQ(fed.comm().total_upload(), model_bytes * 4 * 2);
}

TEST(FedPer, SharesOnlyTheBase) {
  auto cfg = fast_config();
  auto [fed, groups] = make_grouped_federation(4, 320, 55, cfg);
  FedPer algo;
  const fl::RunResult r = algo.run(fed, 3);
  const auto head =
      nn::resolve_partial_slices(fed.template_model(), "final+bias");
  const std::uint64_t base_bytes = fl::CommMeter::float_bytes(
      fed.model_size() - nn::slices_numel(head));
  // 4 clients × 3 rounds, base-only in both directions.
  EXPECT_EQ(fed.comm().total_upload(), base_bytes * 4 * 3);
  EXPECT_EQ(fed.comm().total_download(), base_bytes * 4 * 3);
  EXPECT_GT(r.final_accuracy.mean, 0.3);
}

TEST(FedPer, PersonalHeadsHelpUnderGroupStructure) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(6, 480, 56, cfg);
  auto [fed2, g2] = make_grouped_federation(6, 480, 56, cfg);
  const double per = FedPer().run(fed1, 5).final_accuracy.mean;
  const double avg = FedAvg().run(fed2, 5).final_accuracy.mean;
  EXPECT_GT(per, avg - 0.05);  // at minimum competitive; usually above
}

TEST(FedPer, RejectsHeadCoveringWholeModel) {
  auto cfg = fast_config();
  auto [fed, groups] = make_grouped_federation(4, 320, 57, cfg);
  FedPer algo({.head_spec = "all"});
  EXPECT_THROW(algo.run(fed, 2), Error);
}

// -- shared helper -------------------------------------------------------------

TEST(PerClusterRound, ValidatesLabels) {
  auto [fed, groups] = make_grouped_federation(4, 320, 34, fast_config());
  std::vector<std::vector<float>> weights{
      fed.template_model().flat_weights()};
  std::vector<std::size_t> bad_labels(fed.num_clients(), 1);  // no model 1
  fed.comm().begin_round(0);
  EXPECT_THROW(per_cluster_fedavg_round(fed, 0, bad_labels, weights), Error);
}

TEST(PerClusterRound, OnlyTouchedClustersChange) {
  auto cfg = fast_config();
  cfg.participation = 0.5;  // 2 of 4 clients
  auto [fed, groups] = make_grouped_federation(4, 320, 35, cfg);
  std::vector<std::vector<float>> weights(
      2, fed.template_model().flat_weights());
  // Clients 0,2 -> cluster 0; clients 1,3 -> cluster 1.
  const std::vector<std::size_t> labels{0, 1, 0, 1};
  const std::vector<float> before0 = weights[0];
  const std::vector<float> before1 = weights[1];
  fed.comm().begin_round(0);
  per_cluster_fedavg_round(fed, 0, labels, weights);
  const auto sampled = fed.sample_clients(0);
  std::set<std::size_t> touched;
  for (std::size_t cid : sampled) touched.insert(labels[cid]);
  if (!touched.count(0)) EXPECT_EQ(weights[0], before0);
  if (!touched.count(1)) EXPECT_EQ(weights[1], before1);
  for (std::size_t t : touched) {
    EXPECT_NE(weights[t], t == 0 ? before0 : before1);
  }
}

}  // namespace
}  // namespace fedclust::algorithms
