// Unit tests for the runtime invariant audits in src/check, plus
// end-to-end runs of audited federations (with and without the network
// simulator) proving the engine's own behaviour passes its audits.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "algorithms/fedavg.hpp"
#include "check/audit.hpp"
#include "core/fedclust.hpp"
#include "test_helpers.hpp"
#include "utils/error.hpp"

namespace fedclust::check {
namespace {

using fedclust::testing::make_grouped_federation;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

TEST(AuditFinite, PassesOnFiniteValues) {
  const std::vector<float> v = {0.0f, -1.5f, 3e30f, -3e-30f};
  EXPECT_NO_THROW(assert_all_finite(v, "test vector"));
}

TEST(AuditFinite, ThrowsOnNanAndInf) {
  EXPECT_THROW(assert_all_finite(std::vector<float>{1.0f, kNan}, "v"), Error);
  EXPECT_THROW(assert_all_finite(std::vector<float>{kInf}, "v"), Error);
  EXPECT_THROW(assert_all_finite(std::vector<float>{-kInf, 0.0f}, "v"), Error);
}

TEST(AuditAggregation, AcceptsConvexCombination) {
  const std::vector<float> a = {0.0f, 1.0f, -2.0f};
  const std::vector<float> b = {1.0f, 3.0f, 2.0f};
  // 0.25*a + 0.75*b
  const std::vector<float> out = {0.75f, 2.5f, 1.0f};
  EXPECT_NO_THROW(audit_aggregation({a, b}, {0.25, 0.75}, out));
}

TEST(AuditAggregation, RejectsNonConservingCoefficients) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {2.0f};
  EXPECT_THROW(audit_aggregation({a, b}, {0.5, 0.6}, a), Error);
  EXPECT_THROW(audit_aggregation({a, b}, {1.2, -0.2}, a), Error);
}

TEST(AuditAggregation, RejectsOutputOutsideEnvelope) {
  const std::vector<float> a = {0.0f, 0.0f};
  const std::vector<float> b = {1.0f, 1.0f};
  // Second coordinate escapes [0, 1] by far more than rounding allows.
  const std::vector<float> out = {0.5f, 1.5f};
  EXPECT_THROW(audit_aggregation({a, b}, {0.5, 0.5}, out), Error);
}

TEST(AuditAggregation, RejectsNonFiniteInput) {
  const std::vector<float> a = {1.0f, kNan};
  const std::vector<float> b = {1.0f, 1.0f};
  const std::vector<float> out = {1.0f, 1.0f};
  EXPECT_THROW(audit_aggregation({a, b}, {0.5, 0.5}, out), Error);
}

TEST(AuditPartition, AcceptsConsecutiveLabels) {
  EXPECT_NO_THROW(audit_cluster_partition({0, 1, 0, 2, 1}));
  EXPECT_NO_THROW(audit_cluster_partition({0, 0, 0}));
}

TEST(AuditPartition, RejectsGapsAndEmpties) {
  // Id 1 has no members: {0, 2} is not a consecutive partition.
  EXPECT_THROW(audit_cluster_partition({0, 2, 2}), Error);
  EXPECT_THROW(audit_cluster_partition({}), Error);
  // A label >= n cannot occur in a partition of n members.
  EXPECT_THROW(audit_cluster_partition({5, 0}), Error);
}

TEST(AuditDendrogram, AcceptsRealClusteringOutput) {
  // 4 leaves, two tight pairs far apart — classic clusterable layout.
  Matrix d(4, 4);
  const double dist[4][4] = {{0, 1, 9, 10}, {1, 0, 10, 9},
                             {9, 10, 0, 1.5}, {10, 9, 1.5, 0}};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) d(i, j) = dist[i][j];
  }
  for (const cluster::Linkage linkage :
       {cluster::Linkage::kSingle, cluster::Linkage::kComplete,
        cluster::Linkage::kAverage, cluster::Linkage::kWard}) {
    const cluster::Dendrogram dendro =
        cluster::agglomerative_cluster(d, linkage);
    EXPECT_NO_THROW(audit_dendrogram_monotone(dendro));
  }
}

TEST(AuditDendrogram, RejectsInvertedMerges) {
  cluster::Dendrogram dendro;
  dendro.num_leaves = 3;
  dendro.merges = {{0, 1, 2.0, 2}, {3, 2, 1.0, 3}};  // 1.0 after 2.0
  EXPECT_THROW(audit_dendrogram_monotone(dendro), Error);
}

TEST(AuditDendrogram, RejectsNegativeOrNonFiniteDistance) {
  cluster::Dendrogram bad;
  bad.num_leaves = 2;
  bad.merges = {{0, 1, -0.5, 2}};
  EXPECT_THROW(audit_dendrogram_monotone(bad), Error);
  bad.merges = {{0, 1, static_cast<double>(kNan), 2}};
  EXPECT_THROW(audit_dendrogram_monotone(bad), Error);
}

TEST(AuditCommParity, MatchesDeliveredTraffic) {
  std::vector<net::Event> log;
  net::Event down;
  down.kind = net::EventKind::kBroadcastDelivered;
  down.bytes = 100;
  net::Event up;
  up.kind = net::EventKind::kUploadDelivered;
  up.bytes = 60;
  net::Event dropped;  // lost in transit: must not count
  dropped.kind = net::EventKind::kUploadDropped;
  dropped.bytes = 60;
  log = {down, up, dropped};
  EXPECT_NO_THROW(audit_comm_parity(100, 60, log));
  EXPECT_THROW(audit_comm_parity(100, 120, log), Error);
  EXPECT_THROW(audit_comm_parity(0, 60, log), Error);
}

TEST(Fingerprint, BitIdenticalVectorsAgree) {
  const std::vector<float> a = {1.0f, -2.5f, 0.0f};
  std::vector<float> b = a;
  EXPECT_EQ(weights_fingerprint(a), weights_fingerprint(b));
  b[1] = std::nextafter(b[1], 0.0f);  // one-ulp change must be visible
  EXPECT_NE(weights_fingerprint(a), weights_fingerprint(b));
}

TEST(Fingerprint, DistinguishesPositiveAndNegativeZero) {
  const std::vector<float> pos = {0.0f};
  const std::vector<float> neg = {-0.0f};
  EXPECT_NE(weights_fingerprint(pos), weights_fingerprint(neg));
}

TEST(Fingerprint, VectorSetMixesLengths) {
  // {a, b} concatenated differently must not collide: length framing.
  const std::vector<std::vector<float>> one = {{1.0f, 2.0f}};
  const std::vector<std::vector<float>> two = {{1.0f}, {2.0f}};
  EXPECT_NE(weights_fingerprint(one), weights_fingerprint(two));
}

fl::FederationConfig audited_config() {
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  cfg.threads = 2;
  cfg.audit = true;
  return cfg;
}

TEST(AuditedRun, FedAvgPassesAllAudits) {
  auto [fed, groups] = make_grouped_federation(4, 320, 31, audited_config());
  const fl::RunResult r = algorithms::FedAvg().run(fed, 3);
  EXPECT_EQ(r.rounds.size(), 3u);
  for (const fl::RoundMetrics& m : r.rounds) EXPECT_NE(m.weights_fp, 0u);
}

TEST(AuditedRun, FedClustPassesAllAudits) {
  auto [fed, groups] = make_grouped_federation(6, 480, 32, audited_config());
  const fl::RunResult r = core::FedClust({.warmup_epochs = 2}).run(fed, 4);
  EXPECT_GE(r.rounds.size(), 2u);
  EXPECT_NO_THROW(audit_cluster_partition(r.cluster_labels));
}

TEST(AuditedRun, MatchesUnauditedTrajectoryBitForBit) {
  // The audit layer observes; it must never perturb. Identical seeds with
  // and without audit must produce identical weight fingerprints.
  fl::FederationConfig plain = audited_config();
  plain.audit = false;
  auto [fed_a, g1] = make_grouped_federation(4, 320, 33, audited_config());
  auto [fed_p, g2] = make_grouped_federation(4, 320, 33, plain);
  const fl::RunResult a = algorithms::FedAvg().run(fed_a, 3);
  const fl::RunResult p = algorithms::FedAvg().run(fed_p, 3);
  ASSERT_EQ(a.rounds.size(), p.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].weights_fp, p.rounds[i].weights_fp);
  }
}

TEST(AuditedRun, CommParityHoldsUnderSimulatedNetwork) {
  fl::FederationConfig cfg = audited_config();
  cfg.network.enabled = true;
  auto [fed, groups] = make_grouped_federation(4, 320, 34, cfg);
  ASSERT_TRUE(fed.network_enabled());
  // make_round_metrics audits meter-vs-log parity at every evaluated
  // round; any divergence throws and fails the run.
  const fl::RunResult r = algorithms::FedAvg().run(fed, 3);
  EXPECT_EQ(r.rounds.size(), 3u);
  EXPECT_GT(r.final_round().cum_upload, 0u);
}

TEST(AuditedRun, TrainClientsRejectsNonFiniteUpdates) {
  // Drive the engine into divergence: an absurd learning rate overflows
  // float32 within an epoch, and the audit sweep must catch it rather
  // than silently aggregating NaNs.
  fl::FederationConfig cfg = audited_config();
  cfg.local.sgd.lr = 1e30;
  auto [fed, groups] = make_grouped_federation(4, 320, 35, cfg);
  EXPECT_THROW(algorithms::FedAvg().run(fed, 2), Error);
}

}  // namespace
}  // namespace fedclust::check
