// End-to-end training tests: whole-model gradient check through the
// cross-entropy loss, SGD semantics (momentum / weight decay / proximal
// term), and actual learning on small synthetic problems.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"

namespace fedclust::nn {
namespace {

Model tiny_mlp(std::uint64_t seed) {
  Model m = mlp({1, 4, 4, 3}, 8);
  Rng rng(seed);
  m.init_params(rng);
  return m;
}

TEST(ModelGradient, MatchesFiniteDifferenceThroughLoss) {
  Model m = tiny_mlp(1);
  Rng rng(2);
  const Tensor x = Tensor::randn({3, 1, 4, 4}, rng);
  const std::vector<std::int32_t> labels{0, 1, 2};

  m.zero_grad();
  const Tensor logits = m.forward(x, true);  // backward needs a train forward
  const LossResult loss = softmax_cross_entropy(logits, labels);
  m.backward(loss.grad_logits);
  const std::vector<float> analytic = m.flat_grads();

  auto loss_now = [&]() {
    const Tensor l = m.forward(x, false);
    return static_cast<double>(softmax_cross_entropy_loss(l, labels));
  };

  const auto params = m.params();
  const float eps = 1e-2f;
  std::size_t flat_offset = 0;
  for (Param* p : params) {
    for (std::size_t idx : {std::size_t{0}, p->value.numel() - 1}) {
      const float orig = p->value[idx];
      p->value[idx] = orig + eps;
      const double lp = loss_now();
      p->value[idx] = orig - eps;
      const double lm = loss_now();
      p->value[idx] = orig;
      EXPECT_NEAR(analytic[flat_offset + idx], (lp - lm) / (2.0 * eps), 2e-2)
          << p->name << "[" << idx << "]";
    }
    flat_offset += p->value.numel();
  }
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Model m = tiny_mlp(3);
  Sgd opt(m, {.lr = 0.5});
  // Force a known gradient on the first parameter.
  m.zero_grad();
  Param* p = m.params()[0];
  const float w0 = p->value[0];
  p->grad[0] = 2.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p->value[0], w0 - 0.5f * 2.0f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Model m = tiny_mlp(4);
  Sgd opt(m, {.lr = 1.0, .momentum = 0.5});
  Param* p = m.params()[0];
  const float w0 = p->value[0];
  m.zero_grad();
  p->grad[0] = 1.0f;
  opt.step();  // v = 1, w -= 1
  EXPECT_FLOAT_EQ(p->value[0], w0 - 1.0f);
  m.zero_grad();
  p->grad[0] = 1.0f;
  opt.step();  // v = 0.5 + 1 = 1.5, w -= 1.5
  EXPECT_FLOAT_EQ(p->value[0], w0 - 2.5f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Model m = tiny_mlp(5);
  Param* p = m.params()[0];
  p->value[0] = 2.0f;
  Sgd opt(m, {.lr = 0.1, .weight_decay = 0.5});
  m.zero_grad();  // pure decay, no data gradient
  opt.step();
  EXPECT_FLOAT_EQ(p->value[0], 2.0f - 0.1f * 0.5f * 2.0f);
}

TEST(Sgd, ProximalTermPullsTowardReference) {
  Model m = tiny_mlp(6);
  Sgd opt(m, {.lr = 0.1, .prox_mu = 1.0});
  opt.capture_prox_reference();  // w_ref = current weights
  Param* p = m.params()[0];
  const float ref = p->value[0];
  // Move the weight away from the reference, then step with zero data
  // gradient: the prox term alone must pull it back toward ref.
  p->value[0] = ref + 1.0f;
  m.zero_grad();
  opt.step();
  EXPECT_FLOAT_EQ(p->value[0], ref + 1.0f - 0.1f * 1.0f);
}

TEST(Sgd, ProxWithoutReferenceIsPlainSgd) {
  Model m = tiny_mlp(7);
  Sgd opt(m, {.lr = 0.1, .prox_mu = 5.0});
  // No capture_prox_reference() -> term disabled.
  Param* p = m.params()[0];
  const float w0 = p->value[0];
  m.zero_grad();
  p->grad[0] = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p->value[0], w0 - 0.1f);
}

TEST(Sgd, RejectsBadHyperparameters) {
  Model m = tiny_mlp(8);
  EXPECT_THROW(Sgd(m, {.lr = 0.0}), Error);
  EXPECT_THROW(Sgd(m, {.lr = 0.1, .momentum = 1.0}), Error);
  EXPECT_THROW(Sgd(m, {.lr = 0.1, .weight_decay = -1.0}), Error);
  EXPECT_THROW(Sgd(m, SgdConfig{.lr = 0.1, .prox_mu = -0.1}), Error);
}

// A small linearly separable task: class c lives at a distinct corner of
// input space. A few SGD epochs must reach near-perfect train accuracy.
TEST(Training, LearnsSeparableToy) {
  Model m = tiny_mlp(9);
  Sgd opt(m, {.lr = 0.1});
  Rng rng(10);

  const std::size_t batch = 30;
  Tensor x({batch, 1, 4, 4});
  std::vector<std::int32_t> labels(batch);
  auto fill_batch = [&]() {
    for (std::size_t i = 0; i < batch; ++i) {
      const std::int32_t c = static_cast<std::int32_t>(i % 3);
      labels[i] = c;
      for (std::size_t d = 0; d < 16; ++d) {
        // Class signature: a block of active pixels + noise.
        const bool on = d / 6 == static_cast<std::size_t>(c);
        x[i * 16 + d] =
            (on ? 1.0f : -1.0f) + 0.1f * static_cast<float>(rng.normal());
      }
    }
  };

  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 150; ++step) {
    fill_batch();
    m.zero_grad();
    const Tensor logits = m.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    m.backward(loss.grad_logits);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.3f * first_loss);

  fill_batch();
  const Tensor logits = m.forward(x, false);
  EXPECT_GT(accuracy(logits, labels), 0.95);
}

TEST(Sgd, NeverTouchesBatchNormRunningStats) {
  // Weight decay and the prox term must not decay BN running statistics,
  // which ride along as parameters for aggregation purposes.
  Model m;
  m.emplace<Conv2d>(1, 2, 3, 1);
  m.emplace<BatchNorm2d>(2);
  Rng rng(40);
  m.init_params(rng);
  Sgd opt(m, {.lr = 0.5, .weight_decay = 0.9});

  // Populate running stats via one train-mode forward.
  const Tensor x = Tensor::randn({4, 1, 4, 4}, rng, 2.0f, 1.0f);
  (void)m.forward(x, true);
  const auto params = m.params();
  const float mean_before = params[4]->value[0];  // running_mean
  const float var_before = params[5]->value[0];   // running_var
  ASSERT_EQ(params[4]->name, "running_mean");

  const float conv_before = params[0]->value[0];
  m.zero_grad();
  opt.step();  // pure decay step
  EXPECT_FLOAT_EQ(params[4]->value[0], mean_before);
  EXPECT_FLOAT_EQ(params[5]->value[0], var_before);
  // ...while regular weights DID decay.
  EXPECT_FLOAT_EQ(params[0]->value[0], conv_before * (1.0f - 0.5f * 0.9f));
}

// -- Adam ---------------------------------------------------------------------

TEST(Adam, StepMovesAgainstGradient) {
  Model m = tiny_mlp(12);
  Adam opt(m, {.lr = 0.1});
  Param* p = m.params()[0];
  const float w0 = p->value[0];
  m.zero_grad();
  p->grad[0] = 5.0f;  // any positive gradient: first Adam step ≈ -lr
  opt.step();
  EXPECT_LT(p->value[0], w0);
  // First-step magnitude is ~lr regardless of gradient scale.
  EXPECT_NEAR(p->value[0], w0 - 0.1f, 1e-3f);
  EXPECT_EQ(opt.steps_taken(), 1u);
}

TEST(Adam, StepSizeInvariantToGradientScale) {
  // Adam's first step is ≈ -lr * sign(grad), independent of |grad|.
  Model a = tiny_mlp(13);
  Model b = a.clone();
  const float w0 = a.params()[0]->value[0];
  Adam oa(a, {.lr = 0.05});
  Adam ob(b, {.lr = 0.05});
  a.zero_grad();
  b.zero_grad();
  a.params()[0]->grad[0] = 1.0f;
  b.params()[0]->grad[0] = 1000.0f;  // 1000x larger gradient
  oa.step();
  ob.step();
  const float delta_a = a.params()[0]->value[0] - w0;
  const float delta_b = b.params()[0]->value[0] - w0;
  EXPECT_NEAR(delta_a, -0.05f, 2e-3f);
  EXPECT_NEAR(delta_b, -0.05f, 2e-3f);
}

TEST(Adam, BiasCorrectedStepMatchesPaperFormula) {
  // Regression: ε must be added to √v̂ (the bias-corrected second
  // moment), not to √v. With a constant gradient g the corrections
  // cancel exactly — m̂ = g, v̂ = g² at every t — so each step is
  //   lr·g / (|g| + ε) = 0.1·0.5 / 0.51 = 0.09803921…
  // The old implementation folded the corrections into one step-size
  // scalar while leaving √v + ε in the denominator, which rescales ε by
  // √(1−β₂ᵗ) (~32× at t = 1) and yielded 0.061258 for this exact case.
  Model m = tiny_mlp(17);
  Adam opt(m, {.lr = 0.1, .beta1 = 0.9, .beta2 = 0.999, .epsilon = 0.01});
  Param* p = m.params()[0];
  const float w0 = p->value[0];
  constexpr double kStep = 0.1 * 0.5 / (0.5 + 0.01);
  for (std::size_t t = 1; t <= 3; ++t) {
    m.zero_grad();
    p->grad[0] = 0.5f;
    opt.step();
    EXPECT_NEAR(p->value[0], w0 - static_cast<double>(t) * kStep, 1e-4)
        << "step " << t;
  }
  // Guard against ever reintroducing the folded-ε variant.
  EXPECT_GT(w0 - p->value[0], 0.29);  // 3 × 0.098039, not 3 × 0.061258
}

TEST(Adam, RejectsBadHyperparameters) {
  Model m = tiny_mlp(14);
  EXPECT_THROW(Adam(m, {.lr = 0.0}), Error);
  EXPECT_THROW(Adam(m, {.lr = 0.1, .beta1 = 1.0}), Error);
  EXPECT_THROW(Adam(m, {.lr = 0.1, .beta2 = 1.0}), Error);
  EXPECT_THROW(Adam(m, AdamConfig{.lr = 0.1, .epsilon = 0.0}), Error);
}

TEST(Adam, LearnsSeparableToyFasterThanOneEpochSgd) {
  Model m = tiny_mlp(15);
  Adam opt(m, {.lr = 0.01});
  Rng rng(16);
  const std::size_t batch = 30;
  Tensor x({batch, 1, 4, 4});
  std::vector<std::int32_t> labels(batch);
  float last_loss = 0.0f;
  for (int step = 0; step < 120; ++step) {
    for (std::size_t i = 0; i < batch; ++i) {
      const std::int32_t c = static_cast<std::int32_t>(i % 3);
      labels[i] = c;
      for (std::size_t d = 0; d < 16; ++d) {
        const bool on = d / 6 == static_cast<std::size_t>(c);
        x[i * 16 + d] =
            (on ? 1.0f : -1.0f) + 0.1f * static_cast<float>(rng.normal());
      }
    }
    m.zero_grad();
    const Tensor logits = m.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    last_loss = loss.loss;
    m.backward(loss.grad_logits);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.2f);
}

TEST(Training, Lenet5LearnsConstantImagesFast) {
  // Sanity check that conv backprop composes: class = sign pattern of a
  // constant image; tiny LeNet run should fit it.
  Model m = lenet5({1, 28, 28, 10});
  Rng rng(11);
  m.init_params(rng);
  Sgd opt(m, {.lr = 0.05});

  const std::size_t batch = 8;
  Tensor x({batch, 1, 28, 28});
  std::vector<std::int32_t> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::int32_t c = static_cast<std::int32_t>(i % 4);
    labels[i] = c;
    for (std::size_t d = 0; d < 28 * 28; ++d) {
      x[i * 28 * 28 + d] = 0.5f * static_cast<float>(c) - 0.75f;
    }
  }

  float loss_value = 0.0f;
  for (int step = 0; step < 100; ++step) {
    m.zero_grad();
    const Tensor logits = m.forward(x, true);
    const LossResult loss = softmax_cross_entropy(logits, labels);
    loss_value = loss.loss;
    m.backward(loss.grad_logits);
    opt.step();
  }
  EXPECT_LT(loss_value, 0.5f);
  EXPECT_GT(accuracy(m.forward(x, false), labels), 0.9);
}

}  // namespace
}  // namespace fedclust::nn
