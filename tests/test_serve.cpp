// Tests for the serving subsystem: snapshot freezing + registry hot
// reload, the three routing modes (hard routing must match the FedClust
// newcomer rule exactly), and the batching engine's determinism and
// concurrency contracts.
#include "serve/batching.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "cluster/hierarchical.hpp"
#include "cluster/routing.hpp"
#include "core/fedclust.hpp"
#include "robust/checkpoint.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "test_helpers.hpp"

namespace fedclust::serve {
namespace {

using testing::make_grouped_federation;
using testing::tiny_pool;

fl::FederationConfig fast_config() {
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  cfg.threads = 2;
  return cfg;
}

/// One trained FedClust run frozen for serving, plus a request pool.
/// Built once — training even the tiny federation dominates test time.
struct ServingSetup {
  nn::Model template_model;
  core::ClusteringOutcome outcome;
  fl::RunResult result;
  ModelSnapshot snap;                        // unpublished master copy
  std::vector<Tensor> inputs;                // (1, C, H, W) each
  std::vector<std::vector<float>> features;  // parallel to inputs
};

const ServingSetup& setup() {
  static const ServingSetup* s = [] {
    auto* out = new ServingSetup();
    auto [fed, groups] = make_grouped_federation(6, 480, 49, fast_config());
    core::FedClust algo({.warmup_epochs = 2});
    out->result = algo.run(fed, 2);
    out->outcome = *algo.last_clustering();
    out->template_model = fed.template_model().clone();
    out->snap = freeze(out->template_model, out->result, out->outcome);

    const data::Dataset pool = tiny_pool(48, 50);
    for (std::size_t i = 0; i < 24; ++i) {
      const std::size_t idx[] = {i};
      out->inputs.push_back(pool.gather(idx).images);
      out->features.push_back(out->outcome.partial_weights[i % 6]);
    }
    return out;
  }();
  return *s;
}

/// Publishes a copy of the master snapshot (registries hold a mutex and
/// cannot be returned by value).
void publish_master(ModelRegistry& reg) {
  ModelSnapshot copy = setup().snap;
  reg.publish(std::move(copy));
}

// -- freezing ------------------------------------------------------------------

TEST(Freeze, CarriesRunState) {
  const ServingSetup& s = setup();
  EXPECT_EQ(s.snap.cluster_weights, s.result.cluster_weights);
  EXPECT_EQ(s.snap.partial_weights, s.outcome.partial_weights);
  EXPECT_EQ(s.snap.labels, s.outcome.labels);
  EXPECT_EQ(s.snap.num_clusters(), cluster::num_clusters(s.outcome.labels));
  EXPECT_NE(s.snap.weights_fp, 0u);
  // Cached sqnorms must be exactly what the routing primitive computes.
  EXPECT_EQ(s.snap.anchor_sqnorms,
            cluster::anchor_sqnorms(s.outcome.partial_weights));
}

TEST(Freeze, CheckpointPathIsBitIdenticalToRunPath) {
  const std::string path = "/tmp/fedclust_serve_freeze_test.ckpt";
  auto [fed, groups] = make_grouped_federation(4, 320, 57, fast_config());
  core::FedClust algo({.warmup_epochs = 2,
                       .checkpoint_every = 1,
                       .checkpoint_path = path});
  const fl::RunResult r = algo.run(fed, 2);
  ASSERT_TRUE(std::filesystem::exists(path));

  const ModelSnapshot from_run =
      freeze(fed.template_model(), r, *algo.last_clustering());
  const ModelSnapshot from_ckpt =
      freeze_checkpoint(fed.template_model(), robust::load_checkpoint(path));
  std::filesystem::remove(path);

  EXPECT_EQ(from_run.cluster_weights, from_ckpt.cluster_weights);
  EXPECT_EQ(from_run.partial_weights, from_ckpt.partial_weights);
  EXPECT_EQ(from_run.labels, from_ckpt.labels);
  EXPECT_EQ(from_run.anchor_sqnorms, from_ckpt.anchor_sqnorms);
  EXPECT_EQ(from_run.weights_fp, from_ckpt.weights_fp);
}

TEST(Freeze, RejectsUnclusteredResult) {
  const ServingSetup& s = setup();
  fl::RunResult global;  // e.g. FedAvg: no per-cluster models
  EXPECT_THROW(freeze(s.template_model, global, s.outcome), Error);
}

TEST(Freeze, RejectsWeightCountMismatch) {
  const ServingSetup& s = setup();
  fl::RunResult bad = s.result;
  bad.cluster_weights[0].pop_back();
  EXPECT_THROW(freeze(s.template_model, bad, s.outcome), Error);
}

// -- registry ------------------------------------------------------------------

TEST(Registry, PublishAssignsMonotonicVersions) {
  ModelRegistry reg;
  EXPECT_EQ(reg.version(), 0u);
  EXPECT_EQ(reg.snapshot(), nullptr);

  ModelSnapshot a = setup().snap;
  EXPECT_EQ(reg.publish(std::move(a)), 1u);
  const auto first = reg.snapshot();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);

  ModelSnapshot b = setup().snap;
  EXPECT_EQ(reg.publish(std::move(b)), 2u);
  EXPECT_EQ(reg.version(), 2u);
  // The old snapshot stays alive and readable through its shared_ptr.
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->weights_fp, reg.snapshot()->weights_fp);
}

// -- routing -------------------------------------------------------------------

TEST(Router, HardModeMatchesNewcomerAssignment) {
  const ServingSetup& s = setup();
  auto [fed, groups] = make_grouped_federation(6, 480, 49, fast_config());
  core::FedClust algo({.warmup_epochs = 2});

  const Router router(std::make_shared<const ModelSnapshot>(s.snap),
                      RouterConfig{.mode = RouteMode::kHard});
  const data::SyntheticGenerator gen(testing::tiny_image_spec(), 49);
  Rng rng(50);
  for (std::size_t g = 0; g < 2; ++g) {
    std::vector<std::size_t> counts(4, 0);
    counts[2 * g] = 40;
    counts[2 * g + 1] = 40;
    const data::Dataset newcomer = gen.generate_per_class(counts, rng);

    std::vector<float> partial;
    const std::size_t assigned =
        algo.assign_newcomer(s.template_model, newcomer, fed.config().local,
                             Rng(51 + g), s.outcome, &partial);
    const RouteDecision d = router.route(partial);
    EXPECT_EQ(d.cluster, assigned) << "group " << g;
    // The cached-sqnorm distances must equal the uncached newcomer math
    // exactly (same kernels, same clamp, same order).
    EXPECT_EQ(d.distances,
              cluster::mean_cluster_distances(
                  partial, s.outcome.partial_weights, s.outcome.labels,
                  s.snap.num_clusters()));
    EXPECT_EQ(d.weights[d.cluster], 1.0);
  }
}

TEST(Router, GaussianWeightsSumToOneAndPeakAtNearest) {
  const std::vector<double> d = {1.0, 2.0, 0.5};
  const std::vector<double> w = gaussian_weights(d, 0.0);
  double sum = 0.0;
  for (double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(w[2], w[0]);
  EXPECT_GT(w[0], w[1]);
  EXPECT_EQ(cluster::nearest_cluster(d), 2u);
}

TEST(Router, GaussianWeightsZeroForAnchorlessClusters) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> w = gaussian_weights({1.0, inf, 3.0}, 1.0);
  EXPECT_EQ(w[1], 0.0);
  EXPECT_GT(w[0], w[2]);
  EXPECT_NEAR(w[0] + w[2], 1.0, 1e-12);
  EXPECT_THROW(gaussian_weights({inf, inf}, 1.0), Error);
}

TEST(Router, LargerSigmaFlattensTheMix) {
  const std::vector<double> d = {1.0, 4.0};
  const std::vector<double> sharp = gaussian_weights(d, 0.5);
  const std::vector<double> flat = gaussian_weights(d, 10.0);
  EXPECT_GT(sharp[0], flat[0]);
  EXPECT_LT(std::abs(flat[0] - flat[1]), std::abs(sharp[0] - sharp[1]));
}

TEST(Router, SoftModeWeightsFollowDistances) {
  const ServingSetup& s = setup();
  const Router router(std::make_shared<const ModelSnapshot>(s.snap),
                      RouterConfig{.mode = RouteMode::kSoft});
  const RouteDecision d = router.route(s.features[0]);
  ASSERT_EQ(d.weights.size(), s.snap.num_clusters());
  double sum = 0.0;
  for (double x : d.weights) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // The hard winner carries the largest soft weight.
  for (double x : d.weights) EXPECT_LE(x, d.weights[d.cluster]);
}

TEST(Router, EnsembleModeIgnoresFeatures) {
  const ServingSetup& s = setup();
  const Router router(std::make_shared<const ModelSnapshot>(s.snap),
                      RouterConfig{.mode = RouteMode::kEnsemble});
  const RouteDecision d = router.route({});  // empty features are fine
  EXPECT_TRUE(d.distances.empty());
  EXPECT_TRUE(d.weights.empty());
}

TEST(Router, ParsesModeNames) {
  EXPECT_EQ(parse_route_mode("hard"), RouteMode::kHard);
  EXPECT_EQ(parse_route_mode("soft"), RouteMode::kSoft);
  EXPECT_EQ(parse_route_mode("ensemble"), RouteMode::kEnsemble);
  EXPECT_THROW(parse_route_mode("fuzzy"), Error);
  EXPECT_STREQ(route_mode_name(RouteMode::kSoft), "soft");
}

// -- batching engine -----------------------------------------------------------

TEST(Engine, BatchedMatchesUnbatchedBitwise) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  for (const RouteMode mode :
       {RouteMode::kHard, RouteMode::kSoft, RouteMode::kEnsemble}) {
    // The unbatched reference, computed once per mode.
    EngineConfig ref_cfg;
    ref_cfg.router.mode = mode;
    BatchingEngine reference(registry, ref_cfg);
    std::vector<InferenceResult> expected;
    for (std::size_t i = 0; i < s.inputs.size(); ++i) {
      expected.push_back(reference.infer(i, s.inputs[i], s.features[i]));
    }

    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      for (const std::size_t max_batch :
           {std::size_t{1}, std::size_t{4}, std::size_t{32}}) {
        EngineConfig cfg;
        cfg.router.mode = mode;
        cfg.max_batch = max_batch;
        cfg.max_delay_ms = 2.0;  // encourage real multi-row batches
        cfg.workers = workers;
        BatchingEngine engine(registry, cfg);

        std::vector<std::future<InferenceResult>> futures;
        for (std::size_t i = 0; i < s.inputs.size(); ++i) {
          futures.push_back(
              engine.submit(i, s.inputs[i], s.features[i]));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const InferenceResult got = futures[i].get();
          const InferenceResult& want = expected[i];
          SCOPED_TRACE(::testing::Message()
                       << route_mode_name(mode) << " workers=" << workers
                       << " max_batch=" << max_batch << " request " << i);
          EXPECT_EQ(got.id, want.id);
          EXPECT_EQ(got.cluster, want.cluster);
          EXPECT_EQ(got.weights, want.weights);  // exact doubles
          EXPECT_EQ(got.probs, want.probs);      // exact floats
          EXPECT_EQ(got.snapshot_version, want.snapshot_version);
          EXPECT_GE(got.batch_rows, 1u);
        }
      }
    }
  }
}

TEST(Engine, ManyProducersEachRequestAnsweredExactlyOnce) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 0.5;
  cfg.workers = 4;
  BatchingEngine engine(registry, cfg);

  constexpr std::size_t kProducers = 6;
  constexpr std::size_t kPerProducer = 40;
  std::vector<std::vector<std::future<InferenceResult>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t r = 0; r < kPerProducer; ++r) {
        const std::uint64_t id = p * kPerProducer + r;
        const std::size_t i = id % s.inputs.size();
        futures[p].push_back(engine.submit(id, s.inputs[i], s.features[i]));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  std::vector<bool> answered(kProducers * kPerProducer, false);
  for (std::size_t p = 0; p < kProducers; ++p) {
    for (auto& f : futures[p]) {
      const InferenceResult res = f.get();  // throws if unanswered/failed
      ASSERT_LT(res.id, answered.size());
      EXPECT_FALSE(answered[res.id]) << "request answered twice";
      answered[res.id] = true;
      EXPECT_EQ(res.probs.size(), 4u);
    }
  }
  EXPECT_TRUE(std::all_of(answered.begin(), answered.end(),
                          [](bool b) { return b; }));

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.requests, kProducers * kPerProducer);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_EQ(stats.latency_ms.count(), kProducers * kPerProducer);
}

TEST(Engine, HotReloadServesNewVersionWithoutRestart) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.workers = 2;
  BatchingEngine engine(registry, cfg);

  const InferenceResult before =
      engine.submit(0, s.inputs[0], s.features[0]).get();
  EXPECT_EQ(before.snapshot_version, 1u);

  // Publish a perturbed generation; the running engine must pick it up.
  ModelSnapshot next = s.snap;
  for (auto& w : next.cluster_weights) {
    for (float& x : w) x *= 0.5f;
  }
  registry.publish(std::move(next));

  const InferenceResult after =
      engine.submit(1, s.inputs[0], s.features[0]).get();
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_NE(after.probs, before.probs);  // different weights, same input
  // The reference path reloads too.
  EXPECT_EQ(engine.infer(2, s.inputs[0], s.features[0]).snapshot_version, 2u);
}

TEST(Engine, StopAnswersEverythingThenRejectsSubmits) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_batch = 16;
  cfg.max_delay_ms = 50.0;  // workers would happily wait; stop must not
  BatchingEngine engine(registry, cfg);

  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    futures.push_back(engine.submit(i, s.inputs[i], s.features[i]));
  }
  engine.stop();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_THROW(engine.submit(99, s.inputs[0], s.features[0]), Error);
}

TEST(Engine, BadRequestFailsItsFutureNotTheWorker) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_delay_ms = 0.0;  // keep the bad request in its own batch
  BatchingEngine engine(registry, cfg);

  std::future<InferenceResult> bad =
      engine.submit(0, s.inputs[0], {1.0f, 2.0f});  // wrong feature length
  EXPECT_THROW(bad.get(), Error);
  // The worker survived and serves the next request normally.
  const InferenceResult ok =
      engine.submit(1, s.inputs[0], s.features[0]).get();
  EXPECT_EQ(ok.probs.size(), 4u);

  // Single-sample contract is enforced at submit time.
  EXPECT_THROW(engine.submit(2, Tensor({2, 1, 8, 8}), s.features[0]), Error);
}

// -- overload control ----------------------------------------------------------

TEST(Engine, BoundedQueueRejectsWhenSaturated) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_batch = 1;  // each admitted request costs one full worker cycle
  cfg.max_delay_ms = 0.0;
  cfg.workers = 1;
  cfg.max_queue = 2;
  BatchingEngine engine(registry, cfg);

  // A tight submit loop pushes orders of magnitude faster than one worker
  // can forward, so the 2-deep queue must fill within a few iterations.
  std::vector<std::future<InferenceResult>> accepted;
  bool saturated = false;
  for (std::size_t i = 0; i < 2000 && !saturated; ++i) {
    try {
      accepted.push_back(engine.submit(i, s.inputs[i % s.inputs.size()],
                                       s.features[i % s.features.size()]));
    } catch (const QueueFullError&) {
      saturated = true;
    }
  }
  EXPECT_TRUE(saturated);
  EXPECT_GE(engine.stats().rejected, 1u);

  // Admission is all-or-nothing: every admitted request is answered.
  engine.stop();
  for (auto& f : accepted) EXPECT_NO_THROW(f.get());
}

TEST(Engine, DeadlinedRequestsTimeOutInsteadOfDangling) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_batch = 1;
  cfg.max_delay_ms = 0.0;
  cfg.workers = 1;
  BatchingEngine engine(registry, cfg);

  // The undeadlined head request occupies the worker; the burst behind it
  // carries a deadline that has effectively already passed (1 ns), so
  // every one of them must be expired by the time it is dequeued —
  // dequeue happens microseconds after submit at the very fastest.
  std::future<InferenceResult> head =
      engine.submit(0, s.inputs[0], s.features[0]);
  std::vector<std::future<InferenceResult>> doomed;
  for (std::size_t i = 1; i <= 10; ++i) {
    doomed.push_back(engine.submit(i, s.inputs[i % s.inputs.size()],
                                   s.features[i % s.features.size()],
                                   /*timeout_ms=*/1e-6));
  }
  EXPECT_NO_THROW(head.get());
  for (auto& f : doomed) EXPECT_THROW(f.get(), RequestTimeoutError);
  EXPECT_EQ(engine.stats().timeouts, 10u);

  // The worker survived the expiry storm and still serves live traffic.
  EXPECT_EQ(engine.submit(99, s.inputs[0], s.features[0]).get().probs.size(),
            4u);
}

TEST(Engine, ConfigDefaultTimeoutAppliesWithoutPerCallOverride) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_batch = 1;
  cfg.max_delay_ms = 0.0;
  cfg.workers = 1;
  cfg.default_timeout_ms = 1e-6;  // every request expires before dequeue
  BatchingEngine engine(registry, cfg);

  std::future<InferenceResult> f = engine.submit(0, s.inputs[0], s.features[0]);
  EXPECT_THROW(f.get(), RequestTimeoutError);
  EXPECT_EQ(engine.stats().timeouts, 1u);
}

TEST(Engine, StopDrainsDeadlinedRequestsWithoutDanglingPromises) {
  const ServingSetup& s = setup();
  ModelRegistry registry;
  publish_master(registry);

  EngineConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_ms = 50.0;
  cfg.workers = 1;
  BatchingEngine engine(registry, cfg);

  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    futures.push_back(engine.submit(i, s.inputs[i % s.inputs.size()],
                                    s.features[i % s.features.size()],
                                    /*timeout_ms=*/1e-6));
  }
  engine.stop();
  // Every future resolves — with a timeout here, never a broken promise.
  std::size_t timed_out = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const RequestTimeoutError&) {
      ++timed_out;
    }
  }
  EXPECT_EQ(timed_out, futures.size());
  EXPECT_EQ(engine.stats().timeouts, futures.size());
}

}  // namespace
}  // namespace fedclust::serve
