// Tests for ARI, NMI, purity, silhouette and block contrast.
#include "cluster/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/distance.hpp"
#include "utils/rng.hpp"

namespace fedclust::cluster {
namespace {

TEST(Ari, PerfectAgreementIsOne) {
  const std::vector<std::size_t> a{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(Ari, LabelPermutationInvariant) {
  const std::vector<std::size_t> a{0, 0, 1, 1, 2, 2};
  const std::vector<std::size_t> b{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, RandomAssignmentNearZero) {
  Rng rng(1);
  std::vector<std::size_t> truth(200), pred(200);
  for (std::size_t i = 0; i < 200; ++i) {
    truth[i] = rng.uniform_int(4);
    pred[i] = rng.uniform_int(4);
  }
  EXPECT_NEAR(adjusted_rand_index(truth, pred), 0.0, 0.1);
}

TEST(Ari, PartialAgreementBetweenZeroAndOne) {
  const std::vector<std::size_t> a{0, 0, 0, 1, 1, 1};
  const std::vector<std::size_t> b{0, 0, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(a, b);
  EXPECT_GT(ari, 0.0);
  EXPECT_LT(ari, 1.0);
}

TEST(Ari, RejectsMismatchedSizes) {
  EXPECT_THROW(adjusted_rand_index({0, 1}, {0}), Error);
}

TEST(Nmi, PerfectAgreementIsOne) {
  const std::vector<std::size_t> a{0, 1, 0, 1, 2};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  // Truth splits by half, prediction alternates: MI = 0 exactly.
  const std::vector<std::size_t> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<std::size_t> pred{0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(normalized_mutual_information(truth, pred), 0.0, 1e-9);
}

TEST(Nmi, BothTrivialPartitionsAreOne) {
  const std::vector<std::size_t> a{0, 0, 0};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(a, a), 1.0);
}

TEST(Purity, MajorityLabelFraction) {
  const std::vector<std::size_t> pred{0, 0, 0, 1, 1, 1};
  const std::vector<std::size_t> truth{0, 0, 1, 1, 1, 1};
  // Cluster 0 majority=class0 (2/3), cluster 1 majority=class1 (3/3).
  EXPECT_NEAR(purity(pred, truth), 5.0 / 6.0, 1e-12);
}

TEST(Purity, OneClusterEqualsLargestClassShare) {
  const std::vector<std::size_t> pred{0, 0, 0, 0};
  const std::vector<std::size_t> truth{0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 0.75);
}

TEST(Silhouette, WellSeparatedBlobsNearOne) {
  std::vector<std::vector<float>> pts;
  Rng rng(2);
  std::vector<std::size_t> labels;
  for (std::size_t b = 0; b < 2; ++b) {
    for (int i = 0; i < 5; ++i) {
      pts.push_back({static_cast<float>(b) * 50.0f +
                     static_cast<float>(rng.normal(0.0, 0.1))});
      labels.push_back(b);
    }
  }
  const Matrix d = pairwise_euclidean(pts);
  EXPECT_GT(silhouette(d, labels), 0.9);
}

TEST(Silhouette, WrongLabelsScoreLow) {
  std::vector<std::vector<float>> pts;
  Rng rng(3);
  std::vector<std::size_t> good, bad;
  for (std::size_t b = 0; b < 2; ++b) {
    for (int i = 0; i < 6; ++i) {
      pts.push_back({static_cast<float>(b) * 50.0f +
                     static_cast<float>(rng.normal(0.0, 0.1))});
      good.push_back(b);
      bad.push_back(static_cast<std::size_t>(i % 2));  // ignores geometry
    }
  }
  const Matrix d = pairwise_euclidean(pts);
  EXPECT_GT(silhouette(d, good), silhouette(d, bad) + 0.5);
}

TEST(Silhouette, TrivialPartitionsScoreZero) {
  std::vector<std::vector<float>> pts{{0}, {1}, {2}};
  const Matrix d = pairwise_euclidean(pts);
  EXPECT_DOUBLE_EQ(silhouette(d, {0, 0, 0}), 0.0);      // one cluster
  EXPECT_DOUBLE_EQ(silhouette(d, {0, 1, 2}), 0.0);      // all singletons
}

TEST(BlockContrast, SharpBlocksScoreHigh) {
  // Within distance ~0, between ~10.
  Matrix d(4, 4);
  const std::vector<std::size_t> groups{0, 0, 1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      d(i, j) = groups[i] == groups[j] ? 1.0 : 10.0;
    }
  }
  EXPECT_NEAR(block_contrast(d, groups), 10.0, 1e-12);
}

TEST(BlockContrast, NoStructureNearOne) {
  Matrix d(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) d(i, j) = 5.0;
    }
  }
  EXPECT_NEAR(block_contrast(d, {0, 0, 1, 1}), 1.0, 1e-12);
}

TEST(BlockContrast, InfiniteWhenWithinIsZero) {
  Matrix d(4, 4);
  const std::vector<std::size_t> groups{0, 0, 1, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (groups[i] != groups[j]) d(i, j) = 3.0;
    }
  }
  EXPECT_TRUE(std::isinf(block_contrast(d, groups)));
}

TEST(BlockContrast, RequiresBothPairKinds) {
  Matrix d(2, 2);
  EXPECT_THROW(block_contrast(d, {0, 0}), Error);  // no between pairs
  EXPECT_THROW(block_contrast(d, {0, 1}), Error);  // no within pairs
}

}  // namespace
}  // namespace fedclust::cluster
