// Tests for the FL engine: comm meter, local trainer, federation
// determinism, weighted averaging, and evaluation plumbing.
#include "fl/federation.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fl/metrics.hpp"
#include "fl/trace.hpp"
#include "nn/layers.hpp"
#include "test_helpers.hpp"

namespace fedclust::fl {
namespace {

using testing::make_dirichlet_federation;
using testing::make_grouped_federation;
using testing::tiny_pool;

// -- CommMeter ----------------------------------------------------------------

TEST(CommMeter, AccumulatesPerRoundAndTotals) {
  CommMeter m;
  m.begin_round(0);
  m.download(100);
  m.upload(40);
  m.begin_round(1);
  m.download(10);
  EXPECT_EQ(m.total_download(), 110u);
  EXPECT_EQ(m.total_upload(), 40u);
  EXPECT_EQ(m.total(), 150u);
  EXPECT_EQ(m.round_download()[0], 100u);
  EXPECT_EQ(m.round_download()[1], 10u);
  EXPECT_EQ(m.round_upload()[1], 0u);
}

TEST(CommMeter, EnforcesRoundOrdering) {
  CommMeter m;
  EXPECT_THROW(m.download(1), Error);
  m.begin_round(0);
  EXPECT_THROW(m.begin_round(2), Error);
  m.reset();
  EXPECT_EQ(m.total(), 0u);
  m.begin_round(0);  // ordering restarts after reset
}

TEST(CommMeter, FloatBytes) {
  EXPECT_EQ(CommMeter::float_bytes(10), 40u);
  EXPECT_EQ(CommMeter::float_bytes(0), 0u);
}

TEST(CommMeter, AttributesBytesPerClient) {
  CommMeter m;
  m.begin_round(0);
  m.download(100, 2);
  m.upload(40, 2);
  m.download(10, 0);
  EXPECT_EQ(m.round_count(), 1u);
  m.begin_round(1);
  m.upload(5, 2);
  EXPECT_EQ(m.round_count(), 2u);

  EXPECT_EQ(m.client_download(2), 100u);
  EXPECT_EQ(m.client_upload(2), 45u);
  EXPECT_EQ(m.client_download(0), 10u);
  EXPECT_EQ(m.client_upload(0), 0u);
  EXPECT_EQ(m.client_download(7), 0u);  // never attributed
  EXPECT_EQ(m.per_client_download().size(), 3u);
  // Attributed traffic feeds the same totals as the bare overloads.
  EXPECT_EQ(m.total_download(), 110u);
  EXPECT_EQ(m.total_upload(), 45u);

  m.reset();
  EXPECT_EQ(m.round_count(), 0u);
  EXPECT_EQ(m.client_download(2), 0u);
  EXPECT_TRUE(m.per_client_download().empty());
}

// -- local trainer ------------------------------------------------------------

TEST(TrainLocal, ReducesLoss) {
  const data::Dataset pool = tiny_pool(200, 1);
  nn::Model model = nn::mlp({1, 8, 8, 4}, 16);
  Rng init(2);
  model.init_params(init);

  const EvalResult before = evaluate(model, pool);
  LocalTrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 20;
  cfg.sgd.lr = 0.05;
  train_local(model, pool, cfg, Rng(3));
  const EvalResult after = evaluate(model, pool);
  EXPECT_LT(after.loss, before.loss * 0.8);
  EXPECT_GT(after.accuracy, before.accuracy);
}

TEST(TrainLocal, DeterministicGivenRng) {
  const data::Dataset pool = tiny_pool(100, 4);
  LocalTrainConfig cfg;
  cfg.epochs = 2;
  cfg.sgd.lr = 0.05;

  nn::Model a = nn::mlp({1, 8, 8, 4}, 16);
  Rng init(5);
  a.init_params(init);
  nn::Model b = a.clone();

  train_local(a, pool, cfg, Rng(6));
  train_local(b, pool, cfg, Rng(6));
  EXPECT_EQ(a.flat_weights(), b.flat_weights());
}

nn::Model dropout_mlp() {
  nn::Model m;
  m.emplace<nn::Flatten>();
  m.emplace<nn::Linear>(64, 16);
  m.emplace<nn::ReLU>();
  m.emplace<nn::Dropout>(0.5);
  m.emplace<nn::Linear>(16, 4);
  return m;
}

TEST(TrainLocalDropout, MasksAreDecorrelatedAcrossClients) {
  // Regression: train_local must reseed each clone's Dropout layers from
  // the client's RNG stream. Before the fix every clone kept the layer's
  // constructor seed, so all clients drew bit-identical mask sequences.
  // With a single-sample dataset the batch shuffle is a no-op and the
  // dropout mask is the ONLY stochastic input — identical final weights
  // would prove the masks were shared.
  const data::Dataset one = tiny_pool(1, 11);
  LocalTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 1;
  cfg.sgd.lr = 0.1;

  nn::Model tmpl = dropout_mlp();
  Rng init(12);
  tmpl.init_params(init);

  // Per-(client, round) streams exactly as Federation derives them.
  nn::Model a = tmpl.clone();
  nn::Model b = tmpl.clone();
  train_local(a, one, cfg, Rng(13).split(0x10000).split(0));
  train_local(b, one, cfg, Rng(13).split(0x10001).split(0));
  EXPECT_NE(a.flat_weights(), b.flat_weights());

  // Same (client, round) stream must still replay bit-identically.
  nn::Model c = tmpl.clone();
  train_local(c, one, cfg, Rng(13).split(0x10000).split(0));
  EXPECT_EQ(a.flat_weights(), c.flat_weights());
}

TEST(TrainLocal, ProxKeepsWeightsCloserToStart) {
  const data::Dataset pool = tiny_pool(150, 7);
  nn::Model base = nn::mlp({1, 8, 8, 4}, 16);
  Rng init(8);
  base.init_params(init);
  const std::vector<float> w0 = base.flat_weights();

  auto drift = [&](double mu) {
    nn::Model m = base.clone();
    LocalTrainConfig cfg;
    cfg.epochs = 4;
    cfg.sgd.lr = 0.05;
    cfg.sgd.prox_mu = mu;
    train_local(m, pool, cfg, Rng(9));
    const std::vector<float> w = m.flat_weights();
    double d = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      d += (w[i] - w0[i]) * (w[i] - w0[i]);
    }
    return d;
  };
  EXPECT_LT(drift(1.0), drift(0.0));
}

TEST(TrainLocal, RejectsEmptyDatasetAndZeroEpochs) {
  data::Dataset empty({1, 8, 8, 4});
  nn::Model m = nn::mlp({1, 8, 8, 4}, 8);
  LocalTrainConfig cfg;
  EXPECT_THROW(train_local(m, empty, cfg, Rng(1)), Error);
  const data::Dataset pool = tiny_pool(20, 1);
  cfg.epochs = 0;
  EXPECT_THROW(train_local(m, pool, cfg, Rng(1)), Error);
}

// -- weighted average -----------------------------------------------------------

TEST(WeightedAverage, WeightsBySampleCount) {
  ClientUpdate a{0, {1.0f, 2.0f}, 1, 0.0f};
  ClientUpdate b{1, {4.0f, 8.0f}, 3, 0.0f};
  const auto avg = weighted_average({a, b});
  EXPECT_NEAR(avg[0], (1.0 * 1 + 4.0 * 3) / 4.0, 1e-6);
  EXPECT_NEAR(avg[1], (2.0 * 1 + 8.0 * 3) / 4.0, 1e-6);
}

TEST(WeightedAverage, SingleUpdateIdentity) {
  ClientUpdate a{0, {3.0f, -1.0f}, 5, 0.0f};
  EXPECT_EQ(weighted_average({a}), a.weights);
}

TEST(WeightedAverage, ValidatesInput) {
  EXPECT_THROW(weighted_average({}), Error);
  ClientUpdate a{0, {1.0f}, 1, 0.0f};
  ClientUpdate b{1, {1.0f, 2.0f}, 1, 0.0f};
  EXPECT_THROW(weighted_average({a, b}), Error);
  ClientUpdate c{2, {1.0f}, 0, 0.0f};
  EXPECT_THROW(weighted_average({a, c}), Error);
}

// -- federation ----------------------------------------------------------------

TEST(Federation, ValidatesConstruction) {
  nn::Model model = nn::mlp({1, 8, 8, 4}, 8);
  Rng init(1);
  model.init_params(init);
  EXPECT_THROW(fl::Federation(model.clone(), std::vector<ClientData>{}, {}),
               Error);

  FederationConfig bad;
  bad.participation = 0.0;
  const data::Dataset pool = tiny_pool(40, 2);
  std::vector<ClientData> clients{{pool, pool}};
  EXPECT_THROW(fl::Federation(model.clone(), clients, bad), Error);
}

TEST(Federation, SampleClientsFullParticipation) {
  auto [fed, groups] = make_grouped_federation(6);
  const auto ids = fed.sample_clients(0);
  EXPECT_EQ(ids.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(ids[i], i);
}

TEST(Federation, SampleClientsPartialParticipation) {
  FederationConfig cfg;
  cfg.participation = 0.5;
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  const auto r0 = fed.sample_clients(0);
  EXPECT_EQ(r0.size(), 3u);
  // Different rounds sample different subsets (with overwhelming
  // probability for this seed).
  const auto r1 = fed.sample_clients(1);
  EXPECT_EQ(fed.sample_clients(0), r0);  // same round -> same subset
  EXPECT_TRUE(r0 != r1 || fed.sample_clients(2) != r0);
}

TEST(Federation, ClientRngIndependentOfOrder) {
  auto [fed, groups] = make_grouped_federation(4);
  Rng a = fed.client_rng(2, 5);
  Rng b = fed.client_rng(2, 5);
  EXPECT_EQ(a(), b());
  Rng c = fed.client_rng(3, 5);
  Rng d = fed.client_rng(2, 6);
  EXPECT_NE(a(), c());
  EXPECT_NE(b(), d());
}

TEST(Federation, TrainClientsIsDeterministicAcrossThreadCounts) {
  FederationConfig one;
  one.threads = 1;
  one.local.epochs = 1;
  one.local.sgd.lr = 0.05;
  FederationConfig four = one;
  four.threads = 4;

  auto [fed1, g1] = make_grouped_federation(4, 320, 11, one);
  auto [fed4, g4] = make_grouped_federation(4, 320, 11, four);

  const std::vector<float> w0 = fed1.template_model().flat_weights();
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  auto start = [&](std::size_t) { return std::span<const float>(w0); };
  const auto u1 = fed1.train_clients(everyone, 0, start);
  const auto u4 = fed4.train_clients(everyone, 0, start);
  ASSERT_EQ(u1.size(), u4.size());
  for (std::size_t i = 0; i < u1.size(); ++i) {
    EXPECT_EQ(u1[i].client_id, u4[i].client_id);
    EXPECT_EQ(u1[i].weights, u4[i].weights) << "client " << i;
  }
}

TEST(Federation, TrainClientsImprovesLocalFit) {
  FederationConfig cfg;
  cfg.local.epochs = 3;
  cfg.local.sgd.lr = 0.05;
  auto [fed, groups] = make_grouped_federation(4, 320, 12, cfg);
  const std::vector<float> w0 = fed.template_model().flat_weights();
  const auto updates = fed.train_clients(
      {0}, 0, [&](std::size_t) { return std::span<const float>(w0); });
  ASSERT_EQ(updates.size(), 1u);
  // Client 0's trained weights beat the initial weights on its own data.
  const double before = fed.client_train_loss(0, w0);
  const double after = fed.client_train_loss(0, updates[0].weights);
  EXPECT_LT(after, before);
}

TEST(Federation, EvaluatePersonalizedAveragesClients) {
  auto [fed, groups] = make_grouped_federation(4);
  const std::vector<float> w = fed.template_model().flat_weights();
  const AccuracySummary acc =
      fed.evaluate_personalized([&](std::size_t) { return std::span<const float>(w); });
  ASSERT_EQ(acc.per_client.size(), 4u);
  double mean = 0.0;
  for (double a : acc.per_client) mean += a / 4.0;
  EXPECT_NEAR(acc.mean, mean, 1e-12);
  EXPECT_GE(acc.std, 0.0);
}

// -- failure injection ---------------------------------------------------------

TEST(Dropout, ZeroMeansNoFailures) {
  auto [fed, groups] = make_grouped_federation(4);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 5; ++r) {
      EXPECT_FALSE(fed.client_fails(c, r));
    }
  }
}

TEST(Dropout, FailureRateMatchesProbability) {
  FederationConfig cfg;
  cfg.dropout = 0.3;
  auto [fed, groups] = make_grouped_federation(4, 320, 70, cfg);
  std::size_t failures = 0;
  constexpr std::size_t kTrials = 2000;
  for (std::size_t r = 0; r < kTrials / 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      if (fed.client_fails(c, r)) ++failures;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / kTrials, 0.3, 0.05);
  // Deterministic: the same (client, round) always gives the same answer.
  EXPECT_EQ(fed.client_fails(2, 7), fed.client_fails(2, 7));
}

TEST(Dropout, FailedClientsProduceNoUpdates) {
  FederationConfig cfg;
  cfg.dropout = 1.0;
  cfg.local.epochs = 1;
  cfg.local.sgd.lr = 0.05;
  auto [fed, groups] = make_grouped_federation(4, 320, 71, cfg);
  const std::vector<float> w0 = fed.template_model().flat_weights();
  const std::vector<std::size_t> everyone{0, 1, 2, 3};
  const auto updates = fed.train_clients(
      everyone, 0, [&](std::size_t) { return std::span<const float>(w0); });
  EXPECT_TRUE(updates.empty());

  // allow_failures=false overrides the injection (formation round).
  const auto forced = fed.train_clients(
      everyone, 0, [&](std::size_t) { return std::span<const float>(w0); },
      nullptr, /*allow_failures=*/false);
  EXPECT_EQ(forced.size(), 4u);
}

TEST(Dropout, FedAvgSurvivesTotalDropoutRound) {
  FederationConfig cfg;
  cfg.dropout = 1.0;
  cfg.local.epochs = 1;
  cfg.local.sgd.lr = 0.05;
  auto [fed, groups] = make_grouped_federation(4, 320, 72, cfg);
  // With everyone failing every round the global model must simply stay
  // at the initialization — no crash, no NaN.
  std::vector<std::vector<float>> weights{
      fed.template_model().flat_weights()};
  const std::vector<float> before = weights[0];
  fed.comm().begin_round(0);
  const auto updates = fed.train_clients(
      {0, 1, 2, 3}, 0,
      [&](std::size_t) { return std::span<const float>(weights[0]); });
  EXPECT_TRUE(updates.empty());
  EXPECT_EQ(weights[0], before);
}

// -- metrics -------------------------------------------------------------------

TEST(RunResult, RoundsToAccuracy) {
  RunResult r;
  r.rounds.push_back({0, 0.3, 0.0, 1.0, 100, 200, 1});
  r.rounds.push_back({1, 0.6, 0.0, 0.5, 300, 500, 1});
  std::size_t round = 0;
  std::uint64_t bytes = 0;
  EXPECT_TRUE(r.rounds_to_accuracy(0.5, round, bytes));
  EXPECT_EQ(round, 1u);
  EXPECT_EQ(bytes, 800u);
  EXPECT_FALSE(r.rounds_to_accuracy(0.9, round, bytes));
  EXPECT_EQ(r.final_round().round, 1u);
}

TEST(RunResult, FinalRoundOnEmptyThrows) {
  RunResult r;
  EXPECT_THROW(r.final_round(), Error);
}

// -- trace writers ---------------------------------------------------------

RunResult sample_run() {
  RunResult r;
  r.algorithm = "Demo";
  r.rounds.push_back({0, 0.25, 0.1, 2.0, 100, 200, 3});
  r.rounds.push_back({1, 0.5, 0.05, 1.0, 300, 600, 3});
  r.cluster_labels = {0, 1, 0};
  r.final_accuracy.mean = 0.5;
  r.final_accuracy.per_client = {0.4, 0.5, 0.6};
  return r;
}

TEST(Trace, RoundsCsvHasHeaderAndRows) {
  const std::string csv = rounds_to_csv(sample_run());
  EXPECT_NE(csv.find("algorithm,round,acc_mean"), std::string::npos);
  EXPECT_NE(csv.find("Demo,0,0.25,0.1,2,100,200,3"), std::string::npos);
  EXPECT_NE(csv.find("Demo,1,0.5,0.05,1,300,600,3"), std::string::npos);
}

TEST(Trace, MultiRunCsvSharesOneHeader) {
  const std::string csv = rounds_to_csv(std::vector<RunResult>{
      sample_run(), sample_run()});
  std::size_t headers = 0;
  std::size_t pos = 0;
  while ((pos = csv.find("algorithm,round", pos)) != std::string::npos) {
    ++headers;
    ++pos;
  }
  EXPECT_EQ(headers, 1u);
}

TEST(Trace, ClientsCsvOneRowPerClient) {
  const std::string csv = clients_to_csv(sample_run());
  EXPECT_NE(csv.find("Demo,0,0,0.4"), std::string::npos);
  EXPECT_NE(csv.find("Demo,1,1,0.5"), std::string::npos);
  EXPECT_NE(csv.find("Demo,2,0,0.6"), std::string::npos);
}

TEST(Trace, ClientsCsvValidatesConsistency) {
  RunResult r = sample_run();
  r.cluster_labels.pop_back();
  EXPECT_THROW(clients_to_csv(r), Error);
}

TEST(Trace, WriteTextFileRoundTrip) {
  const std::string path = "/tmp/fedclust_trace_test.csv";
  write_text_file(path, "hello\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello");
  std::filesystem::remove(path);
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.csv", "y"), Error);
}

}  // namespace
}  // namespace fedclust::fl
