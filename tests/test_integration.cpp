// Cross-module integration tests: every algorithm end-to-end on the same
// federation, plus system-level invariants (determinism, comm-cost
// ordering, clustered-methods-beat-global under group structure).
#include <gtest/gtest.h>

#include "algorithms/cfl.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/fedper.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/local_only.hpp"
#include "algorithms/pacfl.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "core/fedclust.hpp"
#include "test_helpers.hpp"

namespace fedclust {
namespace {

using testing::make_grouped_federation;

fl::FederationConfig fast_config() {
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  cfg.threads = 2;
  return cfg;
}

std::vector<std::unique_ptr<fl::Algorithm>> all_algorithms() {
  std::vector<std::unique_ptr<fl::Algorithm>> algos;
  algos.push_back(std::make_unique<algorithms::FedAvg>());
  algos.push_back(std::make_unique<algorithms::FedProx>(0.1));
  algos.push_back(std::make_unique<algorithms::Cfl>(algorithms::CflConfig{
      .eps1 = 1e9, .eps2 = 0.0, .warmup_rounds = 1}));
  algos.push_back(std::make_unique<algorithms::Ifca>(
      algorithms::IfcaConfig{.num_clusters = 2}));
  algos.push_back(std::make_unique<algorithms::Pacfl>(algorithms::PacflConfig{
      .subspace_rank = 2, .samples_per_class_cap = 16}));
  algos.push_back(
      std::make_unique<core::FedClust>(core::FedClustConfig{.warmup_epochs = 2}));
  algos.push_back(std::make_unique<algorithms::FedAvgM>(0.9));
  algos.push_back(std::make_unique<algorithms::FedPer>());
  algos.push_back(std::make_unique<algorithms::LocalOnly>());
  return algos;
}

class AlgorithmSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AlgorithmSweep, RunsEndToEndWithSaneOutputs) {
  const std::size_t idx = GetParam();
  auto algos = all_algorithms();
  auto [fed, groups] = make_grouped_federation(6, 480, 60, fast_config());
  fl::Algorithm& algo = *algos[idx];

  const std::size_t rounds = 4;
  const fl::RunResult r = algo.run(fed, rounds);

  EXPECT_FALSE(r.algorithm.empty());
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_EQ(r.cluster_labels.size(), 6u);
  EXPECT_EQ(r.final_accuracy.per_client.size(), 6u);
  EXPECT_GE(r.final_accuracy.mean, 0.0);
  EXPECT_LE(r.final_accuracy.mean, 1.0);
  // Rounds are recorded in order with monotone cumulative traffic.
  for (std::size_t i = 1; i < r.rounds.size(); ++i) {
    EXPECT_GT(r.rounds[i].round, r.rounds[i - 1].round);
    EXPECT_GE(r.rounds[i].cum_upload, r.rounds[i - 1].cum_upload);
    EXPECT_GE(r.rounds[i].cum_download, r.rounds[i - 1].cum_download);
  }
  // Evaluated final round is the last round.
  EXPECT_EQ(r.final_round().round, rounds - 1);
  // The model actually learned something.
  EXPECT_GT(r.final_accuracy.mean, 0.3);
}

std::string algorithm_param_name(
    const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* const names[] = {"FedAvg",   "FedProx", "CFL",
                                      "IFCA",     "PACFL",   "FedClust",
                                      "FedAvgM",  "FedPer",  "LocalOnly"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmSweep,
                         ::testing::Range<std::size_t>(0, 9),
                         algorithm_param_name);

TEST(Integration, ClusteredMethodsBeatGlobalUnderGroupStructure) {
  auto cfg = fast_config();
  double fedavg_acc = 0.0;
  double fedclust_acc = 0.0;
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 61, cfg);
    fedavg_acc = algorithms::FedAvg().run(fed, 5).final_accuracy.mean;
  }
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 61, cfg);
    fedclust_acc = core::FedClust({.warmup_epochs = 2})
                       .run(fed, 5)
                       .final_accuracy.mean;
  }
  EXPECT_GT(fedclust_acc, fedavg_acc);
}

TEST(Integration, FedClustClusteringAgreesWithIfcaAndPacfl) {
  auto cfg = fast_config();
  std::vector<std::size_t> labels_fc, labels_ifca, labels_pacfl;
  std::vector<std::size_t> groups_ref;
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 62, cfg);
    groups_ref = groups;
    labels_fc = core::FedClust({.warmup_epochs = 2}).run(fed, 3).cluster_labels;
  }
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 62, cfg);
    // IFCA's identity estimation is sensitive to the initial model
    // perturbation; 0.1 breaks symmetry reliably at this scale.
    labels_ifca = algorithms::Ifca({.num_clusters = 2,
                                    .init_perturbation = 0.1})
                      .run(fed, 5)
                      .cluster_labels;
  }
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 62, cfg);
    labels_pacfl = algorithms::Pacfl({.subspace_rank = 2,
                                      .samples_per_class_cap = 16})
                       .run(fed, 3)
                       .cluster_labels;
  }
  // All three clusterings recover the same ground truth, hence agree
  // pairwise up to label permutation.
  EXPECT_GE(cluster::adjusted_rand_index(labels_fc, groups_ref), 0.9);
  EXPECT_GE(cluster::adjusted_rand_index(labels_ifca, labels_fc), 0.9);
  EXPECT_GE(cluster::adjusted_rand_index(labels_pacfl, labels_fc), 0.9);
}

TEST(Integration, FedClustClusteringRoundCheaperThanCflTotal) {
  // The headline efficiency claim: FedClust pays one partial-weight
  // upload for clustering; CFL pays full-model traffic every round while
  // clusters slowly form.
  auto cfg = fast_config();
  std::uint64_t fedclust_formation_upload = 0;
  std::uint64_t cfl_total_upload = 0;
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 63, cfg);
    core::FedClust algo({.warmup_epochs = 2});
    algo.run(fed, 4);
    fedclust_formation_upload = fed.comm().round_upload()[0];
  }
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 63, cfg);
    algorithms::Cfl algo({.eps1 = 1e9, .eps2 = 0.0, .warmup_rounds = 1});
    algo.run(fed, 4);
    cfl_total_upload = fed.comm().total_upload();
  }
  EXPECT_LT(fedclust_formation_upload * 10, cfl_total_upload);
}

TEST(Integration, WholePipelineDeterministicAcrossThreadCounts) {
  auto run_with_threads = [&](std::size_t threads) {
    fl::FederationConfig cfg = fast_config();
    cfg.threads = threads;
    auto [fed, groups] = make_grouped_federation(4, 320, 64, cfg);
    return core::FedClust({.warmup_epochs = 2}).run(fed, 3);
  };
  const fl::RunResult a = run_with_threads(1);
  const fl::RunResult b = run_with_threads(4);
  EXPECT_EQ(a.cluster_labels, b.cluster_labels);
  EXPECT_DOUBLE_EQ(a.final_accuracy.mean, b.final_accuracy.mean);
}

TEST(Integration, AlgorithmsSurviveClientChurn) {
  // 30% of sampled clients fail each round; every algorithm must still
  // complete and learn.
  fl::FederationConfig cfg = fast_config();
  cfg.dropout = 0.3;
  for (const std::size_t idx : {std::size_t{0}, std::size_t{3},
                                std::size_t{5}}) {  // FedAvg, IFCA, FedClust
    auto algos = all_algorithms();
    auto [fed, groups] = make_grouped_federation(6, 480, 80, cfg);
    const fl::RunResult r = algos[idx]->run(fed, 4);
    EXPECT_GT(r.final_accuracy.mean, 0.25) << r.algorithm;
    EXPECT_FALSE(r.rounds.empty()) << r.algorithm;
  }
}

TEST(Integration, DropoutChangesButDoesNotBreakDeterminism) {
  fl::FederationConfig cfg = fast_config();
  cfg.dropout = 0.25;
  auto run_once = [&]() {
    auto [fed, groups] = make_grouped_federation(4, 320, 81, cfg);
    return algorithms::FedAvg().run(fed, 3).final_accuracy.mean;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Integration, QuantitySkewFederationTrainsEndToEnd) {
  const data::Dataset pool = testing::tiny_pool(480, 82);
  Rng prng = Rng(82).split(3);
  const partition::Partition part =
      partition::quantity_skew_partition(pool, 6, 0.4, prng, 20);
  nn::Model model = nn::mlp({1, 8, 8, 4}, 16);
  Rng init = Rng(82).split(4);
  model.init_params(init);
  fl::FederationConfig cfg = fast_config();
  cfg.seed = 82;
  fl::Federation fed(std::move(model),
                     testing::make_clients(pool, part, 82), cfg);
  const fl::RunResult r = algorithms::FedAvg().run(fed, 4);
  // Quantity skew alone (IID labels) is easy for FedAvg.
  EXPECT_GT(r.final_accuracy.mean, 0.5);
}

TEST(Integration, FeatureSkewFederationTrainsEndToEnd) {
  const data::Dataset pool = testing::tiny_pool(480, 83);
  Rng prng = Rng(83).split(3);
  auto datasets = partition::feature_skew_split(pool, 6, 0.8, prng);
  std::vector<fl::ClientData> clients;
  Rng split_rng = Rng(83).split(5);
  for (auto& ds : datasets) {
    auto [train, test] = ds.stratified_split(0.25, split_rng);
    clients.push_back({std::move(train), std::move(test)});
  }
  nn::Model model = nn::mlp({1, 8, 8, 4}, 16);
  Rng init = Rng(83).split(4);
  model.init_params(init);
  fl::FederationConfig cfg = fast_config();
  cfg.seed = 83;
  fl::Federation fed(std::move(model), std::move(clients), cfg);
  const fl::RunResult r = algorithms::FedAvg().run(fed, 4);
  EXPECT_GT(r.final_accuracy.mean, 0.3);
  // The noisiest client should be the hardest one.
  EXPECT_LT(r.final_accuracy.per_client.back(),
            r.final_accuracy.per_client.front() + 1e-9 + 0.5);
}

TEST(Integration, KMeansOnFedClustWeightsMatchesHc) {
  // The weight vectors FedClust collects cluster the same way under
  // k-means as under the paper's hierarchical clustering when the group
  // structure is crisp.
  auto [fed, groups] = make_grouped_federation(6, 480, 84, fast_config());
  core::FedClust algo({.warmup_epochs = 3});
  const core::ClusteringOutcome out = algo.form_clusters(fed);
  Rng rng(85);
  const cluster::KMeansResult km =
      cluster::kmeans(out.partial_weights, 2, rng);
  EXPECT_GE(cluster::adjusted_rand_index(km.labels, groups), 0.9);
  EXPECT_GE(cluster::adjusted_rand_index(km.labels, out.dendrogram.cut_k(2)),
            0.9);
}

TEST(Integration, WarmStartImprovesEarlyRounds) {
  auto cfg = fast_config();
  double cold_r1 = 0.0, warm_r1 = 0.0;
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 86, cfg);
    const fl::RunResult r = core::FedClust({.warmup_epochs = 3}).run(fed, 2);
    cold_r1 = r.final_accuracy.mean;
  }
  {
    auto [fed, groups] = make_grouped_federation(6, 480, 86, cfg);
    const fl::RunResult r =
        core::FedClust({.warmup_epochs = 3, .warm_start_classifier = true})
            .run(fed, 2);
    warm_r1 = r.final_accuracy.mean;
  }
  // After a single training round the warm-started classifier should be
  // at least competitive (it usually leads).
  EXPECT_GT(warm_r1, cold_r1 - 0.05);
}

TEST(Integration, EvalEveryReducesRecordedRounds) {
  fl::FederationConfig cfg = fast_config();
  cfg.eval_every = 3;
  auto [fed, groups] = make_grouped_federation(4, 320, 65, cfg);
  const fl::RunResult r = algorithms::FedAvg().run(fed, 7);
  // Rounds 2, 5 (1-indexed multiples of 3) and the final round 6.
  ASSERT_EQ(r.rounds.size(), 3u);
  EXPECT_EQ(r.rounds[0].round, 2u);
  EXPECT_EQ(r.rounds[1].round, 5u);
  EXPECT_EQ(r.rounds[2].round, 6u);
}

}  // namespace
}  // namespace fedclust
