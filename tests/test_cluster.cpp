// Tests for distance matrices and agglomerative hierarchical clustering.
#include "cluster/hierarchical.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cluster/distance.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "utils/rng.hpp"

namespace fedclust::cluster {
namespace {

/// Two well-separated blobs of points in 2-D, `per` points each.
std::vector<std::vector<float>> two_blobs(std::size_t per, std::uint64_t seed,
                                          float gap = 10.0f) {
  Rng rng(seed);
  std::vector<std::vector<float>> pts;
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t i = 0; i < per; ++i) {
      pts.push_back({static_cast<float>(b) * gap +
                         static_cast<float>(rng.normal(0.0, 0.3)),
                     static_cast<float>(rng.normal(0.0, 0.3))});
    }
  }
  return pts;
}

// -- distance builders --------------------------------------------------------

TEST(Distance, EuclideanKnownValues) {
  const std::vector<std::vector<float>> v{{0, 0}, {3, 4}, {0, 0}};
  const Matrix d = pairwise_euclidean(v);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_NEAR(d(0, 1), 5.0, 1e-6);
  EXPECT_NEAR(d(1, 0), 5.0, 1e-6);
  EXPECT_NEAR(d(0, 2), 0.0, 1e-12);
}

TEST(Distance, CosineSimilarityKnownValues) {
  const std::vector<std::vector<float>> v{{1, 0}, {0, 1}, {-1, 0}, {2, 0}};
  const Matrix s = pairwise_cosine_similarity(v);
  EXPECT_NEAR(s(0, 1), 0.0, 1e-6);
  EXPECT_NEAR(s(0, 2), -1.0, 1e-6);
  EXPECT_NEAR(s(0, 3), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(s(2, 2), 1.0);
}

TEST(Distance, CosineDistanceRange) {
  const std::vector<std::vector<float>> v{{1, 0}, {-1, 0}, {0, 1}};
  const Matrix d = pairwise_cosine_distance(v);
  EXPECT_NEAR(d(0, 1), 2.0, 1e-6);  // opposite
  EXPECT_NEAR(d(0, 2), 1.0, 1e-6);  // orthogonal
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
}

TEST(Distance, RejectsRaggedInput) {
  EXPECT_THROW(pairwise_euclidean({{1, 2}, {1}}), Error);
  EXPECT_THROW(pairwise_euclidean({}), Error);
}

TEST(Distance, RejectsPoisonedRows) {
  // A NaN/Inf row (a corrupted upload that slipped past server-side
  // screening) must be rejected at the proximity boundary — the sqnorm
  // would otherwise be clamped to 0 by the max() in pairwise_euclidean
  // and silently yield a finite but wrong matrix.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_THROW(pairwise_euclidean({{0, 0}, {nan, 1}, {2, 2}}), Error);
  EXPECT_THROW(pairwise_euclidean({{0, 0}, {1, 1}, {inf, 2}}), Error);
  EXPECT_THROW(pairwise_cosine_similarity({{1, 0}, {nan, 1}}), Error);
  EXPECT_THROW(pairwise_cosine_distance({{1, 0}, {0, inf}}), Error);
}

// -- dendrogram ---------------------------------------------------------------

TEST(Hc, TwoBlobsSeparateAtK2) {
  const auto pts = two_blobs(5, 1);
  const Matrix d = pairwise_euclidean(pts);
  for (const Linkage linkage : {Linkage::kSingle, Linkage::kComplete,
                                Linkage::kAverage, Linkage::kWard}) {
    const Dendrogram dendro = agglomerative_cluster(d, linkage);
    EXPECT_EQ(dendro.merges.size(), 9u);
    const auto labels = dendro.cut_k(2);
    // First 5 in one cluster, last 5 in the other.
    for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(labels[i], labels[0]);
    for (std::size_t i = 6; i < 10; ++i) EXPECT_EQ(labels[i], labels[5]);
    EXPECT_NE(labels[0], labels[5]);
  }
}

TEST(Hc, CutKExtremes) {
  const auto pts = two_blobs(3, 2);
  const Dendrogram dendro =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  const auto one = dendro.cut_k(1);
  for (std::size_t l : one) EXPECT_EQ(l, 0u);
  const auto all = dendro.cut_k(6);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(all[i], i);
  EXPECT_THROW(dendro.cut_k(0), Error);
  EXPECT_THROW(dendro.cut_k(7), Error);
}

TEST(Hc, ThresholdCutMatchesGap) {
  const auto pts = two_blobs(4, 3);
  const Dendrogram dendro =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  // Within-blob merges happen below ~2; the cross-blob merge near 10.
  const auto labels = dendro.cut_threshold(5.0);
  EXPECT_EQ(num_clusters(labels), 2u);
  EXPECT_EQ(dendro.clusters_at(5.0), 2u);
  EXPECT_EQ(dendro.clusters_at(100.0), 1u);
  EXPECT_EQ(dendro.clusters_at(0.0), 8u);
}

TEST(Hc, MergeDistancesMonotone) {
  Rng rng(4);
  std::vector<std::vector<float>> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({static_cast<float>(rng.normal()),
                   static_cast<float>(rng.normal()),
                   static_cast<float>(rng.normal())});
  }
  for (const Linkage linkage :
       {Linkage::kComplete, Linkage::kAverage, Linkage::kWard}) {
    const Dendrogram d =
        agglomerative_cluster(pairwise_euclidean(pts), linkage);
    for (std::size_t m = 1; m < d.merges.size(); ++m) {
      EXPECT_GE(d.merges[m].distance, d.merges[m - 1].distance - 1e-9)
          << to_string(linkage) << " merge " << m;
    }
  }
}

TEST(Hc, MergeSizesAccumulate) {
  const auto pts = two_blobs(4, 5);
  const Dendrogram d =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  EXPECT_EQ(d.merges.back().size, 8u);  // final merge holds everyone
}

TEST(Hc, SingleLeafDegenerateCase) {
  Matrix d(1, 1);
  const Dendrogram dendro = agglomerative_cluster(d, Linkage::kAverage);
  EXPECT_TRUE(dendro.merges.empty());
  EXPECT_EQ(dendro.cut_k(1), (std::vector<std::size_t>{0}));
}

TEST(Hc, RejectsNonSquareMatrix) {
  Matrix d(2, 3);
  EXPECT_THROW(agglomerative_cluster(d, Linkage::kAverage), Error);
}

TEST(Hc, RejectsNonFiniteDistances) {
  // A hand-built matrix with one poisoned entry: every Lance–Williams
  // update touching its row would propagate the NaN, so the boundary
  // check must fire before any merge happens.
  for (const double bad : {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()}) {
    Matrix d(3, 3);
    d(0, 1) = d(1, 0) = 1.0;
    d(0, 2) = d(2, 0) = 2.0;
    d(1, 2) = d(2, 1) = bad;
    EXPECT_THROW(agglomerative_cluster(d, Linkage::kAverage), Error);
  }
}

TEST(Hc, SingleVsCompleteOnChain) {
  // A chain of points 0-1-2-3 with spacing 1: single linkage merges the
  // whole chain at distance 1, complete linkage needs larger distances.
  std::vector<std::vector<float>> pts{{0}, {1}, {2}, {3}};
  const Matrix d = pairwise_euclidean(pts);
  const Dendrogram s = agglomerative_cluster(d, Linkage::kSingle);
  const Dendrogram c = agglomerative_cluster(d, Linkage::kComplete);
  EXPECT_NEAR(s.merges.back().distance, 1.0, 1e-9);
  EXPECT_GT(c.merges.back().distance, 2.0);
}

TEST(Hc, LinkageNamesRoundTrip) {
  for (const Linkage l : {Linkage::kSingle, Linkage::kComplete,
                          Linkage::kAverage, Linkage::kWard}) {
    EXPECT_EQ(linkage_from_string(to_string(l)), l);
  }
  EXPECT_THROW(linkage_from_string("centroid"), Error);
}

// -- k-means -------------------------------------------------------------------

TEST(KMeans, SeparatesTwoBlobs) {
  const auto pts = two_blobs(6, 90);
  Rng rng(91);
  const KMeansResult r = kmeans(pts, 2, rng);
  EXPECT_TRUE(r.converged);
  // First 6 in one cluster, last 6 in the other.
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(r.labels[i], r.labels[0]);
  for (std::size_t i = 7; i < 12; ++i) EXPECT_EQ(r.labels[i], r.labels[6]);
  EXPECT_NE(r.labels[0], r.labels[6]);
}

TEST(KMeans, KEqualsOneGivesGrandCentroid) {
  const auto pts = two_blobs(4, 92);
  Rng rng(93);
  const KMeansResult r = kmeans(pts, 1, rng);
  ASSERT_EQ(r.centers.size(), 1u);
  double mean_x = 0.0;
  for (const auto& p : pts) mean_x += p[0];
  mean_x /= static_cast<double>(pts.size());
  EXPECT_NEAR(r.centers[0][0], mean_x, 1e-6);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  const auto pts = two_blobs(3, 94);
  Rng rng(95);
  const KMeansResult r = kmeans(pts, pts.size(), rng);
  EXPECT_NEAR(r.inertia, 0.0, 1e-9);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const auto pts = two_blobs(8, 96);
  Rng r1(97), r2(97);
  const double i2 = kmeans(pts, 2, r1).inertia;
  const double i4 = kmeans(pts, 4, r2).inertia;
  EXPECT_LE(i4, i2 + 1e-9);
}

TEST(KMeans, DeterministicGivenRng) {
  const auto pts = two_blobs(5, 98);
  Rng a(99), b(99);
  EXPECT_EQ(kmeans(pts, 2, a).labels, kmeans(pts, 2, b).labels);
}

TEST(KMeans, ValidatesArguments) {
  Rng rng(1);
  EXPECT_THROW(kmeans({}, 1, rng), Error);
  const std::vector<std::vector<float>> pts{{1.0f}, {2.0f}};
  EXPECT_THROW(kmeans(pts, 0, rng), Error);
  EXPECT_THROW(kmeans(pts, 3, rng), Error);
}

TEST(KMeans, AgreesWithHcOnCrispStructure) {
  const auto pts = two_blobs(6, 100);
  Rng rng(101);
  const KMeansResult km = kmeans(pts, 2, rng);
  const auto dendro = agglomerative_cluster(pairwise_euclidean(pts),
                                            Linkage::kAverage);
  EXPECT_DOUBLE_EQ(adjusted_rand_index(km.labels, dendro.cut_k(2)), 1.0);
}

// -- threshold suggestion -----------------------------------------------------

TEST(SuggestThreshold, FindsTheBlobGap) {
  const auto pts = two_blobs(5, 6);
  const Dendrogram d =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  const double t = suggest_threshold(d);
  EXPECT_EQ(d.cut_threshold(t).size(), 10u);
  EXPECT_EQ(num_clusters(d.cut_threshold(t)), 2u);
}

TEST(SuggestThreshold, ThreeBlobsGiveThreeClusters) {
  Rng rng(7);
  std::vector<std::vector<float>> pts;
  for (std::size_t b = 0; b < 3; ++b) {
    for (int i = 0; i < 4; ++i) {
      pts.push_back({static_cast<float>(b) * 20.0f +
                         static_cast<float>(rng.normal(0.0, 0.2)),
                     static_cast<float>(rng.normal(0.0, 0.2))});
    }
  }
  const Dendrogram d =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  const double t = suggest_threshold(d);
  EXPECT_EQ(num_clusters(d.cut_threshold(t)), 3u);
}

TEST(SuggestThreshold, HomogeneousDataYieldsOneCluster) {
  // A single Gaussian blob has no natural gap -> expect the fallback.
  Rng rng(8);
  std::vector<std::vector<float>> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({static_cast<float>(rng.normal()),
                   static_cast<float>(rng.normal())});
  }
  const Dendrogram d =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  const double t = suggest_threshold(d, /*min_gap_ratio=*/4.0);
  EXPECT_EQ(num_clusters(d.cut_threshold(t)), 1u);
}

TEST(SuggestThreshold, TwoLeavesStayTogether) {
  std::vector<std::vector<float>> pts{{0}, {1}};
  const Dendrogram d =
      agglomerative_cluster(pairwise_euclidean(pts), Linkage::kAverage);
  const double t = suggest_threshold(d);
  EXPECT_EQ(num_clusters(d.cut_threshold(t)), 1u);
}

// -- helpers -------------------------------------------------------------------

TEST(MembersByCluster, GroupsIndices) {
  const std::vector<std::size_t> labels{0, 1, 0, 2, 1};
  const auto members = members_by_cluster(labels);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(members[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(members[2], (std::vector<std::size_t>{3}));
}

}  // namespace
}  // namespace fedclust::cluster
