// Shared fixtures for the FL engine / algorithm tests: a small, fast
// federation over tiny synthetic images so whole algorithms run in
// milliseconds.
#pragma once

#include "data/synthetic.hpp"
#include "fl/federation.hpp"
#include "nn/models.hpp"
#include "partition/partition.hpp"

namespace fedclust::testing {

inline data::SyntheticSpec tiny_image_spec() {
  data::SyntheticSpec spec;
  spec.image = {1, 8, 8, 4};  // 4 classes of 8x8 grayscale
  spec.class_correlation = 0.0;
  spec.max_shift = 1;
  spec.distractor = 0.2;
  spec.noise = 0.2;
  spec.waves = 4;
  return spec;
}

/// Pool of `n` tiny images with 4 classes.
inline data::Dataset tiny_pool(std::size_t n, std::uint64_t seed) {
  const data::SyntheticGenerator gen(tiny_image_spec(), seed);
  Rng rng = Rng(seed).split(1);
  return gen.generate(n, rng);
}

/// Splits a partition into per-client train/test ClientData.
inline std::vector<fl::ClientData> make_clients(
    const data::Dataset& pool, const partition::Partition& part,
    std::uint64_t seed, double test_fraction = 0.25) {
  std::vector<fl::ClientData> clients;
  Rng rng = Rng(seed).split(2);
  for (const auto& ds : partition::materialize(pool, part)) {
    auto [train, test] = ds.stratified_split(test_fraction, rng);
    if (test.empty()) {  // tiny clients: fall back to testing on train
      test = train;
    }
    clients.push_back({std::move(train), std::move(test)});
  }
  return clients;
}

/// A two-group federation (classes {0,1} vs {2,3}) over `num_clients`
/// clients — the canonical clusterable scenario.
struct GroupedFederation {
  fl::Federation federation;
  std::vector<std::size_t> true_groups;
};

inline GroupedFederation make_grouped_federation(
    std::size_t num_clients = 6, std::size_t pool_size = 480,
    std::uint64_t seed = 42, fl::FederationConfig config = {}) {
  const data::Dataset pool = tiny_pool(pool_size, seed);
  Rng prng = Rng(seed).split(3);
  const partition::Partition part = partition::grouped_label_partition(
      pool, num_clients, {{0, 1}, {2, 3}}, prng);

  nn::Model model = nn::mlp({1, 8, 8, 4}, 16);
  Rng init = Rng(seed).split(4);
  model.init_params(init);

  config.seed = seed;
  if (config.threads == 0) config.threads = 2;
  return {fl::Federation(std::move(model), make_clients(pool, part, seed),
                         config),
          part.true_groups};
}

/// A Dirichlet(beta) federation with no ground-truth groups.
inline fl::Federation make_dirichlet_federation(
    std::size_t num_clients = 6, double beta = 0.3,
    std::size_t pool_size = 480, std::uint64_t seed = 7,
    fl::FederationConfig config = {}) {
  const data::Dataset pool = tiny_pool(pool_size, seed);
  Rng prng = Rng(seed).split(3);
  const partition::Partition part =
      partition::dirichlet_partition(pool, num_clients, beta, prng, 8);

  nn::Model model = nn::mlp({1, 8, 8, 4}, 16);
  Rng init = Rng(seed).split(4);
  model.init_params(init);

  config.seed = seed;
  if (config.threads == 0) config.threads = 2;
  return fl::Federation(std::move(model), make_clients(pool, part, seed),
                        config);
}

}  // namespace fedclust::testing
