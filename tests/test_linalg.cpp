// Tests for the double-precision matrix, SVD, and principal angles.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "utils/rng.hpp"

namespace fedclust {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(Matrix, BasicAccessAndIdentity) {
  Matrix m = Matrix::identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, FromRowsValidates) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), Error);
  EXPECT_THROW(Matrix::from_rows({}), Error);
}

TEST(Matrix, TransposeAndRowCol) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
}

TEST(Matrix, MatmulKnownResult) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatmulTnAgreesWithExplicitTranspose) {
  const Matrix a = random_matrix(4, 3, 1);
  const Matrix b = random_matrix(4, 5, 2);
  const Matrix c1 = matmul_tn(a, b);
  const Matrix c2 = matmul(a.transposed(), b);
  for (std::size_t i = 0; i < c1.rows(); ++i) {
    for (std::size_t j = 0; j < c1.cols(); ++j) {
      EXPECT_NEAR(c1(i, j), c2(i, j), 1e-12);
    }
  }
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix m = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

// -- SVD ---------------------------------------------------------------------

TEST(Svd, DiagonalMatrix) {
  const Matrix a = Matrix::from_rows({{3, 0}, {0, 2}});
  const SvdResult r = svd(a);
  ASSERT_EQ(r.singular_values.size(), 2u);
  EXPECT_NEAR(r.singular_values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.singular_values[1], 2.0, 1e-10);
}

TEST(Svd, ReconstructsInput) {
  const Matrix a = random_matrix(6, 4, 3);
  const SvdResult r = svd(a);
  // A ?= U diag(s) Vᵀ
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      double v = 0.0;
      for (std::size_t k = 0; k < r.singular_values.size(); ++k) {
        v += r.u(i, k) * r.singular_values[k] * r.v(j, k);
      }
      ASSERT_NEAR(v, a(i, j), 1e-8);
    }
  }
}

TEST(Svd, SingularValuesSortedDescending) {
  const Matrix a = random_matrix(8, 5, 4);
  const SvdResult r = svd(a);
  for (std::size_t i = 1; i < r.singular_values.size(); ++i) {
    EXPECT_GE(r.singular_values[i - 1], r.singular_values[i]);
  }
}

TEST(Svd, LeftSingularVectorsOrthonormal) {
  const Matrix a = random_matrix(10, 4, 5);
  const SvdResult r = svd(a);
  const Matrix gram = matmul_tn(r.u, r.u);
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    for (std::size_t j = 0; j < gram.cols(); ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Svd, MatchesFrobeniusNorm) {
  const Matrix a = random_matrix(7, 7, 6);
  const SvdResult r = svd(a);
  double sq = 0.0;
  for (double s : r.singular_values) sq += s * s;
  EXPECT_NEAR(std::sqrt(sq), a.frobenius_norm(), 1e-8);
}

TEST(Svd, RankDeficientInput) {
  // Two identical columns -> second singular value 0.
  const Matrix a = Matrix::from_rows({{1, 1}, {2, 2}, {3, 3}});
  const SvdResult r = svd(a);
  EXPECT_NEAR(r.singular_values[1], 0.0, 1e-9);
}

TEST(Svd, TruncatedAgreesWithFull) {
  const Matrix a = random_matrix(12, 6, 7);
  const SvdResult full = svd(a);
  const Matrix u2 = truncated_left_singular_vectors(a, 2);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    // Columns can differ by sign.
    EXPECT_NEAR(std::abs(u2(i, 0)), std::abs(full.u(i, 0)), 1e-8);
  }
}

TEST(Svd, GramVariantSpansSameSubspace) {
  const Matrix a = random_matrix(40, 8, 8);
  const Matrix u_direct = truncated_left_singular_vectors(a, 3);
  const Matrix u_gram = truncated_left_singular_vectors_gram(a, 3);
  // Same subspace -> all principal angles ~ 0.
  const auto angles = principal_angles(u_direct, u_gram);
  for (double ang : angles) {
    EXPECT_NEAR(ang, 0.0, 1e-5);
  }
}

TEST(Svd, GramVariantColumnsOrthonormal) {
  const Matrix a = random_matrix(30, 6, 9);
  const Matrix u = truncated_left_singular_vectors_gram(a, 4);
  const Matrix gram = matmul_tn(u, u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

// -- orthonormalization -----------------------------------------------------

TEST(Orthonormalize, FullRankInput) {
  Matrix a = random_matrix(6, 3, 10);
  const std::size_t rank = orthonormalize_columns(a);
  EXPECT_EQ(rank, 3u);
  const Matrix gram = matmul_tn(a, a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Orthonormalize, DetectsDependentColumns) {
  Matrix a(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent on col 0
    a(i, 2) = (i == 0) ? 1.0 : 0.0;
  }
  const std::size_t rank = orthonormalize_columns(a);
  EXPECT_EQ(rank, 2u);
}

// -- principal angles ------------------------------------------------------

TEST(PrincipalAngles, IdenticalSubspacesAreZero) {
  Matrix u = random_matrix(10, 3, 11);
  orthonormalize_columns(u);
  const auto angles = principal_angles(u, u);
  // acos amplifies rounding near 1, so the tolerance is looser than the
  // underlying machine precision.
  for (double a : angles) EXPECT_NEAR(a, 0.0, 1e-6);
}

TEST(PrincipalAngles, OrthogonalSubspacesAreRightAngles) {
  Matrix u1(4, 2), u2(4, 2);
  u1(0, 0) = 1.0;
  u1(1, 1) = 1.0;
  u2(2, 0) = 1.0;
  u2(3, 1) = 1.0;
  const auto angles = principal_angles(u1, u2);
  for (double a : angles) EXPECT_NEAR(a, M_PI / 2.0, 1e-10);
}

TEST(PrincipalAngles, PartialOverlap) {
  // Share one direction, differ in the other.
  Matrix u1(4, 2), u2(4, 2);
  u1(0, 0) = 1.0;
  u1(1, 1) = 1.0;
  u2(0, 0) = 1.0;  // shared e0
  u2(2, 1) = 1.0;
  const auto angles = principal_angles(u1, u2);
  ASSERT_EQ(angles.size(), 2u);
  EXPECT_NEAR(angles.front(), 0.0, 1e-10);
  EXPECT_NEAR(angles.back(), M_PI / 2.0, 1e-10);
  EXPECT_NEAR(smallest_principal_angle(u1, u2), 0.0, 1e-10);
}

TEST(PrincipalAngles, DimensionMismatchThrows) {
  Matrix u1(4, 2), u2(5, 2);
  EXPECT_THROW(principal_angles(u1, u2), Error);
}

}  // namespace
}  // namespace fedclust
