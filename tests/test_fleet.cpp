// Fleet-virtualization equivalence suite: the lazy VirtualFleet must be
// bit-identical to the eager path, the edge-aggregation fold must be
// bit-identical to flat FedAvg for any edge count, and the supporting
// pieces (model pool, cohort comm metering, streaming moments, the
// streaming Dirichlet deal) must reproduce their dense counterparts.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "algorithms/cfl.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/pacfl.hpp"
#include "check/audit.hpp"
#include "core/fedclust.hpp"
#include "fl/federation.hpp"
#include "fl/model_pool.hpp"
#include "fl/streaming.hpp"
#include "fl/virtual_fleet.hpp"
#include "net/topology.hpp"
#include "partition/partition.hpp"
#include "tensor/kernels.hpp"
#include "test_helpers.hpp"

namespace fedclust {
namespace {

fl::VirtualFleetSpec tiny_fleet_spec(std::size_t clients = 8) {
  fl::VirtualFleetSpec spec;
  spec.num_clients = clients;
  spec.dirichlet_beta = 0.3;
  spec.samples_per_client = 40;
  spec.test_fraction = 0.25;
  spec.min_train_samples = 8;
  spec.cache_capacity = 3;  // smaller than the fleet: eviction exercised
  spec.seed = 11;
  return spec;
}

std::shared_ptr<fl::VirtualFleet> tiny_fleet(std::size_t clients = 8) {
  return std::make_shared<fl::VirtualFleet>(tiny_fleet_spec(clients),
                                            testing::tiny_image_spec());
}

void expect_same_dataset(const data::Dataset& a, const data::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.label(i), b.label(i));
    const Tensor ia = a.image(i);
    const Tensor ib = b.image(i);
    ASSERT_EQ(ia.numel(), ib.numel());
    for (std::size_t p = 0; p < ia.numel(); ++p) {
      // Bitwise: the lazy path must regenerate the exact float.
      ASSERT_EQ(ia.data()[p], ib.data()[p]) << "sample " << i << " px " << p;
    }
  }
}

TEST(VirtualFleet, LazyMaterializationIsBitReproducible) {
  const auto fleet = tiny_fleet();
  const std::vector<fl::ClientData> eager = fleet->materialize_all();
  ASSERT_EQ(eager.size(), fleet->num_clients());

  // Out-of-order, repeated access through the LRU cache (capacity 3 on
  // 8 clients: plenty of eviction + regeneration).
  const std::size_t order[] = {5, 0, 7, 3, 5, 1, 6, 2, 4, 0, 7, 5};
  for (const std::size_t c : order) {
    const auto shard = fleet->get(c);
    expect_same_dataset(shard->train, eager[c].train);
    expect_same_dataset(shard->test, eager[c].test);
  }
  EXPECT_LE(fleet->resident(), 3u);
}

TEST(VirtualFleet, TrainSizesMatchMetadata) {
  const auto fleet = tiny_fleet();
  std::size_t dealt_total = 0;
  for (std::size_t c = 0; c < fleet->num_clients(); ++c) {
    EXPECT_GE(fleet->train_size(c), fleet->spec().min_train_samples);
    EXPECT_EQ(fleet->train_size(c), fleet->get(c)->train.size());
    for (const std::uint32_t n : fleet->dealt_histogram(c)) dealt_total += n;
  }
  // The deal conserves the virtual pool (modulo deterministic top-ups,
  // which only add).
  EXPECT_GE(dealt_total,
            fleet->num_clients() * fleet->spec().samples_per_client);
}

TEST(VirtualFleet, EagerVsLazyFederationsBitIdenticalAllAlgorithms) {
  const auto fleet = tiny_fleet();

  nn::Model model = nn::mlp(fleet->image_spec(), 16);
  Rng init = Rng(11).split(4);
  model.init_params(init);

  fl::FederationConfig cfg;
  cfg.seed = 11;
  cfg.threads = 2;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 8;

  fl::Federation eager(model.clone(), fleet->materialize_all(), cfg);
  fl::Federation lazy(model.clone(), fleet, cfg);

  const auto make_zoo = [] {
    std::vector<std::unique_ptr<fl::Algorithm>> algos;
    algos.push_back(std::make_unique<algorithms::FedAvg>());
    algos.push_back(std::make_unique<algorithms::FedProx>(0.05));
    algos.push_back(std::make_unique<algorithms::Cfl>(algorithms::CflConfig{
        .eps1 = 0.8, .eps2 = 1.2, .warmup_rounds = 2, .min_cluster_size = 2}));
    algos.push_back(std::make_unique<algorithms::Ifca>(
        algorithms::IfcaConfig{.num_clusters = 2, .init_perturbation = 0.1}));
    algos.push_back(
        std::make_unique<algorithms::Pacfl>(algorithms::PacflConfig{
            .subspace_rank = 3, .samples_per_class_cap = 24}));
    algos.push_back(std::make_unique<core::FedClust>(
        core::FedClustConfig{.warmup_epochs = 1, .rel_factor = 0.6}));
    return algos;
  };

  auto eager_zoo = make_zoo();
  auto lazy_zoo = make_zoo();
  constexpr std::size_t kRounds = 3;
  for (std::size_t a = 0; a < eager_zoo.size(); ++a) {
    const fl::RunResult re = eager_zoo[a]->run(eager, kRounds);
    const fl::RunResult rl = lazy_zoo[a]->run(lazy, kRounds);
    ASSERT_EQ(re.rounds.size(), rl.rounds.size()) << re.algorithm;
    for (std::size_t r = 0; r < re.rounds.size(); ++r) {
      EXPECT_EQ(re.rounds[r].weights_fp, rl.rounds[r].weights_fp)
          << re.algorithm << " diverges at round " << re.rounds[r].round;
    }
    EXPECT_EQ(re.cluster_labels, rl.cluster_labels) << re.algorithm;
  }
}

TEST(EdgeAggregation, TreeVsFlatBitIdenticalAcrossEdgeCounts) {
  fl::Federation fed = testing::make_dirichlet_federation(6);
  const std::vector<float> global = fed.template_model().flat_weights();
  const auto weights_for = [&](std::size_t) {
    return std::span<const float>(global);
  };
  std::vector<std::size_t> cohort(fed.num_clients());
  for (std::size_t i = 0; i < cohort.size(); ++i) cohort[i] = i;

  std::vector<fl::ClientUpdate> updates =
      fed.train_clients(cohort, /*round=*/0, weights_for);
  ASSERT_EQ(updates.size(), cohort.size());
  const std::vector<float> flat = fed.aggregate(updates);

  for (const std::size_t edges : {1u, 2u, 7u}) {
    const fl::Federation::FoldResult fr = fed.train_clients_folded(
        cohort, /*round=*/0, weights_for, net::EdgeTopology{edges});
    EXPECT_FALSE(fr.gathered);
    EXPECT_EQ(fr.contributors, cohort) << edges << " edges";
    ASSERT_EQ(fr.weights.size(), flat.size());
    EXPECT_EQ(check::weights_fingerprint(fr.weights),
              check::weights_fingerprint(flat))
        << edges << " edges diverge from flat aggregation";
  }
}

TEST(EdgeAggregation, RobustRuleFallsBackToGather) {
  fl::FederationConfig cfg;
  cfg.robust.rule = robust::AggregationRule::kTrimmedMean;
  fl::Federation fed = testing::make_dirichlet_federation(
      6, 0.3, 480, 7, cfg);
  const std::vector<float> global = fed.template_model().flat_weights();
  const auto weights_for = [&](std::size_t) {
    return std::span<const float>(global);
  };
  std::vector<std::size_t> cohort(fed.num_clients());
  for (std::size_t i = 0; i < cohort.size(); ++i) cohort[i] = i;
  const fl::Federation::FoldResult fr = fed.train_clients_folded(
      cohort, 0, weights_for, net::EdgeTopology{4});
  EXPECT_TRUE(fr.gathered);
  EXPECT_EQ(fr.weights.size(), fed.model_size());
}

TEST(EdgeAggregation, PartialKernelChainsBitIdenticalToFlatKernel) {
  constexpr std::size_t kDim = 1037;  // odd: exercises the scalar tail
  constexpr std::size_t kNum = 5;
  Rng rng(17);
  std::vector<std::vector<float>> vecs(kNum, std::vector<float>(kDim));
  std::vector<double> coeff(kNum);
  double total = 0.0;
  for (std::size_t u = 0; u < kNum; ++u) {
    for (float& x : vecs[u]) {
      x = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    coeff[u] = rng.uniform(0.1, 1.0);
    total += coeff[u];
  }
  for (double& c : coeff) c /= total;
  std::vector<const float*> srcs(kNum);
  for (std::size_t u = 0; u < kNum; ++u) srcs[u] = vecs[u].data();

  const ops::KernelTable& kt = ops::kernels();
  std::vector<float> flat(kDim);
  kt.weighted_accumulate(srcs.data(), coeff.data(), kNum, flat.data(), 0,
                         kDim);

  // Chain 1: split the SOURCES into two batches (the edge-batch seam).
  std::vector<double> acc(kDim, 0.0);
  kt.weighted_accumulate_partial(srcs.data(), coeff.data(), 2, acc.data(), 0,
                                 kDim);
  kt.weighted_accumulate_partial(srcs.data() + 2, coeff.data() + 2, kNum - 2,
                                 acc.data(), 0, kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    ASSERT_EQ(static_cast<float>(acc[i]), flat[i]) << "source-batch chain, i="
                                                   << i;
  }

  // Chain 2: split the DIMENSION at a kChunkAlign boundary (the
  // thread-chunking seam).
  std::fill(acc.begin(), acc.end(), 0.0);
  const std::size_t mid = 8 * ops::kChunkAlign;
  ASSERT_LT(mid, kDim);
  kt.weighted_accumulate_partial(srcs.data(), coeff.data(), kNum, acc.data(),
                                 0, mid);
  kt.weighted_accumulate_partial(srcs.data(), coeff.data(), kNum, acc.data(),
                                 mid, kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    ASSERT_EQ(static_cast<float>(acc[i]), flat[i]) << "dim-split chain, i="
                                                   << i;
  }
}

TEST(ModelPool, RecycledCloneTrainsBitIdenticalToFreshClone) {
  const auto fleet = tiny_fleet(4);
  nn::Model tmpl = nn::mlp(fleet->image_spec(), 16);
  Rng init = Rng(3).split(4);
  tmpl.init_params(init);
  const std::vector<float> start = tmpl.flat_weights();

  fl::LocalTrainConfig local;
  local.epochs = 2;
  local.batch_size = 8;

  // Reference: a fresh clone.
  nn::Model fresh = tmpl.clone();
  fresh.set_flat_weights(start);
  const float fresh_loss =
      fl::train_local(fresh, fleet->get(0)->train, local, Rng(5));

  fl::ModelPool pool(tmpl, nullptr);
  {
    // Dirty a pooled clone on different data / different stream.
    fl::ModelPool::Lease lease = pool.acquire();
    lease->set_flat_weights(start);
    fl::train_local(*lease, fleet->get(1)->train, local, Rng(9));
  }
  // Reacquire the SAME (recycled) clone and repeat the reference run.
  fl::ModelPool::Lease lease = pool.acquire();
  EXPECT_EQ(pool.created(), 1u);
  lease->set_flat_weights(start);
  const float pooled_loss =
      fl::train_local(*lease, fleet->get(0)->train, local, Rng(5));
  EXPECT_EQ(pooled_loss, fresh_loss);
  EXPECT_EQ(check::weights_fingerprint(lease->flat_weights()),
            check::weights_fingerprint(fresh.flat_weights()));
}

TEST(CommMeter, CohortModeMatchesDenseAttribution) {
  fl::CommMeter dense;
  fl::CommMeter sparse;
  const std::vector<std::size_t> cohort = {2, 5, 9};

  dense.begin_round(0);
  sparse.begin_round(0, cohort);
  for (const std::size_t c : cohort) {
    dense.download(100 + c, c);
    sparse.download(100 + c, c);
    dense.upload(200 + c, c);
    sparse.upload(200 + c, c);
  }
  // Out-of-cohort protocol side-traffic falls back to dense attribution.
  dense.download(7, 7);
  sparse.download(7, 7);

  // Mid-round reads see the staged slots.
  EXPECT_EQ(sparse.client_download(5), dense.client_download(5));

  const std::vector<std::size_t> cohort2 = {5, 11};
  dense.begin_round(1);
  sparse.begin_round(1, cohort2);  // flushes round 0 into the ledger
  for (const std::size_t c : cohort2) {
    dense.upload(50, c);
    sparse.upload(50, c);
  }
  sparse.flush_cohort();

  for (const std::size_t c : {2u, 5u, 7u, 9u, 11u, 13u}) {
    EXPECT_EQ(sparse.client_download(c), dense.client_download(c)) << c;
    EXPECT_EQ(sparse.client_upload(c), dense.client_upload(c)) << c;
  }
  EXPECT_EQ(sparse.total(), dense.total());
  EXPECT_EQ(sparse.round_download(), dense.round_download());
  EXPECT_EQ(sparse.round_upload(), dense.round_upload());
  // The sparse ledger holds exactly the attributed cohort clients.
  EXPECT_EQ(sparse.cohort_upload_ledger().size(), 4u);  // 2, 5, 9, 11
}

TEST(Partition, DirichletDealClassConservesAndRepeats) {
  struct Deal {
    std::size_t client, offset, count;
    bool operator==(const Deal&) const = default;
  };
  const auto run = [](std::uint64_t seed) {
    Rng rng = Rng(seed).split(1);
    std::vector<Deal> deals;
    partition::dirichlet_deal_class(
        103, 7, 0.3, rng,
        [&](std::size_t client, std::size_t offset, std::size_t count) {
          deals.push_back({client, offset, count});
        });
    return deals;
  };
  const std::vector<Deal> a = run(3);
  const std::vector<Deal> b = run(3);
  EXPECT_EQ(a, b);  // deterministic in the rng stream

  // Deals tile [0, class_size) contiguously with positive counts.
  std::size_t cursor = 0;
  for (const Deal& d : a) {
    EXPECT_EQ(d.offset, cursor);
    EXPECT_GT(d.count, 0u);
    EXPECT_LT(d.client, 7u);
    cursor += d.count;
  }
  EXPECT_EQ(cursor, 103u);
}

TEST(Streaming, MomentsMatchTwoPass) {
  const std::vector<double> xs = {0.4, 1.7, -2.2, 3.9, 0.0, 5.5, -1.1};
  fl::StreamingMoments m;
  for (const double x : xs) m.add(x);

  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());

  EXPECT_EQ(m.count(), xs.size());
  EXPECT_NEAR(m.mean(), mean, 1e-12);
  EXPECT_NEAR(m.variance(), var, 1e-12);
  EXPECT_NEAR(m.std(), std::sqrt(var), 1e-12);
}

TEST(EdgeTopology, SlotRangesPartitionTheCohort) {
  for (const std::size_t edges : {1u, 2u, 3u, 7u, 16u}) {
    for (const std::size_t cohort : {1u, 2u, 5u, 12u, 100u}) {
      const net::EdgeTopology topo{edges};
      const std::size_t clamped = topo.clamped_edges(cohort);
      EXPECT_GE(clamped, 1u);
      EXPECT_LE(clamped, std::max<std::size_t>(1, std::min(edges, cohort)));
      std::size_t cursor = 0;
      for (std::size_t e = 0; e < clamped; ++e) {
        const auto [begin, end] = topo.slot_range(e, cohort);
        EXPECT_EQ(begin, cursor);
        EXPECT_LE(end, cohort);
        cursor = end;
      }
      EXPECT_EQ(cursor, cohort);
      EXPECT_EQ(topo.server_link_floats(cohort, 10), clamped * 10);
    }
  }
}

}  // namespace
}  // namespace fedclust
