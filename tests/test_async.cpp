// Tests for the event-driven async engine (fl/async):
//  * SyncEquivalence — the wave driver (buffer_k == cohort, staleness
//    ≡ 1 special case) is bit-identical to every classic Algorithm::run
//    loop, for all six algorithms. CI gates on `^SyncEquivalence`.
//  * AsyncDeterminism — buffered trajectories are bit-identical across
//    kernel-thread counts, worker-thread counts, and `concurrency`.
//  * AsyncStaleness — the staleness decay and the flush's mixing
//    coefficients against hand-computed values.
//  * AsyncChaos — crash/corruption faults plus churn never wedge the
//    dispatch frontier.
//  * AsyncResume — FCKP v2 resume is bit-identical to the
//    uninterrupted run.
//  * CodecRobustGuard — under top-k upload frames the trimmed mean
//    stays sparse-aware (robust::sparse_trimmed_mean) while the
//    coordinate median still falls back to norm-clip (negative
//    control).
#include "fl/async.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "algorithms/async_adapters.hpp"
#include "algorithms/cfl.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/pacfl.hpp"
#include "check/audit.hpp"
#include "core/fedclust.hpp"
#include "core/fedclust_async.hpp"
#include "test_helpers.hpp"

namespace fedclust::fl {
namespace {

using testing::make_grouped_federation;

void expect_same_rounds(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].round, b.rounds[i].round) << i;
    EXPECT_EQ(a.rounds[i].weights_fp, b.rounds[i].weights_fp) << i;
    EXPECT_EQ(a.rounds[i].acc_mean, b.rounds[i].acc_mean) << i;
    EXPECT_EQ(a.rounds[i].acc_std, b.rounds[i].acc_std) << i;
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss) << i;
    EXPECT_EQ(a.rounds[i].cum_upload, b.rounds[i].cum_upload) << i;
    EXPECT_EQ(a.rounds[i].cum_download, b.rounds[i].cum_download) << i;
    EXPECT_EQ(a.rounds[i].num_clusters, b.rounds[i].num_clusters) << i;
    EXPECT_EQ(a.rounds[i].sim_seconds, b.rounds[i].sim_seconds) << i;
  }
  EXPECT_EQ(a.cluster_labels, b.cluster_labels);
}

FederationConfig cellular_config(double straggler_frac = 1.0) {
  FederationConfig cfg;
  cfg.network.enabled = true;
  cfg.network.profile = net::Profile::kCellular;
  cfg.network.straggler_frac = straggler_frac;
  return cfg;
}

// -- SyncEquivalence (CI gate) ------------------------------------------------
// The classic run() loop and fl::run_synchronized drive the same
// extracted round bodies; the per-round trajectory must match
// bit-for-bit, network on or off.

TEST(SyncEquivalence, FedAvg) {
  FederationConfig cfg = cellular_config();
  cfg.dropout = 0.1;
  auto [fed_a, ga] = make_grouped_federation(6, 480, 42, cfg);
  auto [fed_b, gb] = make_grouped_federation(6, 480, 42, cfg);
  algorithms::FedAvg classic;
  algorithms::GlobalAverageAdapter adapter;
  expect_same_rounds(classic.run(fed_a, 4),
                     run_synchronized(fed_b, adapter, 4));
}

TEST(SyncEquivalence, FedProx) {
  auto [fed_a, ga] = make_grouped_federation();
  auto [fed_b, gb] = make_grouped_federation();
  algorithms::FedProx classic(0.05);
  algorithms::GlobalAverageAdapter adapter(0.05);
  expect_same_rounds(classic.run(fed_a, 3),
                     run_synchronized(fed_b, adapter, 3));
}

TEST(SyncEquivalence, Cfl) {
  algorithms::CflConfig cc;
  cc.warmup_rounds = 1;
  auto [fed_a, ga] = make_grouped_federation();
  auto [fed_b, gb] = make_grouped_federation();
  algorithms::Cfl classic(cc);
  algorithms::CflAdapter adapter(cc);
  expect_same_rounds(classic.run(fed_a, 4),
                     run_synchronized(fed_b, adapter, 4));
}

TEST(SyncEquivalence, Ifca) {
  algorithms::IfcaConfig ic;
  ic.num_clusters = 2;
  auto [fed_a, ga] = make_grouped_federation();
  auto [fed_b, gb] = make_grouped_federation();
  algorithms::Ifca classic(ic);
  algorithms::IfcaAdapter adapter(ic);
  expect_same_rounds(classic.run(fed_a, 3),
                     run_synchronized(fed_b, adapter, 3));
}

TEST(SyncEquivalence, Pacfl) {
  const FederationConfig cfg = cellular_config();
  auto [fed_a, ga] = make_grouped_federation(6, 480, 42, cfg);
  auto [fed_b, gb] = make_grouped_federation(6, 480, 42, cfg);
  algorithms::Pacfl classic(algorithms::PacflConfig{});
  algorithms::PacflAdapter adapter(algorithms::PacflConfig{});
  expect_same_rounds(classic.run(fed_a, 3),
                     run_synchronized(fed_b, adapter, 3));
}

TEST(SyncEquivalence, FedClust) {
  FederationConfig cfg = cellular_config(/*straggler_frac=*/0.8);
  cfg.dropout = 0.1;
  auto [fed_a, ga] = make_grouped_federation(6, 480, 42, cfg);
  auto [fed_b, gb] = make_grouped_federation(6, 480, 42, cfg);
  core::FedClust classic(core::FedClustConfig{});
  core::FedClustAsync adapter(core::FedClustConfig{});
  expect_same_rounds(classic.run(fed_a, 4),
                     run_synchronized(fed_b, adapter, 4));
}

// -- staleness math -----------------------------------------------------------

TEST(AsyncStaleness, WeightHandComputed) {
  EXPECT_EQ(staleness_weight(StalenessKind::kConstant, 0.5, 0), 1.0);
  EXPECT_EQ(staleness_weight(StalenessKind::kConstant, 0.5, 7), 1.0);
  EXPECT_EQ(staleness_weight(StalenessKind::kPolynomial, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessKind::kPolynomial, 0.5, 1),
                   1.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessKind::kPolynomial, 0.5, 3),
                   0.5);
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessKind::kPolynomial, 1.0, 3),
                   0.25);
  EXPECT_DOUBLE_EQ(staleness_weight(StalenessKind::kPolynomial, 2.0, 1),
                   0.25);
}

TEST(AsyncStaleness, FlushMixingMatchesHandComputedMean) {
  // Two synthetic updates, samples {10, 20}, staleness {0, 2}, a = 0.5:
  // c ∝ {10·1, 20/√3}. The flush normalizes and hands the coefficients
  // to aggregate_weighted, which must land on the per-coordinate convex
  // mix exactly (double accumulators, single rounding).
  auto [fed, groups] = make_grouped_federation();
  const std::size_t dim = fed.model_size();
  ClientUpdate a;
  a.client_id = 0;
  a.num_samples = 10;
  a.weights.assign(dim, 1.0f);
  ClientUpdate b;
  b.client_id = 1;
  b.num_samples = 20;
  b.weights.assign(dim, 4.0f);

  const double wa = 10.0 * staleness_weight(StalenessKind::kPolynomial,
                                            0.5, 0);
  const double wb = 20.0 * staleness_weight(StalenessKind::kPolynomial,
                                            0.5, 2);
  const double total = wa + wb;
  const std::vector<float> mixed =
      fed.aggregate_weighted({a, b}, {wa / total, wb / total});
  const float expected =
      static_cast<float>((wa / total) * 1.0 + (wb / total) * 4.0);
  ASSERT_EQ(mixed.size(), dim);
  for (std::size_t i = 0; i < dim; ++i) {
    ASSERT_EQ(mixed[i], expected) << i;
  }
}

TEST(AsyncStaleness, DecayTowardHandComputed) {
  // out = current + lr * (target - current) in double per coordinate:
  // {1,2} toward {3,6} at lr 0.5 → {2,4}.
  const std::vector<float> current{1.0f, 2.0f};
  const std::vector<float> target{3.0f, 6.0f};
  const std::vector<float> half = decay_toward(current, target, 0.5);
  ASSERT_EQ(half.size(), 2u);
  EXPECT_EQ(half[0], 2.0f);
  EXPECT_EQ(half[1], 4.0f);
  // lr = 1 is exact identity on the target.
  EXPECT_EQ(decay_toward(current, target, 1.0), target);
}

TEST(AsyncStaleness, LrDecayOffIsBitIdentical) {
  // lr_decay_staleness = 0 disables the knob entirely; the engine must
  // reproduce the pre-knob trajectory bit for bit.
  AsyncConfig plain;
  plain.buffer_k = 2;
  AsyncConfig off = plain;
  off.lr_decay_staleness = 0.0;
  off.lr_decay = 0.25;
  const FederationConfig cfg = cellular_config();
  auto run_with = [&](const AsyncConfig& ac) {
    auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
    algorithms::GlobalAverageAdapter adapter;
    return run_async(fed, adapter, ac, 5);
  };
  expect_same_rounds(run_with(plain), run_with(off));
}

// -- async determinism --------------------------------------------------------

AsyncConfig small_async() {
  AsyncConfig ac;
  ac.buffer_k = 2;
  ac.staleness_fn = StalenessKind::kPolynomial;
  ac.staleness_exponent = 0.5;
  return ac;
}

RunResult run_async_fedclust(FederationConfig cfg, const AsyncConfig& ac,
                             std::size_t flushes) {
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  core::FedClustAsync adapter(core::FedClustConfig{});
  return run_async(fed, adapter, ac, flushes);
}

TEST(AsyncDeterminism, BitIdenticalAcrossKernelThreads) {
  const AsyncConfig ac = small_async();
  FederationConfig base = cellular_config();
  base.kernel_threads = 0;
  FederationConfig kt = cellular_config();
  kt.kernel_threads = 2;
  expect_same_rounds(run_async_fedclust(base, ac, 6),
                     run_async_fedclust(kt, ac, 6));
}

TEST(AsyncDeterminism, BitIdenticalAcrossWorkerThreads) {
  const AsyncConfig ac = small_async();
  FederationConfig one = cellular_config();
  one.threads = 1;
  FederationConfig four = cellular_config();
  four.threads = 4;
  expect_same_rounds(run_async_fedclust(one, ac, 6),
                     run_async_fedclust(four, ac, 6));
}

TEST(AsyncDeterminism, BitIdenticalAcrossConcurrency) {
  // `concurrency` is the execution knob: any flush-executor width must
  // reproduce the same trajectory bit-for-bit.
  AsyncConfig serial = small_async();
  serial.concurrency = 1;
  AsyncConfig wide = small_async();
  wide.concurrency = 4;
  expect_same_rounds(run_async_fedclust(cellular_config(), serial, 6),
                     run_async_fedclust(cellular_config(), wide, 6));
}

TEST(AsyncDeterminism, InflightIsSemantic) {
  // `inflight` is the modeled-concurrency knob: capping it changes the
  // event timeline, so the trajectory must genuinely differ.
  AsyncConfig full = small_async();
  AsyncConfig capped = small_async();
  capped.inflight = 2;
  const RunResult a = run_async_fedclust(cellular_config(), full, 6);
  const RunResult b = run_async_fedclust(cellular_config(), capped, 6);
  EXPECT_NE(a.rounds.back().weights_fp, b.rounds.back().weights_fp);
}

TEST(AsyncDeterminism, VirtualTimeIsMonotone) {
  const RunResult r =
      run_async_fedclust(cellular_config(), small_async(), 6);
  ASSERT_FALSE(r.rounds.empty());
  double prev = 0.0;
  for (const RoundMetrics& m : r.rounds) {
    EXPECT_GE(m.sim_seconds, prev);
    prev = m.sim_seconds;
  }
  EXPECT_GT(prev, 0.0);
}

// -- engine preconditions -----------------------------------------------------

TEST(AsyncEngine, RequiresNetworkSimulator) {
  auto [fed, groups] = make_grouped_federation();  // network disabled
  core::FedClustAsync adapter(core::FedClustConfig{});
  EXPECT_THROW(run_async(fed, adapter, small_async(), 4), Error);
}

TEST(AsyncEngine, SyncOnlyAdaptersRefuse) {
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cellular_config());
  algorithms::CflAdapter cfl(algorithms::CflConfig{});
  EXPECT_THROW(run_async(fed, cfl, small_async(), 4), Error);
  algorithms::IfcaAdapter ifca(algorithms::IfcaConfig{});
  EXPECT_THROW(run_async(fed, ifca, small_async(), 4), Error);
}

// -- chaos --------------------------------------------------------------------

TEST(AsyncChaos, CrashesNeverWedgeTheFrontier) {
  FederationConfig cfg = cellular_config();
  cfg.dropout = 0.2;
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 0.3;
  cfg.faults.nan_prob = 0.1;
  cfg.faults.sign_flip_prob = 0.1;
  cfg.robust.validate.enabled = true;
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  algorithms::GlobalAverageAdapter adapter;
  AsyncConfig ac = small_async();
  ac.buffer_k = 3;
  ac.max_staleness = 4;
  const RunResult r = run_async(fed, adapter, ac, 5);
  // Every requested flush completed despite crashed dispatches; the
  // frontier kept advancing (virtual time strictly positive, metrics
  // recorded for the last flush).
  ASSERT_FALSE(r.rounds.empty());
  EXPECT_GT(r.rounds.back().sim_seconds, 0.0);
  EXPECT_GT(r.final_accuracy.mean, 0.0);
}

TEST(AsyncChaos, ChaosTrajectoriesAreStillDeterministic) {
  FederationConfig cfg = cellular_config();
  cfg.dropout = 0.2;
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 0.3;
  cfg.faults.nan_prob = 0.1;
  cfg.robust.validate.enabled = true;
  AsyncConfig ac = small_async();
  ac.buffer_k = 3;
  const auto run_once = [&](std::size_t threads) {
    FederationConfig c = cfg;
    c.threads = threads;
    auto [fed, groups] = make_grouped_federation(6, 480, 42, c);
    algorithms::GlobalAverageAdapter adapter;
    return run_async(fed, adapter, ac, 5);
  };
  expect_same_rounds(run_once(1), run_once(4));
}

// -- checkpoint / resume ------------------------------------------------------

TEST(AsyncResume, BitIdenticalAfterReload) {
  const std::string path = "/tmp/fedclust_async_resume_test.ckpt";
  std::remove(path.c_str());
  AsyncConfig ac = small_async();
  ac.checkpoint_every = 2;
  ac.checkpoint_path = path;

  const FederationConfig cfg = cellular_config();
  const RunResult ref = run_async_fedclust(cfg, ac, 6);

  // The last checkpoint on disk covers flush 4; resume must replay
  // flushes 5..6 bit-identically, in-flight dispatches included.
  const robust::RunCheckpoint ck = robust::load_checkpoint(path);
  EXPECT_TRUE(ck.async.present);
  EXPECT_EQ(ck.async.flushes, 4u);
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  core::FedClustAsync adapter(core::FedClustConfig{});
  const RunResult resumed = resume_async(fed, adapter, ac, ck, 6);
  expect_same_rounds(ref, resumed);
  std::remove(path.c_str());
}

// -- codec-aware robust guard (satellite regression) --------------------------

// The coordinate median still has no sparse-aware form, so it keeps the
// norm-clip fallback as the negative control; the trimmed mean now
// dispatches to robust::sparse_trimmed_mean and keeps its rule.
TEST(CodecRobustGuard, TopkCoordinateMedianFallsBackToNormClip) {
  FederationConfig cfg;
  cfg.compression.enabled = true;
  cfg.compression.upload = compress::CodecKind::kTopK;
  cfg.robust.rule = robust::AggregationRule::kCoordinateMedian;
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  EXPECT_EQ(fed.config().robust.rule, robust::AggregationRule::kNormClip);
}

TEST(CodecRobustGuard, TopkTrimmedMeanKeepsItsRule) {
  FederationConfig cfg;
  cfg.compression.enabled = true;
  cfg.compression.upload = compress::CodecKind::kTopK;
  cfg.robust.rule = robust::AggregationRule::kTrimmedMean;
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  EXPECT_EQ(fed.config().robust.rule, robust::AggregationRule::kTrimmedMean);
}

TEST(CodecRobustGuard, FallbackMatchesExplicitNormClip) {
  FederationConfig guarded;
  guarded.compression.enabled = true;
  guarded.compression.upload = compress::CodecKind::kTopK;
  guarded.robust.rule = robust::AggregationRule::kCoordinateMedian;
  FederationConfig explicit_clip = guarded;
  explicit_clip.robust.rule = robust::AggregationRule::kNormClip;
  auto [fed_a, ga] = make_grouped_federation(6, 480, 42, guarded);
  auto [fed_b, gb] = make_grouped_federation(6, 480, 42, explicit_clip);
  algorithms::FedAvg algo;
  expect_same_rounds(algo.run(fed_a, 3), algo.run(fed_b, 3));
}

TEST(CodecRobustGuard, TopkTrimmedMeanRunsSparseAware) {
  // A full FedAvg run under top-k upload + trimmed mean must complete
  // with finite weights — the sparse-aware rule aggregates only the
  // shipped coordinates instead of degrading to norm-clip.
  FederationConfig cfg;
  cfg.compression.enabled = true;
  cfg.compression.upload = compress::CodecKind::kTopK;
  cfg.robust.rule = robust::AggregationRule::kTrimmedMean;
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  algorithms::FedAvg algo;
  const RunResult result = algo.run(fed, 3);
  EXPECT_GT(result.final_accuracy.mean, 0.0);
}

TEST(CodecRobustGuard, DenseCodecsKeepTheirRule) {
  FederationConfig cfg;
  cfg.compression.enabled = true;
  cfg.compression.upload = compress::CodecKind::kInt8;
  cfg.robust.rule = robust::AggregationRule::kTrimmedMean;
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  EXPECT_EQ(fed.config().robust.rule,
            robust::AggregationRule::kTrimmedMean);
}

}  // namespace
}  // namespace fedclust::fl
