// Property-based tests: algebraic invariants that must hold for whole
// families of inputs, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"
#include "cluster/metrics.hpp"
#include "fl/federation.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "utils/rng.hpp"

namespace fedclust {
namespace {

// -- aggregation invariants ---------------------------------------------------

class AggregationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregationProperty, AverageOfIdenticalUpdatesIsIdentity) {
  Rng rng(GetParam());
  std::vector<float> w(64);
  for (auto& v : w) v = static_cast<float>(rng.normal());
  std::vector<fl::ClientUpdate> updates;
  for (std::size_t i = 0; i < 5; ++i) {
    updates.push_back({i, w, 1 + rng.uniform_int(100), 0.0f});
  }
  const auto avg = fl::weighted_average(updates);
  for (std::size_t i = 0; i < w.size(); ++i) {
    ASSERT_NEAR(avg[i], w[i], 1e-5f);
  }
}

TEST_P(AggregationProperty, AverageIsPermutationInvariant) {
  Rng rng(GetParam());
  std::vector<fl::ClientUpdate> updates;
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<float> w(32);
    for (auto& v : w) v = static_cast<float>(rng.normal());
    updates.push_back({i, std::move(w), 1 + rng.uniform_int(50), 0.0f});
  }
  auto shuffled = updates;
  rng.shuffle(shuffled);
  const auto a = fl::weighted_average(updates);
  const auto b = fl::weighted_average(shuffled);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a[i], b[i], 1e-5f);
  }
}

TEST_P(AggregationProperty, AverageIsWithinComponentwiseBounds) {
  Rng rng(GetParam());
  std::vector<fl::ClientUpdate> updates;
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<float> w(16);
    for (auto& v : w) v = static_cast<float>(rng.normal());
    updates.push_back({i, std::move(w), 1 + rng.uniform_int(20), 0.0f});
  }
  const auto avg = fl::weighted_average(updates);
  for (std::size_t d = 0; d < avg.size(); ++d) {
    float lo = updates[0].weights[d], hi = lo;
    for (const auto& u : updates) {
      lo = std::min(lo, u.weights[d]);
      hi = std::max(hi, u.weights[d]);
    }
    ASSERT_GE(avg[d], lo - 1e-5f);
    ASSERT_LE(avg[d], hi + 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// -- distance matrix invariants ------------------------------------------------

class DistanceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceProperty, EuclideanIsAMetric) {
  Rng rng(GetParam());
  std::vector<std::vector<float>> pts(8, std::vector<float>(5));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  const Matrix d = cluster::pairwise_euclidean(pts);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_DOUBLE_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < 8; ++j) {
      ASSERT_NEAR(d(i, j), d(j, i), 1e-12);  // symmetry
      ASSERT_GE(d(i, j), 0.0);
      for (std::size_t k = 0; k < 8; ++k) {  // triangle inequality
        ASSERT_LE(d(i, j), d(i, k) + d(k, j) + 1e-9);
      }
    }
  }
}

TEST_P(DistanceProperty, CosineDistanceScaleInvariant) {
  Rng rng(GetParam());
  std::vector<std::vector<float>> pts(5, std::vector<float>(7));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  auto scaled = pts;
  for (auto& p : scaled) {
    const float s = static_cast<float>(rng.uniform(0.5, 4.0));
    for (auto& v : p) v *= s;
  }
  const Matrix a = cluster::pairwise_cosine_distance(pts);
  const Matrix b = cluster::pairwise_cosine_distance(scaled);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      ASSERT_NEAR(a(i, j), b(i, j), 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceProperty,
                         ::testing::Values(11, 22, 33, 44));

// -- clustering invariants -------------------------------------------------------

class HcProperty : public ::testing::TestWithParam<cluster::Linkage> {};

TEST_P(HcProperty, CutKProducesExactlyKClusters) {
  Rng rng(77);
  std::vector<std::vector<float>> pts(12, std::vector<float>(3));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  const auto dendro = cluster::agglomerative_cluster(
      cluster::pairwise_euclidean(pts), GetParam());
  for (std::size_t k = 1; k <= 12; ++k) {
    const auto labels = dendro.cut_k(k);
    ASSERT_EQ(cluster::num_clusters(labels), k)
        << cluster::to_string(GetParam()) << " k=" << k;
  }
}

TEST_P(HcProperty, ThresholdMonotonicity) {
  // Raising the threshold can only merge clusters, never split them.
  Rng rng(78);
  std::vector<std::vector<float>> pts(10, std::vector<float>(2));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  const auto dendro = cluster::agglomerative_cluster(
      cluster::pairwise_euclidean(pts), GetParam());
  std::size_t prev = 10;
  for (double t = 0.0; t < 5.0; t += 0.25) {
    const std::size_t k = cluster::num_clusters(dendro.cut_threshold(t));
    ASSERT_LE(k, prev);
    prev = k;
  }
}

TEST_P(HcProperty, MergeDistancesNeverInvert) {
  // The Lance–Williams updates realized here are monotone: every merge
  // happens at a distance no smaller than the previous one. Both the
  // largest-gap threshold selection and the src/check dendrogram audit
  // assume this, so probe it over several random point clouds.
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u, 505u}) {
    Rng rng(seed);
    std::vector<std::vector<float>> pts(11, std::vector<float>(4));
    for (auto& p : pts) {
      for (auto& v : p) v = static_cast<float>(rng.normal());
    }
    const auto dendro = cluster::agglomerative_cluster(
        cluster::pairwise_euclidean(pts), GetParam());
    ASSERT_EQ(dendro.merges.size(), 10u);
    for (std::size_t m = 0; m < dendro.merges.size(); ++m) {
      ASSERT_TRUE(std::isfinite(dendro.merges[m].distance));
      ASSERT_GE(dendro.merges[m].distance, 0.0);
      if (m > 0) {
        ASSERT_GE(dendro.merges[m].distance,
                  dendro.merges[m - 1].distance - 1e-9)
            << cluster::to_string(GetParam()) << " seed " << seed
            << " merge " << m;
      }
    }
  }
}

TEST_P(HcProperty, ThresholdCutMatchesKCut) {
  // Cutting between merge i and merge i+1 applies exactly the first i+1
  // merges, so it must produce the same partition as cut_k at the
  // implied cluster count n - (i + 1).
  Rng rng(80);
  std::vector<std::vector<float>> pts(11, std::vector<float>(3));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  const auto dendro = cluster::agglomerative_cluster(
      cluster::pairwise_euclidean(pts), GetParam());
  const std::size_t n = 11;
  for (std::size_t i = 0; i + 1 < dendro.merges.size(); ++i) {
    const double lo = dendro.merges[i].distance;
    const double hi = dendro.merges[i + 1].distance;
    if (!(hi > lo)) continue;  // tied merges: no threshold separates them
    const double mid = 0.5 * (lo + hi);
    const std::size_t k = n - (i + 1);
    EXPECT_EQ(dendro.cut_threshold(mid), dendro.cut_k(k))
        << cluster::to_string(GetParam()) << " i=" << i;
    EXPECT_EQ(dendro.clusters_at(mid), k);
  }
  // Extremes: below the first merge nothing joins; above the last
  // everything does.
  EXPECT_EQ(dendro.cut_threshold(dendro.merges.front().distance * 0.5),
            dendro.cut_k(n));
  EXPECT_EQ(dendro.cut_threshold(dendro.merges.back().distance + 1.0),
            dendro.cut_k(1));
}

TEST_P(HcProperty, LabelsInvariantUnderPointRelabeling) {
  // Clustering depends only on the distance matrix: permuting the input
  // points permutes the labels accordingly (same partition, ARI = 1).
  Rng rng(79);
  std::vector<std::vector<float>> pts(9, std::vector<float>(4));
  for (auto& p : pts) {
    for (auto& v : p) v = static_cast<float>(rng.normal());
  }
  std::vector<std::size_t> perm(9);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  std::vector<std::vector<float>> permuted(9);
  for (std::size_t i = 0; i < 9; ++i) permuted[i] = pts[perm[i]];

  const auto da = cluster::agglomerative_cluster(
      cluster::pairwise_euclidean(pts), GetParam());
  const auto db = cluster::agglomerative_cluster(
      cluster::pairwise_euclidean(permuted), GetParam());
  const auto la = da.cut_k(3);
  auto lb = db.cut_k(3);
  // Map permuted labels back to original point order.
  std::vector<std::size_t> lb_unpermuted(9);
  for (std::size_t i = 0; i < 9; ++i) lb_unpermuted[perm[i]] = lb[i];
  ASSERT_DOUBLE_EQ(cluster::adjusted_rand_index(la, lb_unpermuted), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Linkages, HcProperty,
    ::testing::Values(cluster::Linkage::kSingle, cluster::Linkage::kComplete,
                      cluster::Linkage::kAverage, cluster::Linkage::kWard),
    [](const auto& info) { return cluster::to_string(info.param); });

// -- metric invariants ----------------------------------------------------------

class MetricProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetricProperty, AriAndNmiAreSymmetric) {
  Rng rng(GetParam());
  std::vector<std::size_t> a(30), b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    a[i] = rng.uniform_int(4);
    b[i] = rng.uniform_int(3);
  }
  ASSERT_NEAR(cluster::adjusted_rand_index(a, b),
              cluster::adjusted_rand_index(b, a), 1e-12);
  ASSERT_NEAR(cluster::normalized_mutual_information(a, b),
              cluster::normalized_mutual_information(b, a), 1e-12);
}

TEST_P(MetricProperty, PurityAtLeastLargestClassShare) {
  Rng rng(GetParam());
  std::vector<std::size_t> pred(40), truth(40);
  std::vector<std::size_t> class_counts(3, 0);
  for (std::size_t i = 0; i < 40; ++i) {
    pred[i] = rng.uniform_int(5);
    truth[i] = rng.uniform_int(3);
    ++class_counts[truth[i]];
  }
  const double largest_share =
      static_cast<double>(
          *std::max_element(class_counts.begin(), class_counts.end())) /
      40.0;
  ASSERT_GE(cluster::purity(pred, truth), largest_share - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

// -- softmax/loss invariants ------------------------------------------------------

class LossProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossProperty, CrossEntropyGradientSumsToZeroPerRow) {
  Rng rng(GetParam());
  const Tensor logits = Tensor::randn({7, 9}, rng, 0.0f, 3.0f);
  std::vector<std::int32_t> labels(7);
  for (auto& y : labels) {
    y = static_cast<std::int32_t>(rng.uniform_int(9));
  }
  const nn::LossResult r = nn::softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 7; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 9; ++j) s += r.grad_logits.at(i, j);
    ASSERT_NEAR(s, 0.0, 1e-6);
  }
}

TEST_P(LossProperty, LossIsNonNegativeAndShiftInvariant) {
  Rng rng(GetParam());
  Tensor logits = Tensor::randn({5, 6}, rng, 0.0f, 2.0f);
  std::vector<std::int32_t> labels{0, 1, 2, 3, 4};
  const float base = nn::softmax_cross_entropy_loss(logits, labels);
  ASSERT_GE(base, 0.0f);
  for (auto& v : logits.flat()) v += 37.5f;
  const float shifted = nn::softmax_cross_entropy_loss(logits, labels);
  ASSERT_NEAR(base, shifted, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossProperty,
                         ::testing::Values(7, 17, 27, 37));

}  // namespace
}  // namespace fedclust
