// Tests for the network layer: message framing, link profiles, the
// event queue, and the discrete-event round simulator (determinism,
// stragglers, deadlines, retries) plus its integration with the
// federation engine and comm meter.
#include "net/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/fedavg.hpp"
#include "fl/metrics.hpp"
#include "test_helpers.hpp"
#include "utils/error.hpp"

namespace fedclust::net {
namespace {

using testing::make_grouped_federation;

// -- message framing -----------------------------------------------------------

TEST(Message, WireBytesAddsHeader) {
  EXPECT_EQ(wire_bytes(0), kHeaderBytes);
  EXPECT_EQ(wire_bytes(10), kHeaderBytes + 40u);
}

TEST(Message, EncodeDecodeRoundTrip) {
  Message m;
  m.header.kind = MessageKind::kPartialUpdate;
  m.header.round = 7;
  m.header.sender = 3;
  m.payload = {1.5f, -2.25f, 0.0f, 1e-8f};

  const std::vector<std::uint8_t> buf = encode(m);
  EXPECT_EQ(buf.size(), wire_bytes(m.payload.size()));

  const Message back = decode(buf);
  EXPECT_EQ(back.header.kind, MessageKind::kPartialUpdate);
  EXPECT_EQ(back.header.round, 7u);
  EXPECT_EQ(back.header.sender, 3u);
  EXPECT_EQ(back.header.payload_floats, 4u);
  EXPECT_EQ(back.payload, m.payload);
}

TEST(Message, EmptyPayloadRoundTrip) {
  Message m;
  m.header.kind = MessageKind::kModelBroadcast;
  const Message back = decode(encode(m));
  EXPECT_TRUE(back.payload.empty());
  EXPECT_EQ(back.header.sender, kServerId);
}

TEST(Message, RejectsTruncatedPayload) {
  Message m;
  m.payload = {1.0f, 2.0f, 3.0f};
  std::vector<std::uint8_t> buf = encode(m);
  buf.pop_back();
  EXPECT_THROW(decode(buf), Error);
  // Too short for even a header.
  buf.resize(kHeaderBytes - 1);
  EXPECT_THROW(decode(buf), Error);
}

TEST(Message, RejectsTrailingGarbage) {
  Message m;
  m.payload = {1.0f};
  std::vector<std::uint8_t> buf = encode(m);
  buf.push_back(0);
  EXPECT_THROW(decode(buf), Error);
}

TEST(Message, CrcDetectsCorruptedPayload) {
  // Every frame carries crc32(payload) in its header; a bit flipped in
  // transit must fail the decode loudly instead of feeding a silently
  // corrupted update to the aggregator.
  Message m;
  m.payload = {1.5f, -2.25f, 0.75f};
  const std::vector<std::uint8_t> good = encode(m);

  std::vector<std::uint8_t> bad_payload = good;
  bad_payload[kHeaderBytes + 2] ^= 0x01;
  EXPECT_THROW(decode(bad_payload), Error);

  // Corrupting the stored CRC itself must also be caught.
  std::vector<std::uint8_t> bad_crc = good;
  bad_crc[kHeaderBytes - 1] ^= 0x80;
  EXPECT_THROW(decode(bad_crc), Error);

  // The untouched frame still round-trips.
  EXPECT_EQ(decode(good).payload, m.payload);
}

TEST(Message, RejectsBadMagicAndUnknownKind) {
  Message m;
  m.payload = {1.0f};
  std::vector<std::uint8_t> good = encode(m);

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(decode(bad_magic), Error);

  // kind lives after magic(4) + version(2).
  std::vector<std::uint8_t> bad_kind = good;
  bad_kind[6] = 99;
  bad_kind[7] = 0;
  EXPECT_THROW(decode(bad_kind), Error);
}

// -- link profiles -------------------------------------------------------------

TEST(Link, ProfileNamesRoundTrip) {
  for (Profile p : all_profiles()) {
    EXPECT_EQ(profile_from_string(to_string(p)), p);
  }
  EXPECT_THROW(profile_from_string("dialup"), Error);
}

TEST(Link, FleetIsDeterministicPerSeed) {
  const auto a = make_links(Profile::kCellular, 8, Rng(5));
  const auto b = make_links(Profile::kCellular, 8, Rng(5));
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].latency_s, b[i].latency_s);
    EXPECT_EQ(a[i].bandwidth_Bps, b[i].bandwidth_Bps);
    EXPECT_EQ(a[i].compute_scale, b[i].compute_scale);
  }
}

TEST(Link, CellularVariesAcrossClientsLanDoesNot) {
  const auto lan = make_links(Profile::kLan, 4, Rng(5));
  for (const ClientLink& l : lan) {
    EXPECT_EQ(l.bandwidth_Bps, lan.front().bandwidth_Bps);
    EXPECT_EQ(l.drop_prob, 0.0);
  }
  const auto cell = make_links(Profile::kCellular, 16, Rng(5));
  bool varies = false;
  for (const ClientLink& l : cell) {
    EXPECT_GT(l.bandwidth_Bps, 0.0);
    EXPECT_GT(l.drop_prob, 0.0);
    if (l.bandwidth_Bps != cell.front().bandwidth_Bps) varies = true;
  }
  EXPECT_TRUE(varies);
}

TEST(Link, TransferSecondsIsLatencyPlusSerialization) {
  ClientLink link{.latency_s = 1.0, .bandwidth_Bps = 100.0, .jitter_s = 0.0};
  Rng rng(1);
  EXPECT_DOUBLE_EQ(transfer_seconds(link, 200, rng), 3.0);
}

// -- event queue ---------------------------------------------------------------

TEST(EventQueue, PopsByTimeThenPushOrder)
{
  EventQueue q;
  q.push({.time = 2.0, .client = 10});
  q.push({.time = 1.0, .client = 11});
  q.push({.time = 1.0, .client = 12});  // same time: push order breaks the tie
  q.push({.time = 0.5, .client = 13});
  EXPECT_EQ(q.pop().client, 13u);
  EXPECT_EQ(q.pop().client, 11u);
  EXPECT_EQ(q.pop().client, 12u);
  EXPECT_EQ(q.pop().client, 10u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FingerprintDistinguishesLogs) {
  std::vector<Event> a{{.time = 1.0, .kind = EventKind::kComputeDone}};
  std::vector<Event> b{{.time = 2.0, .kind = EventKind::kComputeDone}};
  EXPECT_EQ(fingerprint(a), fingerprint(a));
  EXPECT_NE(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint({}));
}

// -- simulator: deterministic timing -------------------------------------------

// Two ideal links (no jitter, no drops): every timestamp is exactly
// computable by hand.
NetworkConfig ideal_config() {
  NetworkConfig cfg;
  cfg.enabled = true;
  cfg.compute_s_per_sample = 0.01;
  return cfg;
}

std::vector<ClientLink> ideal_links(std::size_t n, double latency = 1.0,
                                    double bandwidth = 1000.0) {
  return std::vector<ClientLink>(
      n, ClientLink{.latency_s = latency, .bandwidth_Bps = bandwidth});
}

TEST(Simulator, RoundTimingMatchesHandComputation) {
  NetworkSimulator sim(ideal_config(), ideal_links(2), /*seed=*/1);
  // 10 floats each way = kHeaderBytes + 40 framed bytes; 100 samples x
  // 1 epoch = 1 s.
  const std::vector<ClientOp> ops{
      {.client = 0, .download_floats = 10, .upload_floats = 10,
       .num_samples = 100, .epochs = 1},
      {.client = 1, .download_floats = 10, .upload_floats = 10,
       .num_samples = 200, .epochs = 1},
  };
  const RoundReport report = sim.run_round(0, ops);
  const double transfer =
      1.0 + static_cast<double>(kHeaderBytes + 40) / 1000.0;
  EXPECT_NEAR(report.arrivals[0].time, transfer + 1.0 + transfer, 1e-12);
  EXPECT_NEAR(report.arrivals[1].time, transfer + 2.0 + transfer, 1e-12);
  EXPECT_EQ(report.accepted, 2u);
  // With no deadline and no stragglers, the round closes on the last
  // upload; the clock advances with it.
  EXPECT_NEAR(report.close, report.arrivals[1].time, 1e-12);
  EXPECT_NEAR(sim.now(), report.close, 1e-12);

  // The next round starts where this one closed.
  const RoundReport second = sim.run_round(1, ops);
  EXPECT_NEAR(second.start, report.close, 1e-12);
  EXPECT_GT(second.close, second.start);
}

TEST(Simulator, EmptyRoundClosesImmediately) {
  NetworkSimulator sim(ideal_config(), ideal_links(2), 1);
  const RoundReport report = sim.run_round(0, {});
  EXPECT_TRUE(report.arrivals.empty());
  EXPECT_EQ(report.accepted, 0u);
  EXPECT_DOUBLE_EQ(report.close, report.start);
  ASSERT_EQ(sim.log().size(), 1u);
  EXPECT_EQ(sim.log().back().kind, EventKind::kRoundClosed);
}

TEST(Simulator, RejectsDuplicateAndUnknownClients) {
  NetworkSimulator sim(ideal_config(), ideal_links(2), 1);
  EXPECT_THROW(
      sim.run_round(0, {{.client = 0, .upload_floats = 1},
                        {.client = 0, .upload_floats = 1}}),
      Error);
  EXPECT_THROW(sim.run_round(0, {{.client = 5, .upload_floats = 1}}), Error);
}

// -- simulator: determinism ----------------------------------------------------

TEST(Simulator, IdenticalSeedsGiveIdenticalLogs) {
  NetworkConfig cfg = ideal_config();
  cfg.profile = Profile::kCellular;
  cfg.straggler_frac = 0.75;

  std::vector<ClientOp> ops;
  for (std::size_t c = 0; c < 8; ++c) {
    ops.push_back({.client = c, .download_floats = 500, .upload_floats = 500,
                   .num_samples = 50 + 10 * c, .epochs = 2});
  }
  NetworkSimulator a(cfg, 8, /*seed=*/9);
  NetworkSimulator b(cfg, 8, /*seed=*/9);
  NetworkSimulator c(cfg, 8, /*seed=*/10);
  for (std::size_t r = 0; r < 3; ++r) {
    a.run_round(r, ops);
    b.run_round(r, ops);
    c.run_round(r, ops);
  }
  ASSERT_EQ(a.log().size(), b.log().size());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_DOUBLE_EQ(a.now(), b.now());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

// -- simulator: straggler cutoff and deadlines ---------------------------------

TEST(Simulator, StragglerCutoffDropsSlowestClient) {
  NetworkConfig cfg = ideal_config();
  cfg.straggler_frac = 0.5;  // need ceil(0.5 * 3) = 2 of 3 arrivals

  std::vector<ClientLink> links = ideal_links(3, /*latency=*/0.001);
  links[2].latency_s = 50.0;  // hopeless straggler
  NetworkSimulator sim(cfg, links, 1);

  std::vector<ClientOp> ops;
  for (std::size_t c = 0; c < 3; ++c) {
    ops.push_back({.client = c, .download_floats = 10, .upload_floats = 10,
                   .num_samples = 10, .epochs = 1});
  }
  const RoundReport report = sim.run_round(0, ops);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_TRUE(report.arrivals[0].delivered);
  EXPECT_FALSE(report.arrivals[0].late);
  EXPECT_TRUE(report.arrivals[2].delivered);
  EXPECT_TRUE(report.arrivals[2].late);
  // The round closed on the second on-time arrival, far before the
  // straggler's ~100 s round trip.
  EXPECT_LT(report.close, 1.0);
  // The late delivery is recorded as such in the log.
  EXPECT_TRUE(std::any_of(sim.log().begin(), sim.log().end(), [](const Event& e) {
    return e.kind == EventKind::kUploadLate && e.client == 2;
  }));
}

TEST(Simulator, AbsoluteDeadlineClosesTheRound) {
  NetworkConfig cfg = ideal_config();
  cfg.deadline_s = 1.0;

  std::vector<ClientLink> links = ideal_links(2, /*latency=*/0.01);
  links[1].latency_s = 10.0;
  NetworkSimulator sim(cfg, links, 1);

  std::vector<ClientOp> ops;
  for (std::size_t c = 0; c < 2; ++c) {
    ops.push_back({.client = c, .download_floats = 10, .upload_floats = 10,
                   .num_samples = 10, .epochs = 1});
  }
  const RoundReport report = sim.run_round(0, ops);
  EXPECT_DOUBLE_EQ(report.close, 1.0);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_TRUE(report.arrivals[1].late);
}

TEST(Simulator, ReliableRoundIgnoresDeadlineAndCutoff) {
  NetworkConfig cfg = ideal_config();
  cfg.deadline_s = 1.0;
  cfg.straggler_frac = 0.5;

  std::vector<ClientLink> links = ideal_links(2, /*latency=*/0.01);
  links[1].latency_s = 10.0;
  NetworkSimulator sim(cfg, links, 1);

  std::vector<ClientOp> ops;
  for (std::size_t c = 0; c < 2; ++c) {
    ops.push_back({.client = c, .download_floats = 10, .upload_floats = 10,
                   .num_samples = 10, .epochs = 1});
  }
  const RoundReport report = sim.run_round(0, ops, /*reliable=*/true);
  EXPECT_EQ(report.accepted, 2u);
  EXPECT_GT(report.close, 20.0);  // waited out the slow client
}

// -- simulator: drops, retries, backoff ----------------------------------------

TEST(Simulator, RetriesAreBoundedAndBackOff) {
  NetworkConfig cfg = ideal_config();
  cfg.max_retries = 2;
  cfg.backoff_base_s = 0.5;

  std::vector<ClientLink> links = ideal_links(1, /*latency=*/0.001);
  links[0].drop_prob = 1.0;  // every attempt is lost
  NetworkSimulator sim(cfg, links, 1);

  const std::vector<ClientOp> ops{{.client = 0, .download_floats = 10,
                                   .upload_floats = 10, .num_samples = 10,
                                   .epochs = 1}};
  const RoundReport report = sim.run_round(0, ops);
  EXPECT_FALSE(report.arrivals[0].delivered);
  EXPECT_EQ(report.arrivals[0].attempts, 3u);  // 1 send + 2 retries
  EXPECT_EQ(report.accepted, 0u);

  std::size_t attempts = 0;
  bool lost = false;
  for (const Event& e : sim.log()) {
    if (e.kind == EventKind::kUploadAttempt) ++attempts;
    if (e.kind == EventKind::kUploadLost) lost = true;
    EXPECT_NE(e.kind, EventKind::kUploadDelivered);
  }
  EXPECT_EQ(attempts, 3u);
  EXPECT_TRUE(lost);
  // The exponential backoff (0.5 + 1.0 s between attempts) is visible in
  // the final resolution time.
  EXPECT_GT(report.arrivals[0].time, 1.5);
}

TEST(Simulator, ReliableModeNeverLosesTheFinalAttempt) {
  NetworkConfig cfg = ideal_config();
  cfg.max_retries = 2;

  std::vector<ClientLink> links = ideal_links(1, /*latency=*/0.001);
  links[0].drop_prob = 1.0;
  NetworkSimulator sim(cfg, links, 1);

  const std::vector<ClientOp> ops{{.client = 0, .download_floats = 10,
                                   .upload_floats = 10, .num_samples = 10,
                                   .epochs = 1}};
  const RoundReport report = sim.run_round(0, ops, /*reliable=*/true);
  EXPECT_TRUE(report.arrivals[0].delivered);
  EXPECT_FALSE(report.arrivals[0].late);
  EXPECT_EQ(report.arrivals[0].attempts, 3u);
  EXPECT_EQ(report.accepted, 1u);
}

TEST(Simulator, ChurnedClientsReceiveButNeverUpload) {
  NetworkSimulator sim(ideal_config(), ideal_links(2), 1);
  const std::vector<ClientOp> ops{
      {.client = 0, .download_floats = 10, .upload_floats = 10,
       .num_samples = 10, .epochs = 1},
      {.client = 1, .download_floats = 10, .upload_floats = 10,
       .num_samples = 10, .epochs = 1, .churned = true},
  };
  const RoundReport report = sim.run_round(0, ops);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_FALSE(report.arrivals[1].delivered);
  std::size_t broadcasts = 0;
  for (const Event& e : sim.log()) {
    if (e.kind == EventKind::kBroadcastDelivered) ++broadcasts;
    if (e.kind == EventKind::kUploadAttempt) EXPECT_EQ(e.client, 0u);
  }
  EXPECT_EQ(broadcasts, 2u);  // the churned client still cost a broadcast
}

// -- federation integration ----------------------------------------------------

fl::FederationConfig net_config(std::size_t threads) {
  fl::FederationConfig cfg;
  cfg.threads = threads;
  cfg.local.epochs = 1;
  cfg.local.sgd.lr = 0.05;
  cfg.network.enabled = true;
  cfg.network.profile = Profile::kCellular;
  cfg.network.straggler_frac = 0.75;
  return cfg;
}

TEST(FederationNet, BitIdenticalAcrossThreadCounts) {
  auto [fed1, g1] = make_grouped_federation(6, 480, 21, net_config(1));
  auto [fed3, g3] = make_grouped_federation(6, 480, 21, net_config(3));

  algorithms::FedAvg algo;
  const fl::RunResult r1 = algo.run(fed1, 3);
  const fl::RunResult r3 = algo.run(fed3, 3);

  ASSERT_EQ(r1.rounds.size(), r3.rounds.size());
  for (std::size_t i = 0; i < r1.rounds.size(); ++i) {
    EXPECT_EQ(r1.rounds[i].acc_mean, r3.rounds[i].acc_mean);
    EXPECT_EQ(r1.rounds[i].cum_upload, r3.rounds[i].cum_upload);
    EXPECT_EQ(r1.rounds[i].sim_seconds, r3.rounds[i].sim_seconds);
  }
  ASSERT_TRUE(fed1.network_enabled());
  EXPECT_EQ(fed1.network()->fingerprint(), fed3.network()->fingerprint());
  EXPECT_GT(r1.final_round().sim_seconds, 0.0);
}

TEST(FederationNet, CommMeterMatchesDeliveredBytesInLog) {
  auto [fed, groups] = make_grouped_federation(6, 480, 22, net_config(2));
  algorithms::FedAvg algo;
  algo.run(fed, 3);

  ASSERT_TRUE(fed.network_enabled());
  const DeliveredBytes view = delivered_bytes(fed.network()->log());
  EXPECT_EQ(fed.comm().total_download(), view.download);
  EXPECT_EQ(fed.comm().total_upload(), view.upload);
  EXPECT_GT(view.download, 0u);
  EXPECT_GT(view.upload, 0u);
}

TEST(FederationNet, DisabledNetworkKeepsBareByteAccounting) {
  fl::FederationConfig off;
  off.local.epochs = 1;
  off.local.sgd.lr = 0.05;
  auto [fed, groups] = make_grouped_federation(4, 320, 23, off);

  algorithms::FedAvg algo;
  algo.run(fed, 2);
  EXPECT_FALSE(fed.network_enabled());
  EXPECT_DOUBLE_EQ(fed.sim_time(), 0.0);
  // 4 clients x 2 rounds x a full model both ways, no framing overhead.
  const std::uint64_t model_bytes = fl::CommMeter::float_bytes(fed.model_size());
  EXPECT_EQ(fed.comm().total_download(), model_bytes * 8);
  EXPECT_EQ(fed.comm().total_upload(), model_bytes * 8);
}

TEST(FederationNet, FaultTrajectoryBitIdenticalAcrossKernelThreads) {
  // Fault injection + screening layered on top of dropout, stragglers,
  // and the simulated network must not disturb the determinism
  // contract: the whole trajectory (weights fingerprints, metrics,
  // event log, quarantine ledger) is a function of the seed alone.
  auto faulted = [](std::size_t kernel_threads) {
    fl::FederationConfig cfg = net_config(2);
    cfg.kernel_threads = kernel_threads;
    cfg.dropout = 0.1;
    cfg.faults.enabled = true;
    cfg.faults.crash_prob = 0.1;
    cfg.faults.stale_prob = 0.1;
    cfg.faults.nan_prob = 0.15;
    cfg.faults.sign_flip_prob = 0.1;
    cfg.robust.validate.enabled = true;
    return cfg;
  };
  auto [fed0, g0] = make_grouped_federation(6, 480, 25, faulted(0));
  auto [fed1, g1] = make_grouped_federation(6, 480, 25, faulted(1));
  auto [fed4, g4] = make_grouped_federation(6, 480, 25, faulted(4));

  algorithms::FedAvg algo;
  const fl::RunResult r0 = algo.run(fed0, 4);
  const fl::RunResult r1 = algo.run(fed1, 4);
  const fl::RunResult r4 = algo.run(fed4, 4);

  for (const fl::RunResult* r : {&r1, &r4}) {
    ASSERT_EQ(r0.rounds.size(), r->rounds.size());
    for (std::size_t i = 0; i < r0.rounds.size(); ++i) {
      EXPECT_EQ(r0.rounds[i].weights_fp, r->rounds[i].weights_fp) << i;
      EXPECT_EQ(r0.rounds[i].acc_mean, r->rounds[i].acc_mean) << i;
      EXPECT_EQ(r0.rounds[i].cum_upload, r->rounds[i].cum_upload) << i;
    }
  }
  ASSERT_TRUE(fed0.network_enabled());
  EXPECT_EQ(fed0.network()->fingerprint(), fed1.network()->fingerprint());
  EXPECT_EQ(fed0.network()->fingerprint(), fed4.network()->fingerprint());
  EXPECT_EQ(fed0.quarantine().strike_counts(),
            fed1.quarantine().strike_counts());
  EXPECT_EQ(fed0.quarantine().strike_counts(),
            fed4.quarantine().strike_counts());
}

TEST(FederationNet, StragglersShrinkTheAggregatedCohort) {
  fl::FederationConfig cfg = net_config(2);
  cfg.network.straggler_frac = 0.5;
  auto [fed, groups] = make_grouped_federation(6, 480, 24, cfg);

  const std::vector<float> w0 = fed.template_model().flat_weights();
  const std::vector<std::size_t> everyone{0, 1, 2, 3, 4, 5};
  const auto updates = fed.train_clients(
      everyone, 0, [&](std::size_t) { return std::span<const float>(w0); });
  EXPECT_EQ(updates.size(), 3u);  // ceil(0.5 * 6) on-time arrivals accepted
}

}  // namespace
}  // namespace fedclust::net
