// Tests for the robustness layer: CRC32, the deterministic fault plan,
// payload corruption, server-side screening + quarantine, robust
// aggregation rules, and crash-recoverable checkpoints.
#include "robust/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "fl/federation.hpp"
#include "robust/aggregate.hpp"
#include "robust/checkpoint.hpp"
#include "robust/validate.hpp"
#include "tensor/kernels.hpp"
#include "test_helpers.hpp"
#include "utils/crc32.hpp"

namespace fedclust::robust {
namespace {

using fedclust::testing::make_grouped_federation;

// -- CRC32 --------------------------------------------------------------------

TEST(Crc32, MatchesZlibKnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, ChainsAcrossSplitBuffers) {
  const std::uint32_t whole = crc32("123456789", 9);
  const std::uint32_t part = crc32("123", 3);
  EXPECT_EQ(crc32("456789", 6, part), whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> buf(64, 0xA5);
  const std::uint32_t clean = crc32(buf.data(), buf.size());
  buf[17] ^= 0x04;
  EXPECT_NE(crc32(buf.data(), buf.size()), clean);
}

// -- fault plan ---------------------------------------------------------------

FaultConfig churn_config() {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crash_prob = 0.2;
  cfg.stale_prob = 0.1;
  cfg.nan_prob = 0.1;
  cfg.sign_flip_prob = 0.1;
  cfg.scale_prob = 0.1;
  return cfg;
}

TEST(FaultPlan, DecisionsAreDeterministic) {
  const FaultPlan a(churn_config(), 42);
  const FaultPlan b(churn_config(), 42);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(a.decide(r, c), b.decide(r, c));
      EXPECT_EQ(a.decide(r, c), a.decide(r, c));  // pure function
    }
  }
}

TEST(FaultPlan, DisabledNeverFires) {
  FaultConfig cfg = churn_config();
  cfg.enabled = false;
  const FaultPlan plan(cfg, 42);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(plan.decide(r, c), FaultKind::kNone);
    }
  }
}

TEST(FaultPlan, StartRoundSparesEarlierRounds) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crash_prob = 1.0;
  cfg.start_round = 3;
  const FaultPlan plan(cfg, 42);
  EXPECT_EQ(plan.decide(0, 0), FaultKind::kNone);
  EXPECT_EQ(plan.decide(2, 0), FaultKind::kNone);
  EXPECT_EQ(plan.decide(3, 0), FaultKind::kCrash);
}

TEST(FaultPlan, ByzantineCohortAlwaysSignFlips) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.byzantine_clients = {1, 4};
  const FaultPlan plan(cfg, 42);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(plan.decide(r, 1), FaultKind::kSignFlip);
    EXPECT_EQ(plan.decide(r, 4), FaultKind::kSignFlip);
    EXPECT_EQ(plan.decide(r, 0), FaultKind::kNone);  // no prob faults set
  }
  EXPECT_TRUE(plan.is_byzantine(4));
  EXPECT_FALSE(plan.is_byzantine(0));
}

TEST(FaultPlan, AttemptsDrawIndependently) {
  // A client crashing on attempt 0 must get a fresh draw on attempt 1:
  // with crash_prob 0.5, retries succeed for some (round, client).
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crash_prob = 0.5;
  const FaultPlan plan(cfg, 42);
  bool differs = false;
  for (std::size_t r = 0; r < 30 && !differs; ++r) {
    for (std::size_t c = 0; c < 8 && !differs; ++c) {
      differs = plan.decide(r, c, 0) != plan.decide(r, c, 1);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, FrequenciesTrackProbabilities) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crash_prob = 0.3;
  const FaultPlan plan(cfg, 7);
  std::size_t crashes = 0;
  constexpr std::size_t kTrials = 4000;
  for (std::size_t r = 0; r < kTrials / 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      if (plan.decide(r, c) == FaultKind::kCrash) ++crashes;
    }
  }
  EXPECT_NEAR(static_cast<double>(crashes) / kTrials, 0.3, 0.05);
}

TEST(FaultPlan, ValidatesProbabilities) {
  FaultConfig bad = churn_config();
  bad.crash_prob = -0.1;
  EXPECT_THROW(FaultPlan(bad, 42), Error);
  bad = churn_config();
  bad.crash_prob = 0.9;  // total 1.3
  EXPECT_THROW(FaultPlan(bad, 42), Error);
  bad = churn_config();
  bad.poison_frac = 0.0;
  EXPECT_THROW(FaultPlan(bad, 42), Error);
}

// -- payload corruption -------------------------------------------------------

TEST(PayloadFault, SignFlipReflectsAboutStart) {
  const std::vector<float> start{1.0f, -2.0f, 0.5f};
  std::vector<float> w{2.0f, -1.0f, 0.0f};
  apply_payload_fault(FaultKind::kSignFlip, {}, start, w, Rng(1));
  EXPECT_FLOAT_EQ(w[0], 0.0f);   // 2*1 - 2
  EXPECT_FLOAT_EQ(w[1], -3.0f);  // 2*(-2) - (-1)
  EXPECT_FLOAT_EQ(w[2], 1.0f);   // 2*0.5 - 0
}

TEST(PayloadFault, AmplifiedSignFlipScalesTheReflection) {
  FaultConfig cfg;
  cfg.sign_flip_scale = 4.0;
  const std::vector<float> start{1.0f};
  std::vector<float> w{2.0f};
  apply_payload_fault(FaultKind::kSignFlip, cfg, start, w, Rng(1));
  EXPECT_FLOAT_EQ(w[0], -3.0f);  // 1 - 4*(2-1)
  FaultConfig bad;
  bad.enabled = true;
  bad.sign_flip_scale = 0.0;
  EXPECT_THROW(FaultPlan(bad, 42), Error);
}

TEST(PayloadFault, ScaleBlowupScalesDelta) {
  FaultConfig cfg;
  cfg.blowup_factor = 10.0;
  const std::vector<float> start{1.0f, 1.0f};
  std::vector<float> w{2.0f, 0.0f};
  apply_payload_fault(FaultKind::kScaleBlowup, cfg, start, w, Rng(1));
  EXPECT_FLOAT_EQ(w[0], 11.0f);  // 1 + 10*(2-1)
  EXPECT_FLOAT_EQ(w[1], -9.0f);  // 1 + 10*(0-1)
}

TEST(PayloadFault, NanPoisonCorruptsExpectedCount) {
  FaultConfig cfg;
  cfg.poison_frac = 0.05;
  std::vector<float> w(200, 1.0f);
  const std::vector<float> start(200, 0.0f);
  apply_payload_fault(FaultKind::kNanPoison, cfg, start, w, Rng(3));
  std::size_t bad = 0;
  for (float v : w) {
    if (!std::isfinite(v)) ++bad;
  }
  // floor(0.05 * 200) = 10 draws; duplicates can only lower the count.
  EXPECT_GE(bad, 1u);
  EXPECT_LE(bad, 10u);
}

TEST(PayloadFault, BenignKindsLeavePayloadUntouched) {
  const std::vector<float> start{1.0f, 2.0f};
  for (const FaultKind k :
       {FaultKind::kNone, FaultKind::kCrash, FaultKind::kStaleReplay}) {
    std::vector<float> w{3.0f, 4.0f};
    apply_payload_fault(k, {}, start, w, Rng(1));
    EXPECT_EQ(w, (std::vector<float>{3.0f, 4.0f}));
  }
}

// -- screening + quarantine ---------------------------------------------------

ValidationPolicy strict_policy() {
  ValidationPolicy p;
  p.enabled = true;
  p.envelope_factor = 3.0;
  p.min_envelope = 1e-6;
  return p;
}

/// Builds a screening batch of `n` honest clients whose deltas have norm
/// ~1, plus whatever the test mutates afterwards.
struct Batch {
  std::vector<std::vector<float>> starts;
  std::vector<std::vector<float>> updates;
  std::vector<std::size_t> clients;

  std::vector<Verdict> screen(const ValidationPolicy& p,
                              std::size_t dim = 4) const {
    std::vector<std::span<const float>> u(updates.begin(), updates.end());
    std::vector<std::span<const float>> s(starts.begin(), starts.end());
    return screen_updates(u, s, clients, dim, p);
  }
};

Batch honest_batch(std::size_t n) {
  Batch b;
  for (std::size_t i = 0; i < n; ++i) {
    b.starts.push_back({0.0f, 0.0f, 0.0f, 0.0f});
    b.updates.push_back({1.0f, 0.0f, 0.0f, 0.0f});  // delta norm 1
    b.clients.push_back(i);
  }
  return b;
}

TEST(Screening, AcceptsHonestCohort) {
  const Batch b = honest_batch(5);
  for (const Verdict& v : b.screen(strict_policy())) {
    EXPECT_TRUE(v.accepted());
    EXPECT_NEAR(v.delta_norm, 1.0, 1e-6);
  }
}

TEST(Screening, RejectsBadShape) {
  Batch b = honest_batch(3);
  b.updates[1] = {1.0f, 2.0f};  // wrong dimension
  const auto verdicts = b.screen(strict_policy());
  EXPECT_EQ(verdicts[1].reason, RejectReason::kBadShape);
  EXPECT_TRUE(verdicts[0].accepted());
  EXPECT_TRUE(verdicts[2].accepted());
}

TEST(Screening, RejectsNonFinite) {
  Batch b = honest_batch(4);
  b.updates[2][1] = std::numeric_limits<float>::quiet_NaN();
  b.updates[3][0] = std::numeric_limits<float>::infinity();
  const auto verdicts = b.screen(strict_policy());
  EXPECT_EQ(verdicts[2].reason, RejectReason::kNonFinite);
  EXPECT_EQ(verdicts[3].reason, RejectReason::kNonFinite);
}

TEST(Screening, RejectsNormEnvelopeOutlier) {
  Batch b = honest_batch(5);
  b.updates[4] = {100.0f, 0.0f, 0.0f, 0.0f};  // 100x the honest norm
  const auto verdicts = b.screen(strict_policy());
  EXPECT_EQ(verdicts[4].reason, RejectReason::kNormEnvelope);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(verdicts[i].accepted()) << i;
  }
}

TEST(Screening, EnvelopeNeedsAMajorityCohort) {
  // With only two arrivals the median is not a trustworthy notion of
  // "normal", so the envelope must not fire.
  Batch b = honest_batch(2);
  b.updates[1] = {100.0f, 0.0f, 0.0f, 0.0f};
  for (const Verdict& v : b.screen(strict_policy())) {
    EXPECT_TRUE(v.accepted());
  }
}

TEST(Screening, ZeroEnvelopeFactorDisablesOnlyTheNormCheck) {
  // screen_updates is a pure screener — the `enabled` gate lives in the
  // engine. envelope_factor <= 0 turns off the norm envelope, but shape
  // and finite checks always run.
  Batch b = honest_batch(5);
  b.updates[0][0] = std::numeric_limits<float>::quiet_NaN();
  b.updates[4] = {100.0f, 0.0f, 0.0f, 0.0f};
  ValidationPolicy p = strict_policy();
  p.envelope_factor = 0.0;
  const auto verdicts = b.screen(p);
  EXPECT_EQ(verdicts[0].reason, RejectReason::kNonFinite);
  EXPECT_TRUE(verdicts[4].accepted());  // outlier passes without envelope
}

TEST(Quarantine, StrikesAccumulateToExclusion) {
  Quarantine q(2);
  EXPECT_FALSE(q.strike(3));  // strike 1 of 2
  EXPECT_FALSE(q.quarantined(3));
  EXPECT_TRUE(q.strike(3));  // strike 2 tips it
  EXPECT_TRUE(q.quarantined(3));
  EXPECT_EQ(q.strikes(3), 2u);
  EXPECT_EQ(q.strikes(0), 0u);
  q.strike(1);
  q.strike(1);
  EXPECT_EQ(q.quarantined_clients(), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(q.total_strikes(), 4u);
}

TEST(Quarantine, RestoreRoundTripsState) {
  Quarantine q(2);
  q.strike(0);
  q.strike(2);
  q.strike(2);
  Quarantine r;
  r.restore(q.strike_counts(), q.max_strikes());
  EXPECT_EQ(r.quarantined_clients(), q.quarantined_clients());
  EXPECT_EQ(r.strikes(0), 1u);
  EXPECT_EQ(r.total_strikes(), 3u);
}

// -- robust aggregation -------------------------------------------------------

std::vector<std::span<const float>> as_spans(
    const std::vector<std::vector<float>>& v) {
  return {v.begin(), v.end()};
}

TEST(RobustAggregate, TrimmedMeanDropsOutliers) {
  const std::vector<std::vector<float>> inputs{
      {1.0f, -100.0f}, {2.0f, 1.0f}, {3.0f, 2.0f}, {4.0f, 3.0f},
      {100.0f, 4.0f}};
  RobustConfig cfg;
  cfg.trim_frac = 0.2;  // drop 1 from each side of 5
  const std::vector<double> coeffs(5, 0.2);
  const auto out =
      robust_aggregate(as_spans(inputs), coeffs, AggregationRule::kTrimmedMean,
                       cfg, {}, nullptr);
  EXPECT_FLOAT_EQ(out[0], 3.0f);  // mean of {2,3,4}
  EXPECT_FLOAT_EQ(out[1], 2.0f);  // mean of {1,2,3}
}

TEST(RobustAggregate, CoordinateMedianOddAndEven) {
  const std::vector<std::vector<float>> odd{{1.0f}, {5.0f}, {100.0f}};
  const std::vector<std::vector<float>> even{{1.0f}, {2.0f}, {4.0f}, {8.0f}};
  RobustConfig cfg;
  const auto m3 = robust_aggregate(as_spans(odd), {1, 1, 1},
                                   AggregationRule::kCoordinateMedian, cfg, {},
                                   nullptr);
  EXPECT_FLOAT_EQ(m3[0], 5.0f);
  const auto m4 = robust_aggregate(as_spans(even), {1, 1, 1, 1},
                                   AggregationRule::kCoordinateMedian, cfg, {},
                                   nullptr);
  EXPECT_FLOAT_EQ(m4[0], 3.0f);  // midpoint of 2 and 4
}

TEST(RobustAggregate, NormClipBoundsTheBlowup) {
  // Two honest unit deltas and a 100x blow-up about reference 0: the
  // outlier is clipped to the median norm (1), so the weighted mean of
  // the clipped updates is exactly 1.
  const std::vector<std::vector<float>> inputs{{1.0f}, {1.0f}, {100.0f}};
  RobustConfig cfg;
  cfg.clip_factor = 1.0;
  const std::vector<float> reference{0.0f};
  const std::vector<double> coeffs{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto out =
      robust_aggregate(as_spans(inputs), coeffs, AggregationRule::kNormClip,
                       cfg, reference, nullptr);
  EXPECT_NEAR(out[0], 1.0f, 1e-6);
}

TEST(RobustAggregate, BitIdenticalAcrossPoolSizes) {
  // Large enough to cross the chunking threshold so the parallel path
  // actually engages.
  constexpr std::size_t kDim = 1 << 15;
  Rng rng(11);
  std::vector<std::vector<float>> inputs(5, std::vector<float>(kDim));
  for (auto& v : inputs) {
    for (float& x : v) x = static_cast<float>(rng.normal());
  }
  const std::vector<double> coeffs(5, 0.2);
  std::vector<float> reference(kDim, 0.0f);
  RobustConfig cfg;
  ThreadPool one(1), four(4);
  for (const AggregationRule rule :
       {AggregationRule::kTrimmedMean, AggregationRule::kCoordinateMedian,
        AggregationRule::kNormClip}) {
    const auto serial = robust_aggregate(as_spans(inputs), coeffs, rule, cfg,
                                         reference, nullptr);
    EXPECT_EQ(serial, robust_aggregate(as_spans(inputs), coeffs, rule, cfg,
                                       reference, &one))
        << to_string(rule);
    EXPECT_EQ(serial, robust_aggregate(as_spans(inputs), coeffs, rule, cfg,
                                       reference, &four))
        << to_string(rule);
  }
}

TEST(RobustAggregate, SparseTrimmedMeanSkipsNonParticipants) {
  // Reference fill {10, 20}. Coordinate 0: updates {1, 2, 3, 100, 10}
  // — the last equals the fill, so only four participate; trim_frac
  // 0.25 drops 1 from each side → mean of {2, 3}. Coordinate 1: only
  // one update moved it, floor(0.25·1) = 0 trimmed → its value alone.
  const std::vector<std::vector<float>> inputs{{1.0f, 20.0f},
                                               {2.0f, 20.0f},
                                               {3.0f, 7.0f},
                                               {100.0f, 20.0f},
                                               {10.0f, 20.0f}};
  const std::vector<float> fill{10.0f, 20.0f};
  const auto out = sparse_trimmed_mean(as_spans(inputs), 0.25, fill, nullptr);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 7.0f);
}

TEST(RobustAggregate, SparseTrimmedMeanKeepsUntouchedCoordinates) {
  // Nobody shipped coordinate 1: it stays at the reference bit for bit.
  const std::vector<std::vector<float>> inputs{{1.0f, 20.0f}, {3.0f, 20.0f}};
  const std::vector<float> fill{10.0f, 20.0f};
  const auto out = sparse_trimmed_mean(as_spans(inputs), 0.2, fill, nullptr);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_EQ(out[1], 20.0f);
}

TEST(RobustAggregate, SparseTrimmedMeanDenseMatchesClassic) {
  // With every coordinate shipped (all values differ from the fill) the
  // sparse rule is the classic trimmed mean over all n updates.
  const std::vector<std::vector<float>> inputs{
      {1.0f, -100.0f}, {2.0f, 1.0f}, {3.0f, 2.0f}, {4.0f, 3.0f},
      {100.0f, 4.0f}};
  RobustConfig cfg;
  cfg.trim_frac = 0.2;
  const std::vector<double> coeffs(5, 0.2);
  const auto classic =
      robust_aggregate(as_spans(inputs), coeffs, AggregationRule::kTrimmedMean,
                       cfg, {}, nullptr);
  const std::vector<float> fill(2, 777.0f);
  const auto sparse = sparse_trimmed_mean(as_spans(inputs), 0.2, fill, nullptr);
  EXPECT_EQ(classic, sparse);
}

TEST(RobustAggregate, SparseTrimmedMeanShrinksTrimToKeepOne) {
  // Two participants at trim_frac 0.4: floor(0.4·2) = 0... but at five
  // participants floor(0.4·5) = 2 would trim 4 of 5 — fine (one left);
  // at two participants with trim_frac 0.49 the shrink keeps both.
  const std::vector<std::vector<float>> inputs{{1.0f}, {3.0f}};
  const std::vector<float> fill{0.0f};
  const auto out = sparse_trimmed_mean(as_spans(inputs), 0.49, fill, nullptr);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_THROW(sparse_trimmed_mean(as_spans(inputs), 0.5, fill, nullptr),
               Error);
}

TEST(RobustAggregate, WeightedMeanIsTheEnginesJob) {
  const std::vector<std::vector<float>> inputs{{1.0f}, {2.0f}};
  EXPECT_THROW(robust_aggregate(as_spans(inputs), {0.5, 0.5},
                                AggregationRule::kWeightedMean, {}, {},
                                nullptr),
               Error);
}

TEST(RobustAggregate, RuleNamesRoundTrip) {
  for (const AggregationRule r :
       {AggregationRule::kWeightedMean, AggregationRule::kTrimmedMean,
        AggregationRule::kCoordinateMedian, AggregationRule::kNormClip}) {
    EXPECT_EQ(aggregation_rule_from_string(to_string(r)), r);
  }
  EXPECT_THROW(aggregation_rule_from_string("krum"), Error);
}

TEST(FederationAggregate, WeightedMeanRuleMatchesWeightedAverage) {
  // The kWeightedMean dispatch must be the PR-3 fused kernel path,
  // bit-for-bit.
  auto [fed, groups] = make_grouped_federation(4);
  std::vector<fl::ClientUpdate> updates;
  Rng rng(21);
  for (std::size_t c = 0; c < 3; ++c) {
    fl::ClientUpdate u;
    u.client_id = c;
    u.num_samples = 10 + c;
    u.weights.resize(fed.model_size());
    for (float& x : u.weights) x = static_cast<float>(rng.normal());
    updates.push_back(std::move(u));
  }
  EXPECT_EQ(fed.aggregate(updates), fl::weighted_average(updates));
}

TEST(FederationAggregate, TrimmedMeanRuleDispatchesToRobust) {
  fl::FederationConfig cfg;
  cfg.robust.rule = AggregationRule::kTrimmedMean;
  cfg.robust.trim_frac = 0.34;  // drop 1 from each side of 3
  auto [fed, groups] = make_grouped_federation(4, 480, 42, cfg);
  std::vector<fl::ClientUpdate> updates;
  for (const float v : {1.0f, 2.0f, 300.0f}) {
    fl::ClientUpdate u;
    u.client_id = updates.size();
    u.num_samples = 1;
    u.weights.assign(fed.model_size(), v);
    updates.push_back(std::move(u));
  }
  const auto out = fed.aggregate(updates);
  for (const float x : out) EXPECT_FLOAT_EQ(x, 2.0f);
}

// -- simd/scalar fault-pattern parity -----------------------------------------

TEST(FaultParity, DecisionsAndQuarantineMatchAcrossSimdDispatch) {
  // Fault draws and strike accounting must not depend on which kernel
  // table is active. Trained weights MAY differ bitwise between scalar
  // and SIMD builds, so this compares decision patterns, not weights:
  // NaN-poison rejections fire on the fault decision alone.
  fl::FederationConfig cfg;
  cfg.local.epochs = 1;
  cfg.local.sgd.lr = 0.05;
  cfg.faults.enabled = true;
  cfg.faults.nan_prob = 0.4;
  cfg.robust.validate.enabled = true;
  cfg.robust.validate.envelope_factor = 0.0;  // finite check only
  cfg.robust.validate.max_strikes = 2;

  auto run = [&](bool simd) {
    ops::set_simd_enabled(simd);
    auto [fed, groups] = make_grouped_federation(6, 480, 33, cfg);
    const std::vector<float> w0 = fed.template_model().flat_weights();
    std::vector<std::vector<std::size_t>> accepted_per_round;
    for (std::size_t r = 0; r < 4; ++r) {
      fed.comm().begin_round(r);
      const auto ids = fed.sample_clients(r);
      const auto updates = fed.train_clients(
          ids, r, [&](std::size_t) { return std::span<const float>(w0); });
      std::vector<std::size_t> accepted;
      for (const auto& u : updates) accepted.push_back(u.client_id);
      accepted_per_round.push_back(std::move(accepted));
    }
    auto counts = fed.quarantine().strike_counts();
    return std::pair(accepted_per_round, counts);
  };

  const auto scalar = run(false);
  const auto simd = run(true);
  ops::set_simd_enabled(true);  // leave the process in its default state
  EXPECT_EQ(scalar.first, simd.first);
  EXPECT_EQ(scalar.second, simd.second);
  // Sanity: the scenario actually exercised rejections.
  std::size_t total = 0;
  for (std::size_t c : scalar.second) total += c;
  EXPECT_GT(total, 0u);
}

// -- checkpoints --------------------------------------------------------------

std::string temp_ckpt_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

RunCheckpoint sample_checkpoint() {
  RunCheckpoint ck;
  ck.next_round = 5;
  ck.seed = 42;
  ck.labels = {0, 1, 0, 1};
  ck.cluster_weights = {{1.0f, 2.0f, 3.0f}, {-1.0f, 0.5f, 0.0f}};
  ck.partial_weights = {{0.1f}, {0.2f}, {}, {0.4f}};  // client 2 deferred
  ck.rounds.push_back({0, 0.25, 0.01, 2.0, 100, 200, 2, 1.5, 0xDEADBEEFu});
  ck.rounds.push_back({1, 0.5, 0.02, 1.0, 300, 600, 2, 3.0, 0xCAFEBABEu});
  ck.comm.round_download = {200, 400};
  ck.comm.round_upload = {100, 200};
  ck.comm.client_download = {150, 150, 150, 150};
  ck.comm.client_upload = {75, 75, 75, 75};
  ck.comm.total_download = 600;
  ck.comm.total_upload = 300;
  ck.net.present = true;
  ck.net.clock = 12.5;
  ck.net.log.push_back(
      {1.0, 0, net::EventKind::kBroadcastDelivered, 0, 2, 0, 128});
  ck.net.log.push_back({2.5, 1, net::EventKind::kUploadDelivered, 0, 2, 1, 96});
  ck.quarantine_counts = {0, 2, 0, 1};
  ck.quarantine_max_strikes = 2;
  return ck;
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = temp_ckpt_path("fedclust_ckpt_roundtrip.ckpt");
  const RunCheckpoint ck = sample_checkpoint();
  save_checkpoint(ck, path);
  const RunCheckpoint back = load_checkpoint(path);
  std::filesystem::remove(path);

  EXPECT_EQ(back.next_round, ck.next_round);
  EXPECT_EQ(back.seed, ck.seed);
  EXPECT_EQ(back.labels, ck.labels);
  EXPECT_EQ(back.cluster_weights, ck.cluster_weights);
  EXPECT_EQ(back.partial_weights, ck.partial_weights);
  ASSERT_EQ(back.rounds.size(), ck.rounds.size());
  for (std::size_t i = 0; i < ck.rounds.size(); ++i) {
    EXPECT_EQ(back.rounds[i].round, ck.rounds[i].round);
    EXPECT_EQ(back.rounds[i].acc_mean, ck.rounds[i].acc_mean);
    EXPECT_EQ(back.rounds[i].acc_std, ck.rounds[i].acc_std);
    EXPECT_EQ(back.rounds[i].train_loss, ck.rounds[i].train_loss);
    EXPECT_EQ(back.rounds[i].cum_upload, ck.rounds[i].cum_upload);
    EXPECT_EQ(back.rounds[i].cum_download, ck.rounds[i].cum_download);
    EXPECT_EQ(back.rounds[i].num_clusters, ck.rounds[i].num_clusters);
    EXPECT_EQ(back.rounds[i].sim_seconds, ck.rounds[i].sim_seconds);
    EXPECT_EQ(back.rounds[i].weights_fp, ck.rounds[i].weights_fp);
  }
  EXPECT_EQ(back.comm.round_download, ck.comm.round_download);
  EXPECT_EQ(back.comm.round_upload, ck.comm.round_upload);
  EXPECT_EQ(back.comm.client_download, ck.comm.client_download);
  EXPECT_EQ(back.comm.client_upload, ck.comm.client_upload);
  EXPECT_EQ(back.comm.total_download, ck.comm.total_download);
  EXPECT_EQ(back.comm.total_upload, ck.comm.total_upload);
  EXPECT_EQ(back.net.present, ck.net.present);
  EXPECT_EQ(back.net.clock, ck.net.clock);
  ASSERT_EQ(back.net.log.size(), ck.net.log.size());
  EXPECT_EQ(net::fingerprint(back.net.log), net::fingerprint(ck.net.log));
  EXPECT_EQ(back.quarantine_counts, ck.quarantine_counts);
  EXPECT_EQ(back.quarantine_max_strikes, ck.quarantine_max_strikes);
}

TEST(Checkpoint, CorruptedFileFailsLoudly) {
  const std::string path = temp_ckpt_path("fedclust_ckpt_corrupt.ckpt");
  save_checkpoint(sample_checkpoint(), path);

  // Flip one bit in the middle of the body.
  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileFailsLoudly) {
  const std::string path = temp_ckpt_path("fedclust_ckpt_trunc.ckpt");
  save_checkpoint(sample_checkpoint(), path);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(load_checkpoint(path), Error);
  std::filesystem::remove(path);
  EXPECT_THROW(load_checkpoint(path), Error);  // missing file
}

}  // namespace
}  // namespace fedclust::robust
