// Tests for the drift-robustness subsystem:
//  * DriftPlan — deterministic scenario generation (rotation, shift,
//    departures, newcomer generations) from splittable seed streams.
//  * DriftFleet — lazy transformed shards with signature-keyed caching
//    and a bit-exact pass-through before any event applies.
//  * DriftFederation — sampling/evaluation honour churn, newcomers do
//    not inherit quarantine strikes, departures never wedge quorum.
//  * DriftDetector — windowed mean-shift with hysteresis + cooldown.
//  * DriftDynamic — Gaussian soft-membership reassignment and the
//    split/merge recluster repair.
//  * DriftRecovery — end to end: static FedClust degrades permanently
//    under an injected drift, FedClust-dynamic detects and recovers.
//  * DriftDeterminism / DriftResume — bit-identity across kernel-thread
//    counts and FCKP v3 kill/resume points.
//  * DriftServe — hot-reloading a re-clustered registry snapshot.
// CI runs `^Drift` under TSan alongside the async suites.
#include "robust/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <span>

#include "core/fedclust.hpp"
#include "cluster/dynamic.hpp"
#include "fl/drift.hpp"
#include "fl/drift_fleet.hpp"
#include "fl/fleet.hpp"
#include "serve/registry.hpp"
#include "test_helpers.hpp"
#include "utils/error.hpp"

namespace fedclust {
namespace {

using testing::make_clients;
using testing::make_grouped_federation;
using testing::tiny_pool;

robust::DriftConfig rotation_at(std::size_t round,
                                std::vector<std::size_t> slots,
                                std::size_t rotate_by = 2) {
  robust::DriftConfig cfg;
  cfg.enabled = true;
  robust::DriftEvent e;
  e.round = round;
  e.kind = robust::DriftKind::kLabelRotation;
  e.slots = std::move(slots);
  e.rotate_by = rotate_by;
  cfg.events.push_back(e);
  return cfg;
}

// -- DriftPlan ----------------------------------------------------------------

TEST(DriftPlan, RotationStartsAtScheduledRound) {
  const data::Dataset pool = tiny_pool(64, 9);
  const robust::DriftPlan plan(rotation_at(3, {0}), /*base_seed=*/9,
                               /*num_clients=*/4, /*num_classes=*/4);
  EXPECT_EQ(plan.transform_signature(2, 0), 0u);
  EXPECT_NE(plan.transform_signature(3, 0), 0u);
  EXPECT_EQ(plan.transform_signature(3, 1), 0u);  // slot 1 untouched

  const data::Dataset rotated = plan.transform(3, 0, pool, /*split_tag=*/0);
  ASSERT_EQ(rotated.size(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(rotated.label(i), (pool.label(i) + 2) % 4) << i;
  }
  // Before the event the transform is the identity.
  const data::Dataset same = plan.transform(2, 0, pool, 0);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(same.label(i), pool.label(i)) << i;
  }
}

TEST(DriftPlan, FractionalCohortsAreDeterministic) {
  robust::DriftConfig cfg;
  cfg.enabled = true;
  robust::DriftEvent e;
  e.round = 2;
  e.kind = robust::DriftKind::kDeparture;
  e.frac = 0.5;
  cfg.events.push_back(e);
  const robust::DriftPlan a(cfg, 7, 10, 4);
  const robust::DriftPlan b(cfg, 7, 10, 4);
  EXPECT_EQ(a.event_slots(0), b.event_slots(0));
  EXPECT_EQ(a.event_slots(0).size(), 5u);
  const robust::DriftPlan other_seed(cfg, 8, 10, 4);
  EXPECT_NE(a.event_slots(0), other_seed.event_slots(0));
}

TEST(DriftPlan, DepartureDeactivatesUntilArrival) {
  robust::DriftConfig cfg;
  cfg.enabled = true;
  robust::DriftEvent leave;
  leave.round = 2;
  leave.kind = robust::DriftKind::kDeparture;
  leave.slots = {1};
  robust::DriftEvent arrive;
  arrive.round = 4;
  arrive.kind = robust::DriftKind::kArrival;
  arrive.slots = {1};
  cfg.events = {leave, arrive};
  const robust::DriftPlan plan(cfg, 11, 3, 4);

  EXPECT_TRUE(plan.active(1, 1));
  EXPECT_FALSE(plan.active(2, 1));
  EXPECT_FALSE(plan.active(3, 1));
  EXPECT_TRUE(plan.active(4, 1));
  EXPECT_TRUE(plan.active(3, 0));  // other slots unaffected

  EXPECT_EQ(plan.generation(3, 1), 0u);
  EXPECT_EQ(plan.generation(4, 1), 1u);
  EXPECT_EQ(plan.departures_at(2), std::vector<std::size_t>{1});
  EXPECT_EQ(plan.arrivals_at(4), std::vector<std::size_t>{1});
  EXPECT_TRUE(plan.arrivals_at(3).empty());
}

TEST(DriftPlan, NewcomerGenerationsRotateLabels) {
  const data::Dataset pool = tiny_pool(48, 5);
  robust::DriftConfig cfg;
  cfg.enabled = true;
  robust::DriftEvent leave;
  leave.round = 2;
  leave.kind = robust::DriftKind::kDeparture;
  leave.slots = {0};
  robust::DriftEvent arrive;
  arrive.round = 3;
  arrive.kind = robust::DriftKind::kArrival;
  arrive.slots = {0};
  cfg.events = {leave, arrive};
  const robust::DriftPlan plan(cfg, 13, 2, 4);

  // The newcomer is a different client: non-identity signature, labels
  // rotated by a per-(slot, generation) draw — consistently per sample.
  EXPECT_NE(plan.transform_signature(3, 0), 0u);
  const data::Dataset fresh = plan.transform(3, 0, pool, 0);
  const std::size_t delta =
      (static_cast<std::size_t>(fresh.label(0)) + 4 -
       static_cast<std::size_t>(pool.label(0))) % 4;
  EXPECT_NE(delta, 0u);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(fresh.label(i), (pool.label(i) + static_cast<int>(delta)) % 4);
  }

  // With rotation off the newcomer replays the slot's base shard.
  robust::DriftConfig plain = cfg;
  plain.rotate_newcomers = false;
  const robust::DriftPlan replay(plain, 13, 2, 4);
  const data::Dataset base = replay.transform(3, 0, pool, 0);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(base.label(i), pool.label(i));
  }
}

TEST(DriftPlan, LabelShiftHitsExpectedFraction) {
  const data::Dataset pool = tiny_pool(256, 21);
  robust::DriftConfig cfg;
  cfg.enabled = true;
  robust::DriftEvent e;
  e.round = 1;
  e.kind = robust::DriftKind::kLabelShift;
  e.slots = {0};
  e.shift_frac = 1.0;
  e.target_class = 2;
  cfg.events.push_back(e);
  const robust::DriftPlan all(cfg, 3, 1, 4);
  const data::Dataset shifted = all.transform(1, 0, pool, 0);
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    EXPECT_EQ(shifted.label(i), 2);
  }

  cfg.events[0].shift_frac = 0.5;
  const robust::DriftPlan half(cfg, 3, 1, 4);
  const data::Dataset a = half.transform(1, 0, pool, 0);
  const data::Dataset b = half.transform(1, 0, pool, 0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.label(i), b.label(i)) << "shift draws must be deterministic";
    if (a.label(i) != pool.label(i)) ++moved;
  }
  EXPECT_GT(moved, pool.size() / 5);
  EXPECT_LT(moved, pool.size());
  // Train and test splits draw independently.
  const data::Dataset test_split = half.transform(1, 0, pool, 1);
  std::size_t differs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.label(i) != test_split.label(i)) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(DriftPlan, ValidatesEvents) {
  robust::DriftConfig cfg;
  cfg.enabled = true;
  robust::DriftEvent e;
  e.round = 0;  // formation round is pre-drift by definition
  e.slots = {0};
  cfg.events.push_back(e);
  EXPECT_THROW(robust::DriftPlan(cfg, 1, 2, 4), Error);

  cfg.events[0].round = 1;
  cfg.events[0].rotate_by = 4;  // identity rotation mod 4 classes
  EXPECT_THROW(robust::DriftPlan(cfg, 1, 2, 4), Error);
}

// -- DriftFleet ---------------------------------------------------------------

TEST(DriftFleet, PassesThroughBeforeEventsAndCachesAfter) {
  const data::Dataset pool = tiny_pool(96, 17);
  Rng prng = Rng(17).split(3);
  const partition::Partition part = partition::grouped_label_partition(
      pool, 4, {{0, 1}, {2, 3}}, prng);
  auto inner = std::make_shared<fl::EagerFleet>(
      make_clients(pool, part, 17));
  auto plan = std::make_shared<const robust::DriftPlan>(
      rotation_at(2, {0}), 17, 4, 4);
  fl::DriftFleet fleet(inner, plan);

  fleet.set_round(1);
  // Identity transform: the inner shard is served by pointer, no copy.
  EXPECT_EQ(fleet.get(0).get(), inner->get(0).get());

  fleet.set_round(2);
  const auto first = fleet.get(0);
  EXPECT_NE(first.get(), inner->get(0).get());
  for (std::size_t i = 0; i < first->train.size(); ++i) {
    EXPECT_EQ(first->train.label(i), (inner->get(0)->train.label(i) + 2) % 4);
  }
  // Same signature → cached shard, served by pointer.
  EXPECT_EQ(fleet.get(0).get(), first.get());
  // Untouched slots stay pass-through at any round.
  EXPECT_EQ(fleet.get(1).get(), inner->get(1).get());
}

// -- DriftFederation ----------------------------------------------------------

TEST(DriftFederation, SamplingAndEvaluationHonourDeparture) {
  fl::FederationConfig cfg;
  cfg.drift.enabled = true;
  robust::DriftEvent leave;
  leave.round = 2;
  leave.kind = robust::DriftKind::kDeparture;
  leave.slots = {0};
  cfg.drift.events.push_back(leave);
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);

  const std::vector<std::size_t> before = fed.sample_clients(1);
  EXPECT_EQ(before.size(), 6u);
  const std::vector<std::size_t> after = fed.sample_clients(2);
  ASSERT_EQ(after.size(), 5u);
  for (const std::size_t c : after) EXPECT_NE(c, 0u);

  EXPECT_TRUE(fed.client_active(1, 0));
  EXPECT_FALSE(fed.client_active(2, 0));

  // Departed clients are NaN in per_client and excluded from the mean.
  fed.drift_advance(2);
  const std::vector<float> w = fed.template_model().flat_weights();
  const fl::AccuracySummary acc =
      fed.evaluate_personalized([&](std::size_t) {
        return std::span<const float>(w);
      });
  ASSERT_EQ(acc.per_client.size(), 6u);
  EXPECT_TRUE(std::isnan(acc.per_client[0]));
  double mean = 0.0;
  for (std::size_t i = 1; i < 6; ++i) mean += acc.per_client[i];
  EXPECT_DOUBLE_EQ(acc.mean, mean / 5.0);
}

TEST(DriftFederation, NewcomerDoesNotInheritStrikes) {
  fl::FederationConfig cfg;
  cfg.robust.validate.enabled = true;
  cfg.robust.validate.max_strikes = 2;
  cfg.drift.enabled = true;
  robust::DriftEvent leave;
  leave.round = 1;
  leave.kind = robust::DriftKind::kDeparture;
  leave.slots = {2};
  robust::DriftEvent arrive;
  arrive.round = 2;
  arrive.kind = robust::DriftKind::kArrival;
  arrive.slots = {2};
  cfg.drift.events = {leave, arrive};
  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);

  fed.quarantine().strike(2);
  fed.quarantine().strike(2);
  ASSERT_TRUE(fed.quarantine().quarantined(2));

  // Advancing over the arrival wipes the departed tenant's ledger.
  fed.drift_advance(2);
  EXPECT_FALSE(fed.quarantine().quarantined(2));
  EXPECT_EQ(fed.quarantine().strikes(2), 0u);
}

TEST(DriftFederation, DepartedClusterDoesNotWedgeTheRun) {
  // Group 1's entire membership departs mid-run: its cluster simply
  // stops training and the run completes with finite metrics.
  fl::FederationConfig cfg;
  cfg.drift.enabled = true;
  auto [probe, probe_groups] = make_grouped_federation(6, 480, 42);
  std::vector<std::size_t> group1;
  for (std::size_t i = 0; i < probe_groups.size(); ++i) {
    if (probe_groups[i] == 1) group1.push_back(i);
  }
  ASSERT_FALSE(group1.empty());
  robust::DriftEvent leave;
  leave.round = 3;
  leave.kind = robust::DriftKind::kDeparture;
  leave.slots = group1;
  cfg.drift.events.push_back(leave);

  auto [fed, groups] = make_grouped_federation(6, 480, 42, cfg);
  core::FedClust algo{core::FedClustConfig{}};
  const fl::RunResult result = algo.run(fed, 6);
  EXPECT_TRUE(std::isfinite(result.final_accuracy.mean));
  EXPECT_GT(result.final_accuracy.mean, 0.0);
}

// -- DriftDetector ------------------------------------------------------------

TEST(DriftDetector, ConstantSeriesNeverAlarms) {
  fl::DriftDetector det(fl::DriftDetectorConfig{});
  det.start(2);
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_TRUE(det.observe(r, {0.8, 0.6}).empty()) << r;
  }
  EXPECT_EQ(det.last_score(), 0.0);
}

TEST(DriftDetector, SustainedDropAlarmsAfterHysteresis) {
  fl::DriftDetectorConfig cfg;
  cfg.window = 4;
  cfg.drop_threshold = 0.1;
  cfg.hysteresis = 2;
  fl::DriftDetector det(cfg);
  det.start(1);
  for (std::size_t r = 1; r <= 4; ++r) {
    EXPECT_TRUE(det.observe(r, {0.8}).empty());
  }
  // Window [.8 .8 .8 .4]: drop 0.8 - 0.6 = 0.2 — first breach, held by
  // hysteresis.
  EXPECT_TRUE(det.observe(5, {0.4}).empty());
  EXPECT_DOUBLE_EQ(det.last_score(), 0.2);
  // Window [.8 .8 .4 .4]: second consecutive breach → alarm.
  const std::vector<fl::DriftAlarm> alarms = det.observe(6, {0.4});
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].cluster, 0u);
  EXPECT_EQ(alarms[0].round, 6u);
  EXPECT_DOUBLE_EQ(alarms[0].drop, 0.4);

  // The ledger recorded both breaches and the alarm.
  std::size_t breaches = 0, fired = 0;
  for (const fl::DriftLogEntry& e : det.log()) {
    breaches += e.kind == fl::DriftLogKind::kBreach ? 1 : 0;
    fired += e.kind == fl::DriftLogKind::kAlarm ? 1 : 0;
  }
  EXPECT_EQ(breaches, 2u);
  EXPECT_EQ(fired, 1u);
}

TEST(DriftDetector, CooldownHoldsOffAfterReset) {
  fl::DriftDetectorConfig cfg;
  cfg.window = 2;
  cfg.drop_threshold = 0.1;
  cfg.hysteresis = 1;
  cfg.cooldown = 2;
  fl::DriftDetector det(cfg);
  det.start(1);
  det.reset(3, 1);
  // Two held-off observations, then the window must refill (window 2)
  // before a drop can test — the third observe seeds, the fourth tests.
  EXPECT_TRUE(det.observe(4, {0.9}).empty());
  EXPECT_TRUE(det.observe(5, {0.2}).empty());
  EXPECT_TRUE(det.observe(6, {0.9}).empty());
  const std::vector<fl::DriftAlarm> alarms = det.observe(7, {0.2});
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].round, 7u);
}

TEST(DriftDetector, NanFreezesTheWindow) {
  fl::DriftDetectorConfig cfg;
  cfg.window = 2;
  cfg.drop_threshold = 0.1;
  cfg.hysteresis = 1;
  fl::DriftDetector det(cfg);
  det.start(2);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  det.observe(1, {0.9, nan});
  det.observe(2, {0.9, nan});
  // Cluster 1 never accumulated: a real observation now is its first.
  det.observe(3, {0.9, 0.9});
  const std::vector<fl::DriftAlarm> alarms = det.observe(4, {0.9, 0.1});
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].cluster, 1u);
}

TEST(DriftDetector, SnapshotRestoreContinuesIdentically) {
  fl::DriftDetectorConfig cfg;
  cfg.window = 4;
  cfg.drop_threshold = 0.1;
  cfg.hysteresis = 2;
  fl::DriftDetector a(cfg);
  a.start(2);
  for (std::size_t r = 1; r <= 5; ++r) {
    a.observe(r, {0.8, 0.7 - 0.05 * static_cast<double>(r)});
  }
  const robust::DriftSnapshot snap = a.snapshot(3);
  EXPECT_TRUE(snap.present);
  EXPECT_EQ(snap.recoveries, 3u);

  fl::DriftDetector b(cfg);
  b.restore(snap);
  for (std::size_t r = 6; r <= 9; ++r) {
    const auto va = a.observe(r, {0.8, 0.2});
    const auto vb = b.observe(r, {0.8, 0.2});
    ASSERT_EQ(va.size(), vb.size()) << r;
    EXPECT_EQ(a.last_score(), b.last_score()) << r;
  }
}

// -- DriftDynamic (recluster unit) --------------------------------------------

TEST(DriftDynamic, SoftMembershipsHandComputed) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> w =
      cluster::soft_memberships({0.0, 2.0, inf}, 1.0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], std::exp(-2.0));
  EXPECT_DOUBLE_EQ(w[2], 0.0);
}

TEST(DriftDynamic, ReclusterMovesMigratedMember) {
  // Client 2 sits in cluster 0 but its refreshed anchor is on top of
  // cluster 1: the soft-membership stage must move it.
  const std::vector<std::vector<float>> anchors{
      {0.0f}, {0.2f}, {10.0f}, {10.1f}, {9.9f}};
  const std::vector<std::size_t> labels{0, 0, 0, 1, 1};
  cluster::ReclusterConfig cfg;
  cfg.threshold = 0.0;  // no split stage
  const cluster::ReclusterResult r = cluster::recluster(
      anchors, labels, {0}, std::vector<std::uint8_t>(5, 1), cfg);
  EXPECT_EQ(r.moved, 1u);
  EXPECT_EQ(r.labels, (std::vector<std::size_t>{0, 0, 1, 1, 1}));
  EXPECT_EQ(r.parent, (std::vector<std::size_t>{0, 1}));
}

TEST(DriftDynamic, ReclusterSplitsForkedCluster) {
  // Cluster 0 forked into two far modes; cluster 1 is a distant third
  // mode so the Gaussian stage keeps everyone home and the dendrogram
  // split separates the fork.
  const std::vector<std::vector<float>> anchors{
      {0.0f}, {0.2f}, {30.0f}, {30.2f}, {100.0f}, {100.2f}};
  const std::vector<std::size_t> labels{0, 0, 0, 0, 1, 1};
  cluster::ReclusterConfig cfg;
  cfg.threshold = 5.0;
  cfg.reassign_margin = 4.0;  // sticky: reassignment stays put
  const cluster::ReclusterResult r = cluster::recluster(
      anchors, labels, {0}, std::vector<std::uint8_t>(6, 1), cfg);
  EXPECT_EQ(r.splits, 1u);
  EXPECT_EQ(r.labels[0], r.labels[1]);
  EXPECT_EQ(r.labels[2], r.labels[3]);
  EXPECT_NE(r.labels[0], r.labels[2]);
  EXPECT_EQ(r.labels[4], r.labels[5]);
  // Three clusters out; the split sibling inherits cluster 0's model.
  ASSERT_EQ(r.parent.size(), 3u);
  EXPECT_EQ(r.parent[r.labels[2]], 0u);
}

TEST(DriftDynamic, ReclusterDrainsEmptiedClusters) {
  // Both members of flagged cluster 0 sit far from each other but close
  // to cluster 1's tight pair, so both migrate; the remaining slot is
  // departed, so cluster 0 drains and ids stay consecutive.
  const std::vector<std::vector<float>> anchors{
      {9.9f}, {10.3f}, {}, {10.1f}, {10.1f}};
  const std::vector<std::size_t> labels{0, 0, 0, 1, 1};
  const std::vector<std::uint8_t> active{1, 1, 0, 1, 1};
  cluster::ReclusterConfig cfg;
  cfg.threshold = 0.0;
  const cluster::ReclusterResult r =
      cluster::recluster(anchors, labels, {0}, active, cfg);
  EXPECT_EQ(r.moved, 2u);
  EXPECT_EQ(r.drained, 1u);
  ASSERT_EQ(r.parent.size(), 1u);
  EXPECT_EQ(r.parent[0], 1u);  // the surviving cluster keeps model 1
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r.labels[i], 0u) << i;
}

// -- DriftRecovery (end to end) -----------------------------------------------

/// Half of group 0 rotates its labels by 2 at `drift_round`: the static
/// cluster-0 model then averages two conflicting input→label mappings
/// forever, while the dynamic run can split the cluster and recover.
struct DriftScenario {
  fl::FederationConfig federation;
  std::vector<std::size_t> drifted;
};

DriftScenario half_group_rotation(std::size_t drift_round) {
  auto [probe, groups] = make_grouped_federation(8, 640, 42);
  std::vector<std::size_t> group0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (groups[i] == 0) group0.push_back(i);
  }
  const std::vector<std::size_t> drifted(group0.begin(),
                                         group0.begin() + group0.size() / 2);
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.sgd.lr = 0.05;  // converge well before the drift hits
  cfg.drift = rotation_at(drift_round, drifted);
  return {cfg, drifted};
}

core::FedClustConfig dynamic_config() {
  core::FedClustConfig algo;
  algo.dynamic.enabled = true;
  algo.dynamic.detector.window = 4;
  algo.dynamic.detector.drop_threshold = 0.08;
  algo.dynamic.detector.hysteresis = 2;
  algo.dynamic.detector.cooldown = 2;
  algo.dynamic.max_recoveries = 2;
  return algo;
}

TEST(DriftRecovery, DynamicOutperformsStaticAfterDrift) {
  const DriftScenario scenario = half_group_rotation(/*drift_round=*/5);
  constexpr std::size_t kRounds = 18;

  auto run_with = [&](const core::FedClustConfig& algo_cfg) {
    auto [fed, groups] =
        make_grouped_federation(8, 640, 42, scenario.federation);
    core::FedClust algo{algo_cfg};
    return algo.run(fed, kRounds);
  };
  const fl::RunResult dynamic = run_with(dynamic_config());
  const fl::RunResult statik = run_with(core::FedClustConfig{});

  // The dynamic run detected the drift and re-clustered at least once.
  std::size_t alarms = 0, reclusters = 0;
  for (const fl::RoundMetrics& m : dynamic.rounds) {
    alarms += m.drift_alarms;
    reclusters += m.reclusters;
  }
  EXPECT_GE(alarms, 1u);
  EXPECT_GE(reclusters, 1u);
  for (const fl::RoundMetrics& m : statik.rounds) {
    EXPECT_EQ(m.drift_alarms, 0u);
    EXPECT_EQ(m.reclusters, 0u);
  }

  // Recovery: the dynamic run ends clearly above the static one.
  EXPECT_GT(dynamic.final_accuracy.mean,
            statik.final_accuracy.mean + 0.02)
      << "dynamic " << dynamic.final_accuracy.mean << " vs static "
      << statik.final_accuracy.mean;
}

// -- DriftDeterminism ---------------------------------------------------------

TEST(DriftDeterminism, BitIdenticalAcrossKernelThreads) {
  const DriftScenario scenario = half_group_rotation(4);
  auto run_with = [&](std::size_t kernel_threads) {
    fl::FederationConfig cfg = scenario.federation;
    cfg.kernel_threads = kernel_threads;
    auto [fed, groups] = make_grouped_federation(8, 640, 42, cfg);
    core::FedClust algo{dynamic_config()};
    return algo.run(fed, 12);
  };
  const fl::RunResult a = run_with(0);
  const fl::RunResult b = run_with(2);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].weights_fp, b.rounds[i].weights_fp) << i;
    EXPECT_EQ(a.rounds[i].drift_alarms, b.rounds[i].drift_alarms) << i;
    EXPECT_EQ(a.rounds[i].reclusters, b.rounds[i].reclusters) << i;
  }
  EXPECT_EQ(a.cluster_labels, b.cluster_labels);
}

// -- DriftResume --------------------------------------------------------------

TEST(DriftResume, KillResumeIsBitIdenticalMidDrift) {
  const std::string path = "/tmp/fedclust_drift_resume_test.ckpt";
  std::remove(path.c_str());
  constexpr std::size_t kRounds = 16;

  DriftScenario scenario = half_group_rotation(4);
  // Add churn on a group-1 slot: departure before the checkpoint,
  // arrival after it, so resume replays a newcomer admission.
  auto [probe, groups] = make_grouped_federation(8, 640, 42);
  std::size_t g1 = 0;
  while (groups[g1] != 1) ++g1;
  robust::DriftEvent leave;
  leave.round = 6;
  leave.kind = robust::DriftKind::kDeparture;
  leave.slots = {g1};
  robust::DriftEvent arrive;
  arrive.round = 13;
  arrive.kind = robust::DriftKind::kArrival;
  arrive.slots = {g1};
  scenario.federation.drift.events.push_back(leave);
  scenario.federation.drift.events.push_back(arrive);

  core::FedClustConfig algo_cfg = dynamic_config();
  algo_cfg.checkpoint_every = 6;
  algo_cfg.checkpoint_path = path;

  auto make_fed = [&]() {
    return make_grouped_federation(8, 640, 42, scenario.federation);
  };
  fl::RunResult ref;
  {
    auto [fed, g] = make_fed();
    core::FedClust algo{algo_cfg};
    ref = algo.run(fed, kRounds);
  }
  const robust::RunCheckpoint ck = robust::load_checkpoint(path);
  EXPECT_EQ(ck.next_round, 13u);  // last write after round 12
  EXPECT_TRUE(ck.drift.present);
  {
    auto [fed, g] = make_fed();
    core::FedClust algo{algo_cfg};
    const fl::RunResult resumed = algo.resume(fed, ck, kRounds);
    ASSERT_EQ(ref.rounds.size(), resumed.rounds.size());
    for (std::size_t i = 0; i < ref.rounds.size(); ++i) {
      EXPECT_EQ(ref.rounds[i].round, resumed.rounds[i].round) << i;
      EXPECT_EQ(ref.rounds[i].weights_fp, resumed.rounds[i].weights_fp) << i;
      EXPECT_EQ(ref.rounds[i].acc_mean, resumed.rounds[i].acc_mean) << i;
      EXPECT_EQ(ref.rounds[i].drift_score, resumed.rounds[i].drift_score)
          << i;
      EXPECT_EQ(ref.rounds[i].drift_alarms, resumed.rounds[i].drift_alarms)
          << i;
      EXPECT_EQ(ref.rounds[i].reclusters, resumed.rounds[i].reclusters) << i;
    }
    EXPECT_EQ(ref.cluster_labels, resumed.cluster_labels);
  }
  std::remove(path.c_str());
}

TEST(DriftResume, CheckpointV3RoundTripsDriftBlock) {
  const std::string path = "/tmp/fedclust_drift_ckpt_test.ckpt";
  std::remove(path.c_str());
  robust::RunCheckpoint ck;
  ck.next_round = 7;
  ck.seed = 99;
  ck.labels = {0, 1, 1};
  ck.cluster_weights = {{1.0f, 2.0f}, {3.0f, 4.0f}};
  ck.partial_weights = {{0.5f}, {}, {0.25f}};
  ck.rounds.push_back(robust::RoundRecord{.round = 6,
                                          .acc_mean = 0.5,
                                          .drift_score = 0.125,
                                          .drift_alarms = 2,
                                          .reclusters = 1});
  ck.drift.present = true;
  ck.drift.recoveries = 2;
  ck.drift.cooldown = 1;
  ck.drift.threshold = 0.75;
  ck.drift.streaks = {0, 3};
  ck.drift.windows = {{0.9, 0.8}, {0.7}};
  robust::save_checkpoint(ck, path);
  const robust::RunCheckpoint back = robust::load_checkpoint(path);
  EXPECT_TRUE(back.drift.present);
  EXPECT_EQ(back.drift.recoveries, 2u);
  EXPECT_EQ(back.drift.cooldown, 1u);
  EXPECT_EQ(back.drift.threshold, 0.75);
  EXPECT_EQ(back.drift.streaks, ck.drift.streaks);
  EXPECT_EQ(back.drift.windows, ck.drift.windows);
  ASSERT_EQ(back.rounds.size(), 1u);
  EXPECT_EQ(back.rounds[0].drift_score, 0.125);
  EXPECT_EQ(back.rounds[0].drift_alarms, 2u);
  EXPECT_EQ(back.rounds[0].reclusters, 1u);
  std::remove(path.c_str());
}

// -- DriftServe ---------------------------------------------------------------

TEST(DriftServe, RegistryHotReloadsReclusteredCheckpoint) {
  const DriftScenario scenario = half_group_rotation(4);
  auto [fed, groups] = make_grouped_federation(8, 640, 42, scenario.federation);
  core::FedClust algo{dynamic_config()};
  const fl::RunResult result = algo.run(fed, 14);

  // First snapshot from the live run result.
  serve::ModelRegistry registry;
  ASSERT_TRUE(algo.last_clustering().has_value());
  registry.publish(serve::freeze(fed.template_model(), result,
                                 *algo.last_clustering()));
  EXPECT_EQ(registry.version(), 1u);
  const auto before = registry.snapshot();

  // Reload from a checkpoint carrying the re-clustered partition.
  robust::RunCheckpoint ck;
  ck.labels.assign(result.cluster_labels.begin(),
                   result.cluster_labels.end());
  ck.cluster_weights = result.cluster_weights;
  ck.partial_weights = algo.last_clustering()->partial_weights;
  const std::uint64_t v =
      registry.reload_checkpoint(fed.template_model(), ck);
  EXPECT_EQ(v, 2u);
  const auto after = registry.snapshot();
  EXPECT_EQ(after->num_clusters(), result.cluster_weights.size());
  // The pre-reload snapshot is still alive for in-flight requests.
  EXPECT_EQ(before->version, 1u);
}

}  // namespace
}  // namespace fedclust
