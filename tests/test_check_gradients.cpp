// Finite-difference verification of every layer backward in src/nn, via
// the src/check gradient checker. Each layer is exercised over several
// randomized shapes; Conv2d runs under both the im2col and the direct
// kernels. A deliberately broken layer proves the checker fails loudly.
#include <gtest/gtest.h>

#include "check/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"
#include "utils/rng.hpp"

namespace fedclust::check {
namespace {

// Shapes are drawn from this stream so every run checks the same
// configurations; the loop index also salts the per-check seed.
constexpr std::uint64_t kShapeSeed = 0x5a7e5;

Shape random_nchw(Rng& rng, std::size_t max_side = 9) {
  return {1 + rng.uniform_int(3), 1 + rng.uniform_int(3),
          3 + rng.uniform_int(max_side - 2), 3 + rng.uniform_int(max_side - 2)};
}

/// Inputs for kinked layers (ReLU, MaxPool ties): every element is kept
/// at least `margin` away from zero, and values are spread wide enough
/// that a ±ε probe cannot flip a max-pool winner.
Tensor kink_safe_input(const Shape& shape, Rng& rng, float margin = 0.05f) {
  Tensor t = Tensor::rand_uniform(shape, rng, -4.0f, 4.0f);
  for (auto& x : t.flat()) x += x >= 0.0f ? margin : -margin;
  return t;
}

GradCheckConfig config_for(std::size_t iteration) {
  GradCheckConfig cfg;
  cfg.seed = 0x6ead + iteration;
  return cfg;
}

/// Whole-model probes perturb every parameter at once, so thousands of
/// ReLU pre-activations sit within ε of their kink and a fraction cross
/// during the ±ε step — an FD error linear in ε. Shrinking ε to 1e-4
/// puts all three reference models under 0.6% relative error while
/// staying well above the float32 forward-noise floor.
GradCheckConfig whole_model_config() {
  GradCheckConfig cfg = config_for(0);
  cfg.epsilon = 1e-4;
  return cfg;
}

void expect_passed(const GradCheckResult& r) {
  EXPECT_TRUE(r.passed) << "worst: " << r.worst;
  EXPECT_GT(r.checks, 0u);
}

TEST(GradCheck, Conv2dIm2col) {
  Rng shapes(kShapeSeed);
  for (std::size_t i = 0; i < 3; ++i) {
    const Shape in = random_nchw(shapes);
    const std::size_t kernel = 2 + shapes.uniform_int(2);  // 2 or 3
    nn::Conv2d conv(in[1], 1 + shapes.uniform_int(4), kernel,
                    /*padding=*/shapes.uniform_int(2), /*stride=*/1,
                    nn::ConvImpl::kIm2col);
    Rng init(0xc0 + i);
    conv.init_params(init);
    const Tensor x = Tensor::randn(in, shapes);
    expect_passed(check_layer(conv, x, config_for(i)));
  }
}

TEST(GradCheck, Conv2dDirect) {
  Rng shapes(kShapeSeed + 1);
  for (std::size_t i = 0; i < 3; ++i) {
    const Shape in = random_nchw(shapes);
    const std::size_t kernel = 2 + shapes.uniform_int(2);
    nn::Conv2d conv(in[1], 1 + shapes.uniform_int(4), kernel,
                    /*padding=*/shapes.uniform_int(2), /*stride=*/1,
                    nn::ConvImpl::kDirect);
    Rng init(0xd0 + i);
    conv.init_params(init);
    const Tensor x = Tensor::randn(in, shapes);
    expect_passed(check_layer(conv, x, config_for(i)));
  }
}

TEST(GradCheck, Conv2dStridedBothImpls) {
  for (const nn::ConvImpl impl :
       {nn::ConvImpl::kIm2col, nn::ConvImpl::kDirect}) {
    nn::Conv2d conv(2, 3, 3, /*padding=*/1, /*stride=*/2, impl);
    Rng init(0xe0);
    conv.init_params(init);
    Rng data(0xe1);
    const Tensor x = Tensor::randn({2, 2, 7, 7}, data);
    expect_passed(check_layer(conv, x, config_for(0)));
  }
}

TEST(GradCheck, Linear) {
  Rng shapes(kShapeSeed + 2);
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t in = 2 + shapes.uniform_int(20);
    nn::Linear linear(in, 1 + shapes.uniform_int(16));
    Rng init(0xf0 + i);
    linear.init_params(init);
    const Tensor x =
        Tensor::randn({1 + shapes.uniform_int(4), in}, shapes);
    expect_passed(check_layer(linear, x, config_for(i)));
  }
}

TEST(GradCheck, BatchNorm2dTrainMode) {
  Rng shapes(kShapeSeed + 3);
  for (std::size_t i = 0; i < 3; ++i) {
    // Batch-norm statistics need at least a few samples per channel.
    const Shape in = {2 + shapes.uniform_int(2), 1 + shapes.uniform_int(3),
                      4 + shapes.uniform_int(4), 4 + shapes.uniform_int(4)};
    nn::BatchNorm2d bn(in[1]);
    Rng init(0x100 + i);
    bn.init_params(init);
    const Tensor x = Tensor::randn(in, shapes);
    expect_passed(check_layer(bn, x, config_for(i), /*train=*/true));
  }
}

TEST(GradCheck, ReLU) {
  Rng shapes(kShapeSeed + 4);
  for (std::size_t i = 0; i < 3; ++i) {
    nn::ReLU relu;
    const Tensor x = kink_safe_input(random_nchw(shapes), shapes);
    expect_passed(check_layer(relu, x, config_for(i)));
  }
}

TEST(GradCheck, Tanh) {
  Rng shapes(kShapeSeed + 5);
  for (std::size_t i = 0; i < 3; ++i) {
    nn::Tanh tanh_layer;
    const Tensor x = Tensor::randn(random_nchw(shapes), shapes);
    expect_passed(check_layer(tanh_layer, x, config_for(i)));
  }
}

TEST(GradCheck, MaxPool2d) {
  Rng shapes(kShapeSeed + 6);
  for (std::size_t i = 0; i < 3; ++i) {
    nn::MaxPool2d pool(2);
    // Even spatial dims; wide-spread inputs so probes cannot flip argmax.
    const Shape in = {1 + shapes.uniform_int(2), 1 + shapes.uniform_int(3),
                      4 + 2 * shapes.uniform_int(3),
                      4 + 2 * shapes.uniform_int(3)};
    const Tensor x = kink_safe_input(in, shapes);
    expect_passed(check_layer(pool, x, config_for(i)));
  }
}

TEST(GradCheck, AvgPool2d) {
  Rng shapes(kShapeSeed + 7);
  for (std::size_t i = 0; i < 3; ++i) {
    nn::AvgPool2d pool(2);
    const Shape in = {1 + shapes.uniform_int(2), 1 + shapes.uniform_int(3),
                      4 + 2 * shapes.uniform_int(3),
                      4 + 2 * shapes.uniform_int(3)};
    const Tensor x = Tensor::randn(in, shapes);
    expect_passed(check_layer(pool, x, config_for(i)));
  }
}

TEST(GradCheck, Flatten) {
  Rng shapes(kShapeSeed + 8);
  nn::Flatten flatten;
  const Tensor x = Tensor::randn(random_nchw(shapes), shapes);
  expect_passed(check_layer(flatten, x, config_for(0)));
}

TEST(GradCheck, DropoutWithFrozenMask) {
  Rng shapes(kShapeSeed + 9);
  for (std::size_t i = 0; i < 3; ++i) {
    nn::Dropout dropout(0.3);
    const Tensor x = Tensor::randn(random_nchw(shapes), shapes);
    // check_layer reseeds before every forward, so the mask the analytic
    // backward saw is replayed on every FD probe.
    expect_passed(check_layer(dropout, x, config_for(i), /*train=*/true));
  }
}

TEST(GradCheck, DropoutEvalModeIsIdentity) {
  Rng shapes(kShapeSeed + 10);
  nn::Dropout dropout(0.5);
  const Tensor x = Tensor::randn({2, 3, 5, 5}, shapes);
  expect_passed(check_layer(dropout, x, config_for(0), /*train=*/false));
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  for (std::size_t i = 0; i < 3; ++i) {
    GradCheckConfig cfg = config_for(i);
    expect_passed(check_softmax_cross_entropy(2 + i * 3, 3 + i * 2, cfg));
  }
}

TEST(GradCheck, WholeModelLeNet5) {
  nn::Model model = nn::lenet5({1, 28, 28, 10});
  Rng init(0x1e7);
  model.init_params(init);
  Rng data(0x1e8);
  const Tensor x = Tensor::randn({3, 1, 28, 28}, data);
  const std::vector<std::int32_t> labels = {1, 7, 4};
  const GradCheckResult r = check_model(model, x, labels, whole_model_config());
  expect_passed(r);
}

TEST(GradCheck, WholeModelVggMini) {
  nn::Model model = nn::vgg_mini({1, 16, 16, 4});
  Rng init(0x2e7);
  model.init_params(init);
  Rng data(0x2e8);
  const Tensor x = Tensor::randn({2, 1, 16, 16}, data);
  const std::vector<std::int32_t> labels = {2, 0};
  const GradCheckResult r = check_model(model, x, labels, whole_model_config());
  expect_passed(r);
}

TEST(GradCheck, WholeModelLeNet5BatchNorm) {
  nn::Model model = nn::lenet5_bn({1, 28, 28, 10});
  Rng init(0x3e7);
  model.init_params(init);
  Rng data(0x3e8);
  const Tensor x = Tensor::randn({4, 1, 28, 28}, data);
  const std::vector<std::int32_t> labels = {0, 3, 9, 5};
  // BatchNorm renormalizes every channel to unit variance, so a fixed
  // fraction of ReLU inputs sits near the kink no matter how small ε
  // gets: the FD error floors around 1-2% instead of shrinking linearly
  // as it does for the plain models. 3% still catches any real backward
  // bug (a single wrong term shows up at 5%+, see FlagsBrokenBackward).
  GradCheckConfig cfg = whole_model_config();
  cfg.tolerance = 3e-2;
  const GradCheckResult r = check_model(model, x, labels, cfg);
  expect_passed(r);
}

/// Negative control: a layer whose backward is off by 5%. The checker
/// must flag it — otherwise every green test above is meaningless.
class BrokenScale final : public nn::Layer {
 public:
  const char* type() const override { return "broken_scale"; }
  Tensor forward(const Tensor& input, bool) override {
    Tensor y = input;
    y *= 2.0f;
    return y;
  }
  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    g *= 1.9f;  // correct factor is 2.0
    return g;
  }
  std::unique_ptr<nn::Layer> clone() const override {
    return std::make_unique<BrokenScale>(*this);
  }
};

TEST(GradCheck, FlagsBrokenBackward) {
  BrokenScale broken;
  Rng data(0x4e7);
  const Tensor x = Tensor::randn({2, 3, 4, 4}, data);
  const GradCheckResult r = check_layer(broken, x, config_for(0));
  EXPECT_FALSE(r.passed);
  // |1.9 - 2.0| / 2.0 = 5% relative error, far above the 1% tolerance.
  EXPECT_GT(r.max_rel_error, 0.04);
  EXPECT_FALSE(r.worst.empty());
}

}  // namespace
}  // namespace fedclust::check
