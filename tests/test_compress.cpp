// Property tests for the update-compression codecs: quantization error
// bounds, top-k frame structure and exactness, sign majority-vote
// determinism, delta/reference semantics, envelope rejection of
// non-finite payloads, and scalar-vs-SIMD kernel equivalence. The
// federation-level tests pin the identity codec's trajectories to the
// compression-off engine bit-for-bit and run an audited network round
// over compressed frames.
#include "compress/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "algorithms/fedavg.hpp"
#include "algorithms/ifca.hpp"
#include "fl/federation.hpp"
#include "nn/serialize.hpp"
#include "tensor/kernels.hpp"
#include "test_helpers.hpp"
#include "utils/rng.hpp"

namespace fedclust::compress {
namespace {

using testing::make_grouped_federation;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/// A reproducible mixed-magnitude payload: mostly small normals with a
/// few large outliers so quantization scales are exercised per segment.
std::vector<float> payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.normal(0.0, 0.1));
    if (rng.uniform() < 0.05) x[i] *= 40.0f;
  }
  return x;
}

float segment_absmax(std::span<const float> x) {
  float m = 0.0f;
  for (const float v : x) m = std::max(m, std::fabs(v));
  return m;
}

const std::vector<std::size_t> kLayout = {48, 1, 17, 30};  // sums to 96

// -- int8 / int4 round-trip bounds -------------------------------------------

TEST(Int8Codec, RoundTripWithinHalfStep) {
  const auto codec = make_codec(CodecKind::kInt8);
  const std::vector<float> x = payload(96, 11);
  std::vector<float> dec(x.size());
  roundtrip(*codec, x, {}, kLayout, dec);

  std::size_t off = 0;
  for (const std::size_t seg : kLayout) {
    const float scale =
        segment_absmax(std::span<const float>(x).subspan(off, seg)) / 127.0f;
    for (std::size_t i = off; i < off + seg; ++i) {
      EXPECT_LE(std::fabs(x[i] - dec[i]), scale * 0.5f * 1.001f + 1e-7f)
          << "coordinate " << i;
    }
    off += seg;
  }
}

TEST(Int4Codec, RoundTripWithinHalfStep) {
  const auto codec = make_codec(CodecKind::kInt4);
  const std::vector<float> x = payload(96, 12);
  std::vector<float> dec(x.size());
  roundtrip(*codec, x, {}, kLayout, dec);

  std::size_t off = 0;
  for (const std::size_t seg : kLayout) {
    const float amax =
        segment_absmax(std::span<const float>(x).subspan(off, seg));
    for (std::size_t i = off; i < off + seg; ++i) {
      // scale = absmax/7, half-step = absmax/14.
      EXPECT_LE(std::fabs(x[i] - dec[i]), amax / 14.0f * 1.001f + 1e-7f)
          << "coordinate " << i;
    }
    off += seg;
  }
}

TEST(QuantCodecs, EncodedBytesMatchEncodeForAllKinds) {
  const std::vector<float> x = payload(96, 13);
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kSignSgd, CodecKind::kDelta}) {
    const auto codec = make_codec(kind, 0.25);
    const auto frame = codec->encode(x, {}, kLayout);
    EXPECT_EQ(frame.size(), codec->encoded_bytes(x.size(), kLayout))
        << to_string(kind);
    EXPECT_TRUE(codec->validate(frame, x.size(), kLayout, nullptr))
        << to_string(kind);
  }
}

// -- top-k --------------------------------------------------------------------

TEST(TopKCodec, FrameStoresAscendingLargestMagnitudes) {
  const auto codec = make_codec(CodecKind::kTopK, /*topk_frac=*/0.25);
  const std::vector<float> x = payload(96, 14);
  const auto frame = codec->encode(x, {}, kLayout);

  nn::wire::Reader r(frame);
  const std::uint64_t kept = r.u64();
  EXPECT_EQ(kept, 24u);  // round(0.25 * 96)

  // Smallest selected magnitude must dominate every unselected one.
  std::vector<bool> selected(x.size(), false);
  float min_kept = std::numeric_limits<float>::infinity();
  std::uint32_t prev = 0;
  for (std::uint64_t u = 0; u < kept; ++u) {
    const std::uint32_t i = r.u32();
    float v = 0.0f;
    r.f32(std::span<float>(&v, 1));
    if (u > 0) EXPECT_GT(i, prev) << "indices must be strictly ascending";
    prev = i;
    selected[i] = true;
    EXPECT_EQ(v, x[i]) << "frame carries the raw value";
    min_kept = std::min(min_kept, std::fabs(v));
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!selected[i]) EXPECT_LE(std::fabs(x[i]), min_kept);
  }

  // Unselected coordinates decode to the reference (zero here).
  std::vector<float> dec(x.size());
  codec->decode(frame, dec, {}, kLayout);
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (selected[i]) {
      EXPECT_EQ(dec[i], x[i]);
    } else {
      EXPECT_EQ(dec[i], 0.0f);
    }
  }
}

TEST(TopKCodec, KeepAllIsBitExact) {
  const auto codec = make_codec(CodecKind::kTopK, /*topk_frac=*/1.0);
  const std::vector<float> x = payload(33, 15);
  std::vector<float> dec(x.size());
  roundtrip(*codec, x, {}, {}, dec);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(std::memcmp(&dec[i], &x[i], sizeof(float)), 0) << i;
  }
}

TEST(TopKCodec, ReferenceShiftsBothSelectionAndFill) {
  // With a reference equal to the values, every delta is 0; the codec
  // still keeps k coordinates (ties -> lowest indices) and decode
  // restores the reference everywhere.
  const auto codec = make_codec(CodecKind::kTopK, 0.1);
  const std::vector<float> x = payload(50, 16);
  std::vector<float> dec(x.size());
  const auto frame = codec->encode(x, x, {});
  codec->decode(frame, dec, x, {});
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(dec[i], x[i]);
}

// -- sign-SGD -----------------------------------------------------------------

TEST(SignCodec, DecodesToReferencePlusMinusMeanMagnitude) {
  const auto codec = make_codec(CodecKind::kSignSgd);
  const std::vector<float> ref = payload(64, 17);
  std::vector<float> x = ref;
  Rng rng(18);
  for (float& v : x) v += static_cast<float>(rng.normal(0.0, 0.05));

  std::vector<float> dec(x.size());
  roundtrip(*codec, x, ref, {}, dec);

  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += std::fabs(static_cast<double>(x[i] - ref[i]));
  }
  const float scale = static_cast<float>(acc / static_cast<double>(x.size()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float expected =
        x[i] - ref[i] >= 0.0f ? ref[i] + scale : ref[i] - scale;
    EXPECT_EQ(dec[i], expected) << i;
  }
}

TEST(SignMajorityVote, HandBuiltThreeClientCase) {
  // ref = 0 everywhere; exact binary values so votes/magnitudes are
  // reproducible in double without rounding.
  const std::vector<float> ref = {0.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<float> u0 = {1.0f, -1.0f, 0.5f, 2.0f};
  const std::vector<float> u1 = {1.0f, 1.0f, -0.5f, -2.0f};
  const std::vector<float> u2 = {1.0f, -1.0f, -0.5f, 0.0f};
  const float* ups[] = {u0.data(), u1.data(), u2.data()};
  const double coeff[] = {0.5, 0.25, 0.25};

  std::vector<float> out(4);
  signsgd_majority_vote(ups, coeff, 3, ref.data(), out.data(), 4);

  // coord 0: all +, mag = 1 → +1.
  EXPECT_EQ(out[0], 1.0f);
  // coord 1: votes 0.5·(−1) + 0.25·(+1) + 0.25·(−1) = −0.5; mag = 1 → −1.
  EXPECT_EQ(out[1], -1.0f);
  // coord 2: votes 0.5 − 0.25 − 0.25 = 0 → tie → reference.
  EXPECT_EQ(out[2], 0.0f);
  // coord 3: votes 0.5 − 0.25 + 0 (zero delta votes nothing) = +0.25;
  // mag = 0.5·2 + 0.25·2 = 1.5.
  EXPECT_EQ(out[3], 1.5f);
}

TEST(SignMajorityVote, DeterministicAcrossCalls) {
  const std::size_t n = 200;
  const std::vector<float> ref = payload(n, 19);
  std::vector<std::vector<float>> ups(5);
  std::vector<const float*> ptrs;
  std::vector<double> coeff = {0.3, 0.25, 0.2, 0.15, 0.1};
  for (std::size_t u = 0; u < ups.size(); ++u) {
    ups[u] = payload(n, 20 + u);
    ptrs.push_back(ups[u].data());
  }
  std::vector<float> a(n), b(n);
  signsgd_majority_vote(ptrs.data(), coeff.data(), ptrs.size(), ref.data(),
                        a.data(), n);
  signsgd_majority_vote(ptrs.data(), coeff.data(), ptrs.size(), ref.data(),
                        b.data(), n);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(float)), 0);
}

// -- delta --------------------------------------------------------------------

TEST(DeltaCodec, QuantizesResidualAgainstReference) {
  const auto codec = make_codec(CodecKind::kDelta);
  const std::vector<float> ref = payload(96, 22);
  std::vector<float> x = ref;
  Rng rng(23);
  for (float& v : x) v += static_cast<float>(rng.normal(0.0, 0.01));

  std::vector<float> dec(x.size());
  roundtrip(*codec, x, ref, kLayout, dec);

  std::size_t off = 0;
  for (const std::size_t seg : kLayout) {
    std::vector<float> resid(seg);
    for (std::size_t i = 0; i < seg; ++i) resid[i] = x[off + i] - ref[off + i];
    const float scale = segment_absmax(resid) / 127.0f;
    for (std::size_t i = off; i < off + seg; ++i) {
      EXPECT_LE(std::fabs(x[i] - dec[i]), scale * 0.5f * 1.001f + 1e-7f) << i;
    }
    off += seg;
  }
}

TEST(DeltaCodec, StaleReferenceShiftsDecodeByReferenceGap) {
  // A frame decoded against a different reference lands at
  // stale + quantized(values − encode_ref): exactly the matching-ref
  // reconstruction displaced by the reference gap.
  const auto codec = make_codec(CodecKind::kDelta);
  const std::vector<float> ref = payload(40, 24);
  std::vector<float> stale = ref;
  for (float& v : stale) v += 0.25f;
  std::vector<float> x = ref;
  Rng rng(25);
  for (float& v : x) v += static_cast<float>(rng.normal(0.0, 0.02));

  const auto frame = codec->encode(x, ref, {});
  std::vector<float> with_ref(x.size()), with_stale(x.size());
  codec->decode(frame, with_ref, ref, {});
  codec->decode(frame, with_stale, stale, {});
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(with_stale[i] - with_ref[i], stale[i] - ref[i], 1e-6f) << i;
  }
}

// -- edge cases and envelope rejection ---------------------------------------

TEST(AllCodecs, EmptyAndOneElementPayloads) {
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kSignSgd, CodecKind::kDelta}) {
    const auto codec = make_codec(kind, 0.5);

    const auto empty = codec->encode({}, {}, {});
    EXPECT_EQ(empty.size(), codec->encoded_bytes(0, {})) << to_string(kind);
    EXPECT_TRUE(codec->validate(empty, 0, {}, nullptr)) << to_string(kind);
    codec->decode(empty, std::span<float>{}, {}, {});  // must not throw

    const std::vector<float> one = {-2.5f};
    std::vector<float> dec(1, 0.0f);
    roundtrip(*codec, one, {}, {}, dec);
    if (kind == CodecKind::kSignSgd) {
      // scale = |−2.5|, sign −: decodes to −2.5 exactly here.
      EXPECT_EQ(dec[0], -2.5f);
    } else {
      EXPECT_NEAR(dec[0], -2.5f, 2.5f / 14.0f + 1e-6f) << to_string(kind);
    }
  }
}

TEST(LossyCodecs, RejectNonFinitePayloads) {
  std::vector<float> x = payload(32, 26);
  x[7] = kNaN;
  for (const CodecKind kind : {CodecKind::kInt8, CodecKind::kInt4,
                               CodecKind::kTopK, CodecKind::kSignSgd,
                               CodecKind::kDelta}) {
    const auto codec = make_codec(kind, 0.5);
    const auto frame = codec->encode(x, {}, {});
    std::string why;
    EXPECT_FALSE(codec->validate(frame, x.size(), {}, &why))
        << to_string(kind);
    EXPECT_FALSE(why.empty()) << to_string(kind);
  }
  // Identity passes the envelope check (content screening is the robust
  // layer's second stage), and an infinite value round-trips bit-exactly.
  const auto identity = make_codec(CodecKind::kIdentity);
  EXPECT_TRUE(
      identity->validate(identity->encode(x, {}, {}), x.size(), {}, nullptr));
}

TEST(AllCodecs, TruncatedFramesFailValidationAndThrowOnDecode) {
  const std::vector<float> x = payload(32, 27);
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kSignSgd, CodecKind::kDelta}) {
    const auto codec = make_codec(kind, 0.5);
    auto frame = codec->encode(x, {}, {});
    frame.pop_back();
    EXPECT_FALSE(codec->validate(frame, x.size(), {}, nullptr))
        << to_string(kind);
    std::vector<float> dec(x.size());
    EXPECT_THROW(codec->decode(frame, dec, {}, {}), Error) << to_string(kind);
  }
}

TEST(AllCodecs, LayoutMismatchThrows) {
  const auto codec = make_codec(CodecKind::kInt8);
  const std::vector<float> x = payload(10, 28);
  const std::vector<std::size_t> bad = {4, 4};  // sums to 8, not 10
  EXPECT_THROW(codec->encode(x, {}, bad), Error);
}

TEST(IdentityCodec, BitExactRoundTrip) {
  const auto codec = make_codec(CodecKind::kIdentity);
  const std::vector<float> x = payload(77, 29);
  std::vector<float> dec(x.size());
  roundtrip(*codec, x, {}, {}, dec);
  EXPECT_EQ(std::memcmp(dec.data(), x.data(), x.size() * sizeof(float)), 0);
}

TEST(CodecRegistry, NamesAndWireIdsRoundTrip) {
  for (const CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kInt8, CodecKind::kInt4,
        CodecKind::kTopK, CodecKind::kSignSgd, CodecKind::kDelta}) {
    CodecKind parsed;
    ASSERT_TRUE(codec_from_string(to_string(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_TRUE(valid_codec_id(static_cast<std::uint16_t>(kind)));
    EXPECT_EQ(make_codec(kind)->kind(), kind);
  }
  CodecKind parsed;
  EXPECT_FALSE(codec_from_string("gzip", &parsed));
  EXPECT_FALSE(valid_codec_id(6));
}

// -- scalar vs SIMD kernel equivalence ---------------------------------------

TEST(QuantizeKernels, ScalarAndSimdTablesBitIdentical) {
  if (!ops::simd_active()) {
    GTEST_SKIP() << "no SIMD table active on this host";
  }
  const std::size_t n = 1000;  // odd-sized tail exercised via subspans
  const std::vector<float> x = payload(n, 30);

  for (const std::size_t len : {n, std::size_t{1}, std::size_t{37}}) {
    const float amax_simd = ops::kernels().absmax(x.data(), len);
    std::vector<signed char> q_simd(len);
    std::vector<float> d_simd(len);
    const float inv = amax_simd > 0.0f ? 127.0f / amax_simd : 0.0f;
    ops::kernels().quantize_i8(x.data(), q_simd.data(), inv, 127, len);
    ops::kernels().dequantize_i8(q_simd.data(), d_simd.data(),
                                 amax_simd / 127.0f, len);

    ops::set_simd_enabled(false);
    const float amax_scalar = ops::kernels().absmax(x.data(), len);
    std::vector<signed char> q_scalar(len);
    std::vector<float> d_scalar(len);
    ops::kernels().quantize_i8(x.data(), q_scalar.data(), inv, 127, len);
    ops::kernels().dequantize_i8(q_scalar.data(), d_scalar.data(),
                                 amax_simd / 127.0f, len);
    ops::set_simd_enabled(true);

    EXPECT_EQ(std::memcmp(&amax_simd, &amax_scalar, sizeof(float)), 0)
        << "absmax, len=" << len;
    EXPECT_EQ(std::memcmp(q_simd.data(), q_scalar.data(), len), 0)
        << "quantize_i8, len=" << len;
    EXPECT_EQ(std::memcmp(d_simd.data(), d_scalar.data(), len * sizeof(float)),
              0)
        << "dequantize_i8, len=" << len;
  }
}

TEST(QuantizeKernels, NaNQuantizesToNegativeClamp) {
  // The documented branch order sends NaN to the low clamp in BOTH
  // tables — the poisoned-segment path never calls the kernel, but the
  // contract must hold regardless.
  const float x[3] = {kNaN, 1.0f, -1.0f};
  signed char q[3] = {99, 99, 99};
  ops::kernels().quantize_i8(x, q, 1.0f, 127, 3);
  EXPECT_EQ(q[0], -127);
  EXPECT_EQ(q[1], 1);
  EXPECT_EQ(q[2], -1);
}

// -- federation integration ---------------------------------------------------

fl::FederationConfig parity_config() {
  fl::FederationConfig cfg;
  cfg.eval_every = 1;
  cfg.local.epochs = 1;
  cfg.local.sgd.lr = 0.05;
  return cfg;
}

TEST(CodecParity, EnabledIdentityMatchesDisabledBitForBit) {
  fl::FederationConfig off = parity_config();
  fl::FederationConfig on = parity_config();
  on.compression.enabled = true;  // identity up + down: real transport

  auto fed_off = make_grouped_federation(6, 480, 42, off);
  auto fed_on = make_grouped_federation(6, 480, 42, on);
  algorithms::FedAvg avg;
  const fl::RunResult r_off = avg.run(fed_off.federation, 3);
  const fl::RunResult r_on = avg.run(fed_on.federation, 3);

  ASSERT_EQ(r_off.rounds.size(), r_on.rounds.size());
  for (std::size_t i = 0; i < r_off.rounds.size(); ++i) {
    EXPECT_EQ(r_off.rounds[i].weights_fp, r_on.rounds[i].weights_fp)
        << "round " << i;
  }
  // Identity encodes floats verbatim, so the meter totals match too.
  EXPECT_EQ(fed_off.federation.comm().total_upload(),
            fed_on.federation.comm().total_upload());
  EXPECT_EQ(fed_off.federation.comm().total_download(),
            fed_on.federation.comm().total_download());
}

TEST(CodecParity, IdentityParityHoldsForMultiModelIfca) {
  fl::FederationConfig off = parity_config();
  fl::FederationConfig on = parity_config();
  on.compression.enabled = true;

  auto fed_off = make_grouped_federation(6, 480, 43, off);
  auto fed_on = make_grouped_federation(6, 480, 43, on);
  algorithms::Ifca ifca(
      algorithms::IfcaConfig{.num_clusters = 2, .init_perturbation = 0.1});
  const fl::RunResult r_off = ifca.run(fed_off.federation, 3);
  const fl::RunResult r_on = ifca.run(fed_on.federation, 3);

  ASSERT_EQ(r_off.rounds.size(), r_on.rounds.size());
  for (std::size_t i = 0; i < r_off.rounds.size(); ++i) {
    EXPECT_EQ(r_off.rounds[i].weights_fp, r_on.rounds[i].weights_fp)
        << "round " << i;
  }
}

TEST(CodecTransport, Int8ShrinksUploadsAndTrains) {
  fl::FederationConfig raw_cfg = parity_config();
  fl::FederationConfig cfg = parity_config();
  cfg.compression.enabled = true;
  cfg.compression.upload = CodecKind::kInt8;

  auto fed_raw = make_grouped_federation(6, 480, 44, raw_cfg);
  auto fed = make_grouped_federation(6, 480, 44, cfg);
  algorithms::FedAvg avg;
  const fl::RunResult r_raw = avg.run(fed_raw.federation, 3);
  const fl::RunResult r = avg.run(fed.federation, 3);

  // int8 uploads carry ~1 byte/coordinate plus per-tensor scales.
  EXPECT_LT(fed.federation.comm().total_upload(),
            fed_raw.federation.comm().total_upload() / 3);
  EXPECT_EQ(fed.federation.comm().total_download(),
            fed_raw.federation.comm().total_download());
  // Lossy but gentle: training still makes progress.
  EXPECT_GT(r.final_accuracy.mean, 0.3);
  (void)r_raw;
}

TEST(CodecTransport, AuditedNetworkRunKeepsMeterLogParity) {
  fl::FederationConfig cfg = parity_config();
  cfg.audit = true;
  cfg.network.enabled = true;
  cfg.compression.enabled = true;
  cfg.compression.upload = CodecKind::kInt8;
  cfg.compression.download = CodecKind::kInt8;

  auto fed = make_grouped_federation(6, 480, 45, cfg);
  algorithms::FedAvg avg;
  // make_round_metrics re-audits CommMeter vs the event log every round;
  // a metering/framing mismatch on the codec path throws here.
  const fl::RunResult r = avg.run(fed.federation, 3);
  EXPECT_EQ(r.rounds.size(), 3u);
  EXPECT_GT(fed.federation.comm().total_upload(), 0u);
}

}  // namespace
}  // namespace fedclust::compress
