// Tests for thread pool, CLI parser, tables and error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "utils/cli.hpp"
#include "utils/error.hpp"
#include "utils/histogram.hpp"
#include "utils/stopwatch.hpp"
#include "utils/table.hpp"
#include "utils/thread_pool.hpp"

namespace fedclust {
namespace {

// -- error macros ---------------------------------------------------------

TEST(Error, CheckThrowsWithContext) {
  try {
    FEDCLUST_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
  }
}

TEST(Error, CheckWithoutMessage) {
  EXPECT_THROW(FEDCLUST_CHECK(false), Error);
  EXPECT_NO_THROW(FEDCLUST_CHECK(true));
}

// -- thread pool ------------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 1000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [&](std::size_t i) {
                                   if (i == 3) throw Error("boom");
                                 }),
               Error);
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::vector<int> out(10, 0);
  pool.parallel_for(0, 10, [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i], i);
}

// -- CLI parser ------------------------------------------------------------

TEST(Cli, ParsesTypedFlags) {
  CliParser cli("prog", "test");
  cli.add_int("rounds", 10, "rounds");
  cli.add_double("beta", 0.1, "beta");
  cli.add_string("dataset", "cifar10", "dataset");
  cli.add_flag("quick", "quick mode");

  const char* argv[] = {"prog", "--rounds", "30", "--beta=0.5", "--quick"};
  cli.parse(5, argv);
  EXPECT_EQ(cli.get_int("rounds"), 30);
  EXPECT_DOUBLE_EQ(cli.get_double("beta"), 0.5);
  EXPECT_EQ(cli.get_string("dataset"), "cifar10");  // default kept
  EXPECT_TRUE(cli.get_flag("quick"));
}

TEST(Cli, DefaultsWhenUnset) {
  CliParser cli("prog", "test");
  cli.add_int("n", 5, "n");
  cli.add_flag("verbose", "v");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("n"), 5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsBadValue) {
  CliParser cli("prog", "test");
  cli.add_int("n", 1, "n");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, RejectsMissingValue) {
  CliParser cli("prog", "test");
  cli.add_int("n", 1, "n");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, RejectsWrongTypeAccess) {
  CliParser cli("prog", "test");
  cli.add_int("n", 1, "n");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_THROW(cli.get_double("n"), Error);
  EXPECT_THROW(cli.get_int("missing"), Error);
}

// -- tables ---------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Method", "Acc"});
  t.new_row().add("FedAvg").add(38.25, 2);
  t.new_row().add("FedClust").add(60.25, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("FedClust"), std::string::npos);
  EXPECT_NE(s.find("60.25"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  TextTable t({"a", "b"});
  t.new_row().add("x,y").add("say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvQuotesCarriageReturn) {
  // Regression: a bare \r (e.g. from a CRLF-sourced label) must trigger
  // quoting just like \n, or the row splits under RFC-4180 readers.
  TextTable t({"a"});
  t.new_row().add("line\rbreak");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"line\rbreak\""), std::string::npos);
}

TEST(Table, WriteCsvRoundTrip) {
  TextTable t({"col"});
  t.new_row().add(7ll);
  const std::string path = "/tmp/fedclust_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "col");
  std::getline(in, line);
  EXPECT_EQ(line, "7");
  std::filesystem::remove(path);
}

TEST(Table, RowOverflowThrows) {
  TextTable t({"only"});
  t.new_row().add("x");
  EXPECT_THROW(t.add("y"), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(Table, FormatMeanStd) {
  EXPECT_EQ(format_mean_std(60.254, 0.578), "60.25 ± 0.58");
  EXPECT_EQ(format_mean_std(1.0, 0.5, 1), "1.0 ± 0.5");
}

// -- stopwatch -----------------------------------------------------------

// -- streaming histogram --------------------------------------------------

TEST(StreamingHistogram, EmptyReportsNaN) {
  const utils::StreamingHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.p50()));
}

TEST(StreamingHistogram, ExactStatsAndBoundedQuantileError) {
  utils::StreamingHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Geometric buckets with growth 1.02 bound relative error at 2%.
  EXPECT_NEAR(h.p50(), 500.0, 500.0 * 0.02);
  EXPECT_NEAR(h.p99(), 990.0, 990.0 * 0.02);
  EXPECT_NEAR(h.p999(), 999.0, 999.0 * 0.02);
  EXPECT_EQ(h.percentile(0.0), 1.0);
  EXPECT_EQ(h.percentile(100.0), 1000.0);
}

TEST(StreamingHistogram, QuantilesClampIntoObservedRange) {
  utils::StreamingHistogram h;
  h.record(3.0);
  // One sample: every quantile IS that sample despite bucket rounding.
  EXPECT_EQ(h.p50(), 3.0);
  EXPECT_EQ(h.p999(), 3.0);
  // Values at or below the resolution floor share bucket 0.
  utils::StreamingHistogram tiny;
  tiny.record(0.0);
  tiny.record(1e-6);
  EXPECT_EQ(tiny.min(), 0.0);
  EXPECT_LE(tiny.p50(), 1e-4);
}

TEST(StreamingHistogram, MergeEqualsCombinedRecording) {
  utils::StreamingHistogram a, b, combined;
  for (int i = 1; i <= 400; ++i) {
    a.record(static_cast<double>(i));
    combined.record(static_cast<double>(i));
  }
  for (int i = 401; i <= 1000; ++i) {
    b.record(static_cast<double>(i));
    combined.record(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.p50(), combined.p50());
  EXPECT_EQ(a.p99(), combined.p99());

  // Mismatched geometry must be rejected, not silently mixed.
  utils::StreamingHistogram other_geometry(1e-4, 1.5);
  EXPECT_THROW(a.merge(other_geometry), Error);
}

TEST(StreamingHistogram, ClearResetsEverything) {
  utils::StreamingHistogram h;
  h.record(5.0);
  h.record(7.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.p50()));
  h.record(2.0);
  EXPECT_EQ(h.p50(), 2.0);
  EXPECT_THROW(h.record(-1.0), Error);
  EXPECT_THROW(h.record(std::numeric_limits<double>::infinity()), Error);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.seconds();
  EXPECT_GE(t0, 0.0);
  // A tight loop with work should advance the clock monotonically.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(sw.seconds(), t0);
  sw.restart();
  EXPECT_LT(sw.seconds(), 1.0);
}

}  // namespace
}  // namespace fedclust
