// Unit and property tests for the deterministic splittable RNG.
#include "utils/rng.hpp"

#include <gtest/gtest.h>

#include "utils/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace fedclust {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsIndependentOfConsumption) {
  Rng parent(42);
  Rng child_before = parent.split(7);
  for (int i = 0; i < 50; ++i) (void)parent();
  Rng child_after = parent.split(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child_before(), child_after());
  }
}

TEST(Rng, SplitTagsProduceDistinctStreams) {
  Rng parent(42);
  Rng a = parent.split(0);
  Rng b = parent.split(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values appear in 1000 draws
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.uniform_int(1), 0u);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  constexpr int kN = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(13);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / kN, 3.0, 0.02);
}

// Gamma(alpha) has mean alpha — check across shape regimes including
// the alpha < 1 boosting path.
class GammaMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMeanTest, MeanMatchesAlpha) {
  const double alpha = GetParam();
  Rng rng(17);
  constexpr int kN = 40000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gamma(alpha);
    ASSERT_GE(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / kN, alpha, 0.05 * std::max(1.0, alpha));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMeanTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 8.0));

TEST(Rng, GammaRejectsNonPositiveAlpha) {
  Rng rng(1);
  EXPECT_THROW(rng.gamma(0.0), Error);
  EXPECT_THROW(rng.gamma(-1.0), Error);
}

class DirichletTest : public ::testing::TestWithParam<double> {};

TEST_P(DirichletTest, SumsToOneAndNonNegative) {
  const double alpha = GetParam();
  Rng rng(19);
  for (int rep = 0; rep < 200; ++rep) {
    const auto p = rng.dirichlet(alpha, 10);
    ASSERT_EQ(p.size(), 10u);
    double sum = 0.0;
    for (double v : p) {
      ASSERT_GE(v, 0.0);
      sum += v;
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, DirichletTest,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

TEST(Rng, DirichletSmallAlphaIsSkewed) {
  // With alpha = 0.05 most mass should sit on one category.
  Rng rng(23);
  double max_sum = 0.0;
  constexpr int kReps = 300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto p = rng.dirichlet(0.05, 10);
    max_sum += *std::max_element(p.begin(), p.end());
  }
  EXPECT_GT(max_sum / kReps, 0.7);
}

TEST(Rng, DirichletLargeAlphaIsFlat) {
  Rng rng(29);
  double max_sum = 0.0;
  constexpr int kReps = 300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto p = rng.dirichlet(100.0, 10);
    max_sum += *std::max_element(p.begin(), p.end());
  }
  EXPECT_LT(max_sum / kReps, 0.15);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(31);
  const std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), Error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
  EXPECT_THROW(rng.categorical({1.0, -1.0}), Error);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int rep = 0; rep < 50; ++rep) {
    const auto s = rng.sample_without_replacement(20, 8);
    ASSERT_EQ(s.size(), 8u);
    std::set<std::size_t> unique(s.begin(), s.end());
    ASSERT_EQ(unique.size(), 8u);
    for (std::size_t v : s) ASSERT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  auto s = rng.sample_without_replacement(5, 5);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(47);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

}  // namespace
}  // namespace fedclust
