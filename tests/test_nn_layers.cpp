// Per-layer tests: shape handling, known-value forwards, and
// finite-difference gradient checks through the Layer interface.
#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace fedclust::nn {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng, 0.0f, scale);
}

/// Scalar loss L = Σ g ⊙ layer(x); returns analytic input grad and fills
/// parameter grads.
Tensor analytic_grads(Layer& layer, const Tensor& x, const Tensor& g) {
  for (Param* p : layer.params()) p->grad.zero();
  // backward() pairs with a TRAIN-mode forward; eval forwards allocate
  // no backward caches.
  (void)layer.forward(x, /*train=*/true);
  return layer.backward(g);
}

double loss_of(Layer& layer, const Tensor& x, const Tensor& g) {
  const Tensor y = layer.forward(x, /*train=*/false);
  double l = 0.0;
  for (std::size_t i = 0; i < g.numel(); ++i) {
    l += static_cast<double>(g[i]) * y[i];
  }
  return l;
}

/// Checks dL/dx against central differences at a few probe indices.
void check_input_grad(Layer& layer, Tensor x, const Tensor& g,
                      std::initializer_list<std::size_t> probes,
                      double tol = 5e-2) {
  const Tensor grad = analytic_grads(layer, x, g);
  const float eps = 1e-2f;
  for (std::size_t p : probes) {
    const float orig = x[p];
    x[p] = orig + eps;
    const double lp = loss_of(layer, x, g);
    x[p] = orig - eps;
    const double lm = loss_of(layer, x, g);
    x[p] = orig;
    EXPECT_NEAR(grad[p], (lp - lm) / (2.0 * eps), tol) << "input idx " << p;
  }
}

/// Checks each parameter's gradient at a few probe indices.
void check_param_grads(Layer& layer, const Tensor& x, const Tensor& g,
                       double tol = 5e-2) {
  (void)analytic_grads(layer, x, g);
  std::vector<std::vector<float>> saved;
  for (Param* p : layer.params()) {
    saved.emplace_back(p->grad.flat().begin(), p->grad.flat().end());
  }
  const float eps = 1e-2f;
  std::size_t pi = 0;
  for (Param* p : layer.params()) {
    for (std::size_t idx :
         {std::size_t{0}, p->value.numel() / 2, p->value.numel() - 1}) {
      const float orig = p->value[idx];
      p->value[idx] = orig + eps;
      const double lp = loss_of(layer, x, g);
      p->value[idx] = orig - eps;
      const double lm = loss_of(layer, x, g);
      p->value[idx] = orig;
      EXPECT_NEAR(saved[pi][idx], (lp - lm) / (2.0 * eps), tol)
          << p->name << "[" << idx << "]";
    }
    ++pi;
  }
}

// -- Linear ------------------------------------------------------------------

TEST(LinearLayer, ForwardKnownValues) {
  Linear fc(2, 2);
  // W = [[1, 2], [3, 4]], b = [10, 20]; y = x Wᵀ + b.
  fc.params()[0]->value = Tensor({2, 2}, std::vector<float>{1, 2, 3, 4});
  fc.params()[1]->value = Tensor({2}, std::vector<float>{10, 20});
  const Tensor x({1, 2}, std::vector<float>{1, 1});
  const Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 13.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 27.0f);
}

TEST(LinearLayer, GradientsMatchFiniteDifference) {
  Linear fc(5, 3);
  Rng rng(1);
  fc.init_params(rng);
  const Tensor x = random_tensor({4, 5}, 2);
  const Tensor g = random_tensor({4, 3}, 3);
  check_input_grad(fc, x, g, {0, 7, 19});
  check_param_grads(fc, x, g);
}

TEST(LinearLayer, GradAccumulatesAcrossBackwardCalls) {
  Linear fc(3, 2);
  Rng rng(4);
  fc.init_params(rng);
  const Tensor x = random_tensor({2, 3}, 5);
  const Tensor g = random_tensor({2, 2}, 6);
  (void)fc.forward(x, true);
  (void)fc.backward(g);
  const float once = fc.params()[0]->grad[0];
  (void)fc.forward(x, true);
  (void)fc.backward(g);
  EXPECT_NEAR(fc.params()[0]->grad[0], 2.0f * once, 1e-5f);
}

TEST(LinearLayer, RejectsWrongInputWidth) {
  Linear fc(3, 2);
  const Tensor x({2, 4});
  EXPECT_THROW(fc.forward(x, false), Error);
}

// -- Conv2d -----------------------------------------------------------------

TEST(Conv2dLayer, GradientsMatchFiniteDifference) {
  Conv2d conv(2, 3, 3, /*padding=*/1);
  Rng rng(7);
  conv.init_params(rng);
  const Tensor x = random_tensor({2, 2, 6, 6}, 8);
  const Tensor g = random_tensor({2, 3, 6, 6}, 9);
  check_input_grad(conv, x, g, {0, 31, 143});
  check_param_grads(conv, x, g, /*tol=*/0.1);
}

TEST(Conv2dLayer, KaimingInitScale) {
  Conv2d conv(3, 8, 5);
  Rng rng(10);
  conv.init_params(rng);
  const Tensor& w = conv.params()[0]->value;
  const float bound = std::sqrt(6.0f / (3 * 5 * 5));
  EXPECT_GE(w.min(), -bound);
  EXPECT_LE(w.max(), bound);
  // Bias starts at zero.
  EXPECT_FLOAT_EQ(conv.params()[1]->value.norm(), 0.0f);
}

TEST(Conv2dLayer, BackwardBeforeForwardThrows) {
  Conv2d conv(1, 1, 3, 1);
  const Tensor g({1, 1, 4, 4});
  EXPECT_THROW(conv.backward(g), Error);
}

// -- activations ---------------------------------------------------------------

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor x({4}, std::vector<float>{-1, 0, 2, -3});
  const Tensor y = relu.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(ReLULayer, BackwardMasksNegativeInputs) {
  ReLU relu;
  const Tensor x({4}, std::vector<float>{-1, 0.5f, 2, -3});
  (void)relu.forward(x, true);
  const Tensor g({4}, std::vector<float>{1, 1, 1, 1});
  const Tensor dx = relu.backward(g);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
  EXPECT_FLOAT_EQ(dx[3], 0.0f);
}

TEST(TanhLayer, ForwardAndGradient) {
  Tanh tanh_layer;
  const Tensor x({2}, std::vector<float>{0.0f, 1.0f});
  const Tensor y = tanh_layer.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], std::tanh(1.0f), 1e-6f);

  const Tensor g({2}, std::vector<float>{1.0f, 1.0f});
  const Tensor dx = tanh_layer.backward(g);
  EXPECT_NEAR(dx[0], 1.0f, 1e-6f);  // tanh'(0) = 1
  const float t = std::tanh(1.0f);
  EXPECT_NEAR(dx[1], 1.0f - t * t, 1e-6f);
}

// -- pooling / flatten ----------------------------------------------------------

TEST(MaxPoolLayer, RoundTripGradient) {
  MaxPool2d pool(2);
  const Tensor x = random_tensor({1, 2, 4, 4}, 11);
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 2, 2}));
  const Tensor g = Tensor::ones(y.shape());
  const Tensor dx = pool.backward(g);
  EXPECT_EQ(dx.shape(), x.shape());
  // Gradient mass is conserved: each output routes to exactly one input.
  EXPECT_NEAR(dx.sum(), g.sum(), 1e-5f);
}

TEST(AvgPoolLayer, ForwardBackwardShapes) {
  AvgPool2d pool(2);
  const Tensor x = random_tensor({2, 3, 8, 8}, 12);
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 4}));
  const Tensor dx = pool.backward(Tensor::ones(y.shape()));
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_NEAR(dx.sum(), static_cast<float>(y.numel()), 1e-4f);
}

TEST(FlattenLayer, CollapsesAndRestores) {
  Flatten flat;
  const Tensor x = random_tensor({2, 3, 4, 4}, 13);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 48}));
  const Tensor dx = flat.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_FLOAT_EQ(dx[17], x[17]);
}

// -- batch norm ----------------------------------------------------------------

TEST(BatchNormLayer, TrainForwardNormalizesPerChannel) {
  BatchNorm2d bn(2);
  const Tensor x = random_tensor({4, 2, 3, 3}, 60, 5.0f);
  const Tensor y = bn.forward(x, /*train=*/true);
  // Each channel of the output is ~zero-mean unit-variance (gamma=1,
  // beta=0 at init).
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    const std::size_t m = 4 * 9;
    for (std::size_t img = 0; img < 4; ++img) {
      for (std::size_t i = 0; i < 9; ++i) {
        mean += y.at(img, c, i / 3, i % 3);
      }
    }
    mean /= static_cast<double>(m);
    for (std::size_t img = 0; img < 4; ++img) {
      for (std::size_t i = 0; i < 9; ++i) {
        const double d = y.at(img, c, i / 3, i % 3) - mean;
        var += d * d;
      }
    }
    var /= static_cast<double>(m);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormLayer, EvalUsesRunningStatistics) {
  BatchNorm2d bn(1, /*momentum=*/1.0);  // running stats = last batch stats
  Rng rng(61);
  const Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 3.0f, 2.0f);
  (void)bn.forward(x, true);
  // After one momentum-1 update, eval on the SAME batch ~ train output.
  const Tensor ytrain = bn.forward(x, true);
  const Tensor yeval = bn.forward(x, false);
  for (std::size_t i = 0; i < yeval.numel(); ++i) {
    ASSERT_NEAR(yeval[i], ytrain[i], 5e-2f);
  }
}

TEST(BatchNormLayer, GradientsMatchFiniteDifference) {
  // BN's backward needs a TRAIN-mode forward (batch statistics), so this
  // check runs its own train-mode finite differences. momentum must not
  // perturb the loss between probes: with fresh running stats each probe
  // still normalizes with the same batch stats, so it's safe.
  BatchNorm2d bn(2);
  // Nudge gamma/beta off their defaults so gradients are generic.
  bn.params()[0]->value[0] = 1.3f;
  bn.params()[1]->value[1] = -0.4f;
  Tensor x = random_tensor({3, 2, 2, 2}, 63);
  const Tensor g = random_tensor({3, 2, 2, 2}, 64);

  auto loss_train = [&]() {
    const Tensor y = bn.forward(x, true);
    double l = 0.0;
    for (std::size_t i = 0; i < g.numel(); ++i) {
      l += static_cast<double>(g[i]) * y[i];
    }
    return l;
  };

  (void)bn.forward(x, true);
  const Tensor grad = bn.backward(g);

  const float eps = 1e-2f;
  for (std::size_t probe : {0u, 9u, 23u}) {
    const float orig = x[probe];
    x[probe] = orig + eps;
    const double lp = loss_train();
    x[probe] = orig - eps;
    const double lm = loss_train();
    x[probe] = orig;
    EXPECT_NEAR(grad[probe], (lp - lm) / (2.0 * eps), 8e-2)
        << "input idx " << probe;
  }
}

TEST(BatchNormLayer, GammaBetaGradientsMatchFiniteDifference) {
  // Forward in train mode; perturb gamma/beta and compare the loss
  // delta against the analytic accumulation.
  BatchNorm2d bn(2);
  const Tensor x = random_tensor({3, 2, 2, 2}, 65);
  const Tensor g = random_tensor({3, 2, 2, 2}, 66);

  auto loss_of_train = [&]() {
    const Tensor y = bn.forward(x, true);
    double l = 0.0;
    for (std::size_t i = 0; i < g.numel(); ++i) {
      l += static_cast<double>(g[i]) * y[i];
    }
    return l;
  };

  for (Param* p : bn.params()) p->grad.zero();
  (void)bn.forward(x, true);
  (void)bn.backward(g);
  const float dgamma0 = bn.params()[0]->grad[0];
  const float dbeta1 = bn.params()[1]->grad[1];

  const float eps = 1e-2f;
  Param* gamma = bn.params()[0];
  const float orig_g = gamma->value[0];
  gamma->value[0] = orig_g + eps;
  const double lp = loss_of_train();
  gamma->value[0] = orig_g - eps;
  const double lm = loss_of_train();
  gamma->value[0] = orig_g;
  EXPECT_NEAR(dgamma0, (lp - lm) / (2.0 * eps), 5e-2);

  Param* beta = bn.params()[1];
  const float orig_b = beta->value[1];
  beta->value[1] = orig_b + eps;
  const double lbp = loss_of_train();
  beta->value[1] = orig_b - eps;
  const double lbm = loss_of_train();
  beta->value[1] = orig_b;
  EXPECT_NEAR(dbeta1, (lbp - lbm) / (2.0 * eps), 5e-2);
}

TEST(BatchNormLayer, RunningStatsTravelWithFlatWeights) {
  // The running statistics are exposed as parameters, so they survive
  // the flat-weights round trip models use on the wire.
  BatchNorm2d bn(1, 1.0);
  Rng rng(67);
  const Tensor x = Tensor::randn({8, 1, 2, 2}, rng, 7.0f, 1.0f);
  (void)bn.forward(x, true);
  EXPECT_NEAR(bn.params()[2]->value[0], 7.0f, 0.5f);  // running mean
}

TEST(BatchNormLayer, BackwardInEvalModeThrows) {
  BatchNorm2d bn(1);
  const Tensor x = random_tensor({2, 1, 2, 2}, 68);
  (void)bn.forward(x, false);
  EXPECT_THROW(bn.backward(x), Error);
}

TEST(BatchNormLayer, RejectsBadConfigAndInput) {
  EXPECT_THROW(BatchNorm2d(0), Error);
  EXPECT_THROW(BatchNorm2d(2, 0.0), Error);
  BatchNorm2d bn(3);
  EXPECT_THROW(bn.forward(Tensor({1, 2, 4, 4}), true), Error);
}

// -- dropout -----------------------------------------------------------------

TEST(DropoutLayer, EvalModeIsIdentity) {
  Dropout drop(0.5);
  const Tensor x = random_tensor({100}, 14);
  const Tensor y = drop.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
  // Backward in eval mode is identity too.
  const Tensor dx = drop.backward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(dx[i], x[i]);
}

TEST(DropoutLayer, TrainModeDropsAndRescales) {
  Dropout drop(0.5, /*seed=*/99);
  const Tensor x = Tensor::ones({10000});
  const Tensor y = drop.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
  // Expected value preserved.
  EXPECT_NEAR(y.mean(), 1.0f, 0.05f);
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  Dropout drop(0.3, 7);
  const Tensor x = Tensor::ones({1000});
  const Tensor y = drop.forward(x, true);
  const Tensor dx = drop.backward(Tensor::ones({1000}));
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(dx[i], y[i]);  // same mask, same scale
  }
}

TEST(DropoutLayer, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(1.0), Error);
  EXPECT_THROW(Dropout(-0.1), Error);
  EXPECT_NO_THROW(Dropout(0.0));
}

// -- eval-mode inference fast path -------------------------------------------
//
// forward(x, /*train=*/false) is a pure inference pass: it must produce
// the same bits as a train forward (for deterministic layers), allocate
// no backward caches, and leave the caches of a pending train pass
// untouched so eval passes can interleave with training (the serving
// engine interleaves them continuously).

TEST(EvalForward, BitIdenticalToTrainForward) {
  Conv2d conv(2, 3, 3, /*padding=*/1);
  Rng rng(70);
  conv.init_params(rng);
  Linear fc(6, 4);
  fc.init_params(rng);

  const Tensor xc = random_tensor({2, 2, 6, 6}, 71);
  const Tensor yc_train = conv.forward(xc, true);
  const Tensor yc_eval = conv.forward(xc, false);
  ASSERT_EQ(yc_train.numel(), yc_eval.numel());
  for (std::size_t i = 0; i < yc_train.numel(); ++i) {
    ASSERT_EQ(yc_train[i], yc_eval[i]) << "conv output idx " << i;
  }

  const Tensor xl = random_tensor({3, 6}, 72);
  const Tensor yl_train = fc.forward(xl, true);
  const Tensor yl_eval = fc.forward(xl, false);
  for (std::size_t i = 0; i < yl_train.numel(); ++i) {
    ASSERT_EQ(yl_train[i], yl_eval[i]) << "linear output idx " << i;
  }
}

TEST(EvalForward, ConvAllocatesNoBackwardCaches) {
  Conv2d conv(1, 2, 3, /*padding=*/1);
  Rng rng(73);
  conv.init_params(rng);
  const Tensor x = random_tensor({2, 1, 8, 8}, 74);

  (void)conv.forward(x, false);
  // The training arena never saw the eval pass...
  EXPECT_EQ(conv.scratch_footprint(), 0u);
  EXPECT_EQ(conv.scratch_allocations(), 0u);
  // ...and backward has nothing to pair with.
  EXPECT_THROW(conv.backward(Tensor({2, 2, 8, 8})), Error);

  // The eval arena reaches steady state after the first same-shape pass.
  const std::size_t after_first = conv.eval_scratch_footprint();
  EXPECT_GT(after_first, 0u);
  (void)conv.forward(x, false);
  (void)conv.forward(x, false);
  EXPECT_EQ(conv.eval_scratch_footprint(), after_first);
  EXPECT_EQ(conv.eval_scratch_allocations(), 0u);  // slots resize in place
  EXPECT_EQ(conv.scratch_footprint(), 0u);
}

TEST(EvalForward, ConvLeavesTrainCachesUntouched) {
  Conv2d conv(2, 3, 3, /*padding=*/1);
  Rng rng(75);
  conv.init_params(rng);
  Conv2d control = conv;  // same params, never sees the eval pass

  const Tensor x1 = random_tensor({2, 2, 6, 6}, 76);
  const Tensor x2 = random_tensor({4, 2, 6, 6}, 77);  // different batch
  const Tensor g = random_tensor({2, 3, 6, 6}, 78);

  (void)conv.forward(x1, true);
  (void)conv.forward(x2, false);  // interleaved inference pass
  const Tensor dx = conv.backward(g);

  (void)control.forward(x1, true);
  const Tensor dx_control = control.backward(g);

  for (std::size_t i = 0; i < dx.numel(); ++i) {
    ASSERT_EQ(dx[i], dx_control[i]) << "dx idx " << i;
  }
  for (std::size_t p = 0; p < 2; ++p) {
    const Tensor& got = conv.params()[p]->grad;
    const Tensor& want = control.params()[p]->grad;
    for (std::size_t i = 0; i < got.numel(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "param " << p << " grad idx " << i;
    }
  }
}

TEST(EvalForward, MaxPoolKeepsTrainArgmaxAcrossEvalPasses) {
  MaxPool2d pool(2);
  MaxPool2d control(2);
  const Tensor x1 = random_tensor({1, 2, 4, 4}, 79);
  Tensor x2 = x1;
  x2 *= -1.0f;  // flips every window's argmax
  const Tensor g = random_tensor({1, 2, 2, 2}, 80);

  (void)pool.forward(x1, true);
  (void)pool.forward(x2, false);
  const Tensor dx = pool.backward(g);

  (void)control.forward(x1, true);
  const Tensor dx_control = control.backward(g);
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    ASSERT_EQ(dx[i], dx_control[i]) << "dx idx " << i;
  }
}

TEST(EvalForward, BatchNormKeepsTrainCachesAcrossEvalPasses) {
  BatchNorm2d bn(2);
  BatchNorm2d control = bn;
  const Tensor x1 = random_tensor({3, 2, 2, 2}, 81);
  const Tensor x2 = random_tensor({5, 2, 2, 2}, 82);
  const Tensor g = random_tensor({3, 2, 2, 2}, 83);

  (void)bn.forward(x1, true);
  (void)bn.forward(x2, false);  // running-stats inference pass
  const Tensor dx = bn.backward(g);

  (void)control.forward(x1, true);
  const Tensor dx_control = control.backward(g);
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    ASSERT_EQ(dx[i], dx_control[i]) << "dx idx " << i;
  }
  // Eval must not have advanced the running statistics either.
  for (std::size_t p = 2; p < 4; ++p) {
    ASSERT_EQ(bn.params()[p]->value[0], control.params()[p]->value[0]);
  }
}

TEST(EvalForward, DropoutKeepsTrainMaskAcrossEvalPasses) {
  Dropout drop(0.4, /*seed=*/84);
  const Tensor x = Tensor::ones({512});
  const Tensor y_train = drop.forward(x, true);

  const Tensor other = random_tensor({512}, 85);
  const Tensor y_eval = drop.forward(other, false);
  for (std::size_t i = 0; i < other.numel(); ++i) {
    ASSERT_EQ(y_eval[i], other[i]);  // identity, no mask draw
  }

  // backward still applies the mask of the train forward it pairs with.
  const Tensor dx = drop.backward(Tensor::ones({512}));
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    ASSERT_EQ(dx[i], y_train[i]);
  }
}

// -- clone -----------------------------------------------------------------

TEST(LayerClone, ConvCloneIsDeep) {
  Conv2d conv(1, 2, 3);
  Rng rng(15);
  conv.init_params(rng);
  auto copy = conv.clone();
  copy->params()[0]->value[0] += 1.0f;
  EXPECT_NE(copy->params()[0]->value[0], conv.params()[0]->value[0]);
}

}  // namespace
}  // namespace fedclust::nn
