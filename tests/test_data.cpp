// Tests for the dataset container, batch iterator, and the synthetic
// generators that stand in for CIFAR-10 / FMNIST / SVHN.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"

namespace fedclust::data {
namespace {

Dataset tiny_dataset(std::size_t per_class = 4) {
  const ImageSpec spec{1, 4, 4, 3};
  Dataset ds(spec);
  for (std::size_t c = 0; c < spec.classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      Tensor img({1, 4, 4});
      img.fill(static_cast<float>(c));
      ds.add(img, static_cast<std::int32_t>(c));
    }
  }
  return ds;
}

TEST(Dataset, AddAndAccess) {
  Dataset ds = tiny_dataset();
  EXPECT_EQ(ds.size(), 12u);
  EXPECT_EQ(ds.label(5), 1);
  const Tensor img = ds.image(8);
  EXPECT_EQ(img.shape(), (Shape{1, 4, 4}));
  EXPECT_FLOAT_EQ(img[0], 2.0f);
}

TEST(Dataset, AddValidatesShapeAndLabel) {
  Dataset ds({1, 4, 4, 3});
  EXPECT_THROW(ds.add(Tensor({1, 3, 3}), 0), Error);
  EXPECT_THROW(ds.add(Tensor({1, 4, 4}), 3), Error);
  EXPECT_THROW(ds.add(Tensor({1, 4, 4}), -1), Error);
}

TEST(Dataset, GatherBuildsBatch) {
  Dataset ds = tiny_dataset();
  const std::vector<std::size_t> idx{0, 4, 8};
  const Batch b = ds.gather(idx);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.images.shape(), (Shape{3, 1, 4, 4}));
  EXPECT_EQ(b.labels, (std::vector<std::int32_t>{0, 1, 2}));
  EXPECT_FLOAT_EQ(b.images.at(1, 0, 0, 0), 1.0f);
}

TEST(Dataset, GatherRejectsOutOfRange) {
  Dataset ds = tiny_dataset();
  const std::vector<std::size_t> idx{99};
  EXPECT_THROW(ds.gather(idx), Error);
}

TEST(Dataset, LabelHistogram) {
  Dataset ds = tiny_dataset(5);
  EXPECT_EQ(ds.label_histogram(), (std::vector<std::size_t>{5, 5, 5}));
}

TEST(Dataset, SubsetPreservesContent) {
  Dataset ds = tiny_dataset();
  const std::vector<std::size_t> idx{1, 10};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 0);
  EXPECT_EQ(sub.label(1), 2);
  EXPECT_FLOAT_EQ(sub.image(1)[0], 2.0f);
}

TEST(Dataset, StratifiedSplitKeepsClassRatios) {
  Dataset ds = tiny_dataset(10);  // 10 per class
  Rng rng(1);
  const auto [train, test] = ds.stratified_split(0.3, rng);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  EXPECT_EQ(test.label_histogram(), (std::vector<std::size_t>{3, 3, 3}));
  EXPECT_EQ(train.label_histogram(), (std::vector<std::size_t>{7, 7, 7}));
}

TEST(Dataset, StratifiedSplitLeavesTrainingSamples) {
  // Even with an extreme fraction, every represented class keeps at least
  // one training sample.
  Dataset ds = tiny_dataset(2);
  Rng rng(2);
  const auto [train, test] = ds.stratified_split(0.9, rng);
  for (std::size_t c : train.label_histogram()) EXPECT_GE(c, 1u);
}

TEST(BatchIterator, CoversEpochExactlyOnce) {
  Dataset ds = tiny_dataset(4);  // 12 samples
  BatchIterator it(ds, 5, Rng(3));
  EXPECT_EQ(it.batches_per_epoch(), 3u);
  std::multiset<float> seen;
  std::size_t total = 0;
  for (std::size_t b = 0; b < it.batches_per_epoch(); ++b) {
    const Batch batch = it.next();
    total += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      seen.insert(batch.images[i * 16]);
    }
  }
  EXPECT_EQ(total, 12u);
  // Every class value appears exactly 4 times across the epoch.
  for (float c : {0.0f, 1.0f, 2.0f}) {
    EXPECT_EQ(seen.count(c), 4u);
  }
}

TEST(BatchIterator, ReshufflesBetweenEpochs) {
  Dataset ds = tiny_dataset(20);
  BatchIterator it(ds, 60, Rng(4));  // one batch per epoch
  const Batch e1 = it.next();
  const Batch e2 = it.next();
  EXPECT_NE(e1.labels, e2.labels);  // same multiset, different order
}

TEST(BatchIterator, DeterministicGivenSeed) {
  Dataset ds = tiny_dataset(4);
  BatchIterator a(ds, 4, Rng(5));
  BatchIterator b(ds, 4, Rng(5));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(a.next().labels, b.next().labels);
  }
}

// -- synthetic generators -----------------------------------------------------

TEST(Synthetic, KindNamesRoundTrip) {
  for (auto kind : {SyntheticKind::kCifar10, SyntheticKind::kFmnist,
                    SyntheticKind::kSvhn}) {
    EXPECT_EQ(synthetic_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(synthetic_kind_from_string("mnist"), Error);
}

TEST(Synthetic, GeometryMatchesEmulatedDatasets) {
  EXPECT_EQ(SyntheticSpec::for_kind(SyntheticKind::kFmnist).image.channels,
            1u);
  EXPECT_EQ(SyntheticSpec::for_kind(SyntheticKind::kFmnist).image.height, 28u);
  EXPECT_EQ(SyntheticSpec::for_kind(SyntheticKind::kCifar10).image.channels,
            3u);
  EXPECT_EQ(SyntheticSpec::for_kind(SyntheticKind::kSvhn).image.height, 32u);
}

TEST(Synthetic, DifficultyOrderingViaCorrelation) {
  // The paper's accuracy ordering (FMNIST > SVHN > CIFAR) is realized by
  // increasing class correlation / clutter.
  const auto f = SyntheticSpec::for_kind(SyntheticKind::kFmnist);
  const auto s = SyntheticSpec::for_kind(SyntheticKind::kSvhn);
  const auto c = SyntheticSpec::for_kind(SyntheticKind::kCifar10);
  EXPECT_LT(f.class_correlation, s.class_correlation);
  EXPECT_LT(s.class_correlation, c.class_correlation);
  EXPECT_LT(f.noise, s.noise);
  EXPECT_LT(s.noise, c.noise);
}

TEST(Synthetic, DeterministicPrototypes) {
  const SyntheticGenerator a(SyntheticKind::kFmnist, 7);
  const SyntheticGenerator b(SyntheticKind::kFmnist, 7);
  for (std::size_t c = 0; c < 10; ++c) {
    for (std::size_t i = 0; i < a.prototype(c).numel(); ++i) {
      ASSERT_FLOAT_EQ(a.prototype(c)[i], b.prototype(c)[i]);
    }
  }
}

TEST(Synthetic, DifferentSeedsDifferentPrototypes) {
  const SyntheticGenerator a(SyntheticKind::kFmnist, 7);
  const SyntheticGenerator b(SyntheticKind::kFmnist, 8);
  EXPECT_GT(euclidean_distance(a.prototype(0), b.prototype(0)), 1.0f);
}

TEST(Synthetic, SamplesClusterAroundOwnPrototype) {
  const SyntheticGenerator gen(SyntheticKind::kFmnist, 9);
  const std::size_t modes = gen.spec().modes;
  Rng rng(10);
  // A class-0 sample should match one of class 0's appearance modes
  // better than any of class 5's, on average.
  auto best_mode_sim = [&](const Tensor& x, std::size_t cls) {
    double best = -1.0;
    for (std::size_t m = 0; m < modes; ++m) {
      best = std::max(best,
                      static_cast<double>(cosine_similarity(x, gen.prototype(cls, m))));
    }
    return best;
  };
  double own = 0.0, other = 0.0;
  for (int rep = 0; rep < 20; ++rep) {
    const Tensor x = gen.sample(0, rng);
    own += best_mode_sim(x, 0);
    other += best_mode_sim(x, 5);
  }
  EXPECT_GT(own / 20.0, other / 20.0 + 0.1);
}

TEST(Synthetic, ModesAreDistinctAppearances) {
  const SyntheticGenerator gen(SyntheticKind::kCifar10, 9);
  ASSERT_GT(gen.spec().modes, 1u);
  EXPECT_GT(euclidean_distance(gen.prototype(0, 0), gen.prototype(0, 1)),
            1.0f);
}

TEST(Synthetic, GenerateBalancedLabels) {
  const SyntheticGenerator gen(SyntheticKind::kSvhn, 11);
  Rng rng(12);
  const Dataset ds = gen.generate(100, rng);
  EXPECT_EQ(ds.size(), 100u);
  for (std::size_t c : ds.label_histogram()) EXPECT_EQ(c, 10u);
}

TEST(Synthetic, GeneratePerClassCounts) {
  const SyntheticGenerator gen(SyntheticKind::kFmnist, 13);
  Rng rng(14);
  std::vector<std::size_t> counts(10, 0);
  counts[2] = 5;
  counts[7] = 3;
  const Dataset ds = gen.generate_per_class(counts, rng);
  EXPECT_EQ(ds.size(), 8u);
  EXPECT_EQ(ds.label_histogram()[2], 5u);
  EXPECT_EQ(ds.label_histogram()[7], 3u);
}

TEST(Synthetic, PixelsBounded) {
  const SyntheticGenerator gen(SyntheticKind::kCifar10, 15);
  Rng rng(16);
  const Dataset ds = gen.generate(30, rng);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Tensor img = ds.image(i);
    EXPECT_GE(img.min(), -3.0f);
    EXPECT_LE(img.max(), 3.0f);
  }
}

TEST(Synthetic, PoolSplitsAreDisjointStreams) {
  const auto [train, test] =
      make_synthetic_pool(SyntheticKind::kFmnist, 50, 20, 17);
  EXPECT_EQ(train.size(), 50u);
  EXPECT_EQ(test.size(), 20u);
  // Not byte-identical data (different RNG streams).
  EXPECT_GT(euclidean_distance(train.image(0), test.image(0)), 1e-3f);
}

}  // namespace
}  // namespace fedclust::data
