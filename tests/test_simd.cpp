// SIMD kernel-table tests: dispatch state, 64-byte buffer alignment,
// SIMD-vs-scalar equivalence on randomized shapes (including remainder
// lanes), and the determinism invariants the vectorized kernels promise
// (bit-identical results across repeat runs, thread splits, and
// kChunkAlign-aligned chunkings within one build).
#include "tensor/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "cluster/distance.hpp"
#include "fl/federation.hpp"
#include "linalg/matrix.hpp"
#include "tensor/aligned.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "tensor/tensor.hpp"
#include "utils/rng.hpp"
#include "utils/thread_pool.hpp"

namespace fedclust {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed,
                              float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-scale, scale));
  return v;
}

// Relative error with an absolute floor so near-zero references don't
// inflate the ratio.
double rel_err(double a, double b) {
  const double denom = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) / denom;
}

bool ptr_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kBufferAlignment == 0;
}

// -- dispatch state ---------------------------------------------------------

TEST(SimdDispatch, CompiledFlagMatchesTablePresence) {
  EXPECT_EQ(ops::simd_compiled(), ops::simd_kernels() != nullptr);
}

TEST(SimdDispatch, SetSimdEnabledSwitchesTables) {
  ops::set_simd_enabled(false);
  EXPECT_FALSE(ops::simd_active());
  EXPECT_STREQ(ops::kernels().name, "scalar");
  ops::set_simd_enabled(true);
  if (ops::simd_active()) {
    EXPECT_STREQ(ops::kernels().name, ops::simd_kernels()->name);
  } else {
    // No SIMD table compiled in, or the host fails the runtime ISA
    // check: enabling must safely stay on the scalar table.
    EXPECT_STREQ(ops::kernels().name, "scalar");
  }
}

TEST(SimdDispatch, AllKernelPointersAreNonNull) {
  const auto check = [](const ops::KernelTable& t) {
    EXPECT_NE(t.name, nullptr);
    EXPECT_NE(t.gemm_nn_rows, nullptr);
    EXPECT_NE(t.gemm_tn_rows, nullptr);
    EXPECT_NE(t.gemm_nt_rows, nullptr);
    EXPECT_NE(t.axpy, nullptr);
    EXPECT_NE(t.scale, nullptr);
    EXPECT_NE(t.add, nullptr);
    EXPECT_NE(t.sub, nullptr);
    EXPECT_NE(t.mul, nullptr);
    EXPECT_NE(t.scale_shift, nullptr);
    EXPECT_NE(t.sub_mul, nullptr);
    EXPECT_NE(t.relu_forward, nullptr);
    EXPECT_NE(t.relu_backward, nullptr);
    EXPECT_NE(t.sum, nullptr);
    EXPECT_NE(t.dot, nullptr);
    EXPECT_NE(t.sqnorm, nullptr);
    EXPECT_NE(t.sqdist, nullptr);
    EXPECT_NE(t.sqdev, nullptr);
    EXPECT_NE(t.max, nullptr);
    EXPECT_NE(t.weighted_accumulate, nullptr);
    EXPECT_NE(t.bn_backward_dx, nullptr);
  };
  check(ops::scalar_kernels());
  if (const ops::KernelTable* simd = ops::simd_kernels()) check(*simd);
}

// -- alignment (satellite: Tensor/ScratchArena storage on 64 bytes) ---------

static_assert(kBufferAlignment == 64, "SIMD kernels assume 64-byte buffers");
static_assert(ops::kChunkAlign % (kBufferAlignment / sizeof(float)) == 0,
              "chunk cuts must land on cache-line boundaries");

TEST(Alignment, TensorBuffersStartOnCacheLines) {
  for (const std::size_t n : {1u, 3u, 7u, 8u, 63u, 64u, 65u, 1000u}) {
    const Tensor t({n});
    EXPECT_TRUE(ptr_aligned(t.data())) << "numel=" << n;
  }
  Rng rng(7);
  const Tensor r = Tensor::randn({5, 17}, rng);
  EXPECT_TRUE(ptr_aligned(r.data()));
}

TEST(Alignment, AdoptingConstructorReallocatesAligned) {
  // The std::vector<float> overload must copy into aligned storage even
  // though the source buffer has only natural alignment.
  std::vector<float> raw(37, 1.5f);
  const Tensor t({37}, raw);
  EXPECT_TRUE(ptr_aligned(t.data()));
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 1.5f);
}

TEST(Alignment, ScratchArenaSlotsStartOnCacheLines) {
  ScratchArena arena;
  for (std::size_t key = 0; key < 4; ++key) {
    Tensor& slot = arena.acquire(key, {3 + key, 17});
    EXPECT_TRUE(ptr_aligned(slot.data())) << "slot=" << key;
  }
  // Growth keeps the guarantee.
  Tensor& grown = arena.acquire(0, {129, 65});
  EXPECT_TRUE(ptr_aligned(grown.data()));
}

TEST(Alignment, AlignedFloatVectorIsAligned) {
  const AlignedFloatVector v(123, 0.25f);
  EXPECT_TRUE(ptr_aligned(v.data()));
}

// -- SIMD vs scalar equivalence --------------------------------------------
//
// The two tables use different (but individually fixed) accumulation
// orders, so equivalence is tolerance-based, never bit-exact. Each case
// skips when no SIMD table is active so the scalar-only CI leg still
// runs the file.

class SimdScalarEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ops::simd_active()) {
      GTEST_SKIP() << "no active SIMD kernel table in this build/host";
    }
    simd_ = ops::simd_kernels();
    ASSERT_NE(simd_, nullptr);
  }
  void TearDown() override { ops::set_simd_enabled(true); }

  const ops::KernelTable& scalar_ = ops::scalar_kernels();
  const ops::KernelTable* simd_ = nullptr;
};

// Shapes chosen to hit every remainder path: sub-vector sizes, exact
// vector multiples, microkernel-tile remainders (kMR=6, kNR*W=16), and
// odd primes.
struct GemmShape {
  std::size_t m, k, n;
};
const GemmShape kGemmShapes[] = {{1, 1, 1},    {2, 3, 5},    {6, 8, 16},
                                 {7, 9, 17},   {13, 31, 19}, {24, 16, 32},
                                 {33, 47, 29}, {64, 40, 65}};

TEST_F(SimdScalarEquivalence, GemmNN) {
  for (const GemmShape& s : kGemmShapes) {
    const auto a = random_vec(s.m * s.k, 100 + s.m);
    const auto b = random_vec(s.k * s.n, 200 + s.n);
    std::vector<float> cs(s.m * s.n), cv(s.m * s.n);
    scalar_.gemm_nn_rows(a.data(), b.data(), cs.data(), 0, s.m, s.k, s.n);
    simd_->gemm_nn_rows(a.data(), b.data(), cv.data(), 0, s.m, s.k, s.n);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      EXPECT_LT(rel_err(cs[i], cv[i]), 1e-5)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " i=" << i;
    }
  }
}

TEST_F(SimdScalarEquivalence, GemmTN) {
  for (const GemmShape& s : kGemmShapes) {
    // A stored k-major: (k × m).
    const auto a = random_vec(s.k * s.m, 300 + s.m);
    const auto b = random_vec(s.k * s.n, 400 + s.n);
    std::vector<float> cs(s.m * s.n), cv(s.m * s.n);
    scalar_.gemm_tn_rows(a.data(), b.data(), cs.data(), 0, s.m, s.k, s.m,
                         s.n);
    simd_->gemm_tn_rows(a.data(), b.data(), cv.data(), 0, s.m, s.k, s.m,
                        s.n);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      EXPECT_LT(rel_err(cs[i], cv[i]), 1e-5)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " i=" << i;
    }
  }
}

TEST_F(SimdScalarEquivalence, GemmNT) {
  for (const GemmShape& s : kGemmShapes) {
    const auto a = random_vec(s.m * s.k, 500 + s.m);
    const auto b = random_vec(s.n * s.k, 600 + s.n);  // B stored n × k
    std::vector<float> cs(s.m * s.n), cv(s.m * s.n);
    scalar_.gemm_nt_rows(a.data(), b.data(), cs.data(), 0, s.m, s.k, s.n);
    simd_->gemm_nt_rows(a.data(), b.data(), cv.data(), 0, s.m, s.k, s.n);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      EXPECT_LT(rel_err(cs[i], cv[i]), 1e-5)
          << "m=" << s.m << " k=" << s.k << " n=" << s.n << " i=" << i;
    }
  }
}

const std::size_t kVecSizes[] = {1, 5, 8, 15, 16, 17, 64, 255, 1001};

TEST_F(SimdScalarEquivalence, Elementwise) {
  for (const std::size_t n : kVecSizes) {
    const auto x = random_vec(n, 10 + n);
    const auto y0 = random_vec(n, 20 + n);

    // axpy and scale_shift have an a·x+b shape: the SIMD table fuses the
    // multiply-add while the scalar build may round the product first, so
    // cancellation can make the (tiny) difference large in ULP terms —
    // compare those two with an absolute tolerance. Every other
    // elementwise op maps to the same per-element operations and must
    // match bit-for-bit.
    auto ys = y0, yv = y0;
    scalar_.axpy(0.75f, x.data(), ys.data(), n);
    simd_->axpy(0.75f, x.data(), yv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yv[i], 1e-6);

    ys = y0, yv = y0;
    scalar_.scale(-1.25f, ys.data(), n);
    simd_->scale(-1.25f, yv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(ys[i], yv[i]);

    ys = y0, yv = y0;
    scalar_.add(x.data(), ys.data(), n);
    simd_->add(x.data(), yv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(ys[i], yv[i]);

    ys = y0, yv = y0;
    scalar_.sub(x.data(), ys.data(), n);
    simd_->sub(x.data(), yv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(ys[i], yv[i]);

    ys = y0, yv = y0;
    scalar_.mul(x.data(), ys.data(), n);
    simd_->mul(x.data(), yv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(ys[i], yv[i]);

    std::vector<float> os(n), ov(n);
    scalar_.scale_shift(x.data(), os.data(), 1.5f, -0.25f, n);
    simd_->scale_shift(x.data(), ov.data(), 1.5f, -0.25f, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(os[i], ov[i], 1e-6);

    scalar_.sub_mul(x.data(), os.data(), 0.125f, 2.0f, n);
    simd_->sub_mul(x.data(), ov.data(), 0.125f, 2.0f, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(os[i], ov[i]);
  }
}

TEST_F(SimdScalarEquivalence, ScaleShiftInPlaceAliasing) {
  // BatchNorm's eval path calls scale_shift with x == y; both tables
  // must tolerate full aliasing.
  for (const std::size_t n : kVecSizes) {
    const auto x = random_vec(n, 30 + n);
    auto in_place_s = x, in_place_v = x;
    std::vector<float> out_of_place(n);
    scalar_.scale_shift(x.data(), out_of_place.data(), 2.5f, 1.0f, n);
    scalar_.scale_shift(in_place_s.data(), in_place_s.data(), 2.5f, 1.0f, n);
    simd_->scale_shift(in_place_v.data(), in_place_v.data(), 2.5f, 1.0f, n);
    for (std::size_t i = 0; i < n; ++i) {
      // Within one table, aliasing must not change the result at all;
      // across tables, FMA contraction allows low-order-bit drift.
      EXPECT_EQ(in_place_s[i], out_of_place[i]);
      EXPECT_NEAR(in_place_v[i], out_of_place[i], 1e-6);
    }
  }
}

TEST_F(SimdScalarEquivalence, ReluForwardAndBackward) {
  for (const std::size_t n : kVecSizes) {
    auto x = random_vec(n, 40 + n);
    if (n > 2) x[n / 2] = 0.0f;  // the boundary case must zero, not pass
    std::vector<float> ys(n), yv(n);
    scalar_.relu_forward(x.data(), ys.data(), n);
    simd_->relu_forward(x.data(), yv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ys[i], yv[i]);

    const auto g0 = random_vec(n, 50 + n);
    auto gs = g0, gv = g0;
    scalar_.relu_backward(x.data(), gs.data(), n);
    simd_->relu_backward(x.data(), gv.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(gs[i], gv[i]);
  }
}

TEST_F(SimdScalarEquivalence, Reductions) {
  for (const std::size_t n : kVecSizes) {
    const auto a = random_vec(n, 60 + n);
    const auto b = random_vec(n, 70 + n);
    EXPECT_LT(rel_err(scalar_.sum(a.data(), n), simd_->sum(a.data(), n)),
              1e-12);
    EXPECT_LT(rel_err(scalar_.dot(a.data(), b.data(), n),
                      simd_->dot(a.data(), b.data(), n)),
              1e-12);
    EXPECT_LT(
        rel_err(scalar_.sqnorm(a.data(), n), simd_->sqnorm(a.data(), n)),
        1e-12);
    EXPECT_LT(rel_err(scalar_.sqdist(a.data(), b.data(), n),
                      simd_->sqdist(a.data(), b.data(), n)),
              1e-12);
    const double mean = scalar_.sum(a.data(), n) / static_cast<double>(n);
    EXPECT_LT(rel_err(scalar_.sqdev(a.data(), mean, n),
                      simd_->sqdev(a.data(), mean, n)),
              1e-12);
    // max selects, it does not accumulate: bit-exact across tables.
    EXPECT_EQ(scalar_.max(a.data(), n), simd_->max(a.data(), n));
  }
}

TEST_F(SimdScalarEquivalence, SqnormIsExactlyDotWithSelf) {
  // The Gram-matrix distance trick (‖a‖² + ‖b‖² − 2a·b) cancels to an
  // exact zero for duplicate rows only if sqnorm and dot share one
  // accumulation path. Pin that bitwise, per table.
  for (const std::size_t n : kVecSizes) {
    const auto a = random_vec(n, 80 + n);
    EXPECT_EQ(scalar_.sqnorm(a.data(), n),
              scalar_.dot(a.data(), a.data(), n));
    EXPECT_EQ(simd_->sqnorm(a.data(), n), simd_->dot(a.data(), a.data(), n));
  }
}

TEST_F(SimdScalarEquivalence, WeightedAccumulateAndBnBackward) {
  for (const std::size_t n : kVecSizes) {
    const auto u0 = random_vec(n, 90 + n);
    const auto u1 = random_vec(n, 91 + n);
    const auto u2 = random_vec(n, 92 + n);
    const float* srcs[] = {u0.data(), u1.data(), u2.data()};
    const double coeff[] = {0.5, 0.3, 0.2};
    std::vector<float> os(n), ov(n);
    scalar_.weighted_accumulate(srcs, coeff, 3, os.data(), 0, n);
    simd_->weighted_accumulate(srcs, coeff, 3, ov.data(), 0, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(os[i], ov[i]);

    scalar_.bn_backward_dx(u0.data(), u1.data(), os.data(), 1.75, 0.03,
                           -0.02, n);
    simd_->bn_backward_dx(u0.data(), u1.data(), ov.data(), 1.75, 0.03,
                          -0.02, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_FLOAT_EQ(os[i], ov[i]);
  }
}

// -- determinism within a build --------------------------------------------

TEST_F(SimdScalarEquivalence, RepeatRunsAreBitIdentical) {
  const std::size_t m = 47, k = 33, n = 29;
  const auto a = random_vec(m * k, 1);
  const auto b = random_vec(k * n, 2);
  std::vector<float> c1(m * n), c2(m * n);
  simd_->gemm_nn_rows(a.data(), b.data(), c1.data(), 0, m, k, n);
  simd_->gemm_nn_rows(a.data(), b.data(), c2.data(), 0, m, k, n);
  ASSERT_EQ(c1, c2);
  ASSERT_EQ(simd_->dot(a.data(), a.data(), m * k),
            simd_->dot(a.data(), a.data(), m * k));
}

TEST_F(SimdScalarEquivalence, GemmRowSplitsAreBitIdentical) {
  // Row tiles are independent: any [i0, i1) partition must reproduce the
  // full-range result exactly — the invariant that makes threaded GEMM
  // bit-identical to serial.
  const std::size_t m = 23, k = 41, n = 37;
  const auto a = random_vec(m * k, 3);
  const auto b = random_vec(k * n, 4);
  std::vector<float> whole(m * n);
  simd_->gemm_nn_rows(a.data(), b.data(), whole.data(), 0, m, k, n);
  for (const std::size_t cut : {1u, 6u, 7u, 16u, 22u}) {
    std::vector<float> split(m * n);
    simd_->gemm_nn_rows(a.data(), b.data(), split.data(), 0, cut, k, n);
    simd_->gemm_nn_rows(a.data(), b.data(), split.data(), cut, m, k, n);
    ASSERT_EQ(whole, split) << "cut=" << cut;
  }
}

TEST_F(SimdScalarEquivalence, WeightedAccumulateChunkingIsBitIdentical) {
  // Cutting the range on kChunkAlign boundaries must not change a single
  // bit — the property weighted_average relies on across pool sizes.
  const std::size_t dim = 10 * ops::kChunkAlign + 17;
  const auto u0 = random_vec(dim, 5);
  const auto u1 = random_vec(dim, 6);
  const float* srcs[] = {u0.data(), u1.data()};
  const double coeff[] = {0.6, 0.4};
  std::vector<float> whole(dim);
  simd_->weighted_accumulate(srcs, coeff, 2, whole.data(), 0, dim);
  for (const std::size_t chunks : {2u, 3u, 7u}) {
    std::vector<float> split(dim);
    std::size_t step = (dim / chunks + ops::kChunkAlign - 1) /
                       ops::kChunkAlign * ops::kChunkAlign;
    for (std::size_t begin = 0; begin < dim; begin += step) {
      const std::size_t end = std::min(dim, begin + step);
      simd_->weighted_accumulate(srcs, coeff, 2, split.data(), begin, end);
    }
    ASSERT_EQ(whole, split) << "chunks=" << chunks;
  }
}

// -- call-site level: dispatched operations agree across tables -------------

class SimdToggle : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ops::simd_active()) {
      GTEST_SKIP() << "no active SIMD kernel table in this build/host";
    }
  }
  void TearDown() override { ops::set_simd_enabled(true); }
};

TEST_F(SimdToggle, MatmulMatchesScalarPath) {
  Rng rng(11);
  const Tensor a = Tensor::randn({47, 33}, rng);
  const Tensor b = Tensor::randn({33, 29}, rng);
  Tensor simd_c, scalar_c;
  ops::matmul(a, b, simd_c);
  ops::set_simd_enabled(false);
  ops::matmul(a, b, scalar_c);
  ASSERT_EQ(simd_c.shape(), scalar_c.shape());
  for (std::size_t i = 0; i < simd_c.numel(); ++i) {
    EXPECT_LT(rel_err(scalar_c.data()[i], simd_c.data()[i]), 1e-5);
  }
}

TEST_F(SimdToggle, PairwiseEuclideanMatchesScalarPath) {
  std::vector<std::vector<float>> vectors;
  for (std::size_t i = 0; i < 6; ++i) {
    vectors.push_back(random_vec(37, 120 + i));  // 37: remainder lanes
  }
  vectors.push_back(vectors[2]);  // exact duplicate row
  const Matrix simd_d = cluster::pairwise_euclidean(vectors);
  ops::set_simd_enabled(false);
  const Matrix scalar_d = cluster::pairwise_euclidean(vectors);

  const std::size_t last = vectors.size() - 1;
  EXPECT_DOUBLE_EQ(simd_d(2, last), 0.0);  // Gram trick cancels exactly
  EXPECT_TRUE(is_symmetric(simd_d));
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_DOUBLE_EQ(simd_d(i, i), 0.0);
    for (std::size_t j = 0; j < vectors.size(); ++j) {
      EXPECT_LT(rel_err(scalar_d(i, j), simd_d(i, j)), 1e-6);
    }
  }
}

TEST_F(SimdToggle, WeightedAverageMatchesScalarPath) {
  // Large enough to trip the threaded chunked path (kMinParallelDim).
  const std::size_t dim = (1u << 15) + 2 * ops::kChunkAlign + 11;
  std::vector<fl::ClientUpdate> updates;
  for (std::size_t u = 0; u < 3; ++u) {
    updates.push_back(
        fl::ClientUpdate{u, random_vec(dim, 130 + u), 10 + 7 * u, 0.0f});
  }

  const std::vector<float> serial = fl::weighted_average(updates, nullptr);
  ThreadPool pool2(2), pool5(5);
  // Within one build, the pool size must not flip a single bit.
  ASSERT_EQ(serial, fl::weighted_average(updates, &pool2));
  ASSERT_EQ(serial, fl::weighted_average(updates, &pool5));

  ops::set_simd_enabled(false);
  const std::vector<float> scalar_serial =
      fl::weighted_average(updates, nullptr);
  ASSERT_EQ(scalar_serial, fl::weighted_average(updates, &pool5));
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_FLOAT_EQ(scalar_serial[i], serial[i]);
  }
}

}  // namespace
}  // namespace fedclust
