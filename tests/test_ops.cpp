// Tests for the math kernels, including finite-difference gradient checks
// of the convolution backward passes.
#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "utils/rng.hpp"
#include "utils/thread_pool.hpp"

namespace fedclust {
namespace {

using ops::Conv2dSpec;

Tensor random_tensor(Shape shape, std::uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng, 0.0f, scale);
}

// -- GEMM -------------------------------------------------------------------

TEST(Matmul, SmallKnownResult) {
  const Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c;
  ops::matmul(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNoop) {
  const Tensor a = random_tensor({4, 4}, 1);
  Tensor eye({4, 4});
  for (std::size_t i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  Tensor c;
  ops::matmul(a, eye, c);
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(c[i], a[i], 1e-5f);
  }
}

TEST(Matmul, DimensionMismatchThrows) {
  Tensor a({2, 3}), b({2, 3}), c;
  EXPECT_THROW(ops::matmul(a, b, c), Error);
}

TEST(Matmul, TransposedVariantsAgree) {
  const Tensor a = random_tensor({5, 7}, 2);
  const Tensor b = random_tensor({7, 4}, 3);
  Tensor c_ref;
  ops::matmul(a, b, c_ref);

  // A stored transposed: matmul_tn(Aᵀ, B) should equal A·B.
  Tensor at({7, 5});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor c_tn;
  ops::matmul_tn(at, b, c_tn);
  ASSERT_EQ(c_tn.shape(), c_ref.shape());
  for (std::size_t i = 0; i < c_ref.numel(); ++i) {
    EXPECT_NEAR(c_tn[i], c_ref[i], 1e-4f);
  }

  // B stored transposed: matmul_nt(A, Bᵀ) should equal A·B.
  Tensor bt({4, 7});
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 4; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c_nt;
  ops::matmul_nt(a, bt, c_nt);
  for (std::size_t i = 0; i < c_ref.numel(); ++i) {
    EXPECT_NEAR(c_nt[i], c_ref[i], 1e-4f);
  }
}

// The blocked/tiled GEMM must agree with the reference ikj loop across
// shapes that exercise every code path: under one register tile, ragged
// remainders, and sizes spanning multiple cache blocks.
TEST(Matmul, BlockedMatchesNaiveAcrossShapes) {
  const struct {
    std::size_t m, k, n;
  } cases[] = {{1, 1, 1},   {3, 5, 2},    {4, 8, 8},    {7, 13, 9},
               {17, 300, 23}, {64, 257, 64}, {130, 512, 70}};
  std::uint64_t seed = 100;
  for (const auto& c : cases) {
    const Tensor a = random_tensor({c.m, c.k}, seed++);
    const Tensor b = random_tensor({c.k, c.n}, seed++);
    Tensor ref, blocked;
    ops::matmul_naive(a, b, ref);
    ops::matmul(a, b, blocked);
    ASSERT_EQ(blocked.shape(), ref.shape());
    for (std::size_t i = 0; i < ref.numel(); ++i) {
      ASSERT_NEAR(blocked[i], ref[i], 1e-4f)
          << c.m << "x" << c.k << "x" << c.n << " at " << i;
    }
  }
}

// Row-block threading must be bit-identical to the single-threaded
// kernels: each element's accumulation order never depends on the
// partition. Shapes are above the parallel FLOP threshold.
TEST(Matmul, ThreadedIsBitIdentical) {
  ThreadPool pool(4);
  const Tensor a = random_tensor({96, 160}, 200);
  const Tensor b = random_tensor({160, 96}, 201);

  Tensor serial, threaded;
  ops::matmul(a, b, serial);
  ops::matmul(a, b, threaded, &pool);
  ASSERT_EQ(threaded.shape(), serial.shape());
  for (std::size_t i = 0; i < serial.numel(); ++i) {
    ASSERT_EQ(threaded[i], serial[i]) << "matmul diverged at " << i;
  }

  Tensor bt({96, 160});
  for (std::size_t i = 0; i < 160; ++i) {
    for (std::size_t j = 0; j < 96; ++j) bt.at(j, i) = b.at(i, j);
  }

  Tensor serial_tn, threaded_tn;
  ops::matmul_tn(a, bt, serial_tn);
  ops::matmul_tn(a, bt, threaded_tn, &pool);
  for (std::size_t i = 0; i < serial_tn.numel(); ++i) {
    ASSERT_EQ(threaded_tn[i], serial_tn[i]) << "matmul_tn diverged at " << i;
  }

  Tensor serial_nt, threaded_nt;
  ops::matmul_nt(a, bt, serial_nt);
  ops::matmul_nt(a, bt, threaded_nt, &pool);
  for (std::size_t i = 0; i < serial_nt.numel(); ++i) {
    ASSERT_EQ(threaded_nt[i], serial_nt[i]) << "matmul_nt diverged at " << i;
  }
}

// -- convolution --------------------------------------------------------------

TEST(Conv2d, OutSizeFormula) {
  Conv2dSpec s{1, 1, 5, 0, 1};
  EXPECT_EQ(s.out_size(32), 28u);
  s.padding = 2;
  EXPECT_EQ(s.out_size(28), 28u);
  s.stride = 2;
  EXPECT_EQ(s.out_size(28), 14u);
  s.padding = 0;
  s.kernel = 33;
  EXPECT_THROW(s.out_size(32), Error);
}

TEST(Conv2d, HandComputed1x1Input) {
  // 1 image, 1 channel, 3x3 input, 2x2 kernel, no padding.
  const Tensor input({1, 1, 3, 3},
                     std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor weight({1, 1, 2, 2}, std::vector<float>{1, 0, 0, 1});
  const Tensor bias({1}, std::vector<float>{0.5f});
  const Conv2dSpec spec{1, 1, 2, 0, 1};
  Tensor out;
  ops::conv2d_forward(input, weight, bias, spec, out);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1 + 5 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 2 + 6 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 4 + 8 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 5 + 9 + 0.5f);
}

TEST(Conv2d, PaddingZeroExtends) {
  const Tensor input({1, 1, 1, 1}, std::vector<float>{2.0f});
  const Tensor weight({1, 1, 3, 3}, std::vector<float>(9, 1.0f));
  const Tensor bias({1});
  const Conv2dSpec spec{1, 1, 3, 1, 1};
  Tensor out;
  ops::conv2d_forward(input, weight, bias, spec, out);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 2.0f);  // only the center tap hits real data
}

// Randomized equivalence of the GEMM-lowered convolution against the
// direct kernels: forward, grad_input, grad_weight, and grad_bias over
// geometries with padding, stride, odd spatial sizes, and channel counts
// that leave ragged GEMM tiles.
TEST(Conv2d, Im2colMatchesDirectAcrossGeometries) {
  const struct {
    Conv2dSpec spec;
    std::size_t batch, h, w;
  } cases[] = {
      {{3, 4, 3, 1, 1}, 2, 8, 8},    // the classic padded 3x3
      {{1, 1, 1, 0, 1}, 1, 1, 1},    // degenerate 1x1 everything
      {{2, 5, 3, 0, 1}, 3, 7, 9},    // odd sizes, no padding
      {{3, 2, 5, 2, 2}, 2, 11, 9},   // big kernel, padding + stride 2
      {{4, 3, 2, 1, 3}, 1, 10, 7},   // even kernel, stride 3
      {{6, 16, 5, 0, 1}, 2, 14, 14}, // LeNet-5 conv2 geometry
  };
  std::uint64_t seed = 300;
  for (const auto& c : cases) {
    SCOPED_TRACE(::testing::Message()
                 << "cin=" << c.spec.in_channels << " cout="
                 << c.spec.out_channels << " k=" << c.spec.kernel << " pad="
                 << c.spec.padding << " stride=" << c.spec.stride << " input="
                 << c.batch << "x" << c.h << "x" << c.w);
    const Tensor input =
        random_tensor({c.batch, c.spec.in_channels, c.h, c.w}, seed++);
    const Tensor weight =
        random_tensor({c.spec.out_channels, c.spec.in_channels, c.spec.kernel,
                       c.spec.kernel},
                      seed++, 0.5f);
    const Tensor bias = random_tensor({c.spec.out_channels}, seed++, 0.1f);
    const std::size_t ho = c.spec.out_size(c.h), wo = c.spec.out_size(c.w);
    const Tensor g =
        random_tensor({c.batch, c.spec.out_channels, ho, wo}, seed++);

    Tensor direct, gemm, columns, pix, grad_cols;
    ops::conv2d_forward(input, weight, bias, c.spec, direct);
    ops::conv2d_forward_im2col(input, weight, bias, c.spec, gemm, columns,
                               pix);
    ASSERT_EQ(gemm.shape(), direct.shape());
    for (std::size_t i = 0; i < direct.numel(); ++i) {
      ASSERT_NEAR(gemm[i], direct[i], 1e-4f) << "forward at " << i;
    }

    Tensor din_direct(input.shape()), din_gemm(input.shape());
    ops::conv2d_backward_input(g, weight, c.spec, din_direct);
    ops::conv2d_backward_input_im2col(g, weight, c.spec, din_gemm, pix,
                                      grad_cols);
    for (std::size_t i = 0; i < din_direct.numel(); ++i) {
      ASSERT_NEAR(din_gemm[i], din_direct[i], 1e-4f) << "grad_input at " << i;
    }

    Tensor dw_direct(weight.shape()), db_direct(bias.shape());
    Tensor dw_gemm(weight.shape()), db_gemm(bias.shape());
    ops::conv2d_backward_params(input, g, c.spec, dw_direct, db_direct);
    // `columns` holds the forward im2col expansion, as cached by Conv2d.
    ops::conv2d_backward_params_im2col(g, columns, c.spec, dw_gemm, db_gemm,
                                       pix);
    for (std::size_t i = 0; i < dw_direct.numel(); ++i) {
      ASSERT_NEAR(dw_gemm[i], dw_direct[i], 1e-4f) << "grad_weight at " << i;
    }
    for (std::size_t i = 0; i < db_direct.numel(); ++i) {
      ASSERT_NEAR(db_gemm[i], db_direct[i], 1e-4f) << "grad_bias at " << i;
    }
  }
}

// col2im is the adjoint of im2col: scattering a column expansion back
// must add each input element once per window that covered it.
TEST(Conv2d, Col2imIsAdjointOfIm2col) {
  const Conv2dSpec spec{2, 1, 3, 1, 2};
  const Tensor input = random_tensor({2, 2, 7, 5}, 400);
  Tensor columns;
  ops::im2col(input, spec, columns);

  // Coverage count per input element, via im2col of an all-ones image.
  Tensor ones(input.shape());
  for (std::size_t i = 0; i < ones.numel(); ++i) ones[i] = 1.0f;
  Tensor ones_cols;
  ops::im2col(ones, spec, ones_cols);

  Tensor back(input.shape());
  ops::col2im(columns, spec, back);
  Tensor coverage(input.shape());
  ops::col2im(ones_cols, spec, coverage);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    ASSERT_NEAR(back[i], coverage[i] * input[i], 1e-4f) << "at " << i;
  }
}

TEST(Conv2d, StridedForwardShape) {
  const Conv2dSpec spec{1, 2, 3, 1, 2};
  const Tensor input = random_tensor({1, 1, 8, 8}, 13);
  const Tensor weight = random_tensor({2, 1, 3, 3}, 14);
  const Tensor bias({2});
  Tensor out;
  ops::conv2d_forward(input, weight, bias, spec, out);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 4, 4}));
}

// Finite-difference check of the convolution backward passes: perturb an
// element, watch the scalar loss L = Σ g ⊙ conv(x) move, compare with the
// analytic gradient.
TEST(Conv2d, BackwardInputMatchesFiniteDifference) {
  const Conv2dSpec spec{2, 3, 3, 1, 1};
  Tensor input = random_tensor({1, 2, 5, 5}, 20);
  const Tensor weight = random_tensor({3, 2, 3, 3}, 21, 0.5f);
  const Tensor bias = random_tensor({3}, 22, 0.1f);
  const Tensor g = random_tensor({1, 3, 5, 5}, 23);  // dL/dout

  Tensor out;
  ops::conv2d_forward(input, weight, bias, spec, out);
  Tensor grad_input(input.shape());
  ops::conv2d_backward_input(g, weight, spec, grad_input);

  const float eps = 1e-2f;
  for (std::size_t probe : {0u, 7u, 24u, 33u, 49u}) {
    const float orig = input[probe];
    input[probe] = orig + eps;
    Tensor out_p;
    ops::conv2d_forward(input, weight, bias, spec, out_p);
    input[probe] = orig - eps;
    Tensor out_m;
    ops::conv2d_forward(input, weight, bias, spec, out_m);
    input[probe] = orig;

    double lp = 0.0, lm = 0.0;
    for (std::size_t i = 0; i < g.numel(); ++i) {
      lp += static_cast<double>(g[i]) * out_p[i];
      lm += static_cast<double>(g[i]) * out_m[i];
    }
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_input[probe], numeric, 5e-2)
        << "input gradient mismatch at " << probe;
  }
}

TEST(Conv2d, BackwardParamsMatchesFiniteDifference) {
  const Conv2dSpec spec{2, 2, 3, 0, 1};
  const Tensor input = random_tensor({2, 2, 6, 6}, 30);
  Tensor weight = random_tensor({2, 2, 3, 3}, 31, 0.5f);
  Tensor bias = random_tensor({2}, 32, 0.1f);
  const Tensor g = random_tensor({2, 2, 4, 4}, 33);

  Tensor grad_w(weight.shape());
  Tensor grad_b(bias.shape());
  ops::conv2d_backward_params(input, g, spec, grad_w, grad_b);

  auto loss_at = [&]() {
    Tensor out;
    ops::conv2d_forward(input, weight, bias, spec, out);
    double l = 0.0;
    for (std::size_t i = 0; i < g.numel(); ++i) {
      l += static_cast<double>(g[i]) * out[i];
    }
    return l;
  };

  const float eps = 1e-2f;
  for (std::size_t probe : {0u, 5u, 17u, 35u}) {
    const float orig = weight[probe];
    weight[probe] = orig + eps;
    const double lp = loss_at();
    weight[probe] = orig - eps;
    const double lm = loss_at();
    weight[probe] = orig;
    EXPECT_NEAR(grad_w[probe], (lp - lm) / (2.0 * eps), 5e-2);
  }
  for (std::size_t probe : {0u, 1u}) {
    const float orig = bias[probe];
    bias[probe] = orig + eps;
    const double lp = loss_at();
    bias[probe] = orig - eps;
    const double lm = loss_at();
    bias[probe] = orig;
    EXPECT_NEAR(grad_b[probe], (lp - lm) / (2.0 * eps), 5e-2);
  }
}

// The kernel contract: every backward kernel OVERWRITES its outputs.
// Accumulation across batches is the layer's job (scratch + add), so a
// second call with the same inputs must reproduce, not double, the
// gradients — even from garbage-filled output tensors.
TEST(Conv2d, BackwardParamsOverwrites) {
  const Conv2dSpec spec{1, 1, 2, 0, 1};
  const Tensor input = random_tensor({1, 1, 3, 3}, 40);
  const Tensor g = random_tensor({1, 1, 2, 2}, 41);
  Tensor grad_w({1, 1, 2, 2});
  Tensor grad_b({1});
  ops::conv2d_backward_params(input, g, spec, grad_w, grad_b);
  const float first_w = grad_w[0];
  const float first_b = grad_b[0];
  for (std::size_t i = 0; i < grad_w.numel(); ++i) grad_w[i] += 7.0f;
  grad_b[0] -= 3.0f;
  ops::conv2d_backward_params(input, g, spec, grad_w, grad_b);
  EXPECT_FLOAT_EQ(grad_w[0], first_w);
  EXPECT_FLOAT_EQ(grad_b[0], first_b);
}

// -- pooling ----------------------------------------------------------------

TEST(MaxPool, ForwardPicksMaxAndRecordsArgmax) {
  const Tensor input({1, 1, 2, 4},
                     std::vector<float>{1, 5, 2, 3, 4, 0, 9, 8});
  Tensor out;
  std::vector<std::size_t> argmax;
  ops::max_pool_forward(input, 2, out, argmax);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 9.0f);
  EXPECT_EQ(argmax[0], 1u);
  EXPECT_EQ(argmax[1], 6u);
}

TEST(MaxPool, BackwardScattersToArgmax) {
  const Tensor input({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor out;
  std::vector<std::size_t> argmax;
  ops::max_pool_forward(input, 2, out, argmax);
  const Tensor g({1, 1, 1, 1}, std::vector<float>{10.0f});
  Tensor grad_in(input.shape());
  ops::max_pool_backward(g, argmax, grad_in);
  EXPECT_FLOAT_EQ(grad_in[3], 10.0f);
  EXPECT_FLOAT_EQ(grad_in[0], 0.0f);
}

TEST(MaxPool, WindowMustDivide) {
  const Tensor input({1, 1, 5, 5});
  Tensor out;
  std::vector<std::size_t> argmax;
  EXPECT_THROW(ops::max_pool_forward(input, 2, out, argmax), Error);
}

TEST(AvgPool, ForwardAveragesWindow) {
  const Tensor input({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor out;
  ops::avg_pool_forward(input, 2, out);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
}

TEST(AvgPool, BackwardSpreadsUniformly) {
  const Tensor g({1, 1, 1, 1}, std::vector<float>{8.0f});
  Tensor grad_in({1, 1, 2, 2});
  ops::avg_pool_backward(g, 2, grad_in);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad_in[i], 2.0f);
}

// -- softmax ------------------------------------------------------------------

TEST(Softmax, RowsSumToOne) {
  const Tensor logits = random_tensor({5, 10}, 50, 3.0f);
  Tensor probs;
  ops::softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 5; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < 10; ++c) {
      ASSERT_GT(probs.at(r, c), 0.0f);
      s += probs.at(r, c);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  const Tensor logits({1, 3}, std::vector<float>{1000.0f, 1000.0f, 0.0f});
  Tensor probs;
  ops::softmax_rows(logits, probs);
  EXPECT_NEAR(probs[0], 0.5f, 1e-5f);
  EXPECT_NEAR(probs[1], 0.5f, 1e-5f);
  EXPECT_NEAR(probs[2], 0.0f, 1e-5f);
}

TEST(Softmax, ShiftInvariance) {
  const Tensor a({1, 4}, std::vector<float>{1, 2, 3, 4});
  const Tensor b({1, 4}, std::vector<float>{101, 102, 103, 104});
  Tensor pa, pb;
  ops::softmax_rows(a, pa);
  ops::softmax_rows(b, pb);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-6f);
}

TEST(LogSumExp, MatchesDirectComputation) {
  const Tensor logits({2, 3}, std::vector<float>{0, 0, 0, 1, 2, 3});
  std::vector<float> lse;
  ops::logsumexp_rows(logits, lse);
  EXPECT_NEAR(lse[0], std::log(3.0f), 1e-5f);
  const float direct =
      std::log(std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f));
  EXPECT_NEAR(lse[1], direct, 1e-5f);
}

}  // namespace
}  // namespace fedclust
