// Tests for ScratchArena and the zero-per-batch-allocation property of
// the im2col Conv2d path that it exists to provide.
#include "tensor/scratch.hpp"

#include <gtest/gtest.h>

#include "nn/layers.hpp"
#include "utils/rng.hpp"

namespace fedclust {
namespace {

TEST(ScratchArena, AcquireShapesSlot) {
  ScratchArena arena;
  Tensor& t = arena.acquire(0, {2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(arena.num_slots(), 1u);
  EXPECT_EQ(arena.allocations(), 1u);
}

TEST(ScratchArena, ReusesCapacityOnShrinkAndRegrow) {
  ScratchArena arena;
  arena.acquire(0, {8, 8});
  const std::size_t after_first = arena.allocations();
  const std::size_t footprint = arena.footprint();

  // Shrinking and regrowing within capacity must not touch the heap.
  arena.acquire(0, {2, 2});
  arena.acquire(0, {4, 16});
  arena.acquire(0, {8, 8});
  EXPECT_EQ(arena.allocations(), after_first);
  EXPECT_EQ(arena.footprint(), footprint);

  // Growing past capacity is counted.
  arena.acquire(0, {16, 16});
  EXPECT_GT(arena.allocations(), after_first);
}

TEST(ScratchArena, SlotsAreIndependent) {
  ScratchArena arena;
  Tensor& a = arena.acquire(0, {4});
  Tensor& b = arena.acquire(3, {2, 2});
  a[0] = 1.0f;
  b[0] = 2.0f;
  EXPECT_EQ(arena.num_slots(), 4u);  // keys 0..3 exist, 1 and 2 untouched
  EXPECT_FLOAT_EQ(arena.slot(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(arena.slot(3)[0], 2.0f);
}

TEST(ScratchArena, SlotPreservesShapeAndContents) {
  ScratchArena arena;
  Tensor& t = arena.acquire(1, {3, 5});
  t.at(2, 4) = 42.0f;
  Tensor& again = arena.slot(1);
  EXPECT_EQ(&again, &t);
  EXPECT_EQ(again.shape(), (Shape{3, 5}));
  EXPECT_FLOAT_EQ(again.at(2, 4), 42.0f);
}

TEST(ScratchArena, ResetDropsEverything) {
  ScratchArena arena;
  arena.acquire(0, {16});
  arena.reset();
  EXPECT_EQ(arena.num_slots(), 0u);
  EXPECT_EQ(arena.footprint(), 0u);
}

// The property the arena buys: once a Conv2d has seen one batch of a
// given shape, further batches reuse every scratch buffer — the arena
// performs no new allocations and its footprint stays flat.
TEST(Conv2dScratch, SteadyStateIsAllocationFree) {
  nn::Conv2d conv(3, 6, 5, /*padding=*/2, /*stride=*/1);
  Rng rng(7);
  conv.init_params(rng);

  const Tensor input = Tensor::randn({4, 3, 16, 16}, rng);
  const Tensor out0 = conv.forward(input, /*train=*/true);
  Tensor g = Tensor::randn(out0.shape(), rng);
  conv.backward(g);

  const std::size_t allocations = conv.scratch_allocations();
  const std::size_t footprint = conv.scratch_footprint();
  EXPECT_GT(footprint, 0u);

  for (int batch = 0; batch < 4; ++batch) {
    conv.forward(input, true);
    conv.backward(g);
    EXPECT_EQ(conv.scratch_allocations(), allocations)
        << "batch " << batch << " touched the heap";
    EXPECT_EQ(conv.scratch_footprint(), footprint)
        << "batch " << batch << " grew a scratch buffer";
  }
}

// A smaller batch must also run allocation-free: slots shrink in place,
// reusing the high-water-mark capacity.
TEST(Conv2dScratch, SmallerBatchReusesCapacity) {
  nn::Conv2d conv(2, 4, 3, 1, 1);
  Rng rng(8);
  conv.init_params(rng);

  const Tensor big = Tensor::randn({6, 2, 12, 12}, rng);
  Tensor gb = Tensor::randn(conv.forward(big, true).shape(), rng);
  conv.backward(gb);
  const std::size_t allocations = conv.scratch_allocations();
  const std::size_t footprint = conv.scratch_footprint();

  const Tensor small = Tensor::randn({2, 2, 12, 12}, rng);
  Tensor gs = Tensor::randn(conv.forward(small, true).shape(), rng);
  conv.backward(gs);
  EXPECT_EQ(conv.scratch_allocations(), allocations);
  EXPECT_EQ(conv.scratch_footprint(), footprint);
}

// Both Conv2d implementations produce the same training step — the layer
// equivalent of the kernel-level equivalence tests.
TEST(Conv2dScratch, DirectAndIm2colLayersAgree) {
  Rng rng(9);
  nn::Conv2d fast(3, 5, 3, 1, 2, nn::ConvImpl::kIm2col);
  fast.init_params(rng);
  nn::Conv2d ref(3, 5, 3, 1, 2, nn::ConvImpl::kDirect);
  // Copy parameters so both layers compute the same function.
  ref.params()[0]->value = fast.params()[0]->value;
  ref.params()[1]->value = fast.params()[1]->value;

  const Tensor input = Tensor::randn({2, 3, 9, 9}, rng);
  const Tensor out_fast = fast.forward(input, true);
  const Tensor out_ref = ref.forward(input, true);
  ASSERT_EQ(out_fast.shape(), out_ref.shape());
  for (std::size_t i = 0; i < out_ref.numel(); ++i) {
    ASSERT_NEAR(out_fast[i], out_ref[i], 1e-4f) << "forward at " << i;
  }

  const Tensor g = Tensor::randn(out_ref.shape(), rng);
  const Tensor din_fast = fast.backward(g);
  const Tensor din_ref = ref.backward(g);
  for (std::size_t i = 0; i < din_ref.numel(); ++i) {
    ASSERT_NEAR(din_fast[i], din_ref[i], 1e-4f) << "grad_input at " << i;
  }
  for (std::size_t p = 0; p < 2; ++p) {
    const Tensor& gf = fast.params()[p]->grad;
    const Tensor& gr = ref.params()[p]->grad;
    for (std::size_t i = 0; i < gr.numel(); ++i) {
      ASSERT_NEAR(gf[i], gr[i], 1e-4f) << "param " << p << " grad at " << i;
    }
  }
}

}  // namespace
}  // namespace fedclust
