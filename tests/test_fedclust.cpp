// Tests for the FedClust core: partial-weight selection, one-shot
// clustering, the full algorithm, and newcomer assignment.
#include "core/fedclust.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "algorithms/fedavg.hpp"
#include "cluster/metrics.hpp"
#include "nn/models.hpp"
#include "test_helpers.hpp"

namespace fedclust::core {
namespace {

using testing::make_dirichlet_federation;
using testing::make_grouped_federation;
using testing::tiny_image_spec;

fl::FederationConfig fast_config() {
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  cfg.threads = 2;
  return cfg;
}

// -- partial weights ------------------------------------------------------------

TEST(PartialWeights, DefaultIsFinalLayerWeight) {
  const nn::Model m = nn::mlp({1, 8, 8, 4}, 16);
  const auto slices = resolve_partial_slices(m, "");
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].name, "linear2.weight");
  EXPECT_EQ(slices[0].size, 16u * 4u);
  EXPECT_EQ(resolve_partial_slices(m, "final")[0].name, "linear2.weight");
}

TEST(PartialWeights, FinalPlusBias) {
  const nn::Model m = nn::mlp({1, 8, 8, 4}, 16);
  const auto slices = resolve_partial_slices(m, "final+bias");
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[1].name, "linear2.bias");
  EXPECT_EQ(slices_numel(slices), 16u * 4u + 4u);
}

TEST(PartialWeights, AllSelectsEverything) {
  const nn::Model m = nn::mlp({1, 8, 8, 4}, 16);
  const auto slices = resolve_partial_slices(m, "all");
  EXPECT_EQ(slices_numel(slices), m.num_weights());
}

TEST(PartialWeights, NamedParameterAndErrors) {
  const nn::Model m = nn::lenet5({1, 28, 28, 10});
  const auto slices = resolve_partial_slices(m, "conv2d1.weight");
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].offset, 0u);
  EXPECT_THROW(resolve_partial_slices(m, "nope.weight"), Error);
}

TEST(PartialWeights, ExtractMatchesSliceContent) {
  nn::Model m = nn::mlp({1, 8, 8, 4}, 8);
  Rng rng(1);
  m.init_params(rng);
  const std::vector<float> flat = m.flat_weights();
  const auto slices = resolve_partial_slices(m, "final");
  const std::vector<float> part = extract_slices(flat, slices);
  ASSERT_EQ(part.size(), slices[0].size);
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_FLOAT_EQ(part[i], flat[slices[0].offset + i]);
  }
}

TEST(PartialWeights, ExtractValidatesBounds) {
  std::vector<nn::ParamSlice> slices{{"x", 10, 5}};
  const std::vector<float> flat(12, 0.0f);
  EXPECT_THROW(extract_slices(flat, slices), Error);
}

// -- one-shot clustering ---------------------------------------------------------

TEST(FormClusters, RecoversGroundTruthGroups) {
  auto [fed, groups] = make_grouped_federation(6, 480, 41, fast_config());
  FedClust algo({.warmup_epochs = 3});
  const ClusteringOutcome out = algo.form_clusters(fed);

  ASSERT_EQ(out.labels.size(), 6u);
  EXPECT_GE(cluster::adjusted_rand_index(out.labels, groups), 0.9);
  // The proximity matrix itself shows the block structure of Fig. 1.
  EXPECT_GT(cluster::block_contrast(out.proximity, groups), 1.1);
}

TEST(FormClusters, UploadIsPartialOnly) {
  auto [fed, groups] = make_grouped_federation(4, 320, 42, fast_config());
  FedClust algo({});
  const ClusteringOutcome out = algo.form_clusters(fed);
  const auto slices =
      resolve_partial_slices(fed.template_model(), "final");
  EXPECT_EQ(out.upload_bytes,
            fl::CommMeter::float_bytes(slices_numel(slices)) * 4);
  EXPECT_EQ(out.download_bytes,
            fl::CommMeter::float_bytes(fed.model_size()) * 4);
  EXPECT_LT(out.upload_bytes, out.download_bytes);
}

TEST(FormClusters, ExplicitThresholdHonored) {
  auto [fed, groups] = make_grouped_federation(4, 320, 43, fast_config());
  // A huge threshold forces one cluster.
  FedClust one({.threshold = 1e9});
  EXPECT_EQ(cluster::num_clusters(one.form_clusters(fed).labels), 1u);
  // A tiny threshold keeps every client separate.
  FedClust all({.threshold = 1e-9});
  EXPECT_EQ(cluster::num_clusters(all.form_clusters(fed).labels), 4u);
}

TEST(FormClusters, IidDataYieldsFewClustersUnderGapPolicy) {
  // Under IID-ish data there is no block structure; the largest-gap
  // policy should not shatter the population.
  fl::Federation fed = make_dirichlet_federation(6, 100.0, 480, 44,
                                                 fast_config());
  FedClust algo({.cut_policy = CutPolicy::kLargestGap, .min_gap_ratio = 3.0});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_LE(cluster::num_clusters(out.labels), 2u);
}

TEST(FormClusters, RelativeThresholdGranularityTracksRelFactor) {
  // The default policy cuts at rel_factor x mean pairwise distance:
  // larger factors must produce coarser clusterings.
  auto [fed, groups] = make_grouped_federation(6, 480, 44, fast_config());
  std::size_t prev = 0;
  for (const double factor : {0.3, 0.9, 1.6}) {
    FedClust algo({.cut_policy = CutPolicy::kRelativeThreshold,
                   .rel_factor = factor});
    const std::size_t k =
        cluster::num_clusters(algo.form_clusters(fed).labels);
    if (prev != 0) EXPECT_LE(k, prev);
    prev = k;
  }
  EXPECT_LE(prev, 2u);  // far above the mean distance -> 1-2 clusters
}

TEST(FormClusters, SilhouettePolicyFindsCrispGroups) {
  auto [fed, groups] = make_grouped_federation(6, 480, 45, fast_config());
  FedClust algo({.warmup_epochs = 3,
                 .cut_policy = CutPolicy::kSilhouette});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_GE(cluster::adjusted_rand_index(out.labels, groups), 0.9);
}

// -- full run -----------------------------------------------------------------

TEST(FedClustRun, BeatsFedAvgOnClusterableData) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(6, 480, 45, cfg);
  auto [fed2, g2] = make_grouped_federation(6, 480, 45, cfg);

  const fl::RunResult fc = FedClust({.warmup_epochs = 3}).run(fed1, 5);
  const fl::RunResult fa = algorithms::FedAvg().run(fed2, 5);
  EXPECT_GT(fc.final_accuracy.mean, fa.final_accuracy.mean);
  EXPECT_EQ(fc.algorithm, "FedClust");
}

TEST(FedClustRun, OneShotCommProfile) {
  auto [fed, groups] = make_grouped_federation(4, 320, 46, fast_config());
  FedClust algo({});
  const fl::RunResult r = algo.run(fed, 4);
  const std::uint64_t model_bytes =
      fl::CommMeter::float_bytes(fed.model_size());
  // Round 0 upload is partial (< model); rounds 1..3 are full FedAvg.
  const auto& up = fed.comm().round_upload();
  ASSERT_EQ(up.size(), 4u);
  EXPECT_LT(up[0], model_bytes * 4);
  EXPECT_EQ(up[1], model_bytes * 4);
  // Clustering happened in exactly one round: round 1+ have stable
  // cluster count.
  for (const auto& round : r.rounds) {
    EXPECT_EQ(round.num_clusters, r.rounds.front().num_clusters);
  }
}

TEST(FedClustRun, RequiresTwoRounds) {
  auto [fed, groups] = make_grouped_federation(4, 320, 47, fast_config());
  FedClust algo({});
  EXPECT_THROW(algo.run(fed, 1), Error);
}

TEST(FedClustRun, StoresClusteringForNewcomers) {
  auto [fed, groups] = make_grouped_federation(4, 320, 48, fast_config());
  FedClust algo({});
  EXPECT_FALSE(algo.last_clustering().has_value());
  algo.run(fed, 3);
  ASSERT_TRUE(algo.last_clustering().has_value());
  EXPECT_EQ(algo.last_clustering()->labels.size(), 4u);
}

TEST(FedClustRun, WarmStartSeedsClusterClassifier) {
  auto cfg = fast_config();
  auto [fed, groups] = make_grouped_federation(4, 320, 53, cfg);
  FedClust algo({.warmup_epochs = 2, .warm_start_classifier = true});
  const fl::RunResult r = algo.run(fed, 2);
  ASSERT_TRUE(algo.last_clustering().has_value());
  // Warm start costs nothing on the wire: round-0 upload is still the
  // partial slice only.
  const auto slices = resolve_partial_slices(fed.template_model(), "final");
  EXPECT_EQ(fed.comm().round_upload()[0],
            fl::CommMeter::float_bytes(slices_numel(slices)) * 4);
  EXPECT_GE(r.final_accuracy.mean, 0.0);
}

TEST(FedClustRun, WarmStartChangesTrajectory) {
  auto cfg = fast_config();
  auto [fed_cold, g1] = make_grouped_federation(4, 320, 54, cfg);
  auto [fed_warm, g2] = make_grouped_federation(4, 320, 54, cfg);
  const double cold = FedClust({.warmup_epochs = 2})
                          .run(fed_cold, 2)
                          .final_accuracy.mean;
  const double warm =
      FedClust({.warmup_epochs = 2, .warm_start_classifier = true})
          .run(fed_warm, 2)
          .final_accuracy.mean;
  EXPECT_NE(cold, warm);  // the seeded classifier must actually be used
}

TEST(FedClustRun, PartialParticipationStillTrainsEveryCluster) {
  auto cfg = fast_config();
  cfg.participation = 0.5;
  auto [fed, groups] = make_grouped_federation(6, 480, 58, cfg);
  FedClust algo({.warmup_epochs = 2});
  const fl::RunResult r = algo.run(fed, 5);
  // Formation still covers everyone (paper: all available clients),
  // so round-0 upload counts all 6 clients.
  const auto slices = resolve_partial_slices(fed.template_model(), "final");
  EXPECT_EQ(fed.comm().round_upload()[0],
            fl::CommMeter::float_bytes(slices_numel(slices)) * 6);
  // Later rounds only carry the sampled half.
  const std::uint64_t model_bytes =
      fl::CommMeter::float_bytes(fed.model_size());
  EXPECT_EQ(fed.comm().round_upload()[1], model_bytes * 3);
  EXPECT_GT(r.final_accuracy.mean, 0.3);
}

TEST(FedClustRun, FixedThresholdOverridesPolicy) {
  auto [fed, groups] = make_grouped_federation(4, 320, 59, fast_config());
  // Even with a policy configured, threshold > 0 wins (documented
  // precedence).
  FedClust algo({.cut_policy = CutPolicy::kSilhouette, .threshold = 1e9});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_EQ(cluster::num_clusters(out.labels), 1u);
  EXPECT_DOUBLE_EQ(out.threshold, 1e9);
}

// -- formation fault tolerance -------------------------------------------------

TEST(FormationFaults, CrashesStillYieldValidPartition) {
  // Background crash churn in the formation round: retries recover most
  // clients, the rest are deferred, and the partition over everyone
  // stays valid.
  auto cfg = fast_config();
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 0.3;
  auto [fed, groups] = make_grouped_federation(6, 480, 61, cfg);
  FedClust algo({.warmup_epochs = 2, .formation_retries = 2});
  const ClusteringOutcome out = algo.form_clusters(fed);

  ASSERT_EQ(out.labels.size(), 6u);
  EXPECT_FALSE(out.fallback_global);
  // reporters + deferred partition the population.
  std::vector<std::size_t> all = out.reporters;
  all.insert(all.end(), out.deferred.begin(), out.deferred.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(out.proximity.rows(), out.reporters.size());
  // Deferred clients hold empty partials; reporters hold real ones.
  for (std::size_t c : out.reporters) {
    EXPECT_FALSE(out.partial_weights[c].empty()) << c;
  }
  for (std::size_t c : out.deferred) {
    EXPECT_TRUE(out.partial_weights[c].empty()) << c;
  }
  const std::size_t k = cluster::num_clusters(out.labels);
  for (std::size_t l : out.labels) EXPECT_LT(l, k);
}

TEST(FormationFaults, RetriesRecoverCrashedClients) {
  // With per-attempt fault draws, a client that crashed on attempt 0
  // usually reports on a retry — so retries must strictly grow the
  // reporter set versus a no-retry formation under the same seed.
  auto cfg = fast_config();
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 0.5;
  auto [fed_no, g1] = make_grouped_federation(6, 480, 62, cfg);
  auto [fed_re, g2] = make_grouped_federation(6, 480, 62, cfg);
  const ClusteringOutcome none =
      FedClust({.warmup_epochs = 2, .formation_retries = 0})
          .form_clusters(fed_no);
  const ClusteringOutcome retried =
      FedClust({.warmup_epochs = 2, .formation_retries = 3})
          .form_clusters(fed_re);
  EXPECT_LT(none.reporters.size(), 6u);  // churn actually bit
  EXPECT_GT(retried.reporters.size(), none.reporters.size());
  EXPECT_EQ(retried.resolicited.size(), 3u);
}

TEST(FormationFaults, DeferredClientsAdmittedDuringRun) {
  // A full run() admits deferred clients through the newcomer path
  // before round 1: afterwards every client holds a partial vector and
  // a definitive label.
  auto cfg = fast_config();
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 0.6;
  auto [fed, groups] = make_grouped_federation(6, 480, 63, cfg);
  FedClust algo({.warmup_epochs = 2, .formation_retries = 1});
  const fl::RunResult r = algo.run(fed, 3);

  ASSERT_TRUE(algo.last_clustering().has_value());
  const ClusteringOutcome& out = *algo.last_clustering();
  EXPECT_FALSE(out.deferred.empty());  // the scenario exercised deferral
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_FALSE(out.partial_weights[c].empty()) << c;
  }
  EXPECT_EQ(r.cluster_labels.size(), 6u);
  const std::size_t k = cluster::num_clusters(out.labels);
  for (std::size_t l : r.cluster_labels) EXPECT_LT(l, k);
}

TEST(FormationFaults, QuorumFailureFallsBackToGlobal) {
  // Every client crashes on every attempt -> no reporters -> below any
  // quorum -> the configured fallback labels everyone 0.
  auto cfg = fast_config();
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 1.0;
  auto [fed, groups] = make_grouped_federation(4, 320, 64, cfg);
  FedClust algo({.warmup_epochs = 2});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_TRUE(out.fallback_global);
  EXPECT_TRUE(out.reporters.empty());
  EXPECT_EQ(out.labels, (std::vector<std::size_t>(4, 0)));
}

TEST(FormationFaults, QuorumFailureCanAbort) {
  auto cfg = fast_config();
  cfg.faults.enabled = true;
  cfg.faults.crash_prob = 1.0;
  auto [fed, groups] = make_grouped_federation(4, 320, 64, cfg);
  FedClust algo(
      {.warmup_epochs = 2,
       .formation_fallback = FedClustConfig::FormationFallback::kAbort});
  EXPECT_THROW(algo.form_clusters(fed), Error);
}

// -- checkpoint / resume -------------------------------------------------------

TEST(CheckpointResume, TrajectoryBitIdenticalAfterKill) {
  // Reference: an uninterrupted 6-round run. Victim: the same run
  // "killed" after round 3 (its last checkpoint write), then resumed on
  // a freshly constructed federation. Every per-round fingerprint and
  // metric must match the reference exactly.
  const std::string path = "/tmp/fedclust_resume_test.ckpt";
  auto cfg = fast_config();
  const FedClustConfig algo_cfg{.warmup_epochs = 2,
                                .checkpoint_every = 3,
                                .checkpoint_path = path};

  auto [fed_ref, g1] = make_grouped_federation(6, 480, 65, cfg);
  const fl::RunResult ref =
      FedClust({.warmup_epochs = 2}).run(fed_ref, 6);

  auto [fed_victim, g2] = make_grouped_federation(6, 480, 65, cfg);
  FedClust(algo_cfg).run(fed_victim, 4);  // checkpoints at rounds 0 and 3

  const robust::RunCheckpoint ck = robust::load_checkpoint(path);
  std::filesystem::remove(path);
  EXPECT_EQ(ck.next_round, 4u);
  EXPECT_EQ(ck.seed, 65u);

  auto [fed_resumed, g3] = make_grouped_federation(6, 480, 65, cfg);
  FedClust algo(algo_cfg);
  const fl::RunResult resumed = algo.resume(fed_resumed, ck, 6);

  ASSERT_EQ(resumed.rounds.size(), ref.rounds.size());
  for (std::size_t i = 0; i < ref.rounds.size(); ++i) {
    EXPECT_EQ(resumed.rounds[i].weights_fp, ref.rounds[i].weights_fp) << i;
    EXPECT_EQ(resumed.rounds[i].acc_mean, ref.rounds[i].acc_mean) << i;
    EXPECT_EQ(resumed.rounds[i].acc_std, ref.rounds[i].acc_std) << i;
    EXPECT_EQ(resumed.rounds[i].train_loss, ref.rounds[i].train_loss) << i;
    EXPECT_EQ(resumed.rounds[i].cum_upload, ref.rounds[i].cum_upload) << i;
    EXPECT_EQ(resumed.rounds[i].cum_download, ref.rounds[i].cum_download)
        << i;
    EXPECT_EQ(resumed.rounds[i].num_clusters, ref.rounds[i].num_clusters)
        << i;
  }
  EXPECT_EQ(resumed.final_accuracy.mean, ref.final_accuracy.mean);
  EXPECT_EQ(resumed.cluster_labels, ref.cluster_labels);
  ASSERT_TRUE(algo.last_clustering().has_value());
}

TEST(CheckpointResume, RejectsMismatchedFederation) {
  const std::string path = "/tmp/fedclust_resume_reject_test.ckpt";
  auto cfg = fast_config();
  const FedClustConfig algo_cfg{.warmup_epochs = 2,
                                .checkpoint_every = 2,
                                .checkpoint_path = path};
  auto [fed, g1] = make_grouped_federation(4, 320, 66, cfg);
  FedClust(algo_cfg).run(fed, 3);
  const robust::RunCheckpoint ck = robust::load_checkpoint(path);
  std::filesystem::remove(path);

  FedClust algo(algo_cfg);
  // Different seed -> different stream universe -> refuse to resume.
  auto [fed_seed, g2] = make_grouped_federation(4, 320, 67, cfg);
  EXPECT_THROW(algo.resume(fed_seed, ck, 6), Error);
  // Different population size.
  auto [fed_size, g3] = make_grouped_federation(6, 480, 66, cfg);
  EXPECT_THROW(algo.resume(fed_size, ck, 6), Error);
  // Nothing left to run.
  auto [fed_done, g4] = make_grouped_federation(4, 320, 66, cfg);
  EXPECT_THROW(algo.resume(fed_done, ck, ck.next_round), Error);
}

// -- newcomers -----------------------------------------------------------------

TEST(Newcomer, AssignedToMatchingGroup) {
  auto [fed, groups] = make_grouped_federation(6, 480, 49, fast_config());
  FedClust algo({.warmup_epochs = 3});
  const fl::RunResult r = algo.run(fed, 3);
  ASSERT_TRUE(algo.last_clustering().has_value());
  const ClusteringOutcome& outcome = *algo.last_clustering();

  // Build newcomers drawn from each group's label set.
  const data::SyntheticGenerator gen(tiny_image_spec(), 49);
  Rng rng(50);
  for (std::size_t g = 0; g < 2; ++g) {
    std::vector<std::size_t> counts(4, 0);
    counts[2 * g] = 40;
    counts[2 * g + 1] = 40;
    const data::Dataset newcomer_data =
        gen.generate_per_class(counts, rng);

    const std::size_t assigned = algo.assign_newcomer(
        fed.template_model(), newcomer_data, fed.config().local,
        Rng(51 + g), outcome);

    // The assigned cluster must be the one holding group-g veterans.
    // Find the majority cluster of ground-truth group g.
    std::vector<std::size_t> votes(cluster::num_clusters(outcome.labels), 0);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i] == g) ++votes[outcome.labels[i]];
    }
    const std::size_t expected = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    EXPECT_EQ(assigned, expected) << "newcomer of group " << g;
  }
}

TEST(Newcomer, RejectsEmptyOutcome) {
  auto [fed, groups] = make_grouped_federation(4, 320, 52, fast_config());
  FedClust algo({});
  ClusteringOutcome empty;
  const data::Dataset some = testing::tiny_pool(40, 53);
  EXPECT_THROW(algo.assign_newcomer(fed.template_model(), some,
                                    fed.config().local, Rng(1), empty),
               Error);
}

}  // namespace
}  // namespace fedclust::core
