// Tests for the FedClust core: partial-weight selection, one-shot
// clustering, the full algorithm, and newcomer assignment.
#include "core/fedclust.hpp"

#include <gtest/gtest.h>

#include "algorithms/fedavg.hpp"
#include "cluster/metrics.hpp"
#include "nn/models.hpp"
#include "test_helpers.hpp"

namespace fedclust::core {
namespace {

using testing::make_dirichlet_federation;
using testing::make_grouped_federation;
using testing::tiny_image_spec;

fl::FederationConfig fast_config() {
  fl::FederationConfig cfg;
  cfg.local.epochs = 2;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  cfg.threads = 2;
  return cfg;
}

// -- partial weights ------------------------------------------------------------

TEST(PartialWeights, DefaultIsFinalLayerWeight) {
  const nn::Model m = nn::mlp({1, 8, 8, 4}, 16);
  const auto slices = resolve_partial_slices(m, "");
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].name, "linear2.weight");
  EXPECT_EQ(slices[0].size, 16u * 4u);
  EXPECT_EQ(resolve_partial_slices(m, "final")[0].name, "linear2.weight");
}

TEST(PartialWeights, FinalPlusBias) {
  const nn::Model m = nn::mlp({1, 8, 8, 4}, 16);
  const auto slices = resolve_partial_slices(m, "final+bias");
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[1].name, "linear2.bias");
  EXPECT_EQ(slices_numel(slices), 16u * 4u + 4u);
}

TEST(PartialWeights, AllSelectsEverything) {
  const nn::Model m = nn::mlp({1, 8, 8, 4}, 16);
  const auto slices = resolve_partial_slices(m, "all");
  EXPECT_EQ(slices_numel(slices), m.num_weights());
}

TEST(PartialWeights, NamedParameterAndErrors) {
  const nn::Model m = nn::lenet5({1, 28, 28, 10});
  const auto slices = resolve_partial_slices(m, "conv2d1.weight");
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].offset, 0u);
  EXPECT_THROW(resolve_partial_slices(m, "nope.weight"), Error);
}

TEST(PartialWeights, ExtractMatchesSliceContent) {
  nn::Model m = nn::mlp({1, 8, 8, 4}, 8);
  Rng rng(1);
  m.init_params(rng);
  const std::vector<float> flat = m.flat_weights();
  const auto slices = resolve_partial_slices(m, "final");
  const std::vector<float> part = extract_slices(flat, slices);
  ASSERT_EQ(part.size(), slices[0].size);
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_FLOAT_EQ(part[i], flat[slices[0].offset + i]);
  }
}

TEST(PartialWeights, ExtractValidatesBounds) {
  std::vector<nn::ParamSlice> slices{{"x", 10, 5}};
  const std::vector<float> flat(12, 0.0f);
  EXPECT_THROW(extract_slices(flat, slices), Error);
}

// -- one-shot clustering ---------------------------------------------------------

TEST(FormClusters, RecoversGroundTruthGroups) {
  auto [fed, groups] = make_grouped_federation(6, 480, 41, fast_config());
  FedClust algo({.warmup_epochs = 3});
  const ClusteringOutcome out = algo.form_clusters(fed);

  ASSERT_EQ(out.labels.size(), 6u);
  EXPECT_GE(cluster::adjusted_rand_index(out.labels, groups), 0.9);
  // The proximity matrix itself shows the block structure of Fig. 1.
  EXPECT_GT(cluster::block_contrast(out.proximity, groups), 1.1);
}

TEST(FormClusters, UploadIsPartialOnly) {
  auto [fed, groups] = make_grouped_federation(4, 320, 42, fast_config());
  FedClust algo({});
  const ClusteringOutcome out = algo.form_clusters(fed);
  const auto slices =
      resolve_partial_slices(fed.template_model(), "final");
  EXPECT_EQ(out.upload_bytes,
            fl::CommMeter::float_bytes(slices_numel(slices)) * 4);
  EXPECT_EQ(out.download_bytes,
            fl::CommMeter::float_bytes(fed.model_size()) * 4);
  EXPECT_LT(out.upload_bytes, out.download_bytes);
}

TEST(FormClusters, ExplicitThresholdHonored) {
  auto [fed, groups] = make_grouped_federation(4, 320, 43, fast_config());
  // A huge threshold forces one cluster.
  FedClust one({.threshold = 1e9});
  EXPECT_EQ(cluster::num_clusters(one.form_clusters(fed).labels), 1u);
  // A tiny threshold keeps every client separate.
  FedClust all({.threshold = 1e-9});
  EXPECT_EQ(cluster::num_clusters(all.form_clusters(fed).labels), 4u);
}

TEST(FormClusters, IidDataYieldsFewClustersUnderGapPolicy) {
  // Under IID-ish data there is no block structure; the largest-gap
  // policy should not shatter the population.
  fl::Federation fed = make_dirichlet_federation(6, 100.0, 480, 44,
                                                 fast_config());
  FedClust algo({.cut_policy = CutPolicy::kLargestGap, .min_gap_ratio = 3.0});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_LE(cluster::num_clusters(out.labels), 2u);
}

TEST(FormClusters, RelativeThresholdGranularityTracksRelFactor) {
  // The default policy cuts at rel_factor x mean pairwise distance:
  // larger factors must produce coarser clusterings.
  auto [fed, groups] = make_grouped_federation(6, 480, 44, fast_config());
  std::size_t prev = 0;
  for (const double factor : {0.3, 0.9, 1.6}) {
    FedClust algo({.cut_policy = CutPolicy::kRelativeThreshold,
                   .rel_factor = factor});
    const std::size_t k =
        cluster::num_clusters(algo.form_clusters(fed).labels);
    if (prev != 0) EXPECT_LE(k, prev);
    prev = k;
  }
  EXPECT_LE(prev, 2u);  // far above the mean distance -> 1-2 clusters
}

TEST(FormClusters, SilhouettePolicyFindsCrispGroups) {
  auto [fed, groups] = make_grouped_federation(6, 480, 45, fast_config());
  FedClust algo({.warmup_epochs = 3,
                 .cut_policy = CutPolicy::kSilhouette});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_GE(cluster::adjusted_rand_index(out.labels, groups), 0.9);
}

// -- full run -----------------------------------------------------------------

TEST(FedClustRun, BeatsFedAvgOnClusterableData) {
  auto cfg = fast_config();
  auto [fed1, g1] = make_grouped_federation(6, 480, 45, cfg);
  auto [fed2, g2] = make_grouped_federation(6, 480, 45, cfg);

  const fl::RunResult fc = FedClust({.warmup_epochs = 3}).run(fed1, 5);
  const fl::RunResult fa = algorithms::FedAvg().run(fed2, 5);
  EXPECT_GT(fc.final_accuracy.mean, fa.final_accuracy.mean);
  EXPECT_EQ(fc.algorithm, "FedClust");
}

TEST(FedClustRun, OneShotCommProfile) {
  auto [fed, groups] = make_grouped_federation(4, 320, 46, fast_config());
  FedClust algo({});
  const fl::RunResult r = algo.run(fed, 4);
  const std::uint64_t model_bytes =
      fl::CommMeter::float_bytes(fed.model_size());
  // Round 0 upload is partial (< model); rounds 1..3 are full FedAvg.
  const auto& up = fed.comm().round_upload();
  ASSERT_EQ(up.size(), 4u);
  EXPECT_LT(up[0], model_bytes * 4);
  EXPECT_EQ(up[1], model_bytes * 4);
  // Clustering happened in exactly one round: round 1+ have stable
  // cluster count.
  for (const auto& round : r.rounds) {
    EXPECT_EQ(round.num_clusters, r.rounds.front().num_clusters);
  }
}

TEST(FedClustRun, RequiresTwoRounds) {
  auto [fed, groups] = make_grouped_federation(4, 320, 47, fast_config());
  FedClust algo({});
  EXPECT_THROW(algo.run(fed, 1), Error);
}

TEST(FedClustRun, StoresClusteringForNewcomers) {
  auto [fed, groups] = make_grouped_federation(4, 320, 48, fast_config());
  FedClust algo({});
  EXPECT_FALSE(algo.last_clustering().has_value());
  algo.run(fed, 3);
  ASSERT_TRUE(algo.last_clustering().has_value());
  EXPECT_EQ(algo.last_clustering()->labels.size(), 4u);
}

TEST(FedClustRun, WarmStartSeedsClusterClassifier) {
  auto cfg = fast_config();
  auto [fed, groups] = make_grouped_federation(4, 320, 53, cfg);
  FedClust algo({.warmup_epochs = 2, .warm_start_classifier = true});
  const fl::RunResult r = algo.run(fed, 2);
  ASSERT_TRUE(algo.last_clustering().has_value());
  // Warm start costs nothing on the wire: round-0 upload is still the
  // partial slice only.
  const auto slices = resolve_partial_slices(fed.template_model(), "final");
  EXPECT_EQ(fed.comm().round_upload()[0],
            fl::CommMeter::float_bytes(slices_numel(slices)) * 4);
  EXPECT_GE(r.final_accuracy.mean, 0.0);
}

TEST(FedClustRun, WarmStartChangesTrajectory) {
  auto cfg = fast_config();
  auto [fed_cold, g1] = make_grouped_federation(4, 320, 54, cfg);
  auto [fed_warm, g2] = make_grouped_federation(4, 320, 54, cfg);
  const double cold = FedClust({.warmup_epochs = 2})
                          .run(fed_cold, 2)
                          .final_accuracy.mean;
  const double warm =
      FedClust({.warmup_epochs = 2, .warm_start_classifier = true})
          .run(fed_warm, 2)
          .final_accuracy.mean;
  EXPECT_NE(cold, warm);  // the seeded classifier must actually be used
}

TEST(FedClustRun, PartialParticipationStillTrainsEveryCluster) {
  auto cfg = fast_config();
  cfg.participation = 0.5;
  auto [fed, groups] = make_grouped_federation(6, 480, 58, cfg);
  FedClust algo({.warmup_epochs = 2});
  const fl::RunResult r = algo.run(fed, 5);
  // Formation still covers everyone (paper: all available clients),
  // so round-0 upload counts all 6 clients.
  const auto slices = resolve_partial_slices(fed.template_model(), "final");
  EXPECT_EQ(fed.comm().round_upload()[0],
            fl::CommMeter::float_bytes(slices_numel(slices)) * 6);
  // Later rounds only carry the sampled half.
  const std::uint64_t model_bytes =
      fl::CommMeter::float_bytes(fed.model_size());
  EXPECT_EQ(fed.comm().round_upload()[1], model_bytes * 3);
  EXPECT_GT(r.final_accuracy.mean, 0.3);
}

TEST(FedClustRun, FixedThresholdOverridesPolicy) {
  auto [fed, groups] = make_grouped_federation(4, 320, 59, fast_config());
  // Even with a policy configured, threshold > 0 wins (documented
  // precedence).
  FedClust algo({.cut_policy = CutPolicy::kSilhouette, .threshold = 1e9});
  const ClusteringOutcome out = algo.form_clusters(fed);
  EXPECT_EQ(cluster::num_clusters(out.labels), 1u);
  EXPECT_DOUBLE_EQ(out.threshold, 1e9);
}

// -- newcomers -----------------------------------------------------------------

TEST(Newcomer, AssignedToMatchingGroup) {
  auto [fed, groups] = make_grouped_federation(6, 480, 49, fast_config());
  FedClust algo({.warmup_epochs = 3});
  const fl::RunResult r = algo.run(fed, 3);
  ASSERT_TRUE(algo.last_clustering().has_value());
  const ClusteringOutcome& outcome = *algo.last_clustering();

  // Build newcomers drawn from each group's label set.
  const data::SyntheticGenerator gen(tiny_image_spec(), 49);
  Rng rng(50);
  for (std::size_t g = 0; g < 2; ++g) {
    std::vector<std::size_t> counts(4, 0);
    counts[2 * g] = 40;
    counts[2 * g + 1] = 40;
    const data::Dataset newcomer_data =
        gen.generate_per_class(counts, rng);

    const std::size_t assigned = algo.assign_newcomer(
        fed.template_model(), newcomer_data, fed.config().local,
        Rng(51 + g), outcome);

    // The assigned cluster must be the one holding group-g veterans.
    // Find the majority cluster of ground-truth group g.
    std::vector<std::size_t> votes(cluster::num_clusters(outcome.labels), 0);
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (groups[i] == g) ++votes[outcome.labels[i]];
    }
    const std::size_t expected = static_cast<std::size_t>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
    EXPECT_EQ(assigned, expected) << "newcomer of group " << g;
  }
}

TEST(Newcomer, RejectsEmptyOutcome) {
  auto [fed, groups] = make_grouped_federation(4, 320, 52, fast_config());
  FedClust algo({});
  ClusteringOutcome empty;
  const data::Dataset some = testing::tiny_pool(40, 53);
  EXPECT_THROW(algo.assign_newcomer(fed.template_model(), some,
                                    fed.config().local, Rng(1), empty),
               Error);
}

}  // namespace
}  // namespace fedclust::core
