// Determinism audit: every algorithm's trajectory must be bit-identical
// across kernel-thread counts (src/check/determinism.hpp). The model here
// is sized so its GEMMs cross the kernel pool's split threshold — with a
// tiny model the pool never forks and the audit would only test the
// single-threaded path against itself.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/cfl.hpp"
#include "algorithms/fedavg.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/pacfl.hpp"
#include "check/determinism.hpp"
#include "core/fedclust.hpp"
#include "test_helpers.hpp"

namespace fedclust::check {
namespace {

/// Two-group federation over 16x16 images with a wide-hidden MLP. The
/// Linear(256 -> 512) weight-gradient GEMM runs at ~4.2 MFLOP with 256
/// output rows, above the pool's ~2 MFLOP fork threshold — so at
/// kernel_threads = 4 the backward genuinely executes on multiple
/// workers, each writing a disjoint row block.
fl::Federation make_federation(std::size_t kernel_threads) {
  constexpr std::uint64_t kSeed = 47;
  data::SyntheticSpec spec = testing::tiny_image_spec();
  spec.image = {1, 16, 16, 4};
  const data::SyntheticGenerator gen(spec, kSeed);
  Rng data_rng = Rng(kSeed).split(1);
  const data::Dataset pool = gen.generate(320, data_rng);
  Rng part_rng = Rng(kSeed).split(3);
  const partition::Partition part = partition::grouped_label_partition(
      pool, /*num_clients=*/4, {{0, 1}, {2, 3}}, part_rng);

  nn::Model model = nn::mlp(spec.image, /*hidden=*/512);
  Rng init = Rng(kSeed).split(4);
  model.init_params(init);

  fl::FederationConfig cfg;
  cfg.seed = kSeed;
  cfg.threads = 2;
  cfg.kernel_threads = kernel_threads;
  cfg.local.epochs = 1;
  cfg.local.batch_size = 16;
  cfg.local.sgd.lr = 0.05;
  return fl::Federation(std::move(model),
                        testing::make_clients(pool, part, kSeed), cfg);
}

/// kernel_threads = 0 disables the pool entirely, 1 forks through a
/// single worker, 4 splits row blocks for real.
const std::vector<std::size_t> kThreadCounts = {0, 1, 4};

template <typename MakeAlgorithm>
void expect_deterministic(MakeAlgorithm make_algorithm,
                          std::size_t rounds = 3) {
  const DeterminismReport report = determinism_audit(
      make_algorithm, make_federation, rounds, kThreadCounts);
  EXPECT_TRUE(report.identical);
  for (const std::string& m : report.mismatches) ADD_FAILURE() << m;
  EXPECT_GT(report.rounds_compared, 0u);
  EXPECT_EQ(report.kernel_thread_counts, kThreadCounts);
}

TEST(Determinism, KernelPoolSplitsAtFour) {
  const fl::Federation fed = make_federation(4);
  ASSERT_NE(fed.kernel_pool(), nullptr);
  EXPECT_EQ(fed.kernel_pool()->size(), 4u);
  EXPECT_EQ(make_federation(0).kernel_pool(), nullptr);
}

TEST(Determinism, FedAvg) {
  expect_deterministic([] { return std::make_unique<algorithms::FedAvg>(); });
}

TEST(Determinism, FedProx) {
  expect_deterministic(
      [] { return std::make_unique<algorithms::FedProx>(0.1); });
}

TEST(Determinism, Cfl) {
  expect_deterministic(
      [] { return std::make_unique<algorithms::Cfl>(algorithms::CflConfig{}); });
}

TEST(Determinism, Ifca) {
  expect_deterministic([] {
    return std::make_unique<algorithms::Ifca>(
        algorithms::IfcaConfig{.num_clusters = 2});
  });
}

TEST(Determinism, Pacfl) {
  expect_deterministic([] {
    return std::make_unique<algorithms::Pacfl>(algorithms::PacflConfig{});
  });
}

TEST(Determinism, FedClust) {
  expect_deterministic([] {
    return std::make_unique<core::FedClust>(
        core::FedClustConfig{.warmup_epochs = 2});
  });
}

}  // namespace
}  // namespace fedclust::check
