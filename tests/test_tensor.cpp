// Tests for the Tensor container and its arithmetic.
#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "utils/rng.hpp"

namespace fedclust {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({4}), 4u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
  EXPECT_EQ(t.rank(), 0u);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructorAndFactories) {
  EXPECT_EQ(Tensor::ones({3})[2], 1.0f);
  EXPECT_EQ(Tensor::full({2, 2}, 2.5f)[3], 2.5f);
  EXPECT_EQ(Tensor::zeros({5}).sum(), 0.0f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), Error);
}

TEST(Tensor, RejectsRankAbove4) {
  EXPECT_THROW(Tensor({1, 1, 1, 1, 1}), Error);
}

TEST(Tensor, At2dMatchesRowMajor) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  t.at(1, 2) = 9.0f;
  EXPECT_EQ(t[5], 9.0f);
}

TEST(Tensor, At4dMatchesNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), Error);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{10, 20, 30});
  const Tensor sum = a + b;
  EXPECT_EQ(sum[1], 22.0f);
  const Tensor diff = b - a;
  EXPECT_EQ(diff[2], 27.0f);
  const Tensor scaled = a * 2.0f;
  EXPECT_EQ(scaled[0], 2.0f);
  const Tensor scaled2 = 0.5f * b;
  EXPECT_EQ(scaled2[0], 5.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW(a -= b, Error);
  EXPECT_THROW(a.axpy(1.0f, b), Error);
  EXPECT_THROW(a.hadamard(b), Error);
}

TEST(Tensor, AxpyAndHadamard) {
  Tensor a({3}, std::vector<float>{1, 2, 3});
  Tensor b({3}, std::vector<float>{1, 1, 1});
  a.axpy(2.0f, b);
  EXPECT_EQ(a[0], 3.0f);
  a.hadamard(b);
  EXPECT_EQ(a[0], 3.0f);
  Tensor c({3}, std::vector<float>{0, 2, 0});
  a.hadamard(c);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(a[1], 8.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, std::vector<float>{-1, 3, 2, 0});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 1u);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(14.0f));
}

TEST(Tensor, ReductionsOnEmptyThrow) {
  Tensor t;
  EXPECT_THROW(t.mean(), Error);
  EXPECT_THROW(t.min(), Error);
  EXPECT_THROW(t.max(), Error);
  EXPECT_THROW(t.argmax(), Error);
}

TEST(Tensor, ArgmaxFirstOnTies) {
  Tensor t({3}, std::vector<float>{5, 5, 5});
  EXPECT_EQ(t.argmax(), 0u);
}

TEST(Tensor, SumUsesDoubleAccumulation) {
  // 10^7 small values would visibly drift with float accumulation.
  Tensor t({1000, 1000});
  t.fill(0.1f);
  EXPECT_NEAR(t.sum(), 1e5, 1.0);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  const Tensor t = Tensor::randn({100, 100}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
  double var = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - t.mean()) * (t[i] - t.mean());
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Tensor, RandUniformBounds) {
  Rng rng(6);
  const Tensor t = Tensor::rand_uniform({1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
  EXPECT_NEAR(t.mean(), 0.5f, 0.2f);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a({2}, std::vector<float>{1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_EQ(a[0], 1.0f);
}

TEST(TensorDistance, DotAndEuclideanAndCosine) {
  Tensor a({3}, std::vector<float>{1, 0, 0});
  Tensor b({3}, std::vector<float>{0, 1, 0});
  EXPECT_FLOAT_EQ(dot(a, b), 0.0f);
  EXPECT_FLOAT_EQ(euclidean_distance(a, b), std::sqrt(2.0f));
  EXPECT_FLOAT_EQ(cosine_similarity(a, b), 0.0f);
  EXPECT_FLOAT_EQ(cosine_similarity(a, a), 1.0f);

  Tensor zero({3});
  EXPECT_FLOAT_EQ(cosine_similarity(a, zero), 0.0f);

  Tensor c({4});
  EXPECT_THROW(dot(a, c), Error);
  EXPECT_THROW(euclidean_distance(a, c), Error);
}

}  // namespace
}  // namespace fedclust
