// Tests for the Model container: naming, slices, flat weights, cloning,
// the reference model builders, and the loss functions.
#include "nn/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <filesystem>
#include <fstream>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/serialize.hpp"

namespace fedclust::nn {
namespace {

Model tiny_model() {
  Model m;
  m.emplace<Flatten>();
  m.emplace<Linear>(4, 3);
  m.emplace<ReLU>();
  m.emplace<Linear>(3, 2);
  return m;
}

TEST(Model, AutoNamesLayersByTypeIndex) {
  Model m = tiny_model();
  EXPECT_EQ(m.layer(0).name(), "flatten1");
  EXPECT_EQ(m.layer(1).name(), "linear1");
  EXPECT_EQ(m.layer(3).name(), "linear2");
}

TEST(Model, SlicesCoverAllWeightsContiguously) {
  Model m = tiny_model();
  const auto slices = m.slices();
  ASSERT_EQ(slices.size(), 4u);  // 2 linear layers × (weight, bias)
  EXPECT_EQ(slices[0].name, "linear1.weight");
  EXPECT_EQ(slices[0].offset, 0u);
  EXPECT_EQ(slices[0].size, 12u);
  EXPECT_EQ(slices[1].name, "linear1.bias");
  EXPECT_EQ(slices[1].offset, 12u);
  std::size_t expected_offset = 0;
  for (const auto& s : slices) {
    EXPECT_EQ(s.offset, expected_offset);
    expected_offset += s.size;
  }
  EXPECT_EQ(expected_offset, m.num_weights());
}

TEST(Model, SliceForThrowsOnUnknownName) {
  Model m = tiny_model();
  EXPECT_NO_THROW(m.slice_for("linear2.bias"));
  EXPECT_THROW(m.slice_for("conv1.weight"), Error);
}

TEST(Model, FlatWeightsRoundTrip) {
  Model m = tiny_model();
  Rng rng(1);
  m.init_params(rng);
  const std::vector<float> w = m.flat_weights();
  EXPECT_EQ(w.size(), m.num_weights());

  Model m2 = tiny_model();
  m2.set_flat_weights(w);
  EXPECT_EQ(m2.flat_weights(), w);
}

TEST(Model, SetFlatWeightsValidatesSize) {
  Model m = tiny_model();
  std::vector<float> w(m.num_weights() + 1, 0.0f);
  EXPECT_THROW(m.set_flat_weights(w), Error);
}

TEST(Model, CloneIsDeepAndPreservesWeights) {
  Model m = tiny_model();
  Rng rng(2);
  m.init_params(rng);
  Model c = m.clone();
  EXPECT_EQ(c.flat_weights(), m.flat_weights());
  c.params()[0]->value[0] += 5.0f;
  EXPECT_NE(c.flat_weights()[0], m.flat_weights()[0]);
}

TEST(Model, ZeroGradClearsAccumulation) {
  Model m = tiny_model();
  Rng rng(3);
  m.init_params(rng);
  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor y = m.forward(x, true);
  m.backward(Tensor::ones(y.shape()));
  bool any_nonzero = false;
  for (const Param* p : static_cast<const Model&>(m).params()) {
    if (p->grad.norm() > 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  m.zero_grad();
  for (const Param* p : static_cast<const Model&>(m).params()) {
    EXPECT_FLOAT_EQ(p->grad.norm(), 0.0f);
  }
}

TEST(Model, DeterministicInitGivenSeed) {
  Model a = tiny_model();
  Model b = tiny_model();
  Rng ra(7), rb(7);
  a.init_params(ra);
  b.init_params(rb);
  EXPECT_EQ(a.flat_weights(), b.flat_weights());
}

// -- builders ---------------------------------------------------------------

TEST(Builders, Lenet5ShapesFor28And32) {
  for (const std::size_t size : {std::size_t{28}, std::size_t{32}}) {
    const ImageSpec spec{size == 28 ? std::size_t{1} : std::size_t{3}, size,
                         size, 10};
    Model m = lenet5(spec);
    Rng rng(4);
    m.init_params(rng);
    const Tensor x({2, spec.channels, size, size});
    const Tensor y = m.forward(x, false);
    EXPECT_EQ(y.shape(), (Shape{2, 10})) << "input " << size;
  }
}

TEST(Builders, Lenet5RejectsOtherSizes) {
  EXPECT_THROW(lenet5({1, 16, 16, 10}), Error);
  EXPECT_THROW(lenet5({1, 28, 32, 10}), Error);
}

TEST(Builders, Lenet5ParameterCount) {
  // Classic LeNet-5 on 3×32×32: conv1 3->6 (456), conv2 6->16 (2416),
  // fc 400->120 (48120), 120->84 (10164), 84->10 (850).
  Model m = lenet5({3, 32, 32, 10});
  EXPECT_EQ(m.num_weights(), 456u + 2416u + 48120u + 10164u + 850u);
}

TEST(Builders, Lenet5BnForwardAndTraining) {
  Model m = lenet5_bn({1, 28, 28, 10});
  Rng rng(44);
  m.init_params(rng);
  const Tensor x = Tensor::randn({4, 1, 28, 28}, rng);
  EXPECT_EQ(m.forward(x, true).shape(), (Shape{4, 10}));
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{4, 10}));
  // BN contributes gamma/beta + running stats to the flat vector.
  EXPECT_EQ(m.num_weights(), lenet5({1, 28, 28, 10}).num_weights() +
                                 4 * (6 + 16));
  // One backward pass flows end to end.
  m.zero_grad();
  const Tensor logits = m.forward(x, true);
  const std::vector<std::int32_t> labels{0, 1, 2, 3};
  const LossResult loss = softmax_cross_entropy(logits, labels);
  m.backward(loss.grad_logits);
  bool any = false;
  for (const Param* p : static_cast<const Model&>(m).params()) {
    if (p->grad.norm() > 0.0f) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(Builders, VggMiniForwardShape) {
  Model m = vgg_mini({3, 32, 32, 10});
  Rng rng(5);
  m.init_params(rng);
  const Tensor x({1, 3, 32, 32});
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{1, 10}));
}

TEST(Builders, MlpForwardShape) {
  Model m = mlp({1, 28, 28, 10}, 32);
  Rng rng(6);
  m.init_params(rng);
  const Tensor x({3, 1, 28, 28});
  EXPECT_EQ(m.forward(x, false).shape(), (Shape{3, 10}));
}

TEST(Builders, FinalLayerWeightName) {
  EXPECT_EQ(final_layer_weight_name(lenet5({1, 28, 28, 10})),
            "linear3.weight");
  EXPECT_EQ(final_layer_weight_name(vgg_mini({3, 32, 32, 10})),
            "linear2.weight");
  EXPECT_EQ(final_layer_weight_name(mlp({1, 28, 28, 10})), "linear2.weight");
}

// Model clone / round-trip invariants across every reference builder.
class BuilderRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  Model build() const {
    switch (GetParam()) {
      case 0:
        return lenet5({1, 28, 28, 10});
      case 1:
        return lenet5({3, 32, 32, 10});
      case 2:
        return vgg_mini({3, 32, 32, 10});
      default:
        return mlp({1, 28, 28, 10}, 32);
    }
  }
};

TEST_P(BuilderRoundTrip, FlatWeightsAndCloneAgree) {
  Model m = build();
  Rng rng(31 + static_cast<std::uint64_t>(GetParam()));
  m.init_params(rng);
  const std::vector<float> w = m.flat_weights();

  Model via_flat = build();
  via_flat.set_flat_weights(w);
  Model via_clone = m.clone();
  EXPECT_EQ(via_flat.flat_weights(), w);
  EXPECT_EQ(via_clone.flat_weights(), w);

  // Identical weights -> identical outputs.
  const auto& spec = m.slices();
  (void)spec;
  Rng xrng(99);
  const std::size_t in_ch = GetParam() == 0 || GetParam() == 3 ? 1 : 3;
  const std::size_t side = GetParam() == 0 || GetParam() == 3 ? 28 : 32;
  const Tensor x = Tensor::randn({2, in_ch, side, side}, xrng);
  const Tensor y1 = m.forward(x, false);
  const Tensor y2 = via_clone.forward(x, false);
  for (std::size_t i = 0; i < y1.numel(); ++i) {
    ASSERT_FLOAT_EQ(y1[i], y2[i]);
  }
}

std::string builder_param_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"lenet5_28", "lenet5_32", "vgg_mini",
                                      "mlp"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Builders, BuilderRoundTrip, ::testing::Range(0, 4),
                         builder_param_name);

// -- serialization -----------------------------------------------------------

TEST(Serialize, RoundTripPreservesWeights) {
  Model m = tiny_model();
  Rng rng(21);
  m.init_params(rng);
  const std::string path = "/tmp/fedclust_ckpt_test.bin";
  save_weights(m, path);

  Model fresh = tiny_model();
  load_weights(fresh, path);
  EXPECT_EQ(fresh.flat_weights(), m.flat_weights());
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Model m = tiny_model();
  Rng rng(22);
  m.init_params(rng);
  const std::string path = "/tmp/fedclust_ckpt_mismatch.bin";
  save_weights(m, path);

  Model other = mlp({1, 4, 4, 3}, 5);  // different hidden width
  EXPECT_THROW(load_weights(other, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsGarbageAndMissingFiles) {
  Model m = tiny_model();
  EXPECT_THROW(load_weights(m, "/tmp/does_not_exist_fedclust.bin"), Error);

  const std::string path = "/tmp/fedclust_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(load_weights(m, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsTruncatedFile) {
  Model m = tiny_model();
  Rng rng(23);
  m.init_params(rng);
  const std::string path = "/tmp/fedclust_ckpt_trunc.bin";
  save_weights(m, path);
  // Chop off the last half of the value section.
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - m.num_weights() * 2);
  EXPECT_THROW(load_weights(m, path), Error);
  std::filesystem::remove(path);
}

// -- losses -----------------------------------------------------------------

TEST(Loss, CrossEntropyUniformLogits) {
  const Tensor logits({2, 4});  // all zeros -> uniform softmax
  const std::vector<std::int32_t> labels{0, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
  // Gradient: (1/4 - onehot)/batch.
  EXPECT_NEAR(r.grad_logits.at(0, 0), (0.25f - 1.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(r.grad_logits.at(0, 1), 0.25f / 2.0f, 1e-6f);
}

TEST(Loss, GradientRowsSumToZero) {
  Rng rng(8);
  const Tensor logits = Tensor::randn({5, 10}, rng);
  const std::vector<std::int32_t> labels{0, 1, 2, 3, 4};
  const LossResult r = softmax_cross_entropy(logits, labels);
  for (std::size_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 10; ++j) s += r.grad_logits.at(i, j);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(Loss, LossOnlyVariantAgrees) {
  Rng rng(9);
  const Tensor logits = Tensor::randn({6, 10}, rng, 0.0f, 2.0f);
  const std::vector<std::int32_t> labels{1, 2, 3, 4, 5, 6};
  const LossResult full = softmax_cross_entropy(logits, labels);
  const float loss_only = softmax_cross_entropy_loss(logits, labels);
  EXPECT_NEAR(full.loss, loss_only, 1e-5f);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Tensor logits({2, 3});
  logits.at(0, 1) = 50.0f;
  logits.at(1, 2) = 50.0f;
  const std::vector<std::int32_t> labels{1, 2};
  EXPECT_LT(softmax_cross_entropy_loss(logits, labels), 1e-4f);
}

TEST(Loss, AccuracyCountsArgmaxMatches) {
  Tensor logits({3, 2});
  logits.at(0, 0) = 1.0f;  // pred 0, label 0 ✓
  logits.at(1, 1) = 1.0f;  // pred 1, label 0 ✗
  logits.at(2, 1) = 1.0f;  // pred 1, label 1 ✓
  const std::vector<std::int32_t> labels{0, 0, 1};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Loss, RejectsBatchMismatch) {
  const Tensor logits({2, 3});
  const std::vector<std::int32_t> labels{0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), Error);
  EXPECT_THROW(accuracy(logits, labels), Error);
}

}  // namespace
}  // namespace fedclust::nn
