#include "nn/optimizer.hpp"

#include <cmath>

#include "tensor/kernels.hpp"

namespace fedclust::nn {

Sgd::Sgd(Model& model, SgdConfig config) : model_(model), config_(config) {
  FEDCLUST_REQUIRE(config_.lr > 0.0, "learning rate must be positive");
  FEDCLUST_REQUIRE(config_.momentum >= 0.0 && config_.momentum < 1.0,
                   "momentum must be in [0, 1)");
  FEDCLUST_REQUIRE(config_.weight_decay >= 0.0,
                   "weight decay must be non-negative");
  FEDCLUST_REQUIRE(config_.prox_mu >= 0.0, "prox_mu must be non-negative");
  for (const Param* p : static_cast<const Model&>(model_).params()) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::capture_prox_reference() {
  prox_reference_.clear();
  for (Param* p : model_.params()) prox_reference_.push_back(p->value);
}

void Sgd::step() {
  const auto params = model_.params();
  FEDCLUST_CHECK(params.size() == velocity_.size(),
                 "model structure changed under the optimizer");
  const bool use_prox = config_.prox_mu > 0.0 && !prox_reference_.empty();
  if (use_prox) {
    FEDCLUST_CHECK(prox_reference_.size() == params.size(),
                   "prox reference does not match model");
  }

  const float lr = static_cast<float>(config_.lr);
  const float mom = static_cast<float>(config_.momentum);
  const float wd = static_cast<float>(config_.weight_decay);
  const float mu = static_cast<float>(config_.prox_mu);

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    // Batch-norm running statistics ride along as parameters so they are
    // aggregated/shipped with the model, but they are NOT optimized —
    // weight decay or the prox term must never touch them.
    if (p.name.rfind("running_", 0) == 0) continue;
    Tensor& vel = velocity_[pi];
    const std::size_t n = p.value.numel();
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* v = vel.data();
    const float* ref = use_prox ? prox_reference_[pi].data() : nullptr;

    // Plain SGD (the default FL client config) is a single axpy; the
    // decorated variants keep the fused scalar loop below.
    if (wd == 0.0f && ref == nullptr && mom == 0.0f) {
      ops::kernels().axpy(-lr, g, w, n);
      continue;
    }

    for (std::size_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (wd != 0.0f) grad += wd * w[i];
      if (ref != nullptr) grad += mu * (w[i] - ref[i]);
      if (mom != 0.0f) {
        v[i] = mom * v[i] + grad;
        grad = v[i];
      }
      w[i] -= lr * grad;
    }
  }
}

Adam::Adam(Model& model, AdamConfig config) : model_(model), config_(config) {
  FEDCLUST_REQUIRE(config_.lr > 0.0, "learning rate must be positive");
  FEDCLUST_REQUIRE(config_.beta1 >= 0.0 && config_.beta1 < 1.0,
                   "beta1 must be in [0, 1)");
  FEDCLUST_REQUIRE(config_.beta2 >= 0.0 && config_.beta2 < 1.0,
                   "beta2 must be in [0, 1)");
  FEDCLUST_REQUIRE(config_.epsilon > 0.0, "epsilon must be positive");
  for (const Param* p : static_cast<const Model&>(model_).params()) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  const auto params = model_.params();
  FEDCLUST_CHECK(params.size() == m_.size(),
                 "model structure changed under the optimizer");
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  // Bias corrections applied to m and v separately, with ε added to
  // √v̂ — NOT to √v. Folding the corrections into one step-size scalar
  // while leaving the denominator as √v + ε silently rescales ε by
  // √(1−β₂ᵗ) (~30× at t=1 with β₂ = 0.999).
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const float wd = static_cast<float>(config_.weight_decay);

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    if (p.name.rfind("running_", 0) == 0) continue;  // BN statistics
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::size_t n = p.value.numel();
    for (std::size_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (wd != 0.0f) grad += wd * w[i];
      m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * grad);
      v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * grad * grad);
      const double m_hat = static_cast<double>(m[i]) / bias1;
      const double v_hat = static_cast<double>(v[i]) / bias2;
      w[i] -= static_cast<float>(config_.lr * m_hat /
                                 (std::sqrt(v_hat) + config_.epsilon));
    }
  }
}

}  // namespace fedclust::nn
