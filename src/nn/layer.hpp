// Layer abstraction for the from-scratch neural network library.
//
// The library is deliberately small: sequential models, explicit
// layer-by-layer backward passes, float32 parameters. That is all the
// federated-learning algorithms need — they treat a model as "a thing
// that trains locally and exposes named weight tensors".
//
// Contract: a TRAIN-mode forward() caches whatever the subsequent
// backward() needs, so train forward/backward calls must be paired on
// the same batch. An EVAL-mode forward (train == false) is a pure
// inference pass: it allocates no backward caches and leaves every
// training cache untouched, so eval forwards may interleave freely with
// train forward/backward pairs (the serving engine relies on this).
// backward() always refers to the most recent TRAIN-mode forward.
// Parameter gradients are ACCUMULATED by backward(); callers zero them
// via Model::zero_grad() between optimizer steps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedclust {

class Rng;
class ThreadPool;

namespace nn {

/// A learnable tensor with its gradient.
struct Param {
  std::string name;  ///< e.g. "conv1.weight"
  Tensor value;
  Tensor grad;

  Param(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(std::move(shape)) {}
};

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Short type tag, e.g. "conv2d", "linear", "relu".
  virtual const char* type() const = 0;

  /// Layer instance name used to qualify parameter names ("conv1").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Computes the layer output; `train` enables train-only behaviour
  /// (dropout masking).
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Propagates the loss gradient; accumulates into parameter grads and
  /// returns the gradient w.r.t. the layer input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// (Re-)initializes parameters from `rng`. Default: nothing.
  virtual void init_params(Rng& rng) { (void)rng; }

  /// Reseeds any internal RNG stream (Dropout's mask stream). Default:
  /// nothing. The FL trainer calls this on every cloned model with a
  /// (client, round)-keyed seed — clones copy the template's RNG state,
  /// so without reseeding every client would replay identical streams.
  virtual void reseed(std::uint64_t seed) { (void)seed; }

  /// Lends a thread pool to layers whose kernels can split work across
  /// row blocks (Conv2d, Linear). The pool is borrowed, never owned, and
  /// may be null (single-threaded kernels). Default: ignored.
  virtual void set_thread_pool(ThreadPool* pool) { (void)pool; }

  /// Deep copy, preserving parameter values but not cached activations.
  virtual std::unique_ptr<Layer> clone() const = 0;

 protected:
  Layer() = default;
  Layer(const Layer&) = default;
  Layer& operator=(const Layer&) = default;

 private:
  std::string name_;
};

}  // namespace nn
}  // namespace fedclust
