// Sequential model container with named parameters and flat-weight
// (de)serialization — the unit the FL engine ships between server and
// clients.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace fedclust::nn {

/// Offset of one parameter tensor inside the flat weight vector.
struct ParamSlice {
  std::string name;    ///< qualified name, e.g. "fc3.weight"
  std::size_t offset;  ///< start index in the flat vector
  std::size_t size;    ///< number of float32 elements
};

/// A stack of layers executed in order. Owns its layers; copyable via
/// clone(). Layer instance names default to "<type><index>" ("conv1",
/// "linear3") and qualify parameter names.
class Model {
 public:
  Model() = default;

  /// Appends a layer and returns a reference to the added instance.
  Layer& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs L in place.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Initializes every layer's parameters from `rng` (deterministic for a
  /// given seed — all FL algorithms start clients from identical models).
  void init_params(Rng& rng);

  /// Runs the full stack. `train` enables dropout masking.
  Tensor forward(const Tensor& input, bool train = false);

  /// Backpropagates from the loss gradient w.r.t. the model output;
  /// accumulates parameter gradients. Returns the gradient w.r.t. input.
  Tensor backward(const Tensor& grad_output);

  /// Zeroes all parameter gradients.
  void zero_grad();

  /// Reseeds every RNG-bearing layer (Dropout mask streams) from `seed`,
  /// mixing in the layer index so two dropout layers never share a
  /// stream. Clones copy the template's RNG state verbatim, so callers
  /// that fan a model out (one clone per client) must reseed each clone
  /// or all of them draw identical mask sequences.
  void reseed_dropout(std::uint64_t seed);

  /// Lends a (borrowed, possibly null) thread pool to every layer whose
  /// kernels can use one; large GEMMs then split across row blocks.
  /// Clones inherit the pointer.
  void set_thread_pool(ThreadPool* pool);

  /// All parameters in layer order.
  std::vector<Param*> params();
  std::vector<const Param*> params() const;

  /// Total number of learnable scalars.
  std::size_t num_weights() const;

  /// Layout of the flat weight vector (stable across clones).
  std::vector<ParamSlice> slices() const;

  /// Finds the slice for a qualified parameter name; throws if absent.
  ParamSlice slice_for(const std::string& qualified_name) const;

  /// Serializes all parameter values into one float vector (the "model
  /// update" that goes over the wire).
  std::vector<float> flat_weights() const;
  /// Loads a flat vector produced by flat_weights() on an identically
  /// structured model.
  void set_flat_weights(std::span<const float> weights);

  /// Same for gradients (used by tests and by FedSGD-style baselines).
  std::vector<float> flat_grads() const;

  /// Deep copy with independent parameter storage.
  Model clone() const;

  Model(const Model& other) { *this = other; }
  Model& operator=(const Model& other);
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fedclust::nn
