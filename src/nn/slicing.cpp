#include "nn/slicing.hpp"

#include "nn/models.hpp"

namespace fedclust::nn {

std::vector<nn::ParamSlice> resolve_partial_slices(const nn::Model& model,
                                                   const std::string& spec) {
  const auto all = model.slices();
  FEDCLUST_REQUIRE(!all.empty(), "model has no parameters");

  if (spec == "all") return all;

  if (spec.empty() || spec == "final" || spec == "final+bias") {
    const std::string weight_name = nn::final_layer_weight_name(model);
    std::vector<nn::ParamSlice> out{model.slice_for(weight_name)};
    if (spec == "final+bias") {
      // The bias lives next to the weight: same layer prefix.
      const std::string bias_name =
          weight_name.substr(0, weight_name.rfind('.')) + ".bias";
      out.push_back(model.slice_for(bias_name));
    }
    return out;
  }

  return {model.slice_for(spec)};
}

std::size_t slices_numel(const std::vector<nn::ParamSlice>& slices) {
  std::size_t n = 0;
  for (const nn::ParamSlice& s : slices) n += s.size;
  return n;
}

std::vector<float> extract_slices(const std::vector<float>& flat_weights,
                                  const std::vector<nn::ParamSlice>& slices) {
  std::vector<float> out;
  out.reserve(slices_numel(slices));
  for (const nn::ParamSlice& s : slices) {
    FEDCLUST_REQUIRE(s.offset + s.size <= flat_weights.size(),
                     "slice '" << s.name << "' exceeds weight vector");
    out.insert(out.end(),
               flat_weights.begin() + static_cast<std::ptrdiff_t>(s.offset),
               flat_weights.begin() +
                   static_cast<std::ptrdiff_t>(s.offset + s.size));
  }
  return out;
}

}  // namespace fedclust::nn
