#include "nn/model.hpp"

#include <algorithm>

#include "utils/rng.hpp"

namespace fedclust::nn {

Layer& Model::add(std::unique_ptr<Layer> layer) {
  FEDCLUST_REQUIRE(layer != nullptr, "cannot add a null layer");
  if (layer->name().empty()) {
    // "conv1", "linear2", ... — 1-based index among layers of that type.
    std::size_t count = 1;
    for (const auto& l : layers_) {
      if (std::string(l->type()) == layer->type()) ++count;
    }
    layer->set_name(std::string(layer->type()) + std::to_string(count));
  }
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Layer& Model::layer(std::size_t i) {
  FEDCLUST_REQUIRE(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Model::layer(std::size_t i) const {
  FEDCLUST_REQUIRE(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

void Model::init_params(Rng& rng) {
  for (auto& l : layers_) l->init_params(rng);
}

Tensor Model::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

Tensor Model::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Model::zero_grad() {
  for (Param* p : params()) p->grad.zero();
}

void Model::reseed_dropout(std::uint64_t seed) {
  const Rng base(seed);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->reseed(base.split(i)());
  }
}

void Model::set_thread_pool(ThreadPool* pool) {
  for (auto& l : layers_) l->set_thread_pool(pool);
}

std::vector<Param*> Model::params() {
  std::vector<Param*> out;
  for (auto& l : layers_) {
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<const Param*> Model::params() const {
  std::vector<const Param*> out;
  for (const auto& l : layers_) {
    for (Param* p : const_cast<Layer&>(*l).params()) out.push_back(p);
  }
  return out;
}

std::size_t Model::num_weights() const {
  std::size_t n = 0;
  for (const Param* p : params()) n += p->value.numel();
  return n;
}

std::vector<ParamSlice> Model::slices() const {
  std::vector<ParamSlice> out;
  std::size_t offset = 0;
  for (const auto& l : layers_) {
    for (Param* p : const_cast<Layer&>(*l).params()) {
      out.push_back({l->name() + "." + p->name, offset, p->value.numel()});
      offset += p->value.numel();
    }
  }
  return out;
}

ParamSlice Model::slice_for(const std::string& qualified_name) const {
  for (const ParamSlice& s : slices()) {
    if (s.name == qualified_name) return s;
  }
  FEDCLUST_CHECK(false, "no parameter named '" << qualified_name << "'");
}

std::vector<float> Model::flat_weights() const {
  std::vector<float> out;
  out.reserve(num_weights());
  for (const Param* p : params()) {
    const auto f = p->value.flat();
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

void Model::set_flat_weights(std::span<const float> weights) {
  FEDCLUST_REQUIRE(weights.size() == num_weights(),
                   "flat weight size " << weights.size() << " != model size "
                                       << num_weights());
  std::size_t offset = 0;
  for (Param* p : params()) {
    std::copy_n(weights.begin() + static_cast<std::ptrdiff_t>(offset),
                p->value.numel(), p->value.data());
    offset += p->value.numel();
  }
}

std::vector<float> Model::flat_grads() const {
  std::vector<float> out;
  out.reserve(num_weights());
  for (const Param* p : params()) {
    const auto f = p->grad.flat();
    out.insert(out.end(), f.begin(), f.end());
  }
  return out;
}

Model Model::clone() const { return *this; }

Model& Model::operator=(const Model& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

}  // namespace fedclust::nn
