// Partial-weight selection — the "strategically selected" model slice
// FedClust uploads instead of the full model.
//
// §II of the paper shows (Fig. 1) that the FINAL layer's weights mirror
// the client's label distribution, while early conv layers don't. These
// helpers name a subset of a model's parameters and extract that subset
// from a flat weight vector, so the clustering code can work with any
// slice choice (the layer-choice ablation sweeps them all).
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"

namespace fedclust::nn {

/// Resolves a selection spec against a model's parameter layout:
///  * ""  or "final"       -> the last layer's weight matrix (the default
///                            FedClust upload);
///  * "final+bias"         -> last layer's weight and bias;
///  * "all"                -> every parameter (degenerates to full-model
///                            clustering, the CFL/IFCA-style cost);
///  * any qualified name   -> exactly that parameter (e.g. "conv1.weight").
/// Throws on names that don't exist.
std::vector<nn::ParamSlice> resolve_partial_slices(const nn::Model& model,
                                                   const std::string& spec);

/// Total element count of a slice selection.
std::size_t slices_numel(const std::vector<nn::ParamSlice>& slices);

/// Copies the selected slices out of a flat weight vector, concatenated
/// in slice order.
std::vector<float> extract_slices(const std::vector<float>& flat_weights,
                                  const std::vector<nn::ParamSlice>& slices);

}  // namespace fedclust::nn
