#include "nn/models.hpp"

#include "nn/layers.hpp"

namespace fedclust::nn {

Model lenet5(const ImageSpec& spec) {
  FEDCLUST_REQUIRE(spec.height == spec.width,
                   "lenet5 expects square inputs, got " << spec.height << "x"
                                                        << spec.width);
  FEDCLUST_REQUIRE(spec.height == 28 || spec.height == 32,
                   "lenet5 supports 28x28 or 32x32 inputs");
  // Pad 28x28 inputs so conv1 sees an effective 32x32 field, keeping the
  // classic 28 -> 14 -> 10 -> 5 spatial ladder for both input sizes.
  const std::size_t pad1 = spec.height == 28 ? 2 : 0;

  Model m;
  m.emplace<Conv2d>(spec.channels, 6, 5, pad1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Conv2d>(6, 16, 5);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(16 * 5 * 5, 120);
  m.emplace<ReLU>();
  m.emplace<Linear>(120, 84);
  m.emplace<ReLU>();
  m.emplace<Linear>(84, spec.classes);
  return m;
}

Model vgg_mini(const ImageSpec& spec) {
  FEDCLUST_REQUIRE(spec.height % 8 == 0 && spec.width % 8 == 0,
                   "vgg_mini needs dimensions divisible by 8");
  Model m;
  m.emplace<Conv2d>(spec.channels, 16, 3, 1);
  m.emplace<ReLU>();
  m.emplace<Conv2d>(16, 16, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Conv2d>(16, 32, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Conv2d>(32, 64, 3, 1);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(64 * (spec.height / 8) * (spec.width / 8), 128);
  m.emplace<ReLU>();
  m.emplace<Linear>(128, spec.classes);
  return m;
}

Model lenet5_bn(const ImageSpec& spec) {
  FEDCLUST_REQUIRE(spec.height == spec.width &&
                       (spec.height == 28 || spec.height == 32),
                   "lenet5_bn supports 28x28 or 32x32 square inputs");
  const std::size_t pad1 = spec.height == 28 ? 2 : 0;

  Model m;
  m.emplace<Conv2d>(spec.channels, 6, 5, pad1);
  m.emplace<BatchNorm2d>(6);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Conv2d>(6, 16, 5);
  m.emplace<BatchNorm2d>(16);
  m.emplace<ReLU>();
  m.emplace<MaxPool2d>(2);
  m.emplace<Flatten>();
  m.emplace<Linear>(16 * 5 * 5, 120);
  m.emplace<ReLU>();
  m.emplace<Linear>(120, 84);
  m.emplace<ReLU>();
  m.emplace<Linear>(84, spec.classes);
  return m;
}

Model mlp(const ImageSpec& spec, std::size_t hidden) {
  Model m;
  m.emplace<Flatten>();
  m.emplace<Linear>(spec.channels * spec.height * spec.width, hidden);
  m.emplace<ReLU>();
  m.emplace<Linear>(hidden, spec.classes);
  return m;
}

std::string final_layer_weight_name(const Model& model) {
  // The last layer that owns a "weight" parameter is the classifier.
  const auto slices = model.slices();
  for (auto it = slices.rbegin(); it != slices.rend(); ++it) {
    if (it->name.ends_with(".weight")) return it->name;
  }
  FEDCLUST_CHECK(false, "model has no weight parameters");
}

}  // namespace fedclust::nn
