#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace fedclust::nn {
namespace {

constexpr char kMagic[4] = {'F', 'C', 'W', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  FEDCLUST_CHECK(in.good(), "unexpected end of checkpoint file");
}

}  // namespace

void save_weights(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FEDCLUST_CHECK(out.good(), "cannot open " << path << " for writing");

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  const auto slices = model.slices();
  write_pod(out, static_cast<std::uint64_t>(slices.size()));
  for (const ParamSlice& s : slices) {
    write_pod(out, static_cast<std::uint32_t>(s.name.size()));
    out.write(s.name.data(), static_cast<std::streamsize>(s.name.size()));
    write_pod(out, static_cast<std::uint64_t>(s.size));
  }
  const std::vector<float> weights = model.flat_weights();
  out.write(reinterpret_cast<const char*>(weights.data()),
            static_cast<std::streamsize>(weights.size() * sizeof(float)));
  FEDCLUST_CHECK(out.good(), "write to " << path << " failed");
}

void load_weights(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FEDCLUST_CHECK(in.good(), "cannot open " << path << " for reading");

  char magic[4];
  in.read(magic, sizeof(magic));
  FEDCLUST_CHECK(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                 path << " is not a fedclust checkpoint");
  std::uint32_t version = 0;
  read_pod(in, version);
  FEDCLUST_CHECK(version == kVersion,
                 "unsupported checkpoint version " << version);

  const auto expected = model.slices();
  std::uint64_t num_slices = 0;
  read_pod(in, num_slices);
  FEDCLUST_CHECK(num_slices == expected.size(),
                 "checkpoint has " << num_slices << " parameters, model has "
                                   << expected.size());
  for (const ParamSlice& s : expected) {
    std::uint32_t name_len = 0;
    read_pod(in, name_len);
    FEDCLUST_CHECK(name_len < 4096, "implausible name length in checkpoint");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    FEDCLUST_CHECK(in.good(), "unexpected end of checkpoint file");
    std::uint64_t numel = 0;
    read_pod(in, numel);
    FEDCLUST_CHECK(name == s.name && numel == s.size,
                   "checkpoint parameter '" << name << "' (" << numel
                                            << ") does not match model '"
                                            << s.name << "' (" << s.size
                                            << ")");
  }

  std::vector<float> weights(model.num_weights());
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(weights.size() * sizeof(float)));
  FEDCLUST_CHECK(in.good(), "checkpoint is truncated");
  model.set_flat_weights(weights);
}

}  // namespace fedclust::nn
