#include "nn/serialize.hpp"

#include <bit>
#include <cstring>
#include <fstream>

namespace fedclust::nn {

namespace wire {

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v & 0xff));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f32(std::vector<std::uint8_t>& buf, std::span<const float> values) {
  buf.reserve(buf.size() + values.size() * 4);
  for (float f : values) {
    put_u32(buf, std::bit_cast<std::uint32_t>(f));
  }
}

void put_f64(std::vector<std::uint8_t>& buf, double v) {
  put_u64(buf, std::bit_cast<std::uint64_t>(v));
}

void put_bytes(std::vector<std::uint8_t>& buf, const void* data,
               std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf.insert(buf.end(), p, p + n);
}

void Reader::need(std::size_t n) const {
  FEDCLUST_CHECK(n <= remaining(),
                 "truncated input: need " << n << " bytes at offset " << pos_
                                          << ", have " << remaining());
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

void Reader::f32(std::span<float> out) {
  for (float& f : out) {
    f = std::bit_cast<float>(u32());
  }
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::raw(void* out, std::size_t n) {
  need(n);
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
}

}  // namespace wire

namespace {

constexpr char kMagic[4] = {'F', 'C', 'W', 'T'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void save_weights(const Model& model, const std::string& path) {
  std::vector<std::uint8_t> buf;
  wire::put_bytes(buf, kMagic, sizeof(kMagic));
  wire::put_u32(buf, kVersion);
  const auto slices = model.slices();
  wire::put_u64(buf, static_cast<std::uint64_t>(slices.size()));
  for (const ParamSlice& s : slices) {
    wire::put_u32(buf, static_cast<std::uint32_t>(s.name.size()));
    wire::put_bytes(buf, s.name.data(), s.name.size());
    wire::put_u64(buf, static_cast<std::uint64_t>(s.size));
  }
  const std::vector<float> weights = model.flat_weights();
  wire::put_f32(buf, weights);

  std::ofstream out(path, std::ios::binary);
  FEDCLUST_CHECK(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  FEDCLUST_CHECK(out.good(), "write to " << path << " failed");
}

void load_weights(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  FEDCLUST_CHECK(in.good(), "cannot open " << path << " for reading");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()), size);
  FEDCLUST_CHECK(in.good(), "read from " << path << " failed");

  wire::Reader r(buf);
  char magic[4];
  r.raw(magic, sizeof(magic));
  FEDCLUST_CHECK(std::memcmp(magic, kMagic, 4) == 0,
                 path << " is not a fedclust checkpoint");
  const std::uint32_t version = r.u32();
  FEDCLUST_CHECK(version == kVersion,
                 "unsupported checkpoint version " << version);

  const auto expected = model.slices();
  const std::uint64_t num_slices = r.u64();
  FEDCLUST_CHECK(num_slices == expected.size(),
                 "checkpoint has " << num_slices << " parameters, model has "
                                   << expected.size());
  for (const ParamSlice& s : expected) {
    const std::uint32_t name_len = r.u32();
    FEDCLUST_CHECK(name_len < 4096, "implausible name length in checkpoint");
    std::string name(name_len, '\0');
    r.raw(name.data(), name_len);
    const std::uint64_t numel = r.u64();
    FEDCLUST_CHECK(name == s.name && numel == s.size,
                   "checkpoint parameter '" << name << "' (" << numel
                                            << ") does not match model '"
                                            << s.name << "' (" << s.size
                                            << ")");
  }

  std::vector<float> weights(model.num_weights());
  r.f32(weights);
  model.set_flat_weights(weights);
}

}  // namespace fedclust::nn
