#include "nn/layers.hpp"

#include <cmath>

#include "tensor/kernels.hpp"

namespace fedclust::nn {

// -- Conv2d ----------------------------------------------------------------

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding, std::size_t stride,
               ConvImpl impl)
    : spec_{in_channels, out_channels, kernel, padding, stride},
      impl_(impl),
      weight_("weight", {out_channels, in_channels, kernel, kernel}),
      bias_("bias", {out_channels}) {
  FEDCLUST_REQUIRE(in_channels > 0 && out_channels > 0 && kernel > 0,
                   "conv2d dimensions must be positive");
  FEDCLUST_REQUIRE(stride > 0, "conv2d stride must be positive");
}

void Conv2d::init_params(Rng& rng) {
  // Kaiming-uniform for ReLU nets: U(-b, b), b = sqrt(6 / fan_in).
  const double fan_in =
      static_cast<double>(spec_.in_channels * spec_.kernel * spec_.kernel);
  const double bound = std::sqrt(6.0 / fan_in);
  for (auto& v : weight_.value.flat()) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
  bias_.value.zero();
}

Tensor Conv2d::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  Tensor output;
  if (impl_ == ConvImpl::kIm2col) {
    // A train forward leaves the column expansion in slot kColumns for
    // the paired backward()'s dW GEMM. An eval forward must not disturb
    // that cache (serving interleaves eval passes with training), so it
    // expands into a separate inference-only arena.
    ScratchArena& arena = train ? scratch_ : eval_scratch_;
    ops::conv2d_forward_im2col(input, weight_.value, bias_.value, spec_,
                               output, arena.slot(kColumns),
                               arena.slot(kPix), pool_);
  } else {
    ops::conv2d_forward(input, weight_.value, bias_.value, spec_, output);
  }
  return output;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  FEDCLUST_REQUIRE(!cached_input_.empty(), "backward before forward");
  Tensor grad_input(cached_input_.shape());
  if (impl_ == ConvImpl::kIm2col) {
    // Kernels overwrite their outputs, so per-batch gradients go to
    // scratch first and are then accumulated into the Params.
    Tensor& dw = scratch_.acquire(kGradWeight, weight_.value.shape());
    Tensor& db = scratch_.acquire(kGradBias, bias_.value.shape());
    ops::conv2d_backward_params_im2col(grad_output, scratch_.slot(kColumns),
                                       spec_, dw, db, scratch_.slot(kPix),
                                       pool_);
    weight_.grad += dw;
    bias_.grad += db;
    ops::conv2d_backward_input_im2col(grad_output, weight_.value, spec_,
                                      grad_input, scratch_.slot(kPix),
                                      scratch_.slot(kGradColumns), pool_);
  } else {
    Tensor& dw = scratch_.acquire(kGradWeight, weight_.value.shape());
    Tensor& db = scratch_.acquire(kGradBias, bias_.value.shape());
    ops::conv2d_backward_params(cached_input_, grad_output, spec_, dw, db);
    weight_.grad += dw;
    bias_.grad += db;
    ops::conv2d_backward_input(grad_output, weight_.value, spec_, grad_input);
  }
  return grad_input;
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(*this);
}

// -- Linear ------------------------------------------------------------------

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("weight", {out_features, in_features}),
      bias_("bias", {out_features}) {
  FEDCLUST_REQUIRE(in_features > 0 && out_features > 0,
                   "linear dimensions must be positive");
}

void Linear::init_params(Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features_));
  for (auto& v : weight_.value.flat()) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
  bias_.value.zero();
}

Tensor Linear::forward(const Tensor& input, bool train) {
  FEDCLUST_REQUIRE(input.rank() == 2 && input.dim(1) == in_features_,
                   "linear expects (batch, " << in_features_ << "), got "
                                             << shape_to_string(input.shape()));
  if (train) cached_input_ = input;
  Tensor output;
  ops::matmul_nt(input, weight_.value, output, pool_);  // (B,in)·(out,in)ᵀ
  const ops::KernelTable& kt = ops::kernels();
  for (std::size_t i = 0; i < output.dim(0); ++i) {
    kt.add(bias_.value.data(), output.data() + i * out_features_,
           out_features_);
  }
  return output;
}

Tensor Linear::backward(const Tensor& grad_output) {
  FEDCLUST_REQUIRE(!cached_input_.empty(), "backward before forward");
  const std::size_t batch = grad_output.dim(0);

  // dW = gᵀ · x  (out×B · B×in), accumulated via a reused scratch slot.
  Tensor& dw = scratch_.slot(0);
  ops::matmul_tn(grad_output, cached_input_, dw, pool_);
  weight_.grad += dw;

  const ops::KernelTable& kt = ops::kernels();
  for (std::size_t i = 0; i < batch; ++i) {
    kt.add(grad_output.data() + i * out_features_, bias_.grad.data(),
           out_features_);
  }

  // dx = g · W  (B×out · out×in)
  Tensor grad_input;
  ops::matmul(grad_output, weight_.value, grad_input, pool_);
  return grad_input;
}

std::unique_ptr<Layer> Linear::clone() const {
  return std::make_unique<Linear>(*this);
}

// -- ReLU ----------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  Tensor out(input.shape());
  ops::kernels().relu_forward(input.data(), out.data(), out.numel());
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  FEDCLUST_REQUIRE(grad_output.same_shape(cached_input_),
                   "relu backward shape mismatch");
  Tensor grad = grad_output;
  ops::kernels().relu_backward(cached_input_.data(), grad.data(),
                               grad.numel());
  return grad;
}

std::unique_ptr<Layer> ReLU::clone() const {
  return std::make_unique<ReLU>(*this);
}

// -- Tanh -----------------------------------------------------------------------

Tensor Tanh::forward(const Tensor& input, bool train) {
  Tensor out = input;
  for (auto& v : out.flat()) v = std::tanh(v);
  if (train) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  const float* y = cached_output_.data();
  float* g = grad.data();
  for (std::size_t i = 0; i < grad.numel(); ++i) {
    g[i] *= 1.0f - y[i] * y[i];
  }
  return grad;
}

std::unique_ptr<Layer> Tanh::clone() const {
  return std::make_unique<Tanh>(*this);
}

// -- Pooling ----------------------------------------------------------------------

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  Tensor out;
  if (train) {
    cached_input_shape_ = input.shape();
    ops::max_pool_forward(input, window_, out, argmax_);
  } else {
    // The kernel needs an argmax output either way; eval keeps its own
    // bin so the backward routing of a pending train pass survives.
    ops::max_pool_forward(input, window_, out, eval_argmax_);
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_input_shape_);
  ops::max_pool_backward(grad_output, argmax_, grad_input);
  return grad_input;
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(*this);
}

Tensor AvgPool2d::forward(const Tensor& input, bool train) {
  if (train) cached_input_shape_ = input.shape();
  Tensor out;
  ops::avg_pool_forward(input, window_, out);
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  Tensor grad_input(cached_input_shape_);
  ops::avg_pool_backward(grad_output, window_, grad_input);
  return grad_input;
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(*this);
}

// -- Flatten ------------------------------------------------------------------------

Tensor Flatten::forward(const Tensor& input, bool train) {
  FEDCLUST_REQUIRE(input.rank() >= 2, "flatten needs a batched input");
  if (train) cached_input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.numel() / batch});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_input_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>(*this);
}

// -- BatchNorm2d -------------------------------------------------------------------

BatchNorm2d::BatchNorm2d(std::size_t channels, double momentum,
                         double epsilon)
    : channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_("gamma", {channels}),
      beta_("beta", {channels}),
      running_mean_("running_mean", {channels}),
      running_var_("running_var", {channels}) {
  FEDCLUST_REQUIRE(channels > 0, "batch norm needs at least one channel");
  FEDCLUST_REQUIRE(momentum > 0.0 && momentum <= 1.0,
                   "momentum must be in (0, 1]");
  FEDCLUST_REQUIRE(epsilon > 0.0, "epsilon must be positive");
  gamma_.value.fill(1.0f);
  running_var_.value.fill(1.0f);
}

void BatchNorm2d::init_params(Rng& rng) {
  (void)rng;
  gamma_.value.fill(1.0f);
  beta_.value.zero();
  running_mean_.value.zero();
  running_var_.value.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  FEDCLUST_REQUIRE(input.rank() == 4 && input.dim(1) == channels_,
                   "batch norm expects (N, " << channels_ << ", H, W), got "
                                             << shape_to_string(input.shape()));
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t plane = h * w;
  const double m = static_cast<double>(n * plane);

  // Eval leaves x_hat_/inv_std_ alone: a pending train pass keeps its
  // backward caches, and a model that never trained still rejects
  // backward() (x_hat_ stays empty).
  Tensor out(input.shape());
  if (train) {
    x_hat_ = Tensor(input.shape());
    inv_std_.assign(channels_, 0.0f);
  }

  const ops::KernelTable& kt = ops::kernels();
  for (std::size_t c = 0; c < channels_; ++c) {
    double mean = 0.0, var = 0.0;
    if (train) {
      for (std::size_t img = 0; img < n; ++img) {
        mean += kt.sum(input.data() + (img * channels_ + c) * plane, plane);
      }
      mean /= m;
      for (std::size_t img = 0; img < n; ++img) {
        var += kt.sqdev(input.data() + (img * channels_ + c) * plane, mean,
                        plane);
      }
      var /= m;  // biased variance, as in the original paper
      running_mean_.value[c] = static_cast<float>(
          (1.0 - momentum_) * running_mean_.value[c] + momentum_ * mean);
      running_var_.value[c] = static_cast<float>(
          (1.0 - momentum_) * running_var_.value[c] + momentum_ * var);
    } else {
      mean = running_mean_.value[c];
      var = running_var_.value[c];
    }

    const float inv = static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    const float g = gamma_.value[c];
    const float b = beta_.value[c];
    if (train) inv_std_[c] = inv;
    for (std::size_t img = 0; img < n; ++img) {
      const float* p = input.data() + (img * channels_ + c) * plane;
      float* o = out.data() + (img * channels_ + c) * plane;
      if (train) {
        // x̂ = (x − μ)·inv kept for backward, then y = γ·x̂ + β.
        float* xh = x_hat_.data() + (img * channels_ + c) * plane;
        kt.sub_mul(p, xh, static_cast<float>(mean), inv, plane);
        kt.scale_shift(xh, o, g, b, plane);
      } else {
        kt.sub_mul(p, o, static_cast<float>(mean), inv, plane);
        kt.scale_shift(o, o, g, b, plane);
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  FEDCLUST_REQUIRE(!x_hat_.empty(),
                   "batch norm backward requires a train-mode forward");
  FEDCLUST_REQUIRE(grad_output.same_shape(x_hat_),
                   "batch norm backward shape mismatch");
  const std::size_t n = grad_output.dim(0), h = grad_output.dim(2),
                    w = grad_output.dim(3);
  const std::size_t plane = h * w;
  const double m = static_cast<double>(n * plane);

  Tensor grad_input(grad_output.shape());
  const ops::KernelTable& kt = ops::kernels();
  for (std::size_t c = 0; c < channels_; ++c) {
    // Channel-wise reductions: Σdy and Σ(dy·x̂).
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t img = 0; img < n; ++img) {
      const float* dy = grad_output.data() + (img * channels_ + c) * plane;
      const float* xh = x_hat_.data() + (img * channels_ + c) * plane;
      sum_dy += kt.sum(dy, plane);
      sum_dy_xhat += kt.dot(dy, xh, plane);
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    // dx = (γ/σ) · (dy − Σdy/m − x̂·Σ(dy·x̂)/m)
    const double scale =
        static_cast<double>(gamma_.value[c]) * inv_std_[c];
    const double mean_dy = sum_dy / m;
    const double mean_dy_xhat = sum_dy_xhat / m;
    for (std::size_t img = 0; img < n; ++img) {
      const float* dy = grad_output.data() + (img * channels_ + c) * plane;
      const float* xh = x_hat_.data() + (img * channels_ + c) * plane;
      float* dx = grad_input.data() + (img * channels_ + c) * plane;
      kt.bn_backward_dx(dy, xh, dx, scale, mean_dy, mean_dy_xhat, plane);
    }
  }
  return grad_input;
}

std::unique_ptr<Layer> BatchNorm2d::clone() const {
  return std::make_unique<BatchNorm2d>(*this);
}

// -- Dropout ---------------------------------------------------------------------------

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  FEDCLUST_REQUIRE(p >= 0.0 && p < 1.0, "dropout rate must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool train) {
  // Eval is a pure identity: it neither draws from the mask stream nor
  // clears the mask of a pending train pass, so backward() still applies
  // the mask of the train forward it pairs with.
  if (!train || p_ == 0.0) return input;
  mask_ = Tensor(input.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (auto& m : mask_.flat()) {
    m = rng_.bernoulli(p_) ? 0.0f : scale;
  }
  Tensor out = input;
  out.hadamard(mask_);
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // eval-mode forward
  Tensor grad = grad_output;
  grad.hadamard(mask_);
  return grad;
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(*this);
}

}  // namespace fedclust::nn
