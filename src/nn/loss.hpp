// Loss functions and classification metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedclust::nn {

/// Result of a loss evaluation over one batch.
struct LossResult {
  float loss = 0.0f;     ///< mean loss over the batch
  Tensor grad_logits;    ///< d(mean loss)/d(logits), same shape as logits
};

/// Softmax cross-entropy over integer class labels.
/// logits: (batch × classes); labels: batch entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Mean loss only (no gradient) — used for evaluation and by IFCA's
/// cluster-identity estimation.
float softmax_cross_entropy_loss(const Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Fraction of rows whose argmax matches the label.
double accuracy(const Tensor& logits, std::span<const std::int32_t> labels);

}  // namespace fedclust::nn
