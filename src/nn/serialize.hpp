// Binary serialization: model checkpointing plus the shared
// little-endian buffer codec.
//
// Checkpoint format (little-endian):
//   magic "FCWT" | u32 version | u64 num_slices
//   per slice: u32 name_len | name bytes | u64 numel
//   then all float32 values back to back (flat_weights order).
// Loading validates the layout against the target model, so a checkpoint
// can only be restored into an identically structured network.
//
// The `wire` codec below is the machinery both checkpoints and the
// network layer's message framing (net/message) are built on: explicit
// little-endian byte packing into a growable buffer, and a
// bounds-checked Reader that throws on truncated input.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/model.hpp"

namespace fedclust::nn {

/// Writes the model's parameter layout + values to `path`.
void save_weights(const Model& model, const std::string& path);

/// Restores values saved by save_weights; throws if the file is missing,
/// corrupt, or describes a different architecture.
void load_weights(Model& model, const std::string& path);

namespace wire {

void put_u16(std::vector<std::uint8_t>& buf, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t v);
/// Appends `values` as packed little-endian float32.
void put_f32(std::vector<std::uint8_t>& buf, std::span<const float> values);
/// Appends one little-endian IEEE-754 float64.
void put_f64(std::vector<std::uint8_t>& buf, double v);
/// Appends raw bytes verbatim.
void put_bytes(std::vector<std::uint8_t>& buf, const void* data,
               std::size_t n);

/// Bounds-checked little-endian cursor over an encoded buffer. Every
/// read past the end throws fedclust::Error ("truncated"), so framed
/// inputs cannot be silently mis-parsed.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Fills `out` with packed little-endian float32 values.
  void f32(std::span<float> out);
  double f64();
  /// Copies `n` raw bytes into `out`.
  void raw(void* out, std::size_t n);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace wire
}  // namespace fedclust::nn
