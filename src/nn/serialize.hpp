// Binary model checkpointing.
//
// Format (little-endian):
//   magic "FCWT" | u32 version | u64 num_slices
//   per slice: u32 name_len | name bytes | u64 numel
//   then all float32 values back to back (flat_weights order).
// Loading validates the layout against the target model, so a checkpoint
// can only be restored into an identically structured network.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace fedclust::nn {

/// Writes the model's parameter layout + values to `path`.
void save_weights(const Model& model, const std::string& path);

/// Restores values saved by save_weights; throws if the file is missing,
/// corrupt, or describes a different architecture.
void load_weights(Model& model, const std::string& path);

}  // namespace fedclust::nn
