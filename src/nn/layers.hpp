// Concrete layers: Conv2d, Linear, ReLU, Tanh, MaxPool2d, AvgPool2d,
// Flatten, Dropout.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/scratch.hpp"
#include "utils/rng.hpp"

namespace fedclust::nn {

/// Which convolution kernels a Conv2d layer runs on.
enum class ConvImpl {
  kIm2col,  ///< im2col + blocked GEMM (the fast production path)
  kDirect,  ///< reference 7-loop direct kernels (equivalence testing)
};

/// 2-D convolution (square kernel, configurable stride/padding).
/// Weight layout (out_channels, in_channels, k, k); Kaiming-uniform init.
///
/// The default im2col path caches the column expansion from a TRAIN
/// forward and reuses it in backward, with all temporaries held in a
/// ScratchArena so steady-state training does zero heap allocation per
/// batch. EVAL forwards expand into a separate inference-only arena so
/// they never disturb a pending train cache.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding = 0, std::size_t stride = 1,
         ConvImpl impl = ConvImpl::kIm2col);

  const char* type() const override { return "conv2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init_params(Rng& rng) override;
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }
  std::unique_ptr<Layer> clone() const override;

  const ops::Conv2dSpec& spec() const { return spec_; }

  ConvImpl impl() const { return impl_; }
  void set_impl(ConvImpl impl) { impl_ = impl; }

  /// Heap (re)allocations the scratch arena has performed so far; stable
  /// across batches once shapes reach steady state.
  std::size_t scratch_allocations() const { return scratch_.allocations(); }
  /// Floats currently held by the scratch arena — stable across batches
  /// in steady state (kernels resize slots in place, reusing capacity).
  std::size_t scratch_footprint() const { return scratch_.footprint(); }
  /// Same counters for the eval-only arena: eval forwards allocate here
  /// once per shape and never touch the training arena above.
  std::size_t eval_scratch_allocations() const {
    return eval_scratch_.allocations();
  }
  std::size_t eval_scratch_footprint() const {
    return eval_scratch_.footprint();
  }

 private:
  // Scratch slot keys inside scratch_.
  enum Slot : std::size_t {
    kColumns = 0,   // im2col expansion, cached forward -> backward
    kPix,           // pixel-major GEMM operand/result
    kGradColumns,   // grad w.r.t. columns (backward-input)
    kGradWeight,    // per-batch dW before accumulation into the Param
    kGradBias,      // per-batch db before accumulation into the Param
  };

  ops::Conv2dSpec spec_;
  ConvImpl impl_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  ScratchArena scratch_;       // train-mode workspaces (kColumns feeds backward)
  ScratchArena eval_scratch_;  // eval-mode im2col workspaces (slots kColumns/kPix)
  ThreadPool* pool_ = nullptr;  // borrowed; null = single-threaded kernels
};

/// Fully connected layer: y = x·Wᵀ + b with W (out × in).
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  const char* type() const override { return "linear"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void init_params(Rng& rng) override;
  void set_thread_pool(ThreadPool* pool) override { pool_ = pool; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;
  ScratchArena scratch_;         // slot 0: per-batch dW
  ThreadPool* pool_ = nullptr;   // borrowed; null = single-threaded kernels
};

/// Elementwise max(x, 0).
class ReLU final : public Layer {
 public:
  const char* type() const override { return "relu"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_input_;
};

/// Elementwise tanh (the classic LeNet activation).
class Tanh final : public Layer {
 public:
  const char* type() const override { return "tanh"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_output_;
};

/// Non-overlapping max pooling (window == stride).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window) : window_(window) {}

  const char* type() const override { return "max_pool2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  Shape cached_input_shape_;
  std::vector<std::size_t> argmax_;       // backward routing (train forward)
  std::vector<std::size_t> eval_argmax_;  // kernel output bin for eval forwards
};

/// Non-overlapping average pooling (window == stride).
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t window) : window_(window) {}

  const char* type() const override { return "avg_pool2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  Shape cached_input_shape_;
};

/// Collapses (N, C, H, W) to (N, C·H·W).
class Flatten final : public Layer {
 public:
  const char* type() const override { return "flatten"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape cached_input_shape_;
};

/// Per-channel batch normalization for NCHW inputs (Ioffe & Szegedy,
/// 2015). Train mode normalizes with batch statistics and updates the
/// running mean/var; eval mode uses the running statistics.
///
/// FL note: gamma/beta are learnable and travel with the model like any
/// parameter; the running statistics do too (they are exposed through
/// params() as non-gradient tensors would not be — instead they live in
/// extra parameter slots whose gradients stay zero), which matches how
/// FedAvg-style systems average BN statistics across clients.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::size_t channels, double momentum = 0.1,
                       double epsilon = 1e-5);

  const char* type() const override { return "batch_norm2d"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  /// gamma, beta, running_mean, running_var — the latter two have
  /// permanently zero gradients but are included so they are aggregated
  /// and shipped with the model.
  std::vector<Param*> params() override {
    return {&gamma_, &beta_, &running_mean_, &running_var_};
  }
  void init_params(Rng& rng) override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t channels() const { return channels_; }

 private:
  std::size_t channels_;
  double momentum_;
  double epsilon_;
  Param gamma_;
  Param beta_;
  Param running_mean_;
  Param running_var_;
  // Backward caches (train-mode forward only).
  Tensor x_hat_;
  std::vector<float> inv_std_;
};

/// Inverted dropout: train-time mask scaled by 1/(1-p); identity at eval.
/// The mask stream is drawn from an internal Rng reseedable via
/// `reseed()` so client-local training stays deterministic.
class Dropout final : public Layer {
 public:
  explicit Dropout(double p, std::uint64_t seed = 0x5eed);

  const char* type() const override { return "dropout"; }
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> clone() const override;

  void reseed(std::uint64_t seed) override { rng_ = Rng(seed); }
  double rate() const { return p_; }

 private:
  double p_;
  Rng rng_;
  Tensor mask_;
};

}  // namespace fedclust::nn
