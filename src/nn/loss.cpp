#include "nn/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace fedclust::nn {
namespace {

void check_batch(const Tensor& logits, std::span<const std::int32_t> labels) {
  FEDCLUST_REQUIRE(logits.rank() == 2, "logits must be (batch, classes)");
  FEDCLUST_REQUIRE(labels.size() == logits.dim(0),
                   "labels size " << labels.size() << " != batch "
                                  << logits.dim(0));
  for (const std::int32_t y : labels) {
    (void)y;
    FEDCLUST_DCHECK(y >= 0 && static_cast<std::size_t>(y) < logits.dim(1),
                    "label out of range");
  }
}

}  // namespace

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  check_batch(logits, labels);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);

  LossResult out;
  ops::softmax_rows(logits, out.grad_logits);

  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    float* row = out.grad_logits.data() + i * classes;
    const auto y = static_cast<std::size_t>(labels[i]);
    // -log p_y, with p clamped away from zero for numeric safety.
    loss -= std::log(std::max(row[y], 1e-12f));
    // d(mean CE)/d(logit) = (softmax - onehot) / batch.
    row[y] -= 1.0f;
    for (std::size_t j = 0; j < classes; ++j) row[j] *= inv_batch;
  }
  out.loss = static_cast<float>(loss / static_cast<double>(batch));
  return out;
}

float softmax_cross_entropy_loss(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  check_batch(logits, labels);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::vector<float> lse;
  ops::logsumexp_rows(logits, lse);
  double loss = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    loss += lse[i] - logits[i * classes + y];
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

double accuracy(const Tensor& logits, std::span<const std::int32_t> labels) {
  check_batch(logits, labels);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = logits.data() + i * classes;
    std::size_t best = 0;
    for (std::size_t j = 1; j < classes; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == static_cast<std::size_t>(labels[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace fedclust::nn
