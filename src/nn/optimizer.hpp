// SGD optimizer with momentum, weight decay and an optional proximal term.
//
// The proximal term implements FedProx's local objective
//   F_i(w) + (mu/2) ||w - w_ref||^2
// by adding mu * (w - w_ref) to the gradient at each step, where w_ref is
// the global model the client started the round from.
#pragma once

#include <optional>
#include <vector>

#include "nn/model.hpp"

namespace fedclust::nn {

/// Hyperparameters for Sgd.
struct SgdConfig {
  double lr = 0.01;
  double momentum = 0.0;
  double weight_decay = 0.0;
  /// FedProx proximal coefficient mu; 0 disables the term.
  double prox_mu = 0.0;
};

/// Stochastic gradient descent bound to one model instance.
///
/// The optimizer references the model's parameters by position, so the
/// model must outlive the optimizer and its layer structure must not
/// change between steps.
class Sgd {
 public:
  Sgd(Model& model, SgdConfig config);

  /// Captures the current model weights as the proximal reference w_ref.
  /// Call at the start of a local round when prox_mu > 0.
  void capture_prox_reference();

  /// Applies one update from the accumulated gradients; does not zero
  /// them (call Model::zero_grad()).
  void step();

  const SgdConfig& config() const { return config_; }
  void set_lr(double lr) { config_.lr = lr; }

 private:
  Model& model_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;          // one per param, lazily shaped
  std::vector<Tensor> prox_reference_;    // empty unless captured
};

/// Hyperparameters for Adam.
struct AdamConfig {
  double lr = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

/// Adam (Kingma & Ba, 2015) bound to one model instance. Same contract
/// as Sgd: references parameters by position; call after backward(),
/// then Model::zero_grad().
class Adam {
 public:
  Adam(Model& model, AdamConfig config);

  void step();

  const AdamConfig& config() const { return config_; }
  std::size_t steps_taken() const { return t_; }

 private:
  Model& model_;
  AdamConfig config_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  std::size_t t_ = 0;
};

}  // namespace fedclust::nn
