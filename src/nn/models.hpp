// Reference model builders used throughout the experiments.
//
// The paper evaluates LeNet-5 (Table I) and motivates the method with a
// VGG-style network (Fig. 1). `vgg_mini` is the laptop-scale stand-in for
// VGG-16 documented in DESIGN.md §3; `mlp` is a small model used by fast
// unit/integration tests.
#pragma once

#include <cstddef>

#include "nn/model.hpp"

namespace fedclust::nn {

/// Input geometry of an image classification task.
struct ImageSpec {
  std::size_t channels = 1;
  std::size_t height = 28;
  std::size_t width = 28;
  std::size_t classes = 10;
};

/// LeNet-5: conv(6,5×5) → pool2 → conv(16,5×5) → pool2 → fc120 → fc84 →
/// fc(classes), ReLU activations. Accepts 28×28 (padding 2 on conv1) and
/// 32×32 inputs.
Model lenet5(const ImageSpec& spec);

/// Small VGG-style net: [conv(16,3)×2 → pool] [conv(32,3) → pool]
/// [conv(64,3) → pool] → fc128 → fc(classes). Four conv layers plus two
/// FC layers give the per-layer distance study (Fig. 1) enough depth.
Model vgg_mini(const ImageSpec& spec);

/// LeNet-5 with batch normalization after each convolution — the
/// batch-norm variant FL work uses to study how running statistics
/// behave under non-IID averaging.
Model lenet5_bn(const ImageSpec& spec);

/// Two-layer MLP (flatten → fc(hidden) → ReLU → fc(classes)); fast model
/// for tests and quick demos.
Model mlp(const ImageSpec& spec, std::size_t hidden = 64);

/// Name of the final (classifier) linear layer's weight parameter for
/// models built by this header — the partial weights FedClust uploads.
/// E.g. "linear3.weight" for lenet5.
std::string final_layer_weight_name(const Model& model);

}  // namespace fedclust::nn
