// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// checksum carried by the FCMG message frame and the RunCheckpoint
// trailer. Software table-driven implementation: wire payloads here are
// at most a few MB per model, far below where hardware CRC would matter.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fedclust {

/// CRC-32 of `n` bytes, chained from `crc` (pass the default to start a
/// fresh checksum; feed the previous return value to continue one across
/// split buffers). Matches zlib's crc32(): crc32 of "123456789" is
/// 0xCBF43926.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc = 0);

}  // namespace fedclust
