// Minimal leveled logger.
//
// The simulation engine logs round progress at Info; kernels never log.
// Output goes to stderr so bench harnesses can keep stdout for the
// machine-readable tables they print.
#pragma once

#include <sstream>
#include <string>

namespace fedclust {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_message(LogLevel level, const std::string& message);
}

#define FEDCLUST_LOG(level, ...)                                    \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::fedclust::log_level())) {                \
      std::ostringstream fedclust_log_oss_;                         \
      fedclust_log_oss_ << __VA_ARGS__;                             \
      ::fedclust::detail::log_message(level, fedclust_log_oss_.str()); \
    }                                                               \
  } while (false)

#define LOG_DEBUG(...) FEDCLUST_LOG(::fedclust::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) FEDCLUST_LOG(::fedclust::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) FEDCLUST_LOG(::fedclust::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) FEDCLUST_LOG(::fedclust::LogLevel::kError, __VA_ARGS__)

}  // namespace fedclust
