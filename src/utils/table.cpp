#include "utils/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "utils/error.hpp"

namespace fedclust {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FEDCLUST_REQUIRE(!headers_.empty(), "table needs at least one column");
}

TextTable& TextTable::new_row() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::add(const std::string& cell) {
  FEDCLUST_REQUIRE(!rows_.empty(), "call new_row() before add()");
  FEDCLUST_REQUIRE(rows_.back().size() < headers_.size(),
                   "row already has " << headers_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

TextTable& TextTable::add(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return add(oss.str());
}

TextTable& TextTable::add(long long value) {
  return add(std::to_string(value));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      oss << (c == 0 ? "" : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
          << cell;
    }
    oss << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c == 0 ? "" : "-+-") << std::string(widths[c], '-');
  }
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& s) {
    // RFC 4180: quote any cell carrying a separator, quote, or EITHER
    // line-break character — a bare \r splits the row in most readers.
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c == 0 ? "" : ",") << escape(headers_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : ",") << escape(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream out(path);
  FEDCLUST_CHECK(out.good(), "cannot open " << path << " for writing");
  out << to_csv();
}

std::string format_mean_std(double mean, double std, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << mean << " ± " << std;
  return oss.str();
}

}  // namespace fedclust
