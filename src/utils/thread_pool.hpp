// Fixed-size worker pool used to simulate clients training in parallel.
//
// The FL engine submits one task per sampled client each round and waits
// for the batch to finish. Determinism is preserved because each task owns
// its state (client-local RNG, model copy) and results are written to
// pre-assigned slots, so scheduling order never changes the outcome.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fedclust {

/// A minimal fixed-size thread pool with task futures and a blocking
/// parallel_for. Exceptions thrown by tasks propagate through the futures
/// (and out of parallel_for after all iterations complete).
class ThreadPool {
 public:
  /// Creates `num_threads` workers. 0 means "hardware concurrency, at
  /// least 1".
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future yields its result or rethrows
  /// its exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs body(i) for i in [begin, end), distributing iterations across
  /// the pool in contiguous blocks. Blocks until every iteration is done;
  /// rethrows the first exception encountered (by iteration order of the
  /// failing block).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace fedclust
