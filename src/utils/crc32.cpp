#include "utils/crc32.hpp"

#include <array>

namespace fedclust {
namespace {

constexpr std::uint32_t kPoly = 0xedb88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t crc) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace fedclust
