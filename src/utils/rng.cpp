#include "utils/rng.hpp"

#include <cmath>

#include "utils/error.hpp"

namespace fedclust {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split(std::uint64_t tag) const {
  // Mix the parent's seed with the tag through SplitMix64 twice so that
  // (seed, tag) and (seed, tag+1) give unrelated child seeds.
  std::uint64_t x = seed_ ^ (0xd1b54a32d192ed03ull * (tag + 1));
  (void)splitmix64(x);
  return Rng(splitmix64(x));
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  FEDCLUST_REQUIRE(n > 0, "uniform_int needs n > 0");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::gamma(double alpha) {
  FEDCLUST_REQUIRE(alpha > 0.0, "gamma needs alpha > 0, got " << alpha);
  if (alpha < 1.0) {
    // Boost to alpha+1 and scale back (Marsaglia–Tsang, §4).
    const double u = uniform();
    return gamma(alpha + 1.0) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, std::size_t k) {
  return dirichlet(std::vector<double>(k, alpha));
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alpha) {
  FEDCLUST_REQUIRE(!alpha.empty(), "dirichlet needs at least one category");
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // All gammas underflowed (tiny alpha); fall back to a one-hot draw,
    // which is the correct limit of Dirichlet as alpha -> 0.
    std::fill(out.begin(), out.end(), 0.0);
    out[uniform_int(out.size())] = 1.0;
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FEDCLUST_REQUIRE(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    FEDCLUST_REQUIRE(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  FEDCLUST_REQUIRE(total > 0.0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FEDCLUST_REQUIRE(k <= n, "cannot sample " << k << " from " << n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher–Yates: only the first k positions need shuffling.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_int(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace fedclust
