// Text-table and CSV emitters for the bench harnesses.
//
// Each bench binary reproduces one table or figure from the paper; these
// helpers render aligned ASCII tables on stdout (for humans) and can dump
// the same rows as CSV (for plotting).
#pragma once

#include <string>
#include <vector>

namespace fedclust {

/// Row-oriented table with fixed columns. Cells are strings; numeric
/// convenience overloads format with a fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  TextTable& new_row();
  TextTable& add(const std::string& cell);
  TextTable& add(double value, int precision = 2);
  TextTable& add(long long value);

  /// Renders the table with a header rule, e.g.
  ///   Method    | CIFAR-10 | FMNIST
  ///   ----------+----------+-------
  ///   FedAvg    | 38.25    | 81.93
  std::string to_string() const;

  /// Same rows as comma-separated values (headers first).
  std::string to_csv() const;

  /// Writes to_csv() to `path`, creating/truncating the file.
  void write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats "mean ± std" the way the paper's Table I does.
std::string format_mean_std(double mean, double std, int precision = 2);

}  // namespace fedclust
