// Error handling primitives shared across the fedclust libraries.
//
// Library code reports precondition violations and invariant breaks by
// throwing `fedclust::Error` (a std::runtime_error with file:line context)
// via the FEDCLUST_CHECK / FEDCLUST_REQUIRE macros. Hot inner loops use
// FEDCLUST_DCHECK, which compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fedclust {

/// Exception type thrown on contract violations inside the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream oss;
  oss << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace detail
}  // namespace fedclust

/// Always-on check with an optional streamed message:
///   FEDCLUST_CHECK(rows > 0, "matrix must be non-empty, got " << rows);
#define FEDCLUST_CHECK(cond, ...)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream fedclust_check_msg_;                             \
      fedclust_check_msg_ __VA_OPT__(<< __VA_ARGS__);                     \
      ::fedclust::detail::throw_check_failure(#cond, __FILE__, __LINE__,  \
                                              fedclust_check_msg_.str()); \
    }                                                                     \
  } while (false)

/// Precondition check on public API boundaries (same behaviour as
/// FEDCLUST_CHECK; a distinct name documents intent).
#define FEDCLUST_REQUIRE(cond, ...) FEDCLUST_CHECK(cond, __VA_ARGS__)

/// Debug-only check for hot paths; disappears when NDEBUG is defined.
#ifdef NDEBUG
#define FEDCLUST_DCHECK(cond, ...) \
  do {                             \
  } while (false)
#else
#define FEDCLUST_DCHECK(cond, ...) FEDCLUST_CHECK(cond, __VA_ARGS__)
#endif
