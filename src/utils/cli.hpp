// Tiny command-line flag parser for the bench/example binaries.
//
// Flags look like `--rounds 30` or `--rounds=30`; `--help` prints the
// registered flags. Unknown flags are an error so typos don't silently
// run the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fedclust {

/// Declarative flag registry + parser.
///
///   CliParser cli("table1_accuracy", "Reproduces Table I");
///   cli.add_int("rounds", 30, "communication rounds");
///   cli.add_flag("quick", "use the reduced-size configuration");
///   cli.parse(argc, argv);           // exits(0) on --help
///   int rounds = cli.get_int("rounds");
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Boolean flag, false by default; present on the command line = true.
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws fedclust::Error on unknown flags or bad values;
  /// prints usage and calls std::exit(0) when --help is present.
  void parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Spec {
    Kind kind;
    std::string help;
    std::string default_text;
  };

  const Spec& spec_or_throw(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::int64_t> ints_;
  std::map<std::string, double> doubles_;
  std::map<std::string, std::string> strings_;
  std::map<std::string, bool> flags_;
};

}  // namespace fedclust
