// Wall-clock stopwatch for harness-level timing.
#pragma once

#include <chrono>

namespace fedclust {

/// Starts running on construction; `seconds()` reads elapsed time without
/// stopping, `restart()` resets the origin.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fedclust
