// Streaming percentile recorder over positive measurements (request
// latencies, round wall times).
//
// Geometric buckets: a value lands in the bucket whose upper edge is the
// smallest min_value·growthⁱ at or above it, so a quantile estimate is
// off by at most a factor of `growth` (2% at the default) while the
// recorder stays O(#buckets) memory and O(1) per record, with no sample
// retention. min/max/mean/count are exact; percentile estimates are
// clamped into the observed [min, max] range.
//
// Used by bench/serving_throughput for p50/p99/p999 request latency and
// by bench/fleet_scale for round wall-time tails. Not internally
// synchronized — either record from one thread, or keep one histogram
// per thread and merge() at the end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedclust::utils {

class StreamingHistogram {
 public:
  /// `min_value` is the resolution floor (every value at or below it
  /// shares bucket 0); `growth` is the ratio between consecutive bucket
  /// edges and bounds the relative quantile error.
  explicit StreamingHistogram(double min_value = 1e-4, double growth = 1.02);

  /// Records one measurement; must be finite and non-negative.
  void record(double value);
  /// Adds another histogram's samples; geometries must match.
  void merge(const StreamingHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  /// Exact extremes/mean of everything recorded; NaN with no samples.
  double min() const;
  double max() const;
  double mean() const;

  /// Quantile estimate for p in [0, 100]. p=0 returns the exact min and
  /// p=100 the exact max; NaN with no samples.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

 private:
  std::size_t bucket_index(double value) const;
  double bucket_upper(std::size_t index) const;

  double min_value_;
  double growth_;
  double inv_log_growth_;
  std::vector<std::uint64_t> buckets_;  // grown on demand
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fedclust::utils
