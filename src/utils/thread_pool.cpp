#include "utils/thread_pool.hpp"

#include <algorithm>

#include "utils/error.hpp"

namespace fedclust {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  FEDCLUST_REQUIRE(begin <= end, "parallel_for range is inverted");
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t blocks = std::min(n, workers_.size());
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  // Wait for everyone, then surface the first failure: cancelling the
  // remaining blocks is not worth the complexity for simulation workloads.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fedclust
