#include "utils/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "utils/error.hpp"

namespace fedclust {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  FEDCLUST_REQUIRE(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = {Kind::kInt, help, std::to_string(default_value)};
  ints_[name] = default_value;
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  FEDCLUST_REQUIRE(!specs_.count(name), "duplicate flag --" << name);
  std::ostringstream oss;
  oss << default_value;
  specs_[name] = {Kind::kDouble, help, oss.str()};
  doubles_[name] = default_value;
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  FEDCLUST_REQUIRE(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = {Kind::kString, help, default_value};
  strings_[name] = default_value;
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  FEDCLUST_REQUIRE(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = {Kind::kFlag, help, "false"};
  flags_[name] = false;
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    FEDCLUST_CHECK(arg.rfind("--", 0) == 0,
                   "expected --flag, got '" << arg << "'");
    arg = arg.substr(2);
    if (arg == "help") {
      std::cout << usage();
      std::exit(0);
    }
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    FEDCLUST_CHECK(it != specs_.end(), "unknown flag --" << arg);
    if (it->second.kind == Kind::kFlag) {
      FEDCLUST_CHECK(!has_value, "flag --" << arg << " takes no value");
      flags_[arg] = true;
      continue;
    }
    if (!has_value) {
      FEDCLUST_CHECK(i + 1 < argc, "flag --" << arg << " needs a value");
      value = argv[++i];
    }
    try {
      switch (it->second.kind) {
        case Kind::kInt:
          ints_[arg] = std::stoll(value);
          break;
        case Kind::kDouble:
          doubles_[arg] = std::stod(value);
          break;
        case Kind::kString:
          strings_[arg] = value;
          break;
        case Kind::kFlag:
          break;  // handled above
      }
    } catch (const std::exception&) {
      FEDCLUST_CHECK(false, "bad value '" << value << "' for --" << arg);
    }
  }
}

const CliParser::Spec& CliParser::spec_or_throw(const std::string& name,
                                                Kind kind) const {
  const auto it = specs_.find(name);
  FEDCLUST_CHECK(it != specs_.end(), "flag --" << name << " was never added");
  FEDCLUST_CHECK(it->second.kind == kind,
                 "flag --" << name << " accessed with the wrong type");
  return it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  spec_or_throw(name, Kind::kInt);
  return ints_.at(name);
}

double CliParser::get_double(const std::string& name) const {
  spec_or_throw(name, Kind::kDouble);
  return doubles_.at(name);
}

const std::string& CliParser::get_string(const std::string& name) const {
  spec_or_throw(name, Kind::kString);
  return strings_.at(name);
}

bool CliParser::get_flag(const std::string& name) const {
  spec_or_throw(name, Kind::kFlag);
  return flags_.at(name);
}

std::string CliParser::usage() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, spec] : specs_) {
    oss << "  --" << name;
    if (spec.kind != Kind::kFlag) oss << " <value>";
    oss << "  (default: " << spec.default_text << ")\n      " << spec.help
        << "\n";
  }
  oss << "  --help\n      print this message and exit\n";
  return oss.str();
}

}  // namespace fedclust
