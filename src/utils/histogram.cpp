#include "utils/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "utils/error.hpp"

namespace fedclust::utils {

StreamingHistogram::StreamingHistogram(double min_value, double growth)
    : min_value_(min_value),
      growth_(growth),
      inv_log_growth_(1.0 / std::log(growth)) {
  FEDCLUST_REQUIRE(min_value > 0.0, "histogram min_value must be positive");
  FEDCLUST_REQUIRE(growth > 1.0, "histogram growth must exceed 1");
}

std::size_t StreamingHistogram::bucket_index(double value) const {
  if (value <= min_value_) return 0;
  // Bucket i > 0 covers (min·gⁱ⁻¹, min·gⁱ].
  const double i = std::ceil(std::log(value / min_value_) * inv_log_growth_);
  return static_cast<std::size_t>(std::max(1.0, i));
}

double StreamingHistogram::bucket_upper(std::size_t index) const {
  return min_value_ * std::pow(growth_, static_cast<double>(index));
}

void StreamingHistogram::record(double value) {
  FEDCLUST_REQUIRE(std::isfinite(value) && value >= 0.0,
                   "histogram values must be finite and non-negative, got "
                       << value);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  FEDCLUST_REQUIRE(
      min_value_ == other.min_value_ && growth_ == other.growth_,
      "cannot merge histograms with different bucket geometries");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void StreamingHistogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double StreamingHistogram::min() const {
  return count_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double StreamingHistogram::max() const {
  return count_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double StreamingHistogram::mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_)
                    : std::numeric_limits<double>::quiet_NaN();
}

double StreamingHistogram::percentile(double p) const {
  FEDCLUST_REQUIRE(p >= 0.0 && p <= 100.0,
                   "percentile must be in [0, 100], got " << p);
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(p% of n); its upper edge is the quantile estimate.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::clamp(bucket_upper(i), min_, max_);
  }
  return max_;
}

}  // namespace fedclust::utils
