#include "utils/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace fedclust {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {

void log_message(LogLevel level, const std::string& message) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard lock(g_log_mutex);
  std::fprintf(stderr, "[%8.3f] %s %s\n", t, level_name(level),
               message.c_str());
}

}  // namespace detail
}  // namespace fedclust
