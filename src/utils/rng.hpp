// Deterministic, splittable random number generation.
//
// Federated-learning simulations need reproducible randomness that is
// independent per client: client 7's local shuffling must not depend on
// whether client 6 trained before or after it (clients run on a thread
// pool). `Rng` is a xoshiro256** generator seeded through SplitMix64;
// `Rng::split(tag)` derives an independent child stream from a label, so
// the simulation hands each client a stream keyed by (seed, client_id).
#pragma once

#include <cstdint>
#include <vector>

namespace fedclust {

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, but the built-in helpers are preferred —
/// they are guaranteed stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream through SplitMix64 so that nearby seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  /// Raw 64 random bits.
  result_type operator()();

  /// Derives an independent child stream from this stream's seed and `tag`.
  /// Deterministic: split(k) on an Rng constructed with seed s always
  /// yields the same child stream, regardless of how much the parent has
  /// been consumed.
  [[nodiscard]] Rng split(std::uint64_t tag) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Standard normal via Box–Muller (stateful: caches the second variate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Gamma(alpha, 1) via Marsaglia–Tsang. Requires alpha > 0.
  double gamma(double alpha);
  /// Dirichlet(alpha, ..., alpha) over k categories. Requires k > 0.
  std::vector<double> dirichlet(double alpha, std::size_t k);
  /// Dirichlet with per-category concentration parameters.
  std::vector<double> dirichlet(const std::vector<double>& alpha);
  /// Samples an index from an unnormalized non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);
  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_int(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;  // retained so split() is independent of consumption
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fedclust
