// Robust aggregation rules.
//
// fl::Federation::aggregate dispatches here when the configured rule is
// not the plain weighted mean. Each rule is coordinate-wise (or
// norm-wise) and computed independently per output element in double
// precision, so results are bit-identical across thread counts no
// matter how the coordinate range is chunked.
//
//  * kWeightedMean   — sample-weighted FedAvg (handled by fl's fused
//                      kernel path, never here; listed for completeness)
//  * kTrimmedMean    — per coordinate, drop the floor(trim_frac * n)
//                      smallest and largest values, average the rest
//                      (unweighted — trimming and sample weights do not
//                      compose meaningfully). Tolerates < trim_frac
//                      Byzantine clients per cluster.
//  * kCoordinateMedian — per-coordinate median (midpoint of the two
//                      middle values for even n). Maximal breakdown
//                      point, slowest convergence.
//  * kNormClip       — clip every update's delta (about `reference`,
//                      the pre-round model) to clip_factor x the median
//                      delta norm, then weighted-average the clipped
//                      updates. Defuses blow-up attacks while keeping
//                      sample weighting.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "robust/validate.hpp"
#include "utils/thread_pool.hpp"

namespace fedclust::robust {

enum class AggregationRule : std::uint8_t {
  kWeightedMean = 0,
  kTrimmedMean,
  kCoordinateMedian,
  kNormClip,
};

const char* to_string(AggregationRule rule);
AggregationRule aggregation_rule_from_string(const std::string& name);

/// Robustness knobs of the federation engine (validation + aggregation
/// rule). Default-constructed = plain weighted mean, no validation: the
/// engine then behaves bit-identically to the pre-robustness engine.
struct RobustConfig {
  AggregationRule rule = AggregationRule::kWeightedMean;
  /// kTrimmedMean: fraction trimmed from EACH side per coordinate.
  double trim_frac = 0.2;
  /// kNormClip: deltas are clipped to clip_factor x median delta norm.
  double clip_factor = 1.0;
  /// Arrival screening + quarantine (see robust/validate.hpp).
  ValidationPolicy validate{};
};

/// Aggregates `inputs` (equal-length weight vectors) under `rule`.
/// `coefficients` are the normalized sample weights (used by kNormClip;
/// ignored by the trimmed mean and median, which are unweighted).
/// `reference` anchors kNormClip deltas — pass the pre-round model; an
/// empty span anchors at zero. `pool` may be null; any pool size yields
/// bit-identical output.
std::vector<float> robust_aggregate(
    const std::vector<std::span<const float>>& inputs,
    const std::vector<double>& coefficients, AggregationRule rule,
    const RobustConfig& config, std::span<const float> reference,
    ThreadPool* pool);

/// Sparse-aware trimmed mean over top-k codec frames. A decoded top-k
/// update carries the broadcast `reference_fill` verbatim in every
/// coordinate it did NOT ship, so "participated in coordinate d" is
/// exactly `inputs[u][d] != reference_fill[d]` (bit-equal). Per
/// coordinate the rule trims floor(trim_frac * m) from each side of the
/// m PARTICIPATING values and averages the rest; a coordinate nobody
/// shipped stays at the reference — the same "no update, no movement"
/// semantics the dense decode already has. With dense inputs (every
/// coordinate differing from the reference) this degenerates to the
/// classic trimmed mean over all n updates. Requires trim_frac in
/// [0, 0.5); when floor(trim_frac * m) would trim everything the trim
/// shrinks to keep at least one value (m <= 2 keeps all m).
std::vector<float> sparse_trimmed_mean(
    const std::vector<std::span<const float>>& inputs, double trim_frac,
    std::span<const float> reference_fill, ThreadPool* pool);

}  // namespace fedclust::robust
