// Deterministic fault injection for federated rounds.
//
// A FaultPlan decides, per (round, client, attempt), whether a client
// misbehaves this round and how: crashing before its upload leaves the
// device, replaying a stale model instead of training the current one,
// or corrupting the uploaded weights (NaN/Inf poisoning, sign-flipped
// Byzantine reflection, norm-scaled blow-up). Every decision comes from
// a splittable stream keyed by (seed, purpose, round, client, attempt)
// — the same discipline as the PR-2 network simulator — so fault
// trajectories are bit-identical across thread counts, SIMD dispatch,
// and checkpoint resume, and never perturb the training streams.
//
// This library sits BELOW src/fl: it knows only weight vectors and ids,
// and the federation engine applies its decisions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "utils/rng.hpp"

namespace fedclust::robust {

/// What a faulty client does in a round. Ordered by where the fault
/// strikes: kCrash before upload, kStaleReplay before training, the rest
/// corrupt the uploaded payload.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Device dies mid-round; the server never receives an upload.
  kCrash,
  /// Client trains from a stale model (the round-0 initialization) and
  /// uploads that — the classic stale-round replay of a device that
  /// missed intermediate broadcasts.
  kStaleReplay,
  /// A fraction of uploaded coordinates are NaN/Inf (bit corruption,
  /// overflowed local training).
  kNanPoison,
  /// Byzantine sign flip: the upload is reflected about the round's
  /// start weights, w' = 2*start - w — exactly cancels an honest
  /// client's progress under plain averaging.
  kSignFlip,
  /// Byzantine norm blow-up: the update delta is scaled by
  /// FaultConfig::blowup_factor, dragging the average far from the
  /// honest cohort.
  kScaleBlowup,
};

const char* to_string(FaultKind kind);

/// Fault-injection knobs, carried inside fl::FederationConfig. Disabled
/// by default; with `enabled` false the engine never consults the plan
/// and behaves bit-identically to a fault-free build.
struct FaultConfig {
  bool enabled = false;
  /// Per-(round, client) probabilities of each fault kind. They are
  /// mutually exclusive within a round (one uniform draw is partitioned
  /// by cumulative probability), so their sum must be <= 1.
  double crash_prob = 0.0;
  double stale_prob = 0.0;
  double nan_prob = 0.0;
  double sign_flip_prob = 0.0;
  double scale_prob = 0.0;
  /// Clients that sign-flip EVERY round (from start_round on) — the
  /// fixed Byzantine cohort of the 20%-attacker experiments. Probability
  /// draws above do not apply to these clients.
  std::vector<std::size_t> byzantine_clients;
  /// Delta scale applied by kScaleBlowup.
  double blowup_factor = 10.0;
  /// Amplification of the sign-flip: the attacker uploads
  /// start - sign_flip_scale * (w - start). 1.0 is the pure reflection
  /// (cancels one honest client under averaging); > 1 is the standard
  /// amplified sign-flipping attack, strong enough to stall or reverse
  /// plain averaging with a 20% cohort.
  double sign_flip_scale = 1.0;
  /// Fraction of coordinates kNanPoison corrupts (at least one).
  double poison_frac = 0.01;
  /// Faults only fire in rounds >= start_round. 0 includes FedClust's
  /// formation round; 1 spares it (the Byzantine-aggregation demos use
  /// this to isolate the training-round attack).
  std::size_t start_round = 0;
  /// Stream for fault draws; 0 = derive from the federation seed.
  std::uint64_t seed = 0;
};

/// The deterministic fault schedule. Stateless apart from its config and
/// seed: decide() is a pure function of (round, client, attempt).
class FaultPlan {
 public:
  FaultPlan(const FaultConfig& config, std::uint64_t base_seed);

  /// The fault (or kNone) striking `client` in `round`. `attempt`
  /// distinguishes re-solicitations of the same round (FedClust's
  /// formation retries): a client that crashed on attempt 0 may succeed
  /// on attempt 1.
  FaultKind decide(std::size_t round, std::size_t client,
                   std::size_t attempt = 0) const;

  /// Whether `client` is in the permanent Byzantine cohort.
  bool is_byzantine(std::size_t client) const;

  /// Stream for the payload corruption applied to (round, client) —
  /// coordinate choices of kNanPoison.
  Rng payload_rng(std::size_t round, std::size_t client) const;

  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  std::uint64_t seed_ = 0;
  std::vector<std::size_t> byzantine_sorted_;
};

/// Applies a payload fault in place. `start` is the weight vector the
/// client downloaded at the round's start (the reflection/scaling
/// anchor); `weights` the trained upload. `rng` drives coordinate
/// choices (FaultPlan::payload_rng). kNone/kCrash/kStaleReplay leave the
/// payload untouched.
void apply_payload_fault(FaultKind kind, const FaultConfig& config,
                         std::span<const float> start,
                         std::vector<float>& weights, Rng rng);

}  // namespace fedclust::robust
