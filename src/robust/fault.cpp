#include "robust/fault.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "utils/error.hpp"

namespace fedclust::robust {
namespace {

// Purpose tags for the per-draw streams (arbitrary, fixed forever; the
// 0x7b__ block is reserved for the robustness layer).
constexpr std::uint64_t kFaultDraw = 0x7b01;
constexpr std::uint64_t kPayload = 0x7b02;

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStaleReplay:
      return "stale_replay";
    case FaultKind::kNanPoison:
      return "nan_poison";
    case FaultKind::kSignFlip:
      return "sign_flip";
    case FaultKind::kScaleBlowup:
      return "scale_blowup";
  }
  return "unknown";
}

FaultPlan::FaultPlan(const FaultConfig& config, std::uint64_t base_seed)
    : config_(config),
      seed_(config.seed != 0 ? config.seed : base_seed),
      byzantine_sorted_(config.byzantine_clients) {
  const auto check_prob = [](double p, const char* name) {
    FEDCLUST_REQUIRE(p >= 0.0 && p <= 1.0,
                     name << " must be in [0, 1], got " << p);
  };
  check_prob(config_.crash_prob, "crash_prob");
  check_prob(config_.stale_prob, "stale_prob");
  check_prob(config_.nan_prob, "nan_prob");
  check_prob(config_.sign_flip_prob, "sign_flip_prob");
  check_prob(config_.scale_prob, "scale_prob");
  const double total = config_.crash_prob + config_.stale_prob +
                       config_.nan_prob + config_.sign_flip_prob +
                       config_.scale_prob;
  FEDCLUST_REQUIRE(total <= 1.0 + 1e-12,
                   "fault probabilities must sum to <= 1, got " << total);
  FEDCLUST_REQUIRE(config_.poison_frac > 0.0 && config_.poison_frac <= 1.0,
                   "poison_frac must be in (0, 1]");
  FEDCLUST_REQUIRE(config_.sign_flip_scale > 0.0,
                   "sign_flip_scale must be positive");
  std::sort(byzantine_sorted_.begin(), byzantine_sorted_.end());
}

bool FaultPlan::is_byzantine(std::size_t client) const {
  return std::binary_search(byzantine_sorted_.begin(), byzantine_sorted_.end(),
                            client);
}

FaultKind FaultPlan::decide(std::size_t round, std::size_t client,
                            std::size_t attempt) const {
  if (!config_.enabled || round < config_.start_round) return FaultKind::kNone;
  // The fixed Byzantine cohort attacks every round, unconditionally —
  // a colluding adversary, not background churn.
  if (is_byzantine(client)) return FaultKind::kSignFlip;

  // One uniform draw partitioned by cumulative probability keeps the
  // kinds mutually exclusive and the stream consumption fixed.
  Rng rng = Rng(seed_)
                .split(kFaultDraw)
                .split(round)
                .split(client)
                .split(attempt);
  const double u = rng.uniform();
  double edge = config_.crash_prob;
  if (u < edge) return FaultKind::kCrash;
  edge += config_.stale_prob;
  if (u < edge) return FaultKind::kStaleReplay;
  edge += config_.nan_prob;
  if (u < edge) return FaultKind::kNanPoison;
  edge += config_.sign_flip_prob;
  if (u < edge) return FaultKind::kSignFlip;
  edge += config_.scale_prob;
  if (u < edge) return FaultKind::kScaleBlowup;
  return FaultKind::kNone;
}

Rng FaultPlan::payload_rng(std::size_t round, std::size_t client) const {
  return Rng(seed_).split(kPayload).split(round).split(client);
}

void apply_payload_fault(FaultKind kind, const FaultConfig& config,
                         std::span<const float> start,
                         std::vector<float>& weights, Rng rng) {
  switch (kind) {
    case FaultKind::kNone:
    case FaultKind::kCrash:
    case FaultKind::kStaleReplay:
      return;
    case FaultKind::kNanPoison: {
      const std::size_t n = weights.size();
      if (n == 0) return;
      const std::size_t count = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::floor(config.poison_frac * static_cast<double>(n))));
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t at = rng.uniform_int(n);
        // Alternate NaN and Inf so both non-finite classes are exercised.
        weights[at] = (i % 2 == 0)
                          ? std::numeric_limits<float>::quiet_NaN()
                          : std::numeric_limits<float>::infinity();
      }
      return;
    }
    case FaultKind::kSignFlip: {
      FEDCLUST_REQUIRE(start.size() == weights.size(),
                       "sign-flip fault needs start weights of equal size");
      const float s = static_cast<float>(config.sign_flip_scale);
      for (std::size_t i = 0; i < weights.size(); ++i) {
        // s == 1 is the pure reflection 2*start - w; larger scales
        // amplify the flipped delta (the Fang-style attack).
        weights[i] = start[i] - s * (weights[i] - start[i]);
      }
      return;
    }
    case FaultKind::kScaleBlowup: {
      FEDCLUST_REQUIRE(start.size() == weights.size(),
                       "scale fault needs start weights of equal size");
      const float s = static_cast<float>(config.blowup_factor);
      for (std::size_t i = 0; i < weights.size(); ++i) {
        weights[i] = start[i] + s * (weights[i] - start[i]);
      }
      return;
    }
  }
}

}  // namespace fedclust::robust
