// Deterministic distribution-drift and churn scenarios.
//
// A DriftPlan schedules label-distribution drift (rotation of the label
// space, probabilistic shift of samples toward a target class), client
// departure waves, and newcomer cohorts that reuse departed slots. Every
// decision comes from a splittable stream keyed by
// (seed, purpose, event, slot, sample) — the same discipline as
// FaultPlan — so drift trajectories are bit-identical across thread
// counts, SIMD dispatch, and checkpoint resume, and never perturb the
// training streams.
//
// Like FaultPlan this library sits BELOW src/fl: it knows only rounds,
// slot ids and datasets. The federation engine wraps its ClientSource in
// a DriftFleet that applies transform() lazily, so the plan composes
// with VirtualFleet's histogram-virtualized shards unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "utils/rng.hpp"

namespace fedclust::robust {

/// What happens to a cohort of client slots at a scheduled round.
enum class DriftKind : std::uint8_t {
  /// Labels rotate by `rotate_by` classes mod the class count: the
  /// classic sudden concept drift where the input→label mapping changes
  /// but the marginal input distribution does not.
  kLabelRotation = 0,
  /// Each sample is independently relabelled to `target_class` with
  /// probability `shift_frac` — gradual prior-probability shift.
  kLabelShift,
  /// The slots' clients leave the fleet: they stop being sampled,
  /// evaluated, or counted toward accuracy until a later arrival reuses
  /// the slot.
  kDeparture,
  /// A newcomer takes over each slot (possibly one departed earlier).
  /// The newcomer's data is the slot's base shard under a fresh random
  /// label rotation (when rotate_newcomers is set), so it is a genuinely
  /// different client that must be routed by the newcomer rule — and it
  /// must NOT inherit the departed client's quarantine strikes.
  kArrival,
};

const char* to_string(DriftKind kind);

/// One scheduled drift event. Slots are either listed explicitly or
/// drawn deterministically as a `frac` fraction of the fleet.
struct DriftEvent {
  /// First training round whose data sees the event. Must be >= 1:
  /// round 0 is FedClust's formation round and defines "pre-drift".
  std::size_t round = 1;
  DriftKind kind = DriftKind::kLabelRotation;
  /// Explicit slot ids. Empty = draw `frac` of the fleet from the
  /// event's own seed stream.
  std::vector<std::size_t> slots;
  /// Fraction of the fleet to draw when `slots` is empty.
  double frac = 0.0;
  /// kLabelRotation: classes to rotate by (mod class count).
  std::size_t rotate_by = 1;
  /// kLabelShift: per-sample relabel probability and target class.
  double shift_frac = 0.5;
  std::size_t target_class = 0;
};

/// Drift knobs, carried inside fl::FederationConfig. Disabled by
/// default; with `enabled` false the engine never builds a plan and
/// behaves bit-identically to a drift-free build.
struct DriftConfig {
  bool enabled = false;
  std::vector<DriftEvent> events;
  /// Whether kArrival newcomers get a fresh per-generation label
  /// rotation (true) or replay the slot's base shard (false).
  bool rotate_newcomers = true;
  /// Stream for drift draws; 0 = derive from the federation seed.
  std::uint64_t seed = 0;
};

/// The deterministic drift schedule. Stateless apart from its config and
/// seed: every query is a pure function of (round, slot), so any round
/// can be reconstructed from scratch after a checkpoint resume.
class DriftPlan {
 public:
  /// Resolves every event's slot cohort up front (explicit lists are
  /// sorted and deduplicated; fractional cohorts are drawn from the
  /// event's seed stream) and sorts events by round, stably.
  DriftPlan(const DriftConfig& config, std::uint64_t base_seed,
            std::size_t num_clients, std::size_t num_classes);

  std::size_t num_clients() const { return num_clients_; }
  std::size_t num_classes() const { return num_classes_; }
  const DriftConfig& config() const { return config_; }

  /// Resolved, sorted slot cohort of event `e` (index into
  /// config().events after the stable sort by round).
  const std::vector<std::size_t>& event_slots(std::size_t e) const;
  /// The event schedule, sorted by round.
  const std::vector<DriftEvent>& events() const { return events_; }

  /// Whether `slot` holds an active client at `round`: false between a
  /// departure and the next arrival reusing the slot.
  bool active(std::size_t round, std::size_t slot) const;

  /// How many newcomers have taken over `slot` by `round` (0 = the
  /// original client still owns it).
  std::size_t generation(std::size_t round, std::size_t slot) const;

  /// Slots where a newcomer arrives exactly at `round` (sorted).
  std::vector<std::size_t> arrivals_at(std::size_t round) const;
  /// Slots departing exactly at `round` (sorted).
  std::vector<std::size_t> departures_at(std::size_t round) const;

  /// Cache key for the transform applied to `slot`'s data at `round`:
  /// equal signatures produce bit-identical transforms, and 0 means the
  /// identity (the wrapped fleet's shard can be served untouched).
  std::uint64_t transform_signature(std::size_t round,
                                    std::size_t slot) const;

  /// Applies the slot's cumulative drift to `dataset` and returns the
  /// transformed copy. `split_tag` decorrelates the train and test
  /// splits' per-sample shift draws (0 = train, 1 = test). Sample count
  /// and pixel data are preserved — only labels change — so shard sizes
  /// and FedAvg weights are unaffected.
  data::Dataset transform(std::size_t round, std::size_t slot,
                          const data::Dataset& dataset,
                          std::uint64_t split_tag) const;

 private:
  DriftConfig config_;
  std::uint64_t seed_ = 0;
  std::size_t num_clients_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<DriftEvent> events_;               // sorted by round
  std::vector<std::vector<std::size_t>> slots_;  // resolved, sorted

  bool covers(std::size_t e, std::size_t slot) const;
  /// Rotation applied to generation `gen` (>= 1) of `slot`.
  std::size_t newcomer_rotation(std::size_t slot, std::size_t gen) const;
};

}  // namespace fedclust::robust
