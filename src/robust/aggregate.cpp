#include "robust/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "utils/error.hpp"

namespace fedclust::robust {
namespace {

/// Runs body(begin, end) over [0, dim) in contiguous chunks across the
/// pool. Per-coordinate math is independent of the chunking, so any
/// worker count produces bit-identical output.
void chunked(std::size_t dim, ThreadPool* pool,
             const std::function<void(std::size_t, std::size_t)>& body) {
  constexpr std::size_t kMinParallelDim = 1u << 14;
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (workers <= 1 || dim < kMinParallelDim) {
    body(0, dim);
    return;
  }
  const std::size_t chunk = (dim + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = std::min(dim, w * chunk);
    const std::size_t end = std::min(dim, begin + chunk);
    if (begin >= end) break;
    futures.push_back(pool->submit([&body, begin, end] { body(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

std::vector<float> trimmed_mean(
    const std::vector<std::span<const float>>& inputs, std::size_t dim,
    double trim_frac, ThreadPool* pool) {
  const std::size_t n = inputs.size();
  const std::size_t trim = static_cast<std::size_t>(
      std::floor(trim_frac * static_cast<double>(n)));
  FEDCLUST_REQUIRE(2 * trim < n,
                   "trim_frac " << trim_frac << " trims all " << n
                                << " updates — need 2*floor(frac*n) < n");
  std::vector<float> out(dim);
  chunked(dim, pool, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(n);
    for (std::size_t d = begin; d < end; ++d) {
      for (std::size_t u = 0; u < n; ++u) column[u] = inputs[u][d];
      std::sort(column.begin(), column.end());
      double sum = 0.0;
      for (std::size_t u = trim; u < n - trim; ++u) {
        sum += static_cast<double>(column[u]);
      }
      out[d] = static_cast<float>(sum / static_cast<double>(n - 2 * trim));
    }
  });
  return out;
}

std::vector<float> coordinate_median(
    const std::vector<std::span<const float>>& inputs, std::size_t dim,
    ThreadPool* pool) {
  const std::size_t n = inputs.size();
  std::vector<float> out(dim);
  chunked(dim, pool, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column(n);
    for (std::size_t d = begin; d < end; ++d) {
      for (std::size_t u = 0; u < n; ++u) column[u] = inputs[u][d];
      const std::size_t mid = n / 2;
      std::nth_element(column.begin(), column.begin() + mid, column.end());
      if (n % 2 == 1) {
        out[d] = column[mid];
      } else {
        const float lower =
            *std::max_element(column.begin(), column.begin() + mid);
        out[d] = static_cast<float>(
            0.5 * (static_cast<double>(lower) +
                   static_cast<double>(column[mid])));
      }
    }
  });
  return out;
}

std::vector<float> norm_clip(const std::vector<std::span<const float>>& inputs,
                             const std::vector<double>& coefficients,
                             std::size_t dim, double clip_factor,
                             std::span<const float> reference,
                             ThreadPool* pool) {
  const std::size_t n = inputs.size();
  FEDCLUST_REQUIRE(reference.empty() || reference.size() == dim,
                   "norm-clip reference size mismatch");
  FEDCLUST_REQUIRE(clip_factor > 0.0, "clip_factor must be positive");
  const auto ref_at = [&](std::size_t d) -> double {
    return reference.empty() ? 0.0 : static_cast<double>(reference[d]);
  };

  // Delta norms about the reference, then the median as the clip anchor.
  std::vector<double> norms(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    double sq = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double diff = static_cast<double>(inputs[u][d]) - ref_at(d);
      sq += diff * diff;
    }
    norms[u] = std::sqrt(sq);
  }
  std::vector<double> sorted = norms;
  const std::size_t mid = n / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  double median = sorted[mid];
  if (n % 2 == 0 && n > 0) {
    median = 0.5 * (*std::max_element(sorted.begin(), sorted.begin() + mid) +
                    median);
  }
  const double bound = clip_factor * median;

  std::vector<double> scale(n, 1.0);
  for (std::size_t u = 0; u < n; ++u) {
    if (norms[u] > bound && norms[u] > 0.0) scale[u] = bound / norms[u];
  }

  std::vector<float> out(dim);
  chunked(dim, pool, [&](std::size_t begin, std::size_t end) {
    for (std::size_t d = begin; d < end; ++d) {
      const double r = ref_at(d);
      double acc = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        const double clipped =
            r + scale[u] * (static_cast<double>(inputs[u][d]) - r);
        acc += coefficients[u] * clipped;
      }
      out[d] = static_cast<float>(acc);
    }
  });
  return out;
}

}  // namespace

const char* to_string(AggregationRule rule) {
  switch (rule) {
    case AggregationRule::kWeightedMean:
      return "weighted_mean";
    case AggregationRule::kTrimmedMean:
      return "trimmed_mean";
    case AggregationRule::kCoordinateMedian:
      return "coordinate_median";
    case AggregationRule::kNormClip:
      return "norm_clip";
  }
  return "unknown";
}

AggregationRule aggregation_rule_from_string(const std::string& name) {
  if (name == "weighted_mean") return AggregationRule::kWeightedMean;
  if (name == "trimmed_mean") return AggregationRule::kTrimmedMean;
  if (name == "coordinate_median") return AggregationRule::kCoordinateMedian;
  if (name == "norm_clip") return AggregationRule::kNormClip;
  FEDCLUST_CHECK(false, "unknown aggregation rule '" << name << "'");
}

std::vector<float> sparse_trimmed_mean(
    const std::vector<std::span<const float>>& inputs, double trim_frac,
    std::span<const float> reference_fill, ThreadPool* pool) {
  FEDCLUST_REQUIRE(!inputs.empty(), "sparse_trimmed_mean over zero updates");
  FEDCLUST_REQUIRE(trim_frac >= 0.0 && trim_frac < 0.5,
                   "trim_frac must be in [0, 0.5)");
  const std::size_t n = inputs.size();
  const std::size_t dim = reference_fill.size();
  for (const auto& in : inputs) {
    FEDCLUST_REQUIRE(in.size() == dim,
                     "update size mismatch in sparse_trimmed_mean");
  }
  std::vector<float> out(dim);
  chunked(dim, pool, [&](std::size_t begin, std::size_t end) {
    std::vector<float> column;
    column.reserve(n);
    for (std::size_t d = begin; d < end; ++d) {
      const float fill = reference_fill[d];
      column.clear();
      for (std::size_t u = 0; u < n; ++u) {
        // Bit-equality with the broadcast marks "not shipped" — the
        // top-k decode wrote the reference there verbatim. A shipped
        // coordinate that happens to equal the reference is
        // indistinguishable, and treating it as absent changes nothing:
        // its value is the fill either way.
        if (inputs[u][d] != fill) column.push_back(inputs[u][d]);
      }
      const std::size_t m = column.size();
      if (m == 0) {
        out[d] = fill;  // nobody moved this coordinate
        continue;
      }
      std::size_t trim = static_cast<std::size_t>(
          std::floor(trim_frac * static_cast<double>(m)));
      if (2 * trim >= m) trim = (m - 1) / 2;  // keep at least one value
      std::sort(column.begin(), column.end());
      double sum = 0.0;
      for (std::size_t u = trim; u < m - trim; ++u) {
        sum += static_cast<double>(column[u]);
      }
      out[d] = static_cast<float>(sum / static_cast<double>(m - 2 * trim));
    }
  });
  return out;
}

std::vector<float> robust_aggregate(
    const std::vector<std::span<const float>>& inputs,
    const std::vector<double>& coefficients, AggregationRule rule,
    const RobustConfig& config, std::span<const float> reference,
    ThreadPool* pool) {
  FEDCLUST_REQUIRE(!inputs.empty(), "robust_aggregate over zero updates");
  FEDCLUST_REQUIRE(coefficients.size() == inputs.size(),
                   "coefficients must align with inputs");
  const std::size_t dim = inputs.front().size();
  for (const auto& in : inputs) {
    FEDCLUST_REQUIRE(in.size() == dim,
                     "update size mismatch in robust_aggregate");
  }
  FEDCLUST_CHECK(rule != AggregationRule::kWeightedMean,
                 "kWeightedMean is aggregated by the engine's fused "
                 "kernel path, not robust_aggregate");
  switch (rule) {
    case AggregationRule::kWeightedMean:
    case AggregationRule::kTrimmedMean:
      return trimmed_mean(inputs, dim, config.trim_frac, pool);
    case AggregationRule::kCoordinateMedian:
      return coordinate_median(inputs, dim, pool);
    case AggregationRule::kNormClip:
      return norm_clip(inputs, coefficients, dim, config.clip_factor,
                       reference, pool);
  }
  FEDCLUST_CHECK(false, "unhandled aggregation rule");
}

}  // namespace fedclust::robust
