#include "robust/validate.hpp"

#include <algorithm>
#include <cmath>

#include "utils/error.hpp"

namespace fedclust::robust {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kAccepted:
      return "accepted";
    case RejectReason::kBadShape:
      return "bad_shape";
    case RejectReason::kNonFinite:
      return "non_finite";
    case RejectReason::kNormEnvelope:
      return "norm_envelope";
    case RejectReason::kCodecEnvelope:
      return "codec_envelope";
    case RejectReason::kStaleness:
      return "staleness";
  }
  return "unknown";
}

std::vector<Verdict> screen_updates(
    const std::vector<std::span<const float>>& updates,
    const std::vector<std::span<const float>>& starts,
    const std::vector<std::size_t>& clients, std::size_t expected_dim,
    const ValidationPolicy& policy) {
  FEDCLUST_REQUIRE(updates.size() == starts.size() &&
                       updates.size() == clients.size(),
                   "screen_updates: inputs must align");
  std::vector<Verdict> verdicts(updates.size());

  // Pass 1: shape + finite sweep, and delta norms for the survivors.
  for (std::size_t i = 0; i < updates.size(); ++i) {
    Verdict& v = verdicts[i];
    v.client = clients[i];
    const std::span<const float> w = updates[i];
    if (w.size() != expected_dim || starts[i].size() != expected_dim) {
      v.reason = RejectReason::kBadShape;
      continue;
    }
    double sq = 0.0;
    bool finite = true;
    for (std::size_t d = 0; d < expected_dim; ++d) {
      const float x = w[d];
      if (!std::isfinite(x)) {
        finite = false;
        break;
      }
      const double diff =
          static_cast<double>(x) - static_cast<double>(starts[i][d]);
      sq += diff * diff;
    }
    if (!finite) {
      v.reason = RejectReason::kNonFinite;
      continue;
    }
    v.delta_norm = std::sqrt(sq);
  }

  // Pass 2: norm envelope against the cohort median of the still-valid
  // updates. The median is robust as long as attackers are a minority —
  // the same assumption every robust aggregation rule makes.
  if (policy.envelope_factor > 0.0) {
    std::vector<double> norms;
    norms.reserve(verdicts.size());
    for (const Verdict& v : verdicts) {
      if (v.accepted()) norms.push_back(v.delta_norm);
    }
    if (norms.size() >= 3) {  // an envelope over 1-2 samples is noise
      const std::size_t mid = norms.size() / 2;
      std::nth_element(norms.begin(), norms.begin() + mid, norms.end());
      double median = norms[mid];
      if (norms.size() % 2 == 0) {
        const double lower =
            *std::max_element(norms.begin(), norms.begin() + mid);
        median = 0.5 * (lower + median);
      }
      const double envelope = policy.envelope_factor *
                              std::max(median, policy.min_envelope);
      for (Verdict& v : verdicts) {
        if (v.accepted() && v.delta_norm > envelope) {
          v.reason = RejectReason::kNormEnvelope;
        }
      }
    }
  }
  return verdicts;
}

std::vector<Verdict> screen_encoded_updates(
    const std::vector<std::span<const std::uint8_t>>& frames,
    const std::vector<std::span<const float>>& starts,
    const std::vector<std::size_t>& clients, std::size_t expected_dim,
    const compress::UpdateCodec& codec, std::span<const std::size_t> layout,
    const ValidationPolicy& policy, std::vector<std::vector<float>>* decoded) {
  FEDCLUST_REQUIRE(frames.size() == starts.size() &&
                       frames.size() == clients.size(),
                   "screen_encoded_updates: inputs must align");
  FEDCLUST_REQUIRE(decoded != nullptr,
                   "screen_encoded_updates: decoded output is required");
  std::vector<Verdict> verdicts(frames.size());
  decoded->assign(frames.size(), {});

  // Stage 1: codec envelope. Rejected frames are never decoded, so a
  // malformed payload cannot poison the cohort statistics below.
  std::vector<std::size_t> survivors;
  survivors.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    verdicts[i].client = clients[i];
    std::string why;
    if (!codec.validate(frames[i], expected_dim, layout, &why)) {
      verdicts[i].reason = RejectReason::kCodecEnvelope;
      continue;
    }
    (*decoded)[i].resize(expected_dim);
    codec.decode(frames[i], std::span<float>((*decoded)[i]), starts[i],
                 layout);
    survivors.push_back(i);
  }

  // Stage 2: the unchanged float screening over the decoded survivors.
  std::vector<std::span<const float>> surv_updates;
  std::vector<std::span<const float>> surv_starts;
  std::vector<std::size_t> surv_clients;
  surv_updates.reserve(survivors.size());
  surv_starts.reserve(survivors.size());
  surv_clients.reserve(survivors.size());
  for (const std::size_t i : survivors) {
    surv_updates.emplace_back((*decoded)[i]);
    surv_starts.push_back(starts[i]);
    surv_clients.push_back(clients[i]);
  }
  const std::vector<Verdict> inner = screen_updates(
      surv_updates, surv_starts, surv_clients, expected_dim, policy);
  for (std::size_t u = 0; u < survivors.size(); ++u) {
    verdicts[survivors[u]] = inner[u];
  }
  return verdicts;
}

bool Quarantine::strike(std::size_t client) {
  if (client >= counts_.size()) counts_.resize(client + 1, 0);
  ++counts_[client];
  return counts_[client] == max_strikes_;
}

bool Quarantine::quarantined(std::size_t client) const {
  return strikes(client) >= max_strikes_;
}

std::size_t Quarantine::strikes(std::size_t client) const {
  return client < counts_.size() ? counts_[client] : 0;
}

void Quarantine::clear(std::size_t client) {
  if (client < counts_.size()) counts_[client] = 0;
}

std::vector<std::size_t> Quarantine::quarantined_clients() const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < counts_.size(); ++c) {
    if (counts_[c] >= max_strikes_) out.push_back(c);
  }
  return out;
}

std::size_t Quarantine::total_strikes() const {
  std::size_t total = 0;
  for (std::size_t c : counts_) total += c;
  return total;
}

void Quarantine::restore(std::vector<std::size_t> counts,
                         std::size_t max_strikes) {
  counts_ = std::move(counts);
  max_strikes_ = max_strikes;
}

}  // namespace fedclust::robust
