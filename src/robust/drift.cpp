#include "robust/drift.hpp"

#include <algorithm>

#include "utils/error.hpp"

namespace fedclust::robust {
namespace {

// Purpose tags for the per-draw streams (arbitrary, fixed forever; the
// 0x7d__ block is reserved for the drift layer — disjoint from the
// 0x7b__ fault block and every training/network stream).
constexpr std::uint64_t kCohortDraw = 0x7d01;    // fractional cohorts
constexpr std::uint64_t kNewcomerDraw = 0x7d02;  // per-generation rotation
constexpr std::uint64_t kShiftDraw = 0x7d03;     // per-sample label shift

}  // namespace

const char* to_string(DriftKind kind) {
  switch (kind) {
    case DriftKind::kLabelRotation:
      return "label_rotation";
    case DriftKind::kLabelShift:
      return "label_shift";
    case DriftKind::kDeparture:
      return "departure";
    case DriftKind::kArrival:
      return "arrival";
  }
  return "?";
}

DriftPlan::DriftPlan(const DriftConfig& config, std::uint64_t base_seed,
                     std::size_t num_clients, std::size_t num_classes)
    : config_(config),
      seed_(config.seed != 0 ? config.seed : base_seed),
      num_clients_(num_clients),
      num_classes_(num_classes) {
  FEDCLUST_REQUIRE(num_clients_ > 0, "drift plan needs a non-empty fleet");
  FEDCLUST_REQUIRE(num_classes_ > 0, "drift plan needs a class count");
  events_ = config_.events;
  // Stable sort keeps same-round events in declaration order, so a
  // departure followed by an arrival at the same round is a slot
  // hand-over, not a no-op.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const DriftEvent& a, const DriftEvent& b) {
                     return a.round < b.round;
                   });
  slots_.reserve(events_.size());
  for (std::size_t e = 0; e < events_.size(); ++e) {
    const DriftEvent& ev = events_[e];
    FEDCLUST_REQUIRE(ev.round >= 1,
                     "drift events fire at round >= 1 (round 0 is the "
                     "pre-drift formation round)");
    if (ev.kind == DriftKind::kLabelRotation) {
      FEDCLUST_REQUIRE(ev.rotate_by % num_classes_ != 0,
                       "label rotation must change the labels");
    }
    if (ev.kind == DriftKind::kLabelShift) {
      FEDCLUST_REQUIRE(ev.shift_frac > 0.0 && ev.shift_frac <= 1.0,
                       "shift_frac must be in (0, 1]");
      FEDCLUST_REQUIRE(ev.target_class < num_classes_,
                       "shift target class out of range");
    }
    std::vector<std::size_t> cohort = ev.slots;
    if (cohort.empty()) {
      FEDCLUST_REQUIRE(ev.frac > 0.0 && ev.frac <= 1.0,
                       "drift event needs explicit slots or frac in (0, 1]");
      const auto want = static_cast<std::size_t>(ev.frac * num_clients_);
      cohort = Rng(seed_).split(kCohortDraw).split(e).sample_without_replacement(
          num_clients_, std::max<std::size_t>(1, want));
    }
    std::sort(cohort.begin(), cohort.end());
    cohort.erase(std::unique(cohort.begin(), cohort.end()), cohort.end());
    FEDCLUST_REQUIRE(cohort.back() < num_clients_,
                     "drift event slot out of range");
    slots_.push_back(std::move(cohort));
  }
}

const std::vector<std::size_t>& DriftPlan::event_slots(std::size_t e) const {
  FEDCLUST_REQUIRE(e < slots_.size(), "drift event index out of range");
  return slots_[e];
}

bool DriftPlan::covers(std::size_t e, std::size_t slot) const {
  const std::vector<std::size_t>& s = slots_[e];
  return std::binary_search(s.begin(), s.end(), slot);
}

bool DriftPlan::active(std::size_t round, std::size_t slot) const {
  bool alive = true;
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].round > round) break;
    if (events_[e].kind == DriftKind::kDeparture && covers(e, slot)) {
      alive = false;
    } else if (events_[e].kind == DriftKind::kArrival && covers(e, slot)) {
      alive = true;
    }
  }
  return alive;
}

std::size_t DriftPlan::generation(std::size_t round, std::size_t slot) const {
  std::size_t gen = 0;
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].round > round) break;
    if (events_[e].kind == DriftKind::kArrival && covers(e, slot)) ++gen;
  }
  return gen;
}

std::vector<std::size_t> DriftPlan::arrivals_at(std::size_t round) const {
  std::vector<std::size_t> out;
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].round == round &&
        events_[e].kind == DriftKind::kArrival) {
      out.insert(out.end(), slots_[e].begin(), slots_[e].end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::size_t> DriftPlan::departures_at(std::size_t round) const {
  std::vector<std::size_t> out;
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].round == round &&
        events_[e].kind == DriftKind::kDeparture) {
      out.insert(out.end(), slots_[e].begin(), slots_[e].end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t DriftPlan::newcomer_rotation(std::size_t slot,
                                         std::size_t gen) const {
  if (!config_.rotate_newcomers || num_classes_ < 2) return 0;
  // A non-zero rotation, so generation g is a genuinely different client
  // than generation g-1 on the same slot.
  return 1 + Rng(seed_)
                 .split(kNewcomerDraw)
                 .split(slot)
                 .split(gen)
                 .uniform_int(num_classes_ - 1);
}

std::uint64_t DriftPlan::transform_signature(std::size_t round,
                                             std::size_t slot) const {
  // FNV-1a over the newcomer generation and the applying event indices.
  // 0 is reserved for the identity so a drift-free shard can be served
  // straight from the wrapped fleet.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 1099511628211ull;
  };
  const std::size_t gen = generation(round, slot);
  std::size_t base_round = 0;  // last arrival <= round, data baseline
  if (gen > 0) {
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (events_[e].round > round) break;
      if (events_[e].kind == DriftKind::kArrival && covers(e, slot)) {
        base_round = events_[e].round;
      }
    }
    mix(0x01);
    mix(gen);
  }
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].round > round) break;
    if (events_[e].round <= base_round) continue;
    if ((events_[e].kind == DriftKind::kLabelRotation ||
         events_[e].kind == DriftKind::kLabelShift) &&
        covers(e, slot)) {
      mix(0x02);
      mix(e);
    }
  }
  return h == 1469598103934665603ull ? 0 : h;
}

data::Dataset DriftPlan::transform(std::size_t round, std::size_t slot,
                                   const data::Dataset& dataset,
                                   std::uint64_t split_tag) const {
  data::Dataset out = dataset;
  const auto rotate_all = [&](std::size_t by) {
    if (by % num_classes_ == 0) return;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out.set_label(i, static_cast<std::int32_t>(
                           (static_cast<std::size_t>(out.label(i)) + by) %
                           num_classes_));
    }
  };
  // A newcomer's baseline is the slot's shard under the cumulative
  // per-generation rotations; drift events from before its arrival do
  // not apply (they happened to the previous owner's data).
  const std::size_t gen = generation(round, slot);
  std::size_t base_round = 0;
  if (gen > 0) {
    for (std::size_t e = 0; e < events_.size(); ++e) {
      if (events_[e].round > round) break;
      if (events_[e].kind == DriftKind::kArrival && covers(e, slot)) {
        base_round = events_[e].round;
      }
    }
    for (std::size_t g = 1; g <= gen; ++g) {
      rotate_all(newcomer_rotation(slot, g));
    }
  }
  for (std::size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].round > round) break;
    if (events_[e].round <= base_round) continue;
    if (!covers(e, slot)) continue;
    const DriftEvent& ev = events_[e];
    if (ev.kind == DriftKind::kLabelRotation) {
      rotate_all(ev.rotate_by);
    } else if (ev.kind == DriftKind::kLabelShift) {
      Rng draws = Rng(seed_)
                      .split(kShiftDraw)
                      .split(e)
                      .split(slot)
                      .split(split_tag);
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (draws.split(i).bernoulli(ev.shift_frac)) {
          out.set_label(i, static_cast<std::int32_t>(ev.target_class));
        }
      }
    }
  }
  return out;
}

}  // namespace fedclust::robust
