#include "robust/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "nn/serialize.hpp"
#include "utils/crc32.hpp"
#include "utils/error.hpp"

namespace fedclust::robust {
namespace {

namespace wire = nn::wire;

constexpr char kMagic[4] = {'F', 'C', 'K', 'P'};
// v1: synchronous run state. v2 appends the async scheduler block; v3
// appends drift telemetry to RoundRecord plus the drift-detector block.
// The loader accepts all three so older checkpoints keep resuming.
constexpr std::uint32_t kVersion = 3;

void put_u64_vec(std::vector<std::uint8_t>& buf,
                 const std::vector<std::uint64_t>& v) {
  wire::put_u64(buf, static_cast<std::uint64_t>(v.size()));
  for (std::uint64_t x : v) wire::put_u64(buf, x);
}

std::vector<std::uint64_t> get_u64_vec(wire::Reader& r) {
  const std::uint64_t n = r.u64();
  FEDCLUST_CHECK(n * 8 <= r.remaining(),
                 "checkpoint: implausible vector length " << n);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = r.u64();
  return v;
}

void put_f32_vecs(std::vector<std::uint8_t>& buf,
                  const std::vector<std::vector<float>>& vecs) {
  wire::put_u64(buf, static_cast<std::uint64_t>(vecs.size()));
  for (const auto& v : vecs) {
    wire::put_u64(buf, static_cast<std::uint64_t>(v.size()));
    wire::put_f32(buf, v);
  }
}

std::vector<std::vector<float>> get_f32_vecs(wire::Reader& r) {
  const std::uint64_t n = r.u64();
  FEDCLUST_CHECK(n <= r.remaining(),
                 "checkpoint: implausible vector count " << n);
  std::vector<std::vector<float>> vecs(static_cast<std::size_t>(n));
  for (auto& v : vecs) {
    const std::uint64_t len = r.u64();
    FEDCLUST_CHECK(len * 4 <= r.remaining(),
                   "checkpoint: implausible weight length " << len);
    v.resize(static_cast<std::size_t>(len));
    r.f32(v);
  }
  return vecs;
}

void put_dispatches(std::vector<std::uint8_t>& buf,
                    const std::vector<AsyncDispatchRecord>& records) {
  wire::put_u64(buf, static_cast<std::uint64_t>(records.size()));
  for (const AsyncDispatchRecord& d : records) {
    wire::put_u64(buf, d.seq);
    wire::put_u64(buf, d.client);
    wire::put_u64(buf, d.cluster);
    wire::put_u64(buf, d.version);
    wire::put_u32(buf, d.delivered ? 1 : 0);
    wire::put_f64(buf, d.finish);
    wire::put_u64(buf, d.attempts);
  }
}

std::vector<AsyncDispatchRecord> get_dispatches(wire::Reader& r) {
  const std::uint64_t n = r.u64();
  FEDCLUST_CHECK(n <= r.remaining(),
                 "checkpoint: implausible dispatch count " << n);
  std::vector<AsyncDispatchRecord> records(static_cast<std::size_t>(n));
  for (AsyncDispatchRecord& d : records) {
    d.seq = r.u64();
    d.client = r.u64();
    d.cluster = r.u64();
    d.version = r.u64();
    d.delivered = r.u32() != 0 ? 1 : 0;
    d.finish = r.f64();
    d.attempts = r.u64();
  }
  return records;
}

}  // namespace

void save_checkpoint(const RunCheckpoint& ck, const std::string& path) {
  std::vector<std::uint8_t> buf;
  wire::put_bytes(buf, kMagic, sizeof(kMagic));
  wire::put_u32(buf, kVersion);

  wire::put_u64(buf, ck.next_round);
  wire::put_u64(buf, ck.seed);
  put_u64_vec(buf, ck.labels);
  put_f32_vecs(buf, ck.cluster_weights);
  put_f32_vecs(buf, ck.partial_weights);

  wire::put_u64(buf, static_cast<std::uint64_t>(ck.rounds.size()));
  for (const RoundRecord& m : ck.rounds) {
    wire::put_u64(buf, m.round);
    wire::put_f64(buf, m.acc_mean);
    wire::put_f64(buf, m.acc_std);
    wire::put_f64(buf, m.train_loss);
    wire::put_u64(buf, m.cum_upload);
    wire::put_u64(buf, m.cum_download);
    wire::put_u64(buf, m.num_clusters);
    wire::put_f64(buf, m.sim_seconds);
    wire::put_u64(buf, m.weights_fp);
    wire::put_f64(buf, m.drift_score);
    wire::put_u64(buf, m.drift_alarms);
    wire::put_u64(buf, m.reclusters);
  }

  put_u64_vec(buf, ck.comm.round_download);
  put_u64_vec(buf, ck.comm.round_upload);
  put_u64_vec(buf, ck.comm.client_download);
  put_u64_vec(buf, ck.comm.client_upload);
  wire::put_u64(buf, ck.comm.total_download);
  wire::put_u64(buf, ck.comm.total_upload);

  wire::put_u32(buf, ck.net.present ? 1 : 0);
  wire::put_f64(buf, ck.net.clock);
  wire::put_u64(buf, static_cast<std::uint64_t>(ck.net.log.size()));
  for (const net::Event& e : ck.net.log) {
    wire::put_f64(buf, e.time);
    wire::put_u64(buf, e.seq);
    wire::put_u32(buf, static_cast<std::uint32_t>(e.kind));
    wire::put_u32(buf, e.round);
    wire::put_u32(buf, e.client);
    wire::put_u32(buf, e.attempt);
    wire::put_u64(buf, e.bytes);
  }

  put_u64_vec(buf, ck.quarantine_counts);
  wire::put_u64(buf, ck.quarantine_max_strikes);

  // v2 async scheduler block.
  wire::put_u32(buf, ck.async.present ? 1 : 0);
  wire::put_u64(buf, ck.async.first_round);
  wire::put_u64(buf, ck.async.flushes);
  wire::put_u64(buf, ck.async.next_seq);
  put_u64_vec(buf, ck.async.versions);
  put_u64_vec(buf, ck.async.ready);
  put_dispatches(buf, ck.async.inflight);
  put_dispatches(buf, ck.async.buffered);
  wire::put_u64(buf, static_cast<std::uint64_t>(ck.async.starts.size()));
  for (const AsyncStartRecord& s : ck.async.starts) {
    wire::put_u64(buf, s.cluster);
    wire::put_u64(buf, s.version);
    wire::put_u64(buf, static_cast<std::uint64_t>(s.weights.size()));
    wire::put_f32(buf, s.weights);
  }

  // v3 drift-detector block.
  wire::put_u32(buf, ck.drift.present ? 1 : 0);
  wire::put_u64(buf, ck.drift.recoveries);
  wire::put_u64(buf, ck.drift.cooldown);
  wire::put_f64(buf, ck.drift.threshold);
  put_u64_vec(buf, ck.drift.streaks);
  wire::put_u64(buf, static_cast<std::uint64_t>(ck.drift.windows.size()));
  for (const std::vector<double>& w : ck.drift.windows) {
    wire::put_u64(buf, static_cast<std::uint64_t>(w.size()));
    for (double x : w) wire::put_f64(buf, x);
  }

  // Integrity trailer over everything written above (magic included).
  wire::put_u32(buf, crc32(buf.data(), buf.size()));

  std::ofstream out(path, std::ios::binary);
  FEDCLUST_CHECK(out.good(), "cannot open " << path << " for writing");
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  FEDCLUST_CHECK(out.good(), "write to " << path << " failed");
}

RunCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  FEDCLUST_CHECK(in.good(), "cannot open checkpoint " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(buf.data()), size);
  FEDCLUST_CHECK(in.good(), "read from " << path << " failed");

  FEDCLUST_CHECK(buf.size() >= sizeof(kMagic) + 8,
                 path << " is too small to be a checkpoint");
  // Verify the CRC trailer before trusting any field.
  wire::Reader trailer(
      std::span<const std::uint8_t>(buf).subspan(buf.size() - 4));
  const std::uint32_t stored = trailer.u32();
  const std::uint32_t actual = crc32(buf.data(), buf.size() - 4);
  FEDCLUST_CHECK(stored == actual,
                 "checkpoint " << path << " is corrupted: crc " << std::hex
                               << actual << " != stored " << stored);

  wire::Reader r(std::span<const std::uint8_t>(buf.data(), buf.size() - 4));
  char magic[4];
  r.raw(magic, sizeof(magic));
  FEDCLUST_CHECK(std::memcmp(magic, kMagic, 4) == 0,
                 path << " is not a fedclust run checkpoint");
  const std::uint32_t version = r.u32();
  FEDCLUST_CHECK(version >= 1 && version <= kVersion,
                 "unsupported checkpoint version " << version);

  RunCheckpoint ck;
  ck.next_round = r.u64();
  ck.seed = r.u64();
  ck.labels = get_u64_vec(r);
  ck.cluster_weights = get_f32_vecs(r);
  ck.partial_weights = get_f32_vecs(r);

  const std::uint64_t num_rounds = r.u64();
  FEDCLUST_CHECK(num_rounds <= r.remaining(),
                 "checkpoint: implausible round count " << num_rounds);
  ck.rounds.resize(static_cast<std::size_t>(num_rounds));
  for (RoundRecord& m : ck.rounds) {
    m.round = r.u64();
    m.acc_mean = r.f64();
    m.acc_std = r.f64();
    m.train_loss = r.f64();
    m.cum_upload = r.u64();
    m.cum_download = r.u64();
    m.num_clusters = r.u64();
    m.sim_seconds = r.f64();
    m.weights_fp = r.u64();
    if (version >= 3) {
      m.drift_score = r.f64();
      m.drift_alarms = r.u64();
      m.reclusters = r.u64();
    }
  }

  ck.comm.round_download = get_u64_vec(r);
  ck.comm.round_upload = get_u64_vec(r);
  ck.comm.client_download = get_u64_vec(r);
  ck.comm.client_upload = get_u64_vec(r);
  ck.comm.total_download = r.u64();
  ck.comm.total_upload = r.u64();

  ck.net.present = r.u32() != 0;
  ck.net.clock = r.f64();
  const std::uint64_t num_events = r.u64();
  FEDCLUST_CHECK(num_events <= r.remaining(),
                 "checkpoint: implausible event count " << num_events);
  ck.net.log.resize(static_cast<std::size_t>(num_events));
  for (net::Event& e : ck.net.log) {
    e.time = r.f64();
    e.seq = r.u64();
    const std::uint32_t kind = r.u32();
    FEDCLUST_CHECK(kind >= 1 && kind <= 9,
                   "checkpoint: invalid event kind " << kind);
    e.kind = static_cast<net::EventKind>(kind);
    e.round = r.u32();
    e.client = r.u32();
    e.attempt = r.u32();
    e.bytes = r.u64();
  }

  ck.quarantine_counts = get_u64_vec(r);
  ck.quarantine_max_strikes = r.u64();

  if (version >= 2) {
    ck.async.present = r.u32() != 0;
    ck.async.first_round = r.u64();
    ck.async.flushes = r.u64();
    ck.async.next_seq = r.u64();
    ck.async.versions = get_u64_vec(r);
    ck.async.ready = get_u64_vec(r);
    ck.async.inflight = get_dispatches(r);
    ck.async.buffered = get_dispatches(r);
    const std::uint64_t num_starts = r.u64();
    FEDCLUST_CHECK(num_starts <= r.remaining(),
                   "checkpoint: implausible start count " << num_starts);
    ck.async.starts.resize(static_cast<std::size_t>(num_starts));
    for (AsyncStartRecord& s : ck.async.starts) {
      s.cluster = r.u64();
      s.version = r.u64();
      const std::uint64_t len = r.u64();
      FEDCLUST_CHECK(len * 4 <= r.remaining(),
                     "checkpoint: implausible start length " << len);
      s.weights.resize(static_cast<std::size_t>(len));
      r.f32(s.weights);
    }
  }
  if (version >= 3) {
    ck.drift.present = r.u32() != 0;
    ck.drift.recoveries = r.u64();
    ck.drift.cooldown = r.u64();
    ck.drift.threshold = r.f64();
    ck.drift.streaks = get_u64_vec(r);
    const std::uint64_t num_windows = r.u64();
    FEDCLUST_CHECK(num_windows <= r.remaining(),
                   "checkpoint: implausible window count " << num_windows);
    ck.drift.windows.resize(static_cast<std::size_t>(num_windows));
    for (std::vector<double>& w : ck.drift.windows) {
      const std::uint64_t len = r.u64();
      FEDCLUST_CHECK(len * 8 <= r.remaining(),
                     "checkpoint: implausible window length " << len);
      w.resize(static_cast<std::size_t>(len));
      for (double& x : w) x = r.f64();
    }
  }
  FEDCLUST_CHECK(r.remaining() == 0,
                 "checkpoint " << path << " has " << r.remaining()
                               << " trailing bytes");
  return ck;
}

}  // namespace fedclust::robust
