// Crash-recoverable run checkpoints.
//
// A RunCheckpoint captures everything the FedClust round loop needs to
// continue bit-identically after a process kill: the next round index,
// the per-cluster server models, the formation artifacts the newcomer
// path depends on, the metric/comm/network trajectory so far, and the
// quarantine ledger. RNG state is deliberately ABSENT — every stream in
// the engine is derived functionally from (seed, purpose, round,
// client, attempt), so "RNG position" is fully determined by the round
// index alone.
//
// On-disk format (little-endian, nn::wire codec):
//   magic "FCKP" | u32 version | body | u32 crc32(magic..body)
// The trailing CRC makes torn or bit-flipped files fail loudly at load
// time instead of silently resuming a corrupted run. Version 2 appends
// the async scheduler block (in-flight dispatches, per-cluster buffers,
// dispatch frontier); version 3 appends per-round drift telemetry and
// the drift-detector block so the evolving partition of a dynamic run
// resumes bit-identically. The loader still accepts version-1/2 files,
// which simply have no async/drift state.
//
// This header mirrors fl::RoundMetrics and fl::CommMeter state as plain
// structs instead of including fl/ headers: robust/ sits below fl/ in
// the library stack and must not depend on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/event.hpp"

namespace fedclust::robust {

/// Plain mirror of fl::RoundMetrics (field-for-field) so the metrics
/// trajectory can round-trip through a checkpoint without a dependency
/// on fl/.
struct RoundRecord {
  std::uint64_t round = 0;
  double acc_mean = 0.0;
  double acc_std = 0.0;
  double train_loss = 0.0;
  std::uint64_t cum_upload = 0;
  std::uint64_t cum_download = 0;
  std::uint64_t num_clusters = 1;
  double sim_seconds = 0.0;
  std::uint64_t weights_fp = 0;
  // --- v3: drift telemetry (zero when dynamic clustering is off) ---
  double drift_score = 0.0;         ///< detector mean-shift score
  std::uint64_t drift_alarms = 0;   ///< clusters alarmed at this eval
  std::uint64_t reclusters = 0;     ///< cumulative recovery operations
};

/// Full state of a CommMeter (per-round + per-client series + totals).
struct CommSnapshot {
  std::vector<std::uint64_t> round_download;
  std::vector<std::uint64_t> round_upload;
  std::vector<std::uint64_t> client_download;
  std::vector<std::uint64_t> client_upload;
  std::uint64_t total_download = 0;
  std::uint64_t total_upload = 0;
};

/// Network simulator state: virtual clock + full event log. `present`
/// distinguishes "simulator disabled" from "enabled with empty log".
struct NetSnapshot {
  bool present = false;
  double clock = 0.0;
  std::vector<net::Event> log;
};

/// One async dispatch that was in flight (or arrived but unflushed) at
/// checkpoint time. `version` is the cluster-model version the client
/// downloaded; `delivered`/`finish`/`attempts` mirror the simulated
/// net::OpOutcome so resume does not re-simulate the op.
struct AsyncDispatchRecord {
  std::uint64_t seq = 0;
  std::uint64_t client = 0;
  std::uint64_t cluster = 0;
  std::uint64_t version = 0;
  std::uint8_t delivered = 0;
  double finish = 0.0;
  std::uint64_t attempts = 0;
};

/// Broadcast weights for one (cluster, version) still referenced by an
/// in-flight or buffered dispatch — what those clients are training
/// from (already download-codec round-tripped).
struct AsyncStartRecord {
  std::uint64_t cluster = 0;
  std::uint64_t version = 0;
  std::vector<float> weights;
};

/// Buffered-async scheduler state (FCKP v2). `present` is false for
/// synchronous checkpoints and for every v1 file.
struct AsyncSnapshot {
  bool present = false;
  std::uint64_t first_round = 0;  ///< metrics round offset (formation)
  std::uint64_t flushes = 0;      ///< buffer flushes applied so far
  std::uint64_t next_seq = 0;     ///< dispatch frontier
  std::vector<std::uint64_t> versions;  ///< per-cluster applied flushes
  std::vector<std::uint64_t> ready;     ///< re-dispatch queue, in order
  std::vector<AsyncDispatchRecord> inflight;  ///< sorted by seq
  /// Arrived-but-unflushed dispatches, grouped by cluster in buffer
  /// (arrival) order.
  std::vector<AsyncDispatchRecord> buffered;
  std::vector<AsyncStartRecord> starts;
};

/// Drift-detector state (FCKP v3). `present` is false when dynamic
/// clustering is off and for every v1/v2 file. The trailing accuracy
/// windows and breach streaks are the only detector state — alarms are
/// re-derived from them — so carrying these makes kill/resume of a
/// dynamic run bit-identical, including the round a recovery fires.
struct DriftSnapshot {
  bool present = false;
  std::uint64_t recoveries = 0;  ///< recovery re-clusterings applied
  std::uint64_t cooldown = 0;    ///< post-recovery observe() holdoff left
  /// The formation run's applied dendrogram cut — the split stage of a
  /// post-resume recovery must cut at exactly this distance.
  double threshold = 0.0;
  std::vector<std::uint64_t> streaks;       ///< per-cluster breach streaks
  std::vector<std::vector<double>> windows; ///< per-cluster trailing accs
};

/// Everything needed to resume a FedClust run after `next_round - 1`
/// completed.
struct RunCheckpoint {
  std::uint64_t next_round = 0;  ///< first round still to execute
  std::uint64_t seed = 0;        ///< federation seed (verified on resume)
  std::vector<std::uint64_t> labels;  ///< per-client cluster assignment
  std::vector<std::vector<float>> cluster_weights;
  /// Formation-round partial uploads (index = client; empty vector for
  /// deferred clients) — the newcomer path measures against these.
  std::vector<std::vector<float>> partial_weights;
  std::vector<RoundRecord> rounds;  ///< metrics emitted so far
  CommSnapshot comm;
  NetSnapshot net;
  std::vector<std::uint64_t> quarantine_counts;  ///< index = client id
  std::uint64_t quarantine_max_strikes = 0;
  /// Event-driven engine state (fl/async); present only for checkpoints
  /// written mid-async-run.
  AsyncSnapshot async;
  /// Dynamic-clustering detector state (v3); the evolving partition
  /// itself rides the ordinary labels/cluster_weights/partial_weights
  /// fields, which a recovery rewrites in place.
  DriftSnapshot drift;
};

/// Serializes `ck` to `path` ("FCKP" format with CRC32 trailer).
void save_checkpoint(const RunCheckpoint& ck, const std::string& path);

/// Loads a checkpoint; throws fedclust::Error on a missing, truncated,
/// corrupted (CRC mismatch), or wrong-version file.
RunCheckpoint load_checkpoint(const std::string& path);

}  // namespace fedclust::robust
