// Server-side update validation and client quarantine.
//
// Every payload that reaches the aggregator is screened: shape, finite
// values, and a norm envelope — the update's delta norm (distance from
// the weights the client downloaded) must stay within a factor of the
// cohort's MEDIAN delta norm, so a majority of honest clients defines
// "normal" and blown-up Byzantine updates stand out regardless of
// scale. Each rejection is a strike; a client that accumulates
// max_strikes strikes is quarantined and excluded from later rounds
// (the server stops soliciting it). Screening never modifies surviving
// payloads, so with honest clients an enabled validator is
// trajectory-neutral.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compress/codec.hpp"

namespace fedclust::robust {

/// Validation knobs, part of robust::RobustConfig. Disabled by default.
struct ValidationPolicy {
  bool enabled = false;
  /// Reject an update whose ||w - start|| exceeds envelope_factor x the
  /// cohort median delta norm. <= 0 disables the norm check (finite and
  /// shape checks still run).
  double envelope_factor = 5.0;
  /// Absolute floor for the envelope, so a cohort of near-zero deltas
  /// (converged run) does not reject benign numerical noise.
  double min_envelope = 1e-3;
  /// Strikes before a client is quarantined for the rest of the run.
  std::size_t max_strikes = 2;
};

/// Why an update was rejected.
enum class RejectReason : std::uint8_t {
  kAccepted = 0,
  kBadShape,
  kNonFinite,
  kNormEnvelope,
  /// The encoded frame failed the codec's structural/envelope check
  /// (wrong size, non-finite quantizer scale, bad top-k indices) — the
  /// frame never reached the float screening.
  kCodecEnvelope,
  /// Async engine only: the update's staleness (cluster versions applied
  /// since its dispatch) exceeded AsyncConfig::max_staleness — the model
  /// it trained from is too old to mix in safely.
  kStaleness,
};

const char* to_string(RejectReason reason);

/// Verdict for one screened update, in input order.
struct Verdict {
  std::size_t client = 0;
  RejectReason reason = RejectReason::kAccepted;
  double delta_norm = 0.0;  ///< ||w - start|| (0 when shape was wrong)
  bool accepted() const { return reason == RejectReason::kAccepted; }
};

/// Screens a batch of arrived updates against their per-client start
/// weights. `updates[i]` pairs with `starts[i]` and `clients[i]`;
/// `expected_dim` is the model size every update must match. Pure
/// function — strike accounting is the caller's (Quarantine's) job.
std::vector<Verdict> screen_updates(
    const std::vector<std::span<const float>>& updates,
    const std::vector<std::span<const float>>& starts,
    const std::vector<std::size_t>& clients, std::size_t expected_dim,
    const ValidationPolicy& policy);

/// Decode-then-screen for compressed traffic: each encoded frame first
/// passes the codec's structural/envelope check (failures verdict as
/// kCodecEnvelope and are never decoded), survivors are decoded against
/// their per-client start weights — the reference both ends encoded
/// against — into (*decoded)[i], and the decoded floats then run through
/// the exact screen_updates pipeline above (shape, finite, cohort-median
/// norm envelope). Frames rejected at the codec stage do not contribute
/// to the cohort median, so a poisoned scale cannot skew the envelope.
/// (*decoded)[i] stays empty for codec-rejected frames.
std::vector<Verdict> screen_encoded_updates(
    const std::vector<std::span<const std::uint8_t>>& frames,
    const std::vector<std::span<const float>>& starts,
    const std::vector<std::size_t>& clients, std::size_t expected_dim,
    const compress::UpdateCodec& codec, std::span<const std::size_t> layout,
    const ValidationPolicy& policy, std::vector<std::vector<float>>* decoded);

/// Per-client strike ledger with exclusion. Deterministic: state is a
/// pure fold over the strike sequence, so identical runs produce
/// identical quarantine sets (and checkpoints can serialize it as plain
/// counters).
class Quarantine {
 public:
  explicit Quarantine(std::size_t max_strikes = 2)
      : max_strikes_(max_strikes) {}

  /// Records one strike against `client`; returns true if this strike
  /// tipped it into quarantine.
  bool strike(std::size_t client);

  bool quarantined(std::size_t client) const;
  std::size_t strikes(std::size_t client) const;
  std::size_t max_strikes() const { return max_strikes_; }

  /// Wipes `client`'s strikes. Churn hand-over: a newcomer reusing a
  /// departed client's slot must not inherit its predecessor's ledger.
  void clear(std::size_t client);

  /// Sorted ids of all quarantined clients.
  std::vector<std::size_t> quarantined_clients() const;
  /// Total strikes recorded across all clients.
  std::size_t total_strikes() const;

  /// Plain state view for checkpointing (index = client id).
  const std::vector<std::size_t>& strike_counts() const { return counts_; }
  /// Restores the ledger from checkpointed counters.
  void restore(std::vector<std::size_t> counts, std::size_t max_strikes);

 private:
  std::vector<std::size_t> counts_;
  std::size_t max_strikes_ = 2;
};

}  // namespace fedclust::robust
