#include "cluster/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels.hpp"
#include "utils/error.hpp"

namespace fedclust::cluster {

std::vector<double> anchor_sqnorms(
    const std::vector<std::vector<float>>& anchors) {
  const ops::KernelTable& kt = ops::kernels();
  std::vector<double> sq(anchors.size(), 0.0);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    if (anchors[i].empty()) continue;
    sq[i] = kt.sqnorm(anchors[i].data(), anchors[i].size());
    FEDCLUST_REQUIRE(std::isfinite(sq[i]),
                     "non-finite values in anchor " << i);
  }
  return sq;
}

std::vector<double> mean_cluster_distances(
    std::span<const float> query,
    const std::vector<std::vector<float>>& anchors,
    const std::vector<std::size_t>& labels, std::size_t num_clusters,
    const std::vector<double>* cached_sqnorms) {
  FEDCLUST_REQUIRE(!query.empty(), "routing query must be non-empty");
  FEDCLUST_REQUIRE(labels.size() == anchors.size(),
                   "labels cover " << labels.size() << " clients, anchors "
                                   << anchors.size());
  FEDCLUST_REQUIRE(
      cached_sqnorms == nullptr || cached_sqnorms->size() == anchors.size(),
      "cached sqnorms do not match the anchor set");

  const ops::KernelTable& kt = ops::kernels();
  const double qsq = kt.sqnorm(query.data(), query.size());
  FEDCLUST_REQUIRE(std::isfinite(qsq), "non-finite values in routing query");

  std::vector<double> sum(num_clusters, 0.0);
  std::vector<std::size_t> count(num_clusters, 0);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    const std::vector<float>& anchor = anchors[i];
    // A deferred client has no stored upload (yet); it cannot anchor a
    // distance and is skipped.
    if (anchor.empty()) continue;
    FEDCLUST_REQUIRE(anchor.size() == query.size(),
                     "stored anchor " << i << " has " << anchor.size()
                                      << " floats, query " << query.size());
    FEDCLUST_REQUIRE(labels[i] < num_clusters,
                     "anchor " << i << " labeled " << labels[i]
                               << " outside " << num_clusters << " clusters");
    const double asq = cached_sqnorms != nullptr
                           ? (*cached_sqnorms)[i]
                           : kt.sqnorm(anchor.data(), anchor.size());
    const double dp = kt.dot(query.data(), anchor.data(), query.size());
    // Same clamp as pairwise_euclidean: tiny negative rounding residues
    // must not reach the sqrt.
    const double s = std::max(0.0, qsq + asq - 2.0 * dp);
    sum[labels[i]] += std::sqrt(s);
    ++count[labels[i]];
  }

  std::vector<double> mean(num_clusters,
                           std::numeric_limits<double>::infinity());
  for (std::size_t c = 0; c < num_clusters; ++c) {
    if (count[c] > 0) mean[c] = sum[c] / static_cast<double>(count[c]);
  }
  return mean;
}

std::size_t nearest_cluster(const std::vector<double>& mean_distances) {
  std::size_t best = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < mean_distances.size(); ++c) {
    if (mean_distances[c] < best_mean) {
      best_mean = mean_distances[c];
      best = c;
    }
  }
  return best;
}

}  // namespace fedclust::cluster
