// k-means clustering with k-means++ seeding.
//
// An alternative server-side grouping for the weight vectors FedClust
// collects: hierarchical clustering (the paper's choice) needs no k but
// costs O(n^3); k-means needs k but scales to large client populations.
// The linkage ablation uses it as a comparison point, and IFCA-style
// systems use exactly this primitive server-side.
#pragma once

#include <cstddef>
#include <vector>

#include "utils/rng.hpp"

namespace fedclust::cluster {

struct KMeansResult {
  std::vector<std::size_t> labels;           ///< cluster per point
  std::vector<std::vector<double>> centers;  ///< k centroids
  double inertia = 0.0;   ///< sum of squared distances to own centroid
  std::size_t iterations = 0;
  bool converged = false;
};

/// Lloyd's algorithm over row vectors with k-means++ initialization.
/// Deterministic given `rng`'s state. Empty clusters are re-seeded with
/// the point farthest from its centroid.
KMeansResult kmeans(const std::vector<std::vector<float>>& points,
                    std::size_t k, Rng& rng, std::size_t max_iterations = 100,
                    double tol = 1e-7);

}  // namespace fedclust::cluster
