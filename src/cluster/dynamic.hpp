// Online re-clustering: split/merge recovery for a drifted partition.
//
// When the drift detector flags clusters, the server re-solicits fresh
// partial-weight anchors from their members and repairs the partition
// in place rather than re-running formation from scratch:
//
//   1. Gaussian soft-membership reassignment ("Interaction-Aware
//      Gaussian Weighting for CFL", PAPERS.md): each flagged member's
//      anchor is scored against every cluster's mean anchor distance
//      (the newcomer rule's metric, self-excluded), converted to soft
//      memberships w_c ∝ exp(−d_c² / 2σ²), and the member moves to the
//      argmax cluster when its weight beats the home cluster's by the
//      configured margin. Members that genuinely migrated to another
//      mode get absorbed there — the "merge" direction.
//   2. Dendrogram split: each flagged cluster's remaining members are
//      re-clustered by agglomerative HC over their refreshed anchors
//      and cut at the formation threshold. Sub-clusters beyond the
//      first become new clusters inheriting the parent's model — the
//      "split" direction for cohorts that forked into distinct modes.
//   3. Compaction: clusters left without active members are drained and
//      ids renumbered consecutively, so downstream code never sees a
//      hole in the label space.
//
// Everything is a pure function of (anchors, labels, flagged, active,
// config) — no RNG — so recovery is bit-identical across thread counts
// and checkpoint resume.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/hierarchical.hpp"

namespace fedclust::cluster {

struct ReclusterConfig {
  Linkage linkage = Linkage::kAverage;
  /// Dendrogram cut distance for the split stage — normally the
  /// formation run's threshold. <= 0 disables splitting (a threshold of
  /// 0 would shatter every flagged cluster into singletons).
  double threshold = 0.0;
  /// Gaussian kernel width for soft memberships; <= 0 derives it per
  /// member as the mean of its finite cluster distances.
  double gaussian_sigma = 0.0;
  /// A member moves only when the best foreign soft membership exceeds
  /// `reassign_margin` times its home membership (1 = plain argmax;
  /// larger is stickier).
  double reassign_margin = 1.0;
  /// Flagged clusters with fewer members than this skip the split stage.
  std::size_t min_split_size = 2;
};

struct ReclusterResult {
  /// New per-client labels, consecutive ids (departed clients included,
  /// remapped like everyone else so label invariants hold).
  std::vector<std::size_t> labels;
  /// For each new cluster id, the OLD cluster id whose server model it
  /// inherits (splits inherit the flagged parent's model).
  std::vector<std::size_t> parent;
  std::size_t moved = 0;    ///< members reassigned across clusters
  std::size_t splits = 0;   ///< new clusters born from the split stage
  std::size_t drained = 0;  ///< old clusters left without active members
};

/// exp(−d² / 2σ²) soft memberships over mean cluster distances.
/// Infinite distances (anchor-less clusters) get weight 0. Requires
/// sigma > 0.
std::vector<double> soft_memberships(const std::vector<double>& distances,
                                     double sigma);

/// Repairs a drifted partition (see file comment). `anchors` holds every
/// client's stored partial-weight upload (empty = no anchor: deferred or
/// departed — such members never move and never seed splits); `flagged`
/// lists the alarmed cluster ids; `active[i]` marks clients currently in
/// the fleet.
ReclusterResult recluster(const std::vector<std::vector<float>>& anchors,
                          const std::vector<std::size_t>& labels,
                          const std::vector<std::size_t>& flagged,
                          const std::vector<std::uint8_t>& active,
                          const ReclusterConfig& config);

}  // namespace fedclust::cluster
