// External and internal cluster-quality metrics.
//
// Used by the Fig. 1 reproduction and the ablations to quantify how well
// a clustering recovers the ground-truth client groups (ARI, NMI,
// purity) and how well separated the clusters are without ground truth
// (silhouette, block contrast).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace fedclust::cluster {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random.
double adjusted_rand_index(const std::vector<std::size_t>& labels_a,
                           const std::vector<std::size_t>& labels_b);

/// Normalized mutual information in [0, 1] (arithmetic-mean
/// normalization); 1 = identical partitions.
double normalized_mutual_information(const std::vector<std::size_t>& labels_a,
                                     const std::vector<std::size_t>& labels_b);

/// Fraction of points whose cluster's majority ground-truth label matches
/// their own; in (0, 1].
double purity(const std::vector<std::size_t>& predicted,
              const std::vector<std::size_t>& truth);

/// Mean silhouette coefficient from a precomputed distance matrix; in
/// [-1, 1]. Singleton clusters contribute 0.
double silhouette(const Matrix& distances,
                  const std::vector<std::size_t>& labels);

/// Block contrast of a distance matrix under ground-truth groups: mean
/// between-group distance divided by mean within-group distance. > 1
/// means the matrix exhibits the block structure of Fig. 1; higher is
/// sharper. Returns +inf when all within-group distances are 0.
double block_contrast(const Matrix& distances,
                      const std::vector<std::size_t>& groups);

}  // namespace fedclust::cluster
