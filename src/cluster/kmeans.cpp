#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "utils/error.hpp"

namespace fedclust::cluster {
namespace {

double sq_distance(const std::vector<float>& p,
                   const std::vector<double>& center) {
  double s = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = static_cast<double>(p[i]) - center[i];
    s += d * d;
  }
  return s;
}

}  // namespace

KMeansResult kmeans(const std::vector<std::vector<float>>& points,
                    std::size_t k, Rng& rng, std::size_t max_iterations,
                    double tol) {
  FEDCLUST_REQUIRE(!points.empty(), "kmeans needs at least one point");
  FEDCLUST_REQUIRE(k >= 1 && k <= points.size(),
                   "k must be in [1, num_points]");
  const std::size_t n = points.size();
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    FEDCLUST_REQUIRE(p.size() == dim, "points have inconsistent dimensions");
  }

  KMeansResult result;
  result.centers.reserve(k);

  // k-means++ seeding: first center uniform, then proportional to the
  // squared distance to the nearest chosen center.
  const std::size_t first = rng.uniform_int(n);
  result.centers.emplace_back(points[first].begin(), points[first].end());
  std::vector<double> best_sq(n, std::numeric_limits<double>::infinity());
  while (result.centers.size() < k) {
    for (std::size_t i = 0; i < n; ++i) {
      best_sq[i] =
          std::min(best_sq[i], sq_distance(points[i], result.centers.back()));
    }
    double total = 0.0;
    for (double d : best_sq) total += d;
    std::size_t chosen = 0;
    if (total <= 0.0) {
      chosen = rng.uniform_int(n);  // all points coincide with centers
    } else {
      double r = rng.uniform() * total;
      for (; chosen + 1 < n; ++chosen) {
        if (r < best_sq[chosen]) break;
        r -= best_sq[chosen];
      }
    }
    result.centers.push_back(
        std::vector<double>(points[chosen].begin(), points[chosen].end()));
  }

  result.labels.assign(n, 0);
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_distance(points[i], result.centers[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (result.labels[i] != best_c) {
        result.labels[i] = best_c;
        changed = true;
      }
    }

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[result.labels[i]];
      for (std::size_t d = 0; d < dim; ++d) {
        sums[result.labels[i]][d] += points[i][d];
      }
    }
    double max_shift = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the point farthest from its
        // current centroid.
        double worst = -1.0;
        std::size_t far = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              sq_distance(points[i], result.centers[result.labels[i]]);
          if (d > worst) {
            worst = d;
            far = i;
          }
        }
        result.centers[c].assign(points[far].begin(), points[far].end());
        result.labels[far] = c;
        changed = true;
        continue;
      }
      double shift = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double next = sums[c][d] / static_cast<double>(counts[c]);
        const double delta = next - result.centers[c][d];
        shift += delta * delta;
        result.centers[c][d] = next;
      }
      max_shift = std::max(max_shift, shift);
    }

    if (!changed && max_shift < tol) {
      result.converged = true;
      break;
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += sq_distance(points[i], result.centers[result.labels[i]]);
  }
  return result;
}

}  // namespace fedclust::cluster
