// Agglomerative hierarchical clustering (HC).
//
// This is the server-side clustering step of FedClust (§III of the
// paper): given the proximity matrix of client final-layer weights, HC
// groups clients bottom-up. The threshold cut — rather than a fixed k —
// is what lets FedClust avoid pre-defining the number of clusters; the
// largest-gap heuristic picks that threshold from the dendrogram.
//
// Implementation: Lance–Williams updates over a dense distance matrix,
// O(n^3) worst case — n is the number of clients (tens to hundreds), so
// simplicity wins over a priority-queue scheme.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace fedclust::cluster {

enum class Linkage { kSingle, kComplete, kAverage, kWard };

std::string to_string(Linkage linkage);
Linkage linkage_from_string(const std::string& name);

/// One agglomeration step: clusters `a` and `b` (ids; leaves are
/// 0..n-1, the i-th merge creates id n+i) joined at `distance`.
struct Merge {
  std::size_t a = 0;
  std::size_t b = 0;
  double distance = 0.0;
  std::size_t size = 0;  ///< members in the newly formed cluster
};

/// Full merge history of an HC run over n leaves (n-1 merges).
struct Dendrogram {
  std::size_t num_leaves = 0;
  std::vector<Merge> merges;

  /// Flat clustering with exactly k clusters (1 <= k <= n). Labels are
  /// consecutive integers ordered by first leaf occurrence.
  std::vector<std::size_t> cut_k(std::size_t k) const;

  /// Flat clustering applying every merge with distance <= threshold.
  std::vector<std::size_t> cut_threshold(double threshold) const;

  /// Number of clusters a given threshold produces.
  std::size_t clusters_at(double threshold) const;
};

/// Runs agglomerative clustering on a symmetric distance matrix.
/// Ward linkage expects Euclidean distances.
Dendrogram agglomerative_cluster(const Matrix& distances, Linkage linkage);

/// Largest-gap threshold heuristic: place the cut in the middle of the
/// biggest jump between consecutive merge distances. Falls back to
/// "one cluster" (a threshold above the last merge) when the largest
/// jump is smaller than `min_gap_ratio` times the mean merge step —
/// i.e. when the dendrogram shows no natural cluster structure.
double suggest_threshold(const Dendrogram& dendrogram,
                         double min_gap_ratio = 2.0);

/// Number of distinct labels in a flat clustering.
std::size_t num_clusters(const std::vector<std::size_t>& labels);

/// Per-cluster member lists from a flat clustering.
std::vector<std::vector<std::size_t>> members_by_cluster(
    const std::vector<std::size_t>& labels);

}  // namespace fedclust::cluster
