// Pairwise distance / proximity matrix builders.
//
// FedClust's server computes the proximity matrix between clients from
// their uploaded final-layer weight vectors (Euclidean); CFL uses the
// cosine distance between client update vectors. Both produce a
// symmetric non-negative Matrix ready for hierarchical clustering.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace fedclust::cluster {

/// Pairwise Euclidean distances between row vectors.
/// `vectors[i]` must all have the same length.
Matrix pairwise_euclidean(const std::vector<std::vector<float>>& vectors);

/// Pairwise cosine distance (1 - cosine similarity), clamped to [0, 2].
Matrix pairwise_cosine_distance(const std::vector<std::vector<float>>& vectors);

/// Pairwise cosine similarity in [-1, 1] (CFL's bipartition criterion).
Matrix pairwise_cosine_similarity(
    const std::vector<std::vector<float>>& vectors);

}  // namespace fedclust::cluster
