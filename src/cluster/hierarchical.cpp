#include "cluster/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace fedclust::cluster {

std::string to_string(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kWard:
      return "ward";
  }
  FEDCLUST_CHECK(false, "unknown Linkage");
}

Linkage linkage_from_string(const std::string& name) {
  if (name == "single") return Linkage::kSingle;
  if (name == "complete") return Linkage::kComplete;
  if (name == "average") return Linkage::kAverage;
  if (name == "ward") return Linkage::kWard;
  FEDCLUST_CHECK(false, "unknown linkage '" << name
                                            << "' (single|complete|average|ward)");
}

namespace {

/// Applies merges while `take(merge_index)` holds, then relabels
/// components to consecutive ids ordered by first leaf occurrence.
template <typename TakePredicate>
std::vector<std::size_t> cut_impl(const Dendrogram& d, TakePredicate take) {
  const std::size_t n = d.num_leaves;
  // Union-find over leaf + internal ids.
  std::vector<std::size_t> parent(n + d.merges.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t m = 0; m < d.merges.size(); ++m) {
    if (!take(m)) continue;
    const std::size_t id = n + m;
    parent[find(d.merges[m].a)] = id;
    parent[find(d.merges[m].b)] = id;
  }
  std::vector<std::size_t> labels(n);
  std::vector<std::size_t> relabel(n + d.merges.size(),
                                   std::numeric_limits<std::size_t>::max());
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    if (relabel[root] == std::numeric_limits<std::size_t>::max()) {
      relabel[root] = next++;
    }
    labels[i] = relabel[root];
  }
  return labels;
}

}  // namespace

std::vector<std::size_t> Dendrogram::cut_k(std::size_t k) const {
  FEDCLUST_REQUIRE(k >= 1 && k <= num_leaves,
                   "cut_k: k=" << k << " outside [1, " << num_leaves << "]");
  const std::size_t apply = num_leaves - k;  // first `apply` merges
  return cut_impl(*this, [&](std::size_t m) { return m < apply; });
}

std::vector<std::size_t> Dendrogram::cut_threshold(double threshold) const {
  return cut_impl(
      *this, [&](std::size_t m) { return merges[m].distance <= threshold; });
}

std::size_t Dendrogram::clusters_at(double threshold) const {
  std::size_t applied = 0;
  for (const Merge& m : merges) {
    if (m.distance <= threshold) ++applied;
  }
  return num_leaves - applied;
}

Dendrogram agglomerative_cluster(const Matrix& distances, Linkage linkage) {
  const std::size_t n = distances.rows();
  FEDCLUST_REQUIRE(n > 0 && distances.cols() == n,
                   "distance matrix must be square and non-empty");
  // One non-finite distance corrupts every Lance–Williams update that
  // touches its row; reject at the boundary with attribution instead.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      FEDCLUST_REQUIRE(std::isfinite(distances(i, j)),
                       "non-finite distance at (" << i << ", " << j << ")");
    }
  }
#ifndef NDEBUG
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      FEDCLUST_DCHECK(std::abs(distances(i, j) - distances(j, i)) < 1e-9,
                      "distance matrix must be symmetric");
      FEDCLUST_DCHECK(distances(i, j) >= 0.0,
                      "distances must be non-negative");
    }
  }
#endif

  Dendrogram out;
  out.num_leaves = n;
  if (n == 1) return out;

  // Working copy; `active[i]` marks live clusters, `id[i]` their current
  // dendrogram id, `sz[i]` member counts.
  Matrix d = distances;
  std::vector<bool> active(n, true);
  std::vector<std::size_t> id(n);
  std::iota(id.begin(), id.end(), 0);
  std::vector<double> sz(n, 1.0);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair (i < j).
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d(i, j) < best) {
          best = d(i, j);
          bi = i;
          bj = j;
        }
      }
    }

    Merge merge;
    merge.a = id[bi];
    merge.b = id[bj];
    merge.distance = best;
    merge.size = static_cast<std::size_t>(sz[bi] + sz[bj]);
    out.merges.push_back(merge);

    // Lance–Williams update of distances from the merged cluster (stored
    // in slot bi) to every other active cluster k.
    const double ni = sz[bi], nj = sz[bj];
    for (std::size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      const double dik = d(bi, k);
      const double djk = d(bj, k);
      double dnew = 0.0;
      switch (linkage) {
        case Linkage::kSingle:
          dnew = std::min(dik, djk);
          break;
        case Linkage::kComplete:
          dnew = std::max(dik, djk);
          break;
        case Linkage::kAverage:
          dnew = (ni * dik + nj * djk) / (ni + nj);
          break;
        case Linkage::kWard: {
          const double nk = sz[k];
          const double total = ni + nj + nk;
          const double sq = ((ni + nk) * dik * dik + (nj + nk) * djk * djk -
                             nk * best * best) /
                            total;
          dnew = std::sqrt(std::max(sq, 0.0));
          break;
        }
      }
      d(bi, k) = dnew;
      d(k, bi) = dnew;
    }

    active[bj] = false;
    sz[bi] = ni + nj;
    id[bi] = n + step;
  }
  return out;
}

double suggest_threshold(const Dendrogram& dendrogram, double min_gap_ratio) {
  const auto& merges = dendrogram.merges;
  if (merges.empty()) return 0.0;
  if (merges.size() == 1) {
    // Two leaves: no interior gap to inspect; keep them together.
    return merges.back().distance + 1.0;
  }

  // Largest jump between consecutive merge distances (they are
  // non-decreasing for the monotone linkages used here).
  double best_gap = -1.0;
  std::size_t best_at = 0;
  double step_sum = 0.0;
  for (std::size_t m = 1; m < merges.size(); ++m) {
    const double gap = merges[m].distance - merges[m - 1].distance;
    step_sum += gap;
    if (gap > best_gap) {
      best_gap = gap;
      best_at = m;
    }
  }
  const double mean_step =
      step_sum / static_cast<double>(merges.size() - 1);

  // No pronounced gap -> flat dendrogram -> a single cluster.
  if (mean_step <= 0.0 || best_gap < min_gap_ratio * mean_step) {
    return merges.back().distance + 1.0;
  }
  return 0.5 * (merges[best_at - 1].distance + merges[best_at].distance);
}

std::size_t num_clusters(const std::vector<std::size_t>& labels) {
  if (labels.empty()) return 0;
  return *std::max_element(labels.begin(), labels.end()) + 1;
}

std::vector<std::vector<std::size_t>> members_by_cluster(
    const std::vector<std::size_t>& labels) {
  std::vector<std::vector<std::size_t>> out(num_clusters(labels));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out[labels[i]].push_back(i);
  }
  return out;
}

}  // namespace fedclust::cluster
