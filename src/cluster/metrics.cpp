#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/hierarchical.hpp"

namespace fedclust::cluster {
namespace {

/// Contingency table between two labelings plus marginals.
struct Contingency {
  std::vector<std::vector<std::size_t>> table;  // a × b
  std::vector<std::size_t> row_sums;
  std::vector<std::size_t> col_sums;
  std::size_t n = 0;
};

Contingency contingency(const std::vector<std::size_t>& a,
                        const std::vector<std::size_t>& b) {
  FEDCLUST_REQUIRE(a.size() == b.size() && !a.empty(),
                   "labelings must be equal-sized and non-empty");
  const std::size_t ka = num_clusters(a);
  const std::size_t kb = num_clusters(b);
  Contingency c;
  c.table.assign(ka, std::vector<std::size_t>(kb, 0));
  c.row_sums.assign(ka, 0);
  c.col_sums.assign(kb, 0);
  c.n = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++c.table[a[i]][b[i]];
    ++c.row_sums[a[i]];
    ++c.col_sums[b[i]];
  }
  return c;
}

double choose2(std::size_t x) {
  return 0.5 * static_cast<double>(x) * static_cast<double>(x ? x - 1 : 0);
}

}  // namespace

double adjusted_rand_index(const std::vector<std::size_t>& labels_a,
                           const std::vector<std::size_t>& labels_b) {
  const Contingency c = contingency(labels_a, labels_b);
  double index = 0.0;
  for (const auto& row : c.table) {
    for (std::size_t v : row) index += choose2(v);
  }
  double sum_a = 0.0;
  for (std::size_t v : c.row_sums) sum_a += choose2(v);
  double sum_b = 0.0;
  for (std::size_t v : c.col_sums) sum_b += choose2(v);
  const double expected = sum_a * sum_b / choose2(c.n);
  const double max_index = 0.5 * (sum_a + sum_b);
  if (max_index == expected) return 1.0;  // both partitions trivial
  return (index - expected) / (max_index - expected);
}

double normalized_mutual_information(
    const std::vector<std::size_t>& labels_a,
    const std::vector<std::size_t>& labels_b) {
  const Contingency c = contingency(labels_a, labels_b);
  const double n = static_cast<double>(c.n);

  double mi = 0.0;
  for (std::size_t i = 0; i < c.table.size(); ++i) {
    for (std::size_t j = 0; j < c.table[i].size(); ++j) {
      if (c.table[i][j] == 0) continue;
      const double pij = static_cast<double>(c.table[i][j]) / n;
      const double pi = static_cast<double>(c.row_sums[i]) / n;
      const double pj = static_cast<double>(c.col_sums[j]) / n;
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  auto entropy = [&](const std::vector<std::size_t>& sums) {
    double h = 0.0;
    for (std::size_t s : sums) {
      if (s == 0) continue;
      const double p = static_cast<double>(s) / n;
      h -= p * std::log(p);
    }
    return h;
  };
  const double ha = entropy(c.row_sums);
  const double hb = entropy(c.col_sums);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // both partitions trivial
  const double denom = 0.5 * (ha + hb);
  return denom > 0.0 ? std::max(0.0, mi / denom) : 0.0;
}

double purity(const std::vector<std::size_t>& predicted,
              const std::vector<std::size_t>& truth) {
  const Contingency c = contingency(predicted, truth);
  std::size_t correct = 0;
  for (const auto& row : c.table) {
    correct += *std::max_element(row.begin(), row.end());
  }
  return static_cast<double>(correct) / static_cast<double>(c.n);
}

double silhouette(const Matrix& distances,
                  const std::vector<std::size_t>& labels) {
  const std::size_t n = labels.size();
  FEDCLUST_REQUIRE(distances.rows() == n && distances.cols() == n,
                   "distance matrix does not match labels");
  const std::size_t k = num_clusters(labels);
  if (k <= 1 || k >= n) return 0.0;

  const auto members = members_by_cluster(labels);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t own = labels[i];
    if (members[own].size() <= 1) continue;  // singleton contributes 0

    double a = 0.0;
    for (std::size_t j : members[own]) {
      if (j != i) a += distances(i, j);
    }
    a /= static_cast<double>(members[own].size() - 1);

    double b = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == own || members[c].empty()) continue;
      double mean = 0.0;
      for (std::size_t j : members[c]) mean += distances(i, j);
      mean /= static_cast<double>(members[c].size());
      b = std::min(b, mean);
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

double block_contrast(const Matrix& distances,
                      const std::vector<std::size_t>& groups) {
  const std::size_t n = groups.size();
  FEDCLUST_REQUIRE(distances.rows() == n && distances.cols() == n,
                   "distance matrix does not match groups");
  double within = 0.0, between = 0.0;
  std::size_t nw = 0, nb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (groups[i] == groups[j]) {
        within += distances(i, j);
        ++nw;
      } else {
        between += distances(i, j);
        ++nb;
      }
    }
  }
  FEDCLUST_REQUIRE(nw > 0 && nb > 0,
                   "block_contrast needs both within- and between-group pairs");
  within /= static_cast<double>(nw);
  between /= static_cast<double>(nb);
  if (within == 0.0) return std::numeric_limits<double>::infinity();
  return between / within;
}

}  // namespace fedclust::cluster
