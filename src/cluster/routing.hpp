// Cluster-proximity routing — the FedClust newcomer rule as a reusable
// primitive.
//
// The paper assigns a newcomer to the cluster whose members' stored
// partial-weight uploads are nearest ON AVERAGE (Euclidean, strict
// argmin, first cluster wins ties). The serving layer routes every
// incoming request by exactly the same rule, so the rule lives here
// once: core::FedClust::assign_newcomer and serve::Router both call
// these functions, which makes training-time admission and serving-time
// routing bit-identical by construction.
//
// Distances use the same Gram-trick arithmetic as pairwise_euclidean
// (‖q−m‖² = ‖q‖² + ‖m‖² − 2·q·m with kernel-table sqnorm/dot), so the
// per-anchor sqnorms can be computed once at freeze time and amortized
// across every routed request.
#pragma once

#include <span>
#include <vector>

namespace fedclust::cluster {

/// Kernel-table squared norms of each anchor vector, for caching at
/// snapshot-freeze time. Empty anchors (deferred clients with no stored
/// upload) get 0 — they are skipped by the distance pass anyway.
std::vector<double> anchor_sqnorms(
    const std::vector<std::vector<float>>& anchors);

/// Mean Euclidean distance from `query` to each cluster's stored anchor
/// vectors: mean_c = (Σ_{i: labels[i]=c} ‖query − anchors[i]‖) / |c|.
/// Empty anchors are skipped; a cluster with no usable anchors gets
/// +infinity. `cached_sqnorms` (from anchor_sqnorms) skips the per-anchor
/// norm pass; pass nullptr to compute them on the fly — both paths
/// produce identical bits.
std::vector<double> mean_cluster_distances(
    std::span<const float> query,
    const std::vector<std::vector<float>>& anchors,
    const std::vector<std::size_t>& labels, std::size_t num_clusters,
    const std::vector<double>* cached_sqnorms = nullptr);

/// The newcomer-rule argmin over mean_cluster_distances output: strictly
/// smaller wins, the first (lowest-id) cluster is kept on ties, and
/// +infinity entries (anchor-less clusters) are never selected. Returns
/// 0 when every cluster is anchor-less.
std::size_t nearest_cluster(const std::vector<double>& mean_distances);

}  // namespace fedclust::cluster
