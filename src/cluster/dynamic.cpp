#include "cluster/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/distance.hpp"
#include "cluster/routing.hpp"
#include "utils/error.hpp"

namespace fedclust::cluster {

std::vector<double> soft_memberships(const std::vector<double>& distances,
                                     double sigma) {
  FEDCLUST_REQUIRE(sigma > 0.0, "gaussian sigma must be positive");
  std::vector<double> w(distances.size(), 0.0);
  const double denom = 2.0 * sigma * sigma;
  for (std::size_t c = 0; c < distances.size(); ++c) {
    if (std::isfinite(distances[c])) {
      w[c] = std::exp(-(distances[c] * distances[c]) / denom);
    }
  }
  return w;
}

ReclusterResult recluster(const std::vector<std::vector<float>>& anchors,
                          const std::vector<std::size_t>& labels,
                          const std::vector<std::size_t>& flagged,
                          const std::vector<std::uint8_t>& active,
                          const ReclusterConfig& config) {
  const std::size_t n = labels.size();
  FEDCLUST_REQUIRE(anchors.size() == n && active.size() == n,
                   "recluster: anchors/labels/active size mismatch");
  FEDCLUST_REQUIRE(config.reassign_margin > 0.0,
                   "reassign_margin must be positive");
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  std::vector<std::uint8_t> is_flagged(k, 0);
  for (std::size_t c : flagged) {
    FEDCLUST_REQUIRE(c < k, "flagged cluster " << c << " out of range");
    is_flagged[c] = 1;
  }

  ReclusterResult out;
  std::vector<std::size_t> work = labels;

  // Stage 1 — Gaussian soft-membership reassignment. Every decision is
  // computed against the ORIGINAL labels and applied afterwards, so the
  // outcome is independent of member processing order.
  std::vector<std::vector<float>> pool = anchors;
  std::vector<std::pair<std::size_t, std::size_t>> moves;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i] || anchors[i].empty() || !is_flagged[labels[i]]) continue;
    // Self-exclusion: the member's own anchor must not vote for its home
    // cluster (mean_cluster_distances skips empty anchors).
    std::vector<float> self = std::move(pool[i]);
    pool[i].clear();
    const std::vector<double> d =
        mean_cluster_distances(self, pool, labels, k);
    pool[i] = std::move(self);
    double sigma = config.gaussian_sigma;
    if (sigma <= 0.0) {  // per-member width: mean finite distance
      double sum = 0.0;
      std::size_t cnt = 0;
      for (double x : d) {
        if (std::isfinite(x)) {
          sum += x;
          ++cnt;
        }
      }
      if (cnt == 0 || sum <= 0.0) continue;
      sigma = sum / static_cast<double>(cnt);
    }
    const std::vector<double> w = soft_memberships(d, sigma);
    const std::size_t home = labels[i];
    std::size_t best = home;
    for (std::size_t c = 0; c < k; ++c) {
      if (c == home) continue;
      if (best == home || w[c] > w[best]) best = c;  // first wins ties
    }
    if (best != home && w[best] > config.reassign_margin * w[home]) {
      moves.emplace_back(i, best);
    }
  }
  for (const auto& [i, to] : moves) work[i] = to;
  out.moved = moves.size();

  // Stage 2 — dendrogram split of each flagged cluster's survivors.
  std::size_t next = k;
  std::vector<std::size_t> split_parent;  // ext id (>= k) -> flagged parent
  if (config.threshold > 0.0) {
    for (std::size_t c : flagged) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (work[i] == c && active[i] && !anchors[i].empty()) {
          members.push_back(i);
        }
      }
      if (members.size() < std::max<std::size_t>(2, config.min_split_size)) {
        continue;
      }
      std::vector<std::vector<float>> member_anchors;
      member_anchors.reserve(members.size());
      for (std::size_t i : members) member_anchors.push_back(anchors[i]);
      const Dendrogram dendro = agglomerative_cluster(
          pairwise_euclidean(member_anchors), config.linkage);
      const std::vector<std::size_t> sub =
          dendro.cut_threshold(config.threshold);
      const std::size_t nsub = num_clusters(sub);
      if (nsub <= 1) continue;
      // Sub-cluster 0 keeps the parent id; the rest become new clusters
      // (ids appended past k) inheriting the parent's model.
      for (std::size_t m = 0; m < members.size(); ++m) {
        if (sub[m] > 0) work[members[m]] = next + sub[m] - 1;
      }
      for (std::size_t s = 1; s < nsub; ++s) split_parent.push_back(c);
      out.splits += nsub - 1;
      next += nsub - 1;
    }
  }

  // Stage 3 — drain clusters with no active members and renumber the
  // survivors consecutively (ascending old id = deterministic).
  std::vector<std::uint8_t> has_active(next, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (active[i]) has_active[work[i]] = 1;
  }
  if (std::find(has_active.begin(), has_active.end(), 1) ==
      has_active.end()) {
    has_active[0] = 1;  // degenerate fleet: keep one cluster alive
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (!has_active[c]) ++out.drained;
  }
  constexpr std::size_t kDropped = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> remap(next, kDropped);
  for (std::size_t c = 0; c < next; ++c) {
    if (has_active[c]) {
      remap[c] = out.parent.size();
      out.parent.push_back(c < k ? c : split_parent[c - k]);
    }
  }
  out.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Members of drained clusters are necessarily inactive; park them on
    // cluster 0 so label invariants (label < k) hold everywhere.
    out.labels[i] = remap[work[i]] == kDropped ? 0 : remap[work[i]];
  }
  return out;
}

}  // namespace fedclust::cluster
