#include "cluster/distance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.hpp"

namespace fedclust::cluster {
namespace {

void check_rectangular(const std::vector<std::vector<float>>& vectors) {
  FEDCLUST_REQUIRE(!vectors.empty(), "need at least one vector");
  const std::size_t dim = vectors.front().size();
  FEDCLUST_REQUIRE(dim > 0, "vectors must be non-empty");
  for (const auto& v : vectors) {
    FEDCLUST_REQUIRE(v.size() == dim, "vectors have inconsistent lengths");
  }
}

void check_proximity_invariants(const Matrix& d) {
  // Symmetric by construction (each pair is computed once and mirrored),
  // so any asymmetry or nonzero diagonal means memory corruption or a
  // future edit broke the contract hierarchical clustering relies on.
  // Distances must also be finite: one NaN/Inf input row (a poisoned
  // upload that slipped past screening) would silently derail every
  // Lance–Williams merge, so reject it here at the boundary.
  FEDCLUST_REQUIRE(is_symmetric(d), "proximity matrix must be symmetric");
  for (std::size_t i = 0; i < d.rows(); ++i) {
    FEDCLUST_REQUIRE(d(i, i) == 0.0, "proximity diagonal must be zero");
    for (std::size_t j = 0; j < d.cols(); ++j) {
      FEDCLUST_REQUIRE(std::isfinite(d(i, j)),
                       "non-finite proximity entry at (" << i << ", " << j
                                                         << ")");
    }
  }
}

}  // namespace

Matrix pairwise_euclidean(const std::vector<std::vector<float>>& vectors) {
  check_rectangular(vectors);
  const std::size_t n = vectors.size();
  const std::size_t dim = vectors.front().size();
  const ops::KernelTable& kt = ops::kernels();

  // One pass per vector for its squared norm, then one dot product per
  // pair: ‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b. Cuts the per-pair work from a
  // subtract-square-accumulate loop to a single fused dot, and the norms
  // from O(n²·dim) to O(n·dim). sqnorm is bitwise dot(x, x), so duplicate
  // rows cancel to exactly zero; tiny negative residues from rounding
  // are clamped before the sqrt.
  // A NaN squared norm would be silently clamped to 0 by the max()
  // below (NaN comparisons are false), so a poisoned row must be
  // rejected here, not trusted to surface downstream.
  std::vector<double> sq(n);
  for (std::size_t i = 0; i < n; ++i) {
    sq[i] = kt.sqnorm(vectors[i].data(), dim);
    FEDCLUST_REQUIRE(std::isfinite(sq[i]),
                     "non-finite values in vector " << i
                                                    << " (poisoned upload?)");
  }

  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dp = kt.dot(vectors[i].data(), vectors[j].data(), dim);
      const double s = std::max(0.0, sq[i] + sq[j] - 2.0 * dp);
      const double dist = std::sqrt(s);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  check_proximity_invariants(d);
  return d;
}

Matrix pairwise_cosine_similarity(
    const std::vector<std::vector<float>>& vectors) {
  check_rectangular(vectors);
  const std::size_t n = vectors.size();
  const std::size_t dim = vectors.front().size();
  const ops::KernelTable& kt = ops::kernels();
  std::vector<double> norms(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    norms[i] = std::sqrt(kt.sqnorm(vectors[i].data(), dim));
    FEDCLUST_REQUIRE(std::isfinite(norms[i]),
                     "non-finite values in vector " << i
                                                    << " (poisoned upload?)");
  }
  Matrix sim(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sim(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dp = kt.dot(vectors[i].data(), vectors[j].data(), dim);
      const double denom = norms[i] * norms[j];
      const double s = denom > 0.0 ? dp / denom : 0.0;
      sim(i, j) = s;
      sim(j, i) = s;
    }
  }
  return sim;
}

Matrix pairwise_cosine_distance(
    const std::vector<std::vector<float>>& vectors) {
  Matrix d = pairwise_cosine_similarity(vectors);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    for (std::size_t j = 0; j < d.cols(); ++j) {
      d(i, j) = std::clamp(1.0 - d(i, j), 0.0, 2.0);
    }
    d(i, i) = 0.0;
  }
  check_proximity_invariants(d);
  return d;
}

}  // namespace fedclust::cluster
