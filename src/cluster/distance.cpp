#include "cluster/distance.hpp"

#include <algorithm>
#include <cmath>

namespace fedclust::cluster {
namespace {

void check_rectangular(const std::vector<std::vector<float>>& vectors) {
  FEDCLUST_REQUIRE(!vectors.empty(), "need at least one vector");
  const std::size_t dim = vectors.front().size();
  FEDCLUST_REQUIRE(dim > 0, "vectors must be non-empty");
  for (const auto& v : vectors) {
    FEDCLUST_REQUIRE(v.size() == dim, "vectors have inconsistent lengths");
  }
}

}  // namespace

Matrix pairwise_euclidean(const std::vector<std::vector<float>>& vectors) {
  check_rectangular(vectors);
  const std::size_t n = vectors.size();
  const std::size_t dim = vectors.front().size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      const float* a = vectors[i].data();
      const float* b = vectors[j].data();
      for (std::size_t k = 0; k < dim; ++k) {
        const double diff = static_cast<double>(a[k]) - b[k];
        s += diff * diff;
      }
      const double dist = std::sqrt(s);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

Matrix pairwise_cosine_similarity(
    const std::vector<std::vector<float>>& vectors) {
  check_rectangular(vectors);
  const std::size_t n = vectors.size();
  const std::size_t dim = vectors.front().size();
  std::vector<double> norms(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (float v : vectors[i]) s += static_cast<double>(v) * v;
    norms[i] = std::sqrt(s);
  }
  Matrix sim(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sim(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      double dp = 0.0;
      const float* a = vectors[i].data();
      const float* b = vectors[j].data();
      for (std::size_t k = 0; k < dim; ++k) {
        dp += static_cast<double>(a[k]) * b[k];
      }
      const double denom = norms[i] * norms[j];
      const double s = denom > 0.0 ? dp / denom : 0.0;
      sim(i, j) = s;
      sim(j, i) = s;
    }
  }
  return sim;
}

Matrix pairwise_cosine_distance(
    const std::vector<std::vector<float>>& vectors) {
  Matrix d = pairwise_cosine_similarity(vectors);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    for (std::size_t j = 0; j < d.cols(); ++j) {
      d(i, j) = std::clamp(1.0 - d(i, j), 0.0, 2.0);
    }
    d(i, i) = 0.0;
  }
  return d;
}

}  // namespace fedclust::cluster
