#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "tensor/kernels.hpp"
#include "utils/rng.hpp"

namespace fedclust {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    oss << (i ? ", " : "") << shape[i];
  }
  oss << ']';
  return oss.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {
  FEDCLUST_REQUIRE(shape_.size() <= 4,
                   "tensors up to rank 4 supported, got rank " << shape_.size());
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {
  FEDCLUST_REQUIRE(shape_.size() <= 4,
                   "tensors up to rank 4 supported, got rank " << shape_.size());
}

// Copies into aligned storage: the incoming vector's buffer has no
// alignment guarantee, and the sole caller (dataset loading) pays this
// copy once at startup.
Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(data.begin(), data.end()) {
  FEDCLUST_REQUIRE(data_.size() == shape_numel(shape_),
                   "data size " << data_.size() << " does not match shape "
                                << shape_to_string(shape_));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

std::size_t Tensor::dim(std::size_t d) const {
  FEDCLUST_REQUIRE(d < shape_.size(),
                   "dim " << d << " out of range for rank " << shape_.size());
  return shape_[d];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::reshape(Shape new_shape) {
  FEDCLUST_REQUIRE(shape_numel(new_shape) == data_.size(),
                   "reshape " << shape_to_string(shape_) << " -> "
                              << shape_to_string(new_shape)
                              << " changes element count");
  shape_ = std::move(new_shape);
}

void Tensor::resize(Shape new_shape) {
  FEDCLUST_REQUIRE(new_shape.size() <= 4,
                   "tensors up to rank 4 supported, got rank "
                       << new_shape.size());
  data_.resize(shape_numel(new_shape));
  shape_ = std::move(new_shape);
}

float& Tensor::at(std::size_t i, std::size_t j) {
  FEDCLUST_DCHECK(rank() == 2, "at(i,j) needs a rank-2 tensor");
  FEDCLUST_DCHECK(i < shape_[0] && j < shape_[1], "2-D index out of range");
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  FEDCLUST_DCHECK(rank() == 4, "at(n,c,h,w) needs a rank-4 tensor");
  FEDCLUST_DCHECK(
      n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
      "4-D index out of range");
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& other) {
  FEDCLUST_REQUIRE(same_shape(other), "shape mismatch in +=");
  ops::kernels().add(other.data_.data(), data_.data(), data_.size());
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  FEDCLUST_REQUIRE(same_shape(other), "shape mismatch in -=");
  ops::kernels().sub(other.data_.data(), data_.data(), data_.size());
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  ops::kernels().scale(scalar, data_.data(), data_.size());
  return *this;
}

void Tensor::axpy(float alpha, const Tensor& other) {
  FEDCLUST_REQUIRE(same_shape(other), "shape mismatch in axpy");
  ops::kernels().axpy(alpha, other.data_.data(), data_.data(), data_.size());
}

void Tensor::hadamard(const Tensor& other) {
  FEDCLUST_REQUIRE(same_shape(other), "shape mismatch in hadamard");
  ops::kernels().mul(other.data_.data(), data_.data(), data_.size());
}

float Tensor::sum() const {
  // Kernel reductions accumulate in double: client updates can have
  // 10^5+ elements and float accumulation drifts enough to perturb
  // aggregated models.
  return static_cast<float>(ops::kernels().sum(data_.data(), data_.size()));
}

float Tensor::mean() const {
  FEDCLUST_REQUIRE(!data_.empty(), "mean of empty tensor");
  return static_cast<float>(sum() / static_cast<double>(data_.size()));
}

float Tensor::min() const {
  FEDCLUST_REQUIRE(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  FEDCLUST_REQUIRE(!data_.empty(), "max of empty tensor");
  return ops::kernels().max(data_.data(), data_.size());
}

std::size_t Tensor::argmax() const {
  FEDCLUST_REQUIRE(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::norm() const {
  return static_cast<float>(
      std::sqrt(ops::kernels().sqnorm(data_.data(), data_.size())));
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

Tensor operator*(float scalar, Tensor rhs) {
  rhs *= scalar;
  return rhs;
}

float dot(const Tensor& a, const Tensor& b) {
  FEDCLUST_REQUIRE(a.numel() == b.numel(), "dot needs equal numel");
  return static_cast<float>(ops::kernels().dot(a.data(), b.data(), a.numel()));
}

float euclidean_distance(const Tensor& a, const Tensor& b) {
  FEDCLUST_REQUIRE(a.numel() == b.numel(),
                   "euclidean_distance needs equal numel");
  return static_cast<float>(
      std::sqrt(ops::kernels().sqdist(a.data(), b.data(), a.numel())));
}

float cosine_similarity(const Tensor& a, const Tensor& b) {
  const float na = a.norm();
  const float nb = b.norm();
  if (na == 0.0f || nb == 0.0f) return 0.0f;
  return dot(a, b) / (na * nb);
}

}  // namespace fedclust
