// Portable fixed-width f32 SIMD abstraction for the kernel layer.
//
// This header adapts to the INCLUDING translation unit's target flags:
//  * x86 compiled with -mavx2 -mfma       -> 8-wide AVX2/FMA vectors
//  * aarch64 (NEON is baseline)           -> 4-wide NEON vectors
//  * anything else                        -> 4-wide scalar emulation
//
// The build compiles the kernel bodies twice: kernels_scalar.cpp with the
// project's baseline flags (hand-written scalar loops, no dependence on
// this header's vector type) and kernels_simd.cpp with the ISA flags
// above (generic bodies written against this vector type). A one-time
// runtime check (simd::runtime_supported) gates dispatch into the SIMD
// translation unit, so a binary built with AVX2 kernels still runs
// correctly on a host without AVX2 — it just stays on the scalar table.
//
// Reductions carry double-precision accumulators (f64x) because the
// repo's scalar reductions accumulate in double (tensor.cpp): client
// updates have 1e5+ elements and float accumulation drifts enough to
// perturb aggregated models. widen()/narrow() convert one f32 vector
// into lo/hi double vectors and back.
//
// Every operation here is a pure lane-wise function of its inputs: the
// accumulation ORDER of any kernel built on top is fixed by the kernel's
// loop structure alone, never by thread count — the property the
// determinism harness (src/check/determinism.hpp) asserts per build.
#pragma once

#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__)
#define FEDCLUST_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define FEDCLUST_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fedclust::simd {

#if defined(FEDCLUST_SIMD_AVX2)

inline constexpr std::size_t kWidth = 8;
inline constexpr bool kNative = true;

struct f32x {
  __m256 v;
};
struct f64x {
  __m256d v;
};

inline f32x load(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void store(float* p, f32x a) { _mm256_storeu_ps(p, a.v); }
inline f32x set1(float x) { return {_mm256_set1_ps(x)}; }
inline f32x zero() { return {_mm256_setzero_ps()}; }
inline f32x add(f32x a, f32x b) { return {_mm256_add_ps(a.v, b.v)}; }
inline f32x sub(f32x a, f32x b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline f32x mul(f32x a, f32x b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline f32x max(f32x a, f32x b) { return {_mm256_max_ps(a.v, b.v)}; }
/// a*b + c in a single rounding (FMA).
inline f32x fmadd(f32x a, f32x b, f32x c) {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
/// Lanes of v where x > 0, else 0 (NaN lanes of x select 0).
inline f32x zero_where_nonpos(f32x x, f32x v) {
  const __m256 mask = _mm256_cmp_ps(x.v, _mm256_setzero_ps(), _CMP_GT_OQ);
  return {_mm256_and_ps(mask, v.v)};
}

/// Horizontal sum in a fixed lane order (pairwise tree).
inline float hsum(f32x a) {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}
inline float hmax(f32x a) {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline f64x dzero() { return {_mm256_setzero_pd()}; }
inline f64x dset1(double x) { return {_mm256_set1_pd(x)}; }
inline f64x dadd(f64x a, f64x b) { return {_mm256_add_pd(a.v, b.v)}; }
inline f64x dsub(f64x a, f64x b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline f64x dmul(f64x a, f64x b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline f64x dfmadd(f64x a, f64x b, f64x c) {
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
}
/// Splits one f32 vector into low/high double vectors.
inline void widen(f32x a, f64x& lo, f64x& hi) {
  lo = {_mm256_cvtps_pd(_mm256_castps256_ps128(a.v))};
  hi = {_mm256_cvtps_pd(_mm256_extractf128_ps(a.v, 1))};
}
/// Rounds lo/hi double vectors back to one f32 vector.
inline f32x narrow(f64x lo, f64x hi) {
  return {_mm256_set_m128(_mm256_cvtpd_ps(hi.v), _mm256_cvtpd_ps(lo.v))};
}
inline double dhsum(f64x a) {
  const __m128d lo = _mm256_castpd256_pd128(a.v);
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Loads/stores the kWidth doubles backing one f32x block's (lo, hi)
/// accumulator pair — the exact memory image widen()/narrow() map onto,
/// so a kernel can park its per-element double accumulators in a caller
/// buffer between batches without perturbing a single bit.
inline void dload2(const double* p, f64x& lo, f64x& hi) {
  lo = {_mm256_loadu_pd(p)};
  hi = {_mm256_loadu_pd(p + 4)};
}
inline void dstore2(double* p, f64x lo, f64x hi) {
  _mm256_storeu_pd(p, lo.v);
  _mm256_storeu_pd(p + 4, hi.v);
}

inline f32x abs(f32x a) {
  return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
}
/// Round to nearest, ties to even — the same rule scalar nearbyint()
/// applies under the default FP environment, so scalar and SIMD
/// quantizers agree bit-for-bit.
inline f32x round_nearest(f32x a) {
  return {_mm256_round_ps(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
}
/// clamp(v, lo, hi) with NaN lanes of v deterministically mapping to lo
/// (maxps/minps return the second operand when the first is NaN; every
/// backend mirrors that operand order).
inline f32x clamp(f32x v, f32x lo, f32x hi) {
  return {_mm256_min_ps(_mm256_max_ps(v.v, lo.v), hi.v)};
}
/// Converts kWidth integer-valued floats in [−128, 127] to int8 bytes.
inline void store_i8(signed char* p, f32x a) {
  const __m256i i32 = _mm256_cvtps_epi32(a.v);
  const __m128i i16 = _mm_packs_epi32(_mm256_castsi256_si128(i32),
                                      _mm256_extracti128_si256(i32, 1));
  const __m128i i8 = _mm_packs_epi16(i16, i16);
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), i8);
}
/// Sign-extends kWidth int8 bytes into one f32 vector.
inline f32x load_i8(const signed char* p) {
  const __m128i i8 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return {_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(i8))};
}

inline const char* isa_name() { return "avx2+fma"; }

#elif defined(FEDCLUST_SIMD_NEON)

inline constexpr std::size_t kWidth = 4;
inline constexpr bool kNative = true;

struct f32x {
  float32x4_t v;
};
/// Double lanes come in pairs on NEON; f64x packs lo/hi float64x2_t so
/// one f64x accumulates a full f32x's worth of lanes.
struct f64x {
  float64x2_t lo, hi;
};

inline f32x load(const float* p) { return {vld1q_f32(p)}; }
inline void store(float* p, f32x a) { vst1q_f32(p, a.v); }
inline f32x set1(float x) { return {vdupq_n_f32(x)}; }
inline f32x zero() { return {vdupq_n_f32(0.0f)}; }
inline f32x add(f32x a, f32x b) { return {vaddq_f32(a.v, b.v)}; }
inline f32x sub(f32x a, f32x b) { return {vsubq_f32(a.v, b.v)}; }
inline f32x mul(f32x a, f32x b) { return {vmulq_f32(a.v, b.v)}; }
inline f32x max(f32x a, f32x b) { return {vmaxq_f32(a.v, b.v)}; }
inline f32x fmadd(f32x a, f32x b, f32x c) { return {vfmaq_f32(c.v, a.v, b.v)}; }
inline f32x zero_where_nonpos(f32x x, f32x v) {
  const uint32x4_t mask = vcgtq_f32(x.v, vdupq_n_f32(0.0f));
  return {vreinterpretq_f32_u32(
      vandq_u32(mask, vreinterpretq_u32_f32(v.v)))};
}
inline float hsum(f32x a) {
  const float32x2_t s = vadd_f32(vget_low_f32(a.v), vget_high_f32(a.v));
  return vget_lane_f32(vpadd_f32(s, s), 0);
}
inline float hmax(f32x a) {
  const float32x2_t s = vmax_f32(vget_low_f32(a.v), vget_high_f32(a.v));
  return vget_lane_f32(vpmax_f32(s, s), 0);
}

inline f64x dzero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
inline f64x dset1(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
inline f64x dadd(f64x a, f64x b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
inline f64x dsub(f64x a, f64x b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
inline f64x dmul(f64x a, f64x b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
inline f64x dfmadd(f64x a, f64x b, f64x c) {
  return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
}
inline void widen(f32x a, f64x& lo, f64x& hi) {
  lo = {vcvt_f64_f32(vget_low_f32(a.v)), vcvt_high_f64_f32(a.v)};
  // One f64x already holds all four lanes; hi mirrors lo zeroed so the
  // generic two-accumulator kernels stay width-agnostic.
  hi = {vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  (void)hi;
}
inline f32x narrow(f64x lo, f64x /*hi*/) {
  return {vcombine_f32(vcvt_f32_f64(lo.lo), vcvt_f32_f64(lo.hi))};
}
inline double dhsum(f64x a) {
  const float64x2_t s = vaddq_f64(a.lo, a.hi);
  return vgetq_lane_f64(s, 0) + vgetq_lane_f64(s, 1);
}

/// On NEON the lo vector already covers all kWidth lanes (see widen), so
/// only lo round-trips through memory; hi stays the dead zero accumulator
/// the width-agnostic kernel bodies expect.
inline void dload2(const double* p, f64x& lo, f64x& hi) {
  lo = {vld1q_f64(p), vld1q_f64(p + 2)};
  hi = dzero();
}
inline void dstore2(double* p, f64x lo, f64x /*hi*/) {
  vst1q_f64(p, lo.lo);
  vst1q_f64(p + 2, lo.hi);
}

inline f32x abs(f32x a) { return {vabsq_f32(a.v)}; }
/// Round to nearest, ties to even (FRINTN) — matches scalar nearbyint().
inline f32x round_nearest(f32x a) { return {vrndnq_f32(a.v)}; }
/// clamp(v, lo, hi); NaN lanes of v map to lo (maxnm/minnm prefer the
/// numeric operand, mirroring the AVX2/scalar operand-order contract).
inline f32x clamp(f32x v, f32x lo, f32x hi) {
  return {vminnmq_f32(vmaxnmq_f32(v.v, lo.v), hi.v)};
}
/// Converts kWidth integer-valued floats in [−128, 127] to int8 bytes.
inline void store_i8(signed char* p, f32x a) {
  const int32x4_t i32 = vcvtq_s32_f32(a.v);  // integral input: exact
  const int16x4_t i16 = vqmovn_s32(i32);
  const int8x8_t i8 = vqmovn_s16(vcombine_s16(i16, i16));
  signed char tmp[8];
  vst1_s8(tmp, i8);
  for (std::size_t i = 0; i < 4; ++i) p[i] = tmp[i];
}
/// Sign-extends kWidth int8 bytes into one f32 vector.
inline f32x load_i8(const signed char* p) {
  const signed char tmp[8] = {p[0], p[1], p[2], p[3], 0, 0, 0, 0};
  const int16x8_t i16 = vmovl_s8(vld1_s8(tmp));
  return {vcvtq_f32_s32(vmovl_s16(vget_low_s16(i16)))};
}

inline const char* isa_name() { return "neon"; }

#else  // scalar emulation

inline constexpr std::size_t kWidth = 4;
inline constexpr bool kNative = false;

struct f32x {
  float v[4];
};
struct f64x {
  double v[4];
};

inline f32x load(const float* p) { return {{p[0], p[1], p[2], p[3]}}; }
inline void store(float* p, f32x a) {
  for (std::size_t i = 0; i < 4; ++i) p[i] = a.v[i];
}
inline f32x set1(float x) { return {{x, x, x, x}}; }
inline f32x zero() { return {{0.0f, 0.0f, 0.0f, 0.0f}}; }
inline f32x add(f32x a, f32x b) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline f32x sub(f32x a, f32x b) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline f32x mul(f32x a, f32x b) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline f32x max(f32x a, f32x b) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline f32x fmadd(f32x a, f32x b, f32x c) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}
inline f32x zero_where_nonpos(f32x x, f32x v) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = x.v[i] > 0.0f ? v.v[i] : 0.0f;
  return r;
}
inline float hsum(f32x a) {
  return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]);
}
inline float hmax(f32x a) {
  const float m0 = a.v[0] > a.v[2] ? a.v[0] : a.v[2];
  const float m1 = a.v[1] > a.v[3] ? a.v[1] : a.v[3];
  return m0 > m1 ? m0 : m1;
}

inline f64x dzero() { return {{0.0, 0.0, 0.0, 0.0}}; }
inline f64x dset1(double x) { return {{x, x, x, x}}; }
inline f64x dadd(f64x a, f64x b) {
  f64x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}
inline f64x dsub(f64x a, f64x b) {
  f64x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] - b.v[i];
  return r;
}
inline f64x dmul(f64x a, f64x b) {
  f64x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
  return r;
}
inline f64x dfmadd(f64x a, f64x b, f64x c) {
  f64x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}
inline void widen(f32x a, f64x& lo, f64x& hi) {
  for (std::size_t i = 0; i < 4; ++i) lo.v[i] = static_cast<double>(a.v[i]);
  hi = dzero();
}
inline f32x narrow(f64x lo, f64x /*hi*/) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = static_cast<float>(lo.v[i]);
  return r;
}
inline double dhsum(f64x a) {
  return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]);
}

inline void dload2(const double* p, f64x& lo, f64x& hi) {
  for (std::size_t i = 0; i < 4; ++i) lo.v[i] = p[i];
  hi = dzero();
}
inline void dstore2(double* p, f64x lo, f64x /*hi*/) {
  for (std::size_t i = 0; i < 4; ++i) p[i] = lo.v[i];
}

inline f32x abs(f32x a) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = __builtin_fabsf(a.v[i]);
  return r;
}
/// Round to nearest, ties to even (default FP environment).
inline f32x round_nearest(f32x a) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = __builtin_nearbyintf(a.v[i]);
  return r;
}
/// clamp(v, lo, hi); NaN lanes map to lo — the ternary's comparison is
/// false for NaN, the same operand-order rule the native backends use.
inline f32x clamp(f32x v, f32x lo, f32x hi) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) {
    float t = v.v[i] > lo.v[i] ? v.v[i] : lo.v[i];
    r.v[i] = t < hi.v[i] ? t : hi.v[i];
  }
  return r;
}
/// Converts kWidth integer-valued floats in [−128, 127] to int8 bytes.
inline void store_i8(signed char* p, f32x a) {
  for (std::size_t i = 0; i < 4; ++i) {
    p[i] = static_cast<signed char>(static_cast<int>(a.v[i]));
  }
}
/// Sign-extends kWidth int8 bytes into one f32 vector.
inline f32x load_i8(const signed char* p) {
  f32x r;
  for (std::size_t i = 0; i < 4; ++i) r.v[i] = static_cast<float>(p[i]);
  return r;
}

inline const char* isa_name() { return "scalar"; }

#endif

/// One-time check that the host actually executes the ISA this TU was
/// compiled for. AVX2 kernels must not run on a pre-AVX2 host even if
/// they were compiled in.
inline bool runtime_supported() {
#if defined(FEDCLUST_SIMD_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return true;  // NEON is architecturally baseline; scalar always works
#endif
}

}  // namespace fedclust::simd
