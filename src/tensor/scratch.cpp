#include "tensor/scratch.hpp"

namespace fedclust {

Tensor& ScratchArena::acquire(std::size_t key, const Shape& shape) {
  if (key >= slots_.size()) slots_.resize(key + 1);
  Tensor& slot = slots_[key];
  if (slot.shape() == shape) return slot;
  const std::size_t before = slot.buffer_capacity();
  slot.resize(shape);
  if (slot.buffer_capacity() != before) ++allocations_;
  return slot;
}

Tensor& ScratchArena::slot(std::size_t key) {
  if (key >= slots_.size()) slots_.resize(key + 1);
  return slots_[key];
}

std::size_t ScratchArena::footprint() const {
  std::size_t total = 0;
  for (const Tensor& t : slots_) total += t.buffer_capacity();
  return total;
}

void ScratchArena::reset() {
  slots_.clear();
  allocations_ = 0;
}

}  // namespace fedclust
