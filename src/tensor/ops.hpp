// Math kernels over Tensor: GEMM, convolution, pooling, softmax.
//
// These are the hot loops of the whole simulation — every client trains a
// LeNet-5 through them each round. They are written as plain free
// functions over pre-allocated outputs so layers can reuse buffers across
// batches, and the direct vs im2col convolution variants are kept side by
// side for the micro-kernel benchmark (bench/micro_kernels).
//
// GEMM kernels are cache-blocked and register-tiled; every variant takes
// an optional ThreadPool and splits the output rows into contiguous
// per-worker blocks when one is provided. Each output element's
// accumulation order is independent of blocking and of the thread count,
// so results are bit-identical with and without a pool.
//
// Contracts:
//  * every kernel OVERWRITES its output(s); none accumulates into them.
//    Layers that need gradient accumulation compute into scratch and add.
//  * scratch tensors are resized in place (capacity is reused), so
//    passing slots of a ScratchArena keeps steady-state calls
//    allocation-free.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace fedclust {
class ThreadPool;
}

namespace fedclust::ops {

// -- GEMM -----------------------------------------------------------------

/// C = A(m×k) · B(k×n). Shapes are validated; C is overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c,
            ThreadPool* pool = nullptr);

/// C = Aᵀ(k×m) · B(k×n) without materializing Aᵀ.
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c,
               ThreadPool* pool = nullptr);

/// C = A(m×k) · Bᵀ(n×k) without materializing Bᵀ.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c,
               ThreadPool* pool = nullptr);

/// Reference single-threaded ikj GEMM (the pre-blocking implementation).
/// Kept as the equivalence oracle for tests and the naive side of the
/// blocked-vs-naive micro-benchmark.
void matmul_naive(const Tensor& a, const Tensor& b, Tensor& c);

// -- Convolution ------------------------------------------------------------

/// Geometry of a 2-D convolution (square kernel, symmetric zero padding).
struct Conv2dSpec {
  std::size_t in_channels = 0;
  std::size_t out_channels = 0;
  std::size_t kernel = 0;   ///< square kernel size
  std::size_t padding = 0;  ///< symmetric zero padding
  std::size_t stride = 1;

  /// Output spatial size for an input of `in` pixels along one axis.
  std::size_t out_size(std::size_t in) const {
    FEDCLUST_REQUIRE(in + 2 * padding >= kernel,
                     "conv kernel larger than padded input");
    return (in + 2 * padding - kernel) / stride + 1;
  }
};

/// Direct convolution: input (N, Cin, H, W), weight (Cout, Cin, K, K),
/// bias (Cout). Output (N, Cout, Hout, Wout) is overwritten.
void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, const Conv2dSpec& spec,
                    Tensor& output);

/// Gradient w.r.t. input. grad_input is overwritten (same shape as input).
void conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                           const Conv2dSpec& spec, Tensor& grad_input);

/// Gradients w.r.t. weight and bias. grad_weight and grad_bias are
/// OVERWRITTEN (zeroed inside the kernel, matching
/// conv2d_backward_input). Callers that accumulate across calls must add
/// from a scratch tensor.
void conv2d_backward_params(const Tensor& input, const Tensor& grad_output,
                            const Conv2dSpec& spec, Tensor& grad_weight,
                            Tensor& grad_bias);

// -- im2col/GEMM convolution -------------------------------------------------

/// im2col expansion: input (N, Cin, H, W) -> columns
/// (N * Hout * Wout, Cin * K * K). Used by the GEMM-based convolution
/// variants and benchmarked against the direct kernel.
void im2col(const Tensor& input, const Conv2dSpec& spec, Tensor& columns);

/// Inverse of im2col: scatter-adds column rows back into image layout.
/// grad_input must be preshaped (N, Cin, H, W); it is overwritten.
void col2im(const Tensor& columns, const Conv2dSpec& spec, Tensor& grad_input);

/// GEMM-based convolution producing the same result as conv2d_forward.
/// scratch_columns receives the im2col expansion (reusable by the
/// backward-params pass); scratch_pix holds the pixel-major GEMM result.
void conv2d_forward_im2col(const Tensor& input, const Tensor& weight,
                           const Tensor& bias, const Conv2dSpec& spec,
                           Tensor& output, Tensor& scratch_columns,
                           Tensor& scratch_pix, ThreadPool* pool = nullptr);

/// GEMM-based gradient w.r.t. input: grad_cols = grad_out · W (pixel-major
/// GEMM), then col2im. grad_input must be preshaped (N, Cin, H, W); it is
/// overwritten. Matches conv2d_backward_input.
void conv2d_backward_input_im2col(const Tensor& grad_output,
                                  const Tensor& weight, const Conv2dSpec& spec,
                                  Tensor& grad_input, Tensor& scratch_pix,
                                  Tensor& scratch_columns,
                                  ThreadPool* pool = nullptr);

/// GEMM-based gradients w.r.t. weight and bias: dW = grad_outᵀ · columns
/// via the TN kernel, where `columns` is the im2col expansion of the
/// forward input (cached by the layer). grad_weight / grad_bias are
/// OVERWRITTEN. Matches conv2d_backward_params.
void conv2d_backward_params_im2col(const Tensor& grad_output,
                                   const Tensor& columns,
                                   const Conv2dSpec& spec, Tensor& grad_weight,
                                   Tensor& grad_bias, Tensor& scratch_pix,
                                   ThreadPool* pool = nullptr);

// -- Pooling ---------------------------------------------------------------

/// Max pooling with square window == stride (non-overlapping).
/// `argmax` records the flat input index of each output's winner and is
/// consumed by max_pool_backward.
void max_pool_forward(const Tensor& input, std::size_t window, Tensor& output,
                      std::vector<std::size_t>& argmax);

/// Scatters grad_output back through the recorded argmax indices;
/// grad_input is overwritten.
void max_pool_backward(const Tensor& grad_output,
                       const std::vector<std::size_t>& argmax,
                       Tensor& grad_input);

/// Average pooling with square window == stride (non-overlapping).
void avg_pool_forward(const Tensor& input, std::size_t window, Tensor& output);

void avg_pool_backward(const Tensor& grad_output, std::size_t window,
                       Tensor& grad_input);

// -- Softmax / misc ----------------------------------------------------------

/// Row-wise softmax of a (rows × cols) tensor, numerically stabilized.
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Row-wise log-sum-exp of a (rows × cols) tensor, one value per row.
void logsumexp_rows(const Tensor& logits, std::vector<float>& out);

}  // namespace fedclust::ops
