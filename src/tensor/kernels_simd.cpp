// SIMD kernel table: generic bodies over tensor/simd.hpp, compiled in
// this dedicated TU with the ISA flags the build selected (e.g. -mavx2
// -mfma on x86_64; NEON is baseline on aarch64). Only kernels.hpp and
// simd.hpp are included so no inline function from a standard header
// gets compiled with the wider ISA and leaks into scalar TUs at link.
//
// Determinism: every output element is accumulated in an order fixed by
// (element index, problem size) alone. The GEMM cores keep one register
// accumulator per (row, column-vector) pair with a sequential k loop, so
// the i0/i1 thread split never changes any element's summation order;
// column grouping into vectors depends only on n. Reduction lane
// membership depends only on the element index (callers chunk on
// kChunkAlign boundaries), so thread count cannot change results.
#include <cstddef>

#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FEDCLUST_RESTRICT __restrict__
#else
#define FEDCLUST_RESTRICT
#endif

namespace fedclust::ops {
namespace {

namespace s = fedclust::simd;
constexpr std::size_t W = s::kWidth;

constexpr std::size_t kKC = 256;  ///< k-panel: B rows reused per register tile
constexpr std::size_t kNC = 512;  ///< j-panel: B row segment kept in L1
constexpr std::size_t kMR = 6;    ///< register tile height (rows of C)
// Tile width is kNR * W columns: kMR*kNR accumulators + kNR B vectors +
// one broadcast fit the 16 architectural vector registers of AVX2.
constexpr std::size_t kNR = 2;

inline std::size_t round_down(std::size_t x, std::size_t m) {
  return x - x % m;
}

inline void zero_fill(float* p, std::size_t n) {
  const s::f32x z = s::zero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) s::store(p + i, z);
  for (; i < n; ++i) p[i] = 0.0f;
}

/// Accumulates C[i..i+ROWS) x [jc,jend) over k-panel [kc,kend) and adds
/// the register results into C. ALoad abstracts the A element access so
/// NN (row-major A) and TN (k-major A) share one body.
template <std::size_t ROWS, class ALoad>
inline void gemm_tile(ALoad aload, const float* FEDCLUST_RESTRICT pb,
                      float* FEDCLUST_RESTRICT pc, std::size_t i,
                      std::size_t kc, std::size_t kend, std::size_t jc,
                      std::size_t jend, std::size_t n) {
  std::size_t j = jc;
  for (; j + kNR * W <= jend; j += kNR * W) {
    s::f32x acc[ROWS][kNR];
    for (std::size_t r = 0; r < ROWS; ++r)
      for (std::size_t v = 0; v < kNR; ++v) acc[r][v] = s::zero();
    for (std::size_t kk = kc; kk < kend; ++kk) {
      const float* FEDCLUST_RESTRICT brow = pb + kk * n + j;
      const s::f32x b0 = s::load(brow);
      const s::f32x b1 = s::load(brow + W);
      for (std::size_t r = 0; r < ROWS; ++r) {
        const s::f32x ar = s::set1(aload(i + r, kk));
        acc[r][0] = s::fmadd(ar, b0, acc[r][0]);
        acc[r][1] = s::fmadd(ar, b1, acc[r][1]);
      }
    }
    for (std::size_t r = 0; r < ROWS; ++r) {
      float* FEDCLUST_RESTRICT crow = pc + (i + r) * n + j;
      s::store(crow, s::add(s::load(crow), acc[r][0]));
      s::store(crow + W, s::add(s::load(crow + W), acc[r][1]));
    }
  }
  for (; j + W <= jend; j += W) {
    s::f32x acc[ROWS];
    for (std::size_t r = 0; r < ROWS; ++r) acc[r] = s::zero();
    for (std::size_t kk = kc; kk < kend; ++kk) {
      const s::f32x b0 = s::load(pb + kk * n + j);
      for (std::size_t r = 0; r < ROWS; ++r) {
        acc[r] = s::fmadd(s::set1(aload(i + r, kk)), b0, acc[r]);
      }
    }
    for (std::size_t r = 0; r < ROWS; ++r) {
      float* FEDCLUST_RESTRICT crow = pc + (i + r) * n + j;
      s::store(crow, s::add(s::load(crow), acc[r]));
    }
  }
  for (; j < jend; ++j) {
    float acc[ROWS];
    for (std::size_t r = 0; r < ROWS; ++r) acc[r] = 0.0f;
    for (std::size_t kk = kc; kk < kend; ++kk) {
      const float b0 = pb[kk * n + j];
      for (std::size_t r = 0; r < ROWS; ++r) acc[r] += aload(i + r, kk) * b0;
    }
    for (std::size_t r = 0; r < ROWS; ++r) pc[(i + r) * n + j] += acc[r];
  }
}

/// Shared NN/TN driver: panel loops + row tiling. Row-tile grouping may
/// differ with i0, but each row's accumulators are independent, so the
/// per-element order is unchanged — the threaded path stays bit-identical
/// to serial.
template <class ALoad>
inline void gemm_rows(ALoad aload, const float* FEDCLUST_RESTRICT pb,
                      float* FEDCLUST_RESTRICT pc, std::size_t i0,
                      std::size_t i1, std::size_t k, std::size_t n) {
  zero_fill(pc + i0 * n, (i1 - i0) * n);
  for (std::size_t kc = 0; kc < k; kc += kKC) {
    const std::size_t kend = kc + kKC < k ? kc + kKC : k;
    for (std::size_t jc = 0; jc < n; jc += kNC) {
      const std::size_t jend = jc + kNC < n ? jc + kNC : n;
      std::size_t i = i0;
      for (; i + kMR <= i1; i += kMR)
        gemm_tile<kMR>(aload, pb, pc, i, kc, kend, jc, jend, n);
      for (; i < i1; ++i)
        gemm_tile<1>(aload, pb, pc, i, kc, kend, jc, jend, n);
    }
  }
}

void gemm_nn_rows(const float* FEDCLUST_RESTRICT pa,
                  const float* FEDCLUST_RESTRICT pb, float* FEDCLUST_RESTRICT pc,
                  std::size_t i0, std::size_t i1, std::size_t k,
                  std::size_t n) {
  gemm_rows([pa, k](std::size_t i, std::size_t kk) { return pa[i * k + kk]; },
            pb, pc, i0, i1, k, n);
}

void gemm_tn_rows(const float* FEDCLUST_RESTRICT pa,
                  const float* FEDCLUST_RESTRICT pb, float* FEDCLUST_RESTRICT pc,
                  std::size_t i0, std::size_t i1, std::size_t k, std::size_t m,
                  std::size_t n) {
  gemm_rows([pa, m](std::size_t i, std::size_t kk) { return pa[kk * m + i]; },
            pb, pc, i0, i1, k, n);
}

/// Two-accumulator FMA dot with a fixed pairwise horizontal sum, then a
/// sequential scalar tail — the sole reduction used by the NT core.
inline float sdot(const float* FEDCLUST_RESTRICT a,
                  const float* FEDCLUST_RESTRICT b, std::size_t k) {
  s::f32x acc0 = s::zero();
  s::f32x acc1 = s::zero();
  std::size_t kk = 0;
  for (; kk + 2 * W <= k; kk += 2 * W) {
    acc0 = s::fmadd(s::load(a + kk), s::load(b + kk), acc0);
    acc1 = s::fmadd(s::load(a + kk + W), s::load(b + kk + W), acc1);
  }
  if (kk + W <= k) {
    acc0 = s::fmadd(s::load(a + kk), s::load(b + kk), acc0);
    kk += W;
  }
  float sum = s::hsum(s::add(acc0, acc1));
  for (; kk < k; ++kk) sum += a[kk] * b[kk];
  return sum;
}

void gemm_nt_rows(const float* FEDCLUST_RESTRICT pa,
                  const float* FEDCLUST_RESTRICT pb, float* FEDCLUST_RESTRICT pc,
                  std::size_t i0, std::size_t i1, std::size_t k,
                  std::size_t n) {
  constexpr std::size_t kIB = 6;  // A rows per block: 6·k floats stay in L1
  for (std::size_t ib = i0; ib < i1; ib += kIB) {
    const std::size_t iend = ib + kIB < i1 ? ib + kIB : i1;
    for (std::size_t j = 0; j < n; ++j) {
      const float* FEDCLUST_RESTRICT brow = pb + j * k;
      for (std::size_t i = ib; i < iend; ++i) {
        pc[i * n + j] = sdot(pa + i * k, brow, k);
      }
    }
  }
}

// -- elementwise -------------------------------------------------------------

void axpy(float alpha, const float* FEDCLUST_RESTRICT x,
          float* FEDCLUST_RESTRICT y, std::size_t n) {
  const s::f32x av = s::set1(alpha);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(y + i, s::fmadd(av, s::load(x + i), s::load(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float sc, float* x, std::size_t n) {
  const s::f32x sv = s::set1(sc);
  std::size_t i = 0;
  for (; i + W <= n; i += W) s::store(x + i, s::mul(s::load(x + i), sv));
  for (; i < n; ++i) x[i] *= sc;
}

void add(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
         std::size_t n) {
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(y + i, s::add(s::load(y + i), s::load(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void sub(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
         std::size_t n) {
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(y + i, s::sub(s::load(y + i), s::load(x + i)));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void mul(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
         std::size_t n) {
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(y + i, s::mul(s::load(y + i), s::load(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

// No restrict: BatchNorm's eval path calls this in place (x == y); each
// vector is fully loaded before its store.
void scale_shift(const float* x, float* y, float a, float b, std::size_t n) {
  const s::f32x av = s::set1(a);
  const s::f32x bv = s::set1(b);
  std::size_t i = 0;
  for (; i + W <= n; i += W) s::store(y + i, s::fmadd(av, s::load(x + i), bv));
  for (; i < n; ++i) y[i] = a * x[i] + b;
}

void sub_mul(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
             float mean, float inv, std::size_t n) {
  const s::f32x mv = s::set1(mean);
  const s::f32x iv = s::set1(inv);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(y + i, s::mul(s::sub(s::load(x + i), mv), iv));
  }
  for (; i < n; ++i) y[i] = (x[i] - mean) * inv;
}

void relu_forward(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
                  std::size_t n) {
  const s::f32x z = s::zero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) s::store(y + i, s::max(s::load(x + i), z));
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_backward(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT g,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(g + i, s::zero_where_nonpos(s::load(x + i), s::load(g + i)));
  }
  for (; i < n; ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
}

// -- reductions --------------------------------------------------------------
// All reductions widen f32 lanes to double accumulators (matching the
// scalar table's double accumulation), reduce the vector accumulators in
// a fixed order, then fold the scalar tail sequentially.

double sum(const float* x, std::size_t n) {
  s::f64x a0 = s::dzero();
  s::f64x a1 = s::dzero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::f64x lo, hi;
    s::widen(s::load(x + i), lo, hi);
    a0 = s::dadd(a0, lo);
    a1 = s::dadd(a1, hi);
  }
  double acc = s::dhsum(s::dadd(a0, a1));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

double dot(const float* FEDCLUST_RESTRICT a, const float* FEDCLUST_RESTRICT b,
           std::size_t n) {
  s::f64x a0 = s::dzero();
  s::f64x a1 = s::dzero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::f64x alo, ahi, blo, bhi;
    s::widen(s::load(a + i), alo, ahi);
    s::widen(s::load(b + i), blo, bhi);
    a0 = s::dfmadd(alo, blo, a0);
    a1 = s::dfmadd(ahi, bhi, a1);
  }
  double acc = s::dhsum(s::dadd(a0, a1));
  for (; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

// sqnorm(x) must be bitwise dot(x, x): cluster/distance.cpp relies on
// ‖a‖² + ‖b‖² − 2a·b cancelling exactly for duplicate rows.
double sqnorm(const float* x, std::size_t n) { return dot(x, x, n); }

double sqdist(const float* FEDCLUST_RESTRICT a,
              const float* FEDCLUST_RESTRICT b, std::size_t n) {
  s::f64x a0 = s::dzero();
  s::f64x a1 = s::dzero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::f64x alo, ahi, blo, bhi;
    s::widen(s::load(a + i), alo, ahi);
    s::widen(s::load(b + i), blo, bhi);
    const s::f64x dlo = s::dsub(alo, blo);
    const s::f64x dhi = s::dsub(ahi, bhi);
    a0 = s::dfmadd(dlo, dlo, a0);
    a1 = s::dfmadd(dhi, dhi, a1);
  }
  double acc = s::dhsum(s::dadd(a0, a1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double sqdev(const float* x, double mean, std::size_t n) {
  const s::f64x mv = s::dset1(mean);
  s::f64x a0 = s::dzero();
  s::f64x a1 = s::dzero();
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::f64x lo, hi;
    s::widen(s::load(x + i), lo, hi);
    const s::f64x dlo = s::dsub(lo, mv);
    // hi lanes are zero on 4-wide targets; subtracting the mean there
    // would pollute the unused accumulator, so mask via widen contract:
    // on those targets a1 must only ever see zeros.
    const s::f64x dhi =
        W == 8 ? s::dsub(hi, mv) : s::dzero();
    a0 = s::dfmadd(dlo, dlo, a0);
    a1 = s::dfmadd(dhi, dhi, a1);
  }
  double acc = s::dhsum(s::dadd(a0, a1));
  for (; i < n; ++i) {
    const double d = x[i] - mean;
    acc += d * d;
  }
  return acc;
}

float max_val(const float* x, std::size_t n) {
  if (n < W) {
    float m = x[0];
    for (std::size_t i = 1; i < n; ++i) {
      if (x[i] > m) m = x[i];
    }
    return m;
  }
  s::f32x acc = s::load(x);
  std::size_t i = W;
  for (; i + W <= n; i += W) acc = s::max(acc, s::load(x + i));
  float m = s::hmax(acc);
  for (; i < n; ++i) {
    if (x[i] > m) m = x[i];
  }
  return m;
}

// -- fused -------------------------------------------------------------------

void weighted_accumulate(const float* const* srcs, const double* coeff,
                         std::size_t num, float* out, std::size_t begin,
                         std::size_t end) {
  // begin is a kChunkAlign multiple (except the sole chunk of a short
  // range starting at 0), so vector blocks sit at the same absolute
  // offsets no matter how the caller chunked [0, dim) — lane membership,
  // and hence bit patterns, are invariant to thread count.
  std::size_t i = begin;
  for (; i + W <= end; i += W) {
    s::f64x a0 = s::dzero();
    s::f64x a1 = s::dzero();
    for (std::size_t u = 0; u < num; ++u) {
      const s::f64x cv = s::dset1(coeff[u]);
      s::f64x lo, hi;
      s::widen(s::load(srcs[u] + i), lo, hi);
      a0 = s::dfmadd(cv, lo, a0);
      a1 = s::dfmadd(cv, hi, a1);
    }
    s::store(out + i, s::narrow(a0, a1));
  }
  for (; i < end; ++i) {
    double acc = 0.0;
    for (std::size_t u = 0; u < num; ++u) {
      acc += coeff[u] * static_cast<double>(srcs[u][i]);
    }
    out[i] = static_cast<float>(acc);
  }
}

void weighted_accumulate_partial(const float* const* srcs, const double* coeff,
                                 std::size_t num, double* acc,
                                 std::size_t begin, std::size_t end) {
  // Identical vector-block structure and per-element op sequence as
  // weighted_accumulate; the accumulators start from (and return to) the
  // caller's double buffer via dload2/dstore2 — a value-preserving
  // round-trip — so chained slot-order batches reproduce the one-shot
  // kernel bit-for-bit regardless of how the update list was batched.
  std::size_t i = begin;
  for (; i + W <= end; i += W) {
    s::f64x a0, a1;
    s::dload2(acc + i, a0, a1);
    for (std::size_t u = 0; u < num; ++u) {
      const s::f64x cv = s::dset1(coeff[u]);
      s::f64x lo, hi;
      s::widen(s::load(srcs[u] + i), lo, hi);
      a0 = s::dfmadd(cv, lo, a0);
      a1 = s::dfmadd(cv, hi, a1);
    }
    s::dstore2(acc + i, a0, a1);
  }
  for (; i < end; ++i) {
    double a = acc[i];
    for (std::size_t u = 0; u < num; ++u) {
      a += coeff[u] * static_cast<double>(srcs[u][i]);
    }
    acc[i] = a;
  }
}

void bn_backward_dx(const float* FEDCLUST_RESTRICT dy,
                    const float* FEDCLUST_RESTRICT xh,
                    float* FEDCLUST_RESTRICT dx, double scale, double mean_dy,
                    double mean_dy_xhat, std::size_t n) {
  const s::f64x sv = s::dset1(scale);
  const s::f64x mdv = s::dset1(mean_dy);
  const s::f64x mxv = s::dset1(mean_dy_xhat);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::f64x dlo, dhi, xlo, xhi;
    s::widen(s::load(dy + i), dlo, dhi);
    s::widen(s::load(xh + i), xlo, xhi);
    const s::f64x tlo = s::dmul(sv, s::dsub(s::dsub(dlo, mdv), s::dmul(xlo, mxv)));
    const s::f64x thi = s::dmul(sv, s::dsub(s::dsub(dhi, mdv), s::dmul(xhi, mxv)));
    s::store(dx + i, s::narrow(tlo, thi));
  }
  for (; i < n; ++i) {
    dx[i] = static_cast<float>(scale * (dy[i] - mean_dy - xh[i] * mean_dy_xhat));
  }
}

// -- update-compression codecs -----------------------------------------------

void quantize_i8(const float* x, signed char* q, float inv_scale, int qmax,
                 std::size_t n) {
  const float flo = static_cast<float>(-qmax);
  const float fhi = static_cast<float>(qmax);
  const s::f32x inv = s::set1(inv_scale);
  const s::f32x lo = s::set1(flo);
  const s::f32x hi = s::set1(fhi);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const s::f32x t =
        s::clamp(s::round_nearest(s::mul(s::load(x + i), inv)), lo, hi);
    s::store_i8(q + i, t);
  }
  for (; i < n; ++i) {
    // Same op sequence as the lanes: mul → round-to-nearest-even → clamp
    // with NaN resolving to lo (comparison false ⇒ lo branch).
    const float r = __builtin_nearbyintf(x[i] * inv_scale);
    float t = r > flo ? r : flo;
    t = t < fhi ? t : fhi;
    q[i] = static_cast<signed char>(static_cast<int>(t));
  }
}

void dequantize_i8(const signed char* q, float* x, float scale, std::size_t n) {
  const s::f32x sv = s::set1(scale);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    s::store(x + i, s::mul(s::load_i8(q + i), sv));
  }
  for (; i < n; ++i) {
    x[i] = static_cast<float>(q[i]) * scale;
  }
}

float absmax(const float* x, std::size_t n) {
  std::size_t i = 0;
  float m = 0.0f;
  if (n >= W) {
    s::f32x mv = s::abs(s::load(x));
    for (i = W; i + W <= n; i += W) {
      mv = s::max(mv, s::abs(s::load(x + i)));
    }
    m = s::hmax(mv);
    if (m < 0.0f) m = 0.0f;  // all-negative-zero lanes
  }
  for (; i < n; ++i) {
    const float a = __builtin_fabsf(x[i]);
    if (a > m) m = a;
  }
  return m;
}

}  // namespace

// Consumed by kernels_dispatch.cpp (declared extern there; no header so
// scalar-only builds simply omit this TU).
const KernelTable& simd_kernel_table() {
  static const KernelTable table = {
      s::isa_name(),   gemm_nn_rows, gemm_tn_rows, gemm_nt_rows,
      axpy,            scale,        add,          sub,
      mul,             scale_shift,  sub_mul,      relu_forward,
      relu_backward,   sum,          dot,          sqnorm,
      sqdist,          sqdev,        max_val,      weighted_accumulate,
      weighted_accumulate_partial,   bn_backward_dx,
      quantize_i8,     dequantize_i8, absmax,
  };
  return table;
}

bool simd_kernel_table_supported() { return s::runtime_supported(); }

}  // namespace fedclust::ops
