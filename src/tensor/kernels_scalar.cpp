// Scalar kernel table: hand-written loops compiled with the project's
// baseline flags. These are the pre-SIMD implementations, kept
// semantically identical so a scalar build reproduces the seed numerics:
// the GEMM cores accumulate each C element in the same (i, j)-determined
// order regardless of blocking or threading, and every reduction
// accumulates in double exactly like the original tensor.cpp loops.
#include <algorithm>
#include <cstddef>

#include "tensor/kernels.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FEDCLUST_RESTRICT __restrict__
#else
#define FEDCLUST_RESTRICT
#endif

namespace fedclust::ops {
namespace {

// Blocking parameters (floats): a KC×NC panel of B (256×512 = 512 KiB at
// the defaults below, typically trimmed by the edge cases to the L2-
// resident working set) is reused across an IR-row register tile of A,
// and the 8-wide inner loops are written so the compiler can vectorize
// them without reassociating float math.
constexpr std::size_t kKC = 256;  ///< k-panel size (rows of B per block)
constexpr std::size_t kNC = 512;  ///< j-panel size (B row segment in L1)
constexpr std::size_t kIR = 4;    ///< register tile height (rows of C)

void gemm_nn_rows(const float* FEDCLUST_RESTRICT pa,
                  const float* FEDCLUST_RESTRICT pb, float* FEDCLUST_RESTRICT pc,
                  std::size_t i0, std::size_t i1, std::size_t k,
                  std::size_t n) {
  std::fill(pc + i0 * n, pc + i1 * n, 0.0f);
  for (std::size_t kc = 0; kc < k; kc += kKC) {
    const std::size_t kend = std::min(k, kc + kKC);
    for (std::size_t jc = 0; jc < n; jc += kNC) {
      const std::size_t jend = std::min(n, jc + kNC);
      std::size_t i = i0;
      for (; i + kIR <= i1; i += kIR) {
        for (std::size_t kk = kc; kk < kend; ++kk) {
          const float a0 = pa[(i + 0) * k + kk];
          const float a1 = pa[(i + 1) * k + kk];
          const float a2 = pa[(i + 2) * k + kk];
          const float a3 = pa[(i + 3) * k + kk];
          const float* FEDCLUST_RESTRICT brow = pb + kk * n;
          float* FEDCLUST_RESTRICT c0 = pc + (i + 0) * n;
          float* FEDCLUST_RESTRICT c1 = pc + (i + 1) * n;
          float* FEDCLUST_RESTRICT c2 = pc + (i + 2) * n;
          float* FEDCLUST_RESTRICT c3 = pc + (i + 3) * n;
          for (std::size_t j = jc; j < jend; ++j) {
            c0[j] += a0 * brow[j];
            c1[j] += a1 * brow[j];
            c2[j] += a2 * brow[j];
            c3[j] += a3 * brow[j];
          }
        }
      }
      for (; i < i1; ++i) {
        for (std::size_t kk = kc; kk < kend; ++kk) {
          const float a0 = pa[i * k + kk];
          const float* FEDCLUST_RESTRICT brow = pb + kk * n;
          float* FEDCLUST_RESTRICT crow = pc + i * n;
          for (std::size_t j = jc; j < jend; ++j) crow[j] += a0 * brow[j];
        }
      }
    }
  }
}

void gemm_tn_rows(const float* FEDCLUST_RESTRICT pa,
                  const float* FEDCLUST_RESTRICT pb, float* FEDCLUST_RESTRICT pc,
                  std::size_t i0, std::size_t i1, std::size_t k, std::size_t m,
                  std::size_t n) {
  std::fill(pc + i0 * n, pc + i1 * n, 0.0f);
  for (std::size_t kc = 0; kc < k; kc += kKC) {
    const std::size_t kend = std::min(k, kc + kKC);
    for (std::size_t jc = 0; jc < n; jc += kNC) {
      const std::size_t jend = std::min(n, jc + kNC);
      std::size_t i = i0;
      for (; i + kIR <= i1; i += kIR) {
        for (std::size_t kk = kc; kk < kend; ++kk) {
          const float* FEDCLUST_RESTRICT acol = pa + kk * m + i;
          const float a0 = acol[0];
          const float a1 = acol[1];
          const float a2 = acol[2];
          const float a3 = acol[3];
          const float* FEDCLUST_RESTRICT brow = pb + kk * n;
          float* FEDCLUST_RESTRICT c0 = pc + (i + 0) * n;
          float* FEDCLUST_RESTRICT c1 = pc + (i + 1) * n;
          float* FEDCLUST_RESTRICT c2 = pc + (i + 2) * n;
          float* FEDCLUST_RESTRICT c3 = pc + (i + 3) * n;
          for (std::size_t j = jc; j < jend; ++j) {
            c0[j] += a0 * brow[j];
            c1[j] += a1 * brow[j];
            c2[j] += a2 * brow[j];
            c3[j] += a3 * brow[j];
          }
        }
      }
      for (; i < i1; ++i) {
        for (std::size_t kk = kc; kk < kend; ++kk) {
          const float a0 = pa[kk * m + i];
          const float* FEDCLUST_RESTRICT brow = pb + kk * n;
          float* FEDCLUST_RESTRICT crow = pc + i * n;
          for (std::size_t j = jc; j < jend; ++j) crow[j] += a0 * brow[j];
        }
      }
    }
  }
}

/// 8-accumulator dot product — the one and only reduction kernel for the
/// NT variant, so every C element is summed in the same order no matter
/// which tile or thread computed it.
inline float dot8(const float* FEDCLUST_RESTRICT a,
                  const float* FEDCLUST_RESTRICT b, std::size_t k) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  float s4 = 0.0f, s5 = 0.0f, s6 = 0.0f, s7 = 0.0f;
  std::size_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    s0 += a[kk + 0] * b[kk + 0];
    s1 += a[kk + 1] * b[kk + 1];
    s2 += a[kk + 2] * b[kk + 2];
    s3 += a[kk + 3] * b[kk + 3];
    s4 += a[kk + 4] * b[kk + 4];
    s5 += a[kk + 5] * b[kk + 5];
    s6 += a[kk + 6] * b[kk + 6];
    s7 += a[kk + 7] * b[kk + 7];
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) tail += a[kk] * b[kk];
  return (((s0 + s4) + (s1 + s5)) + ((s2 + s6) + (s3 + s7))) + tail;
}

void gemm_nt_rows(const float* FEDCLUST_RESTRICT pa,
                  const float* FEDCLUST_RESTRICT pb, float* FEDCLUST_RESTRICT pc,
                  std::size_t i0, std::size_t i1, std::size_t k,
                  std::size_t n) {
  constexpr std::size_t kIB = 6;  // A rows per block: 6·k floats stay in L1
  for (std::size_t ib = i0; ib < i1; ib += kIB) {
    const std::size_t iend = std::min(i1, ib + kIB);
    for (std::size_t j = 0; j < n; ++j) {
      const float* FEDCLUST_RESTRICT brow = pb + j * k;
      for (std::size_t i = ib; i < iend; ++i) {
        pc[i * n + j] = dot8(pa + i * k, brow, k);
      }
    }
  }
}

// -- elementwise -------------------------------------------------------------

void axpy(float alpha, const float* FEDCLUST_RESTRICT x,
          float* FEDCLUST_RESTRICT y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(float s, float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void add(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void mul(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

// No restrict: BatchNorm's eval path calls this in place (x == y).
void scale_shift(const float* x, float* y, float a, float b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = a * x[i] + b;
}

void sub_mul(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
             float mean, float inv, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = (x[i] - mean) * inv;
}

void relu_forward(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT y,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_backward(const float* FEDCLUST_RESTRICT x, float* FEDCLUST_RESTRICT g,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
}

// -- reductions --------------------------------------------------------------

double sum(const float* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double dot(const float* FEDCLUST_RESTRICT a, const float* FEDCLUST_RESTRICT b,
           std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(a[i]) * b[i];
  }
  return s;
}

double sqnorm(const float* x, std::size_t n) { return dot(x, x, n); }

double sqdist(const float* FEDCLUST_RESTRICT a,
              const float* FEDCLUST_RESTRICT b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

double sqdev(const float* x, double mean, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - mean;
    s += d * d;
  }
  return s;
}

float max_val(const float* x, std::size_t n) {
  float m = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (x[i] > m) m = x[i];
  }
  return m;
}

// -- fused -------------------------------------------------------------------

void weighted_accumulate(const float* const* srcs, const double* coeff,
                         std::size_t num, float* out, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    double acc = 0.0;
    for (std::size_t u = 0; u < num; ++u) {
      acc += coeff[u] * static_cast<double>(srcs[u][i]);
    }
    out[i] = static_cast<float>(acc);
  }
}

void weighted_accumulate_partial(const float* const* srcs, const double* coeff,
                                 std::size_t num, double* acc,
                                 std::size_t begin, std::size_t end) {
  // Per-element expression mirrors weighted_accumulate exactly; only the
  // accumulator's starting point (the caller's buffer instead of 0)
  // differs, so chained batches reproduce the one-shot result bit-for-bit.
  for (std::size_t i = begin; i < end; ++i) {
    double a = acc[i];
    for (std::size_t u = 0; u < num; ++u) {
      a += coeff[u] * static_cast<double>(srcs[u][i]);
    }
    acc[i] = a;
  }
}

void bn_backward_dx(const float* FEDCLUST_RESTRICT dy,
                    const float* FEDCLUST_RESTRICT xh,
                    float* FEDCLUST_RESTRICT dx, double scale, double mean_dy,
                    double mean_dy_xhat, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dx[i] = static_cast<float>(scale * (dy[i] - mean_dy - xh[i] * mean_dy_xhat));
  }
}

// -- update-compression codecs -----------------------------------------------

void quantize_i8(const float* FEDCLUST_RESTRICT x,
                 signed char* FEDCLUST_RESTRICT q, float inv_scale, int qmax,
                 std::size_t n) {
  const float lo = static_cast<float>(-qmax);
  const float hi = static_cast<float>(qmax);
  for (std::size_t i = 0; i < n; ++i) {
    // mul → round-to-nearest-even → clamp, with NaN taking the lo branch
    // (comparison false) — the exact lane sequence of the SIMD table, so
    // the two tables quantize bit-identically.
    const float r = __builtin_nearbyintf(x[i] * inv_scale);
    float t = r > lo ? r : lo;
    t = t < hi ? t : hi;
    q[i] = static_cast<signed char>(static_cast<int>(t));
  }
}

void dequantize_i8(const signed char* FEDCLUST_RESTRICT q,
                   float* FEDCLUST_RESTRICT x, float scale, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(q[i]) * scale;
  }
}

float absmax(const float* x, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = __builtin_fabsf(x[i]);
    if (a > m) m = a;
  }
  return m;
}

}  // namespace

const KernelTable& scalar_kernels() {
  static const KernelTable table = {
      "scalar",        gemm_nn_rows, gemm_tn_rows, gemm_nt_rows,
      axpy,            scale,        add,          sub,
      mul,             scale_shift,  sub_mul,      relu_forward,
      relu_backward,   sum,          dot,          sqnorm,
      sqdist,          sqdev,        max_val,      weighted_accumulate,
      weighted_accumulate_partial,   bn_backward_dx,
      quantize_i8,     dequantize_i8, absmax,
  };
  return table;
}

}  // namespace fedclust::ops
