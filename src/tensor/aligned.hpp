// 64-byte-aligned allocator for numeric buffers.
//
// Tensor and (through it) ScratchArena back their storage with this
// allocator so every buffer starts on a cache-line boundary: a 64-byte
// alignment covers AVX2 (32 B) and AVX-512 (64 B) vector loads and keeps
// the SIMD kernels' leading vectors from straddling cache lines. Row
// offsets inside a tensor are still arbitrary, so kernels use unaligned
// loads — the alignment is a performance property, not a correctness
// contract, except that tests pin it so it cannot silently regress.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace fedclust {

inline constexpr std::size_t kBufferAlignment = 64;

template <typename T, std::size_t Alignment = kBufferAlignment>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Alignment >= alignof(T), "alignment below natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not pow2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// The backing store used by Tensor: float vector on 64-byte boundaries.
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

}  // namespace fedclust
