#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace fedclust::ops {
namespace {

void check_matrix(const Tensor& t, const char* name) {
  FEDCLUST_REQUIRE(t.rank() == 2, name << " must be rank-2, got "
                                       << shape_to_string(t.shape()));
}

}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDCLUST_REQUIRE(b.dim(0) == k, "matmul inner dims " << k << " vs "
                                                       << b.dim(0));
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: the inner loop streams B and C rows contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FEDCLUST_REQUIRE(b.dim(0) == k, "matmul_tn inner dims " << k << " vs "
                                                          << b.dim(0));
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FEDCLUST_REQUIRE(b.dim(1) == k, "matmul_nt inner dims " << k << " vs "
                                                          << b.dim(1));
  if (c.shape() != Shape{m, n}) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Dot-product form: both A's row i and B's row j are contiguous.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) {
        s += static_cast<double>(arow[kk]) * brow[kk];
      }
      pc[i * n + j] = static_cast<float>(s);
    }
  }
}

void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, const Conv2dSpec& spec,
                    Tensor& output) {
  FEDCLUST_REQUIRE(input.rank() == 4, "conv input must be NCHW");
  const std::size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  FEDCLUST_REQUIRE(cin == spec.in_channels, "conv input channel mismatch");
  FEDCLUST_REQUIRE(
      weight.shape() ==
          Shape({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      "conv weight shape mismatch");
  FEDCLUST_REQUIRE(bias.shape() == Shape{spec.out_channels},
                   "conv bias shape mismatch");
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  if (output.shape() != Shape{n, spec.out_channels, ho, wo}) {
    output = Tensor({n, spec.out_channels, ho, wo});
  }

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      const float b = bias[oc];
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          double acc = b;
          for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* irow =
                  input.data() +
                  ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
              const float* wrow =
                  weight.data() + ((oc * cin + ic) * k + ky) * k;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += static_cast<double>(irow[ix]) * wrow[kx];
              }
            }
          }
          output.at(img, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
}

void conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                           const Conv2dSpec& spec, Tensor& grad_input) {
  FEDCLUST_REQUIRE(grad_output.rank() == 4 && grad_input.rank() == 4,
                   "conv backward tensors must be NCHW");
  const std::size_t n = grad_input.dim(0), cin = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t ho = grad_output.dim(2), wo = grad_output.dim(3);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  grad_input.zero();

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = grad_output.at(img, oc, oy, ox);
          if (g == 0.0f) continue;
          for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              float* grow =
                  grad_input.data() +
                  ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
              const float* wrow =
                  weight.data() + ((oc * cin + ic) * k + ky) * k;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                grow[ix] += g * wrow[kx];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_backward_params(const Tensor& input, const Tensor& grad_output,
                            const Conv2dSpec& spec, Tensor& grad_weight,
                            Tensor& grad_bias) {
  const std::size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t ho = grad_output.dim(2), wo = grad_output.dim(3);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  FEDCLUST_REQUIRE(
      grad_weight.shape() ==
          Shape({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      "grad_weight shape mismatch");
  FEDCLUST_REQUIRE(grad_bias.shape() == Shape{spec.out_channels},
                   "grad_bias shape mismatch");

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      double bias_acc = 0.0;
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = grad_output.at(img, oc, oy, ox);
          bias_acc += g;
          if (g == 0.0f) continue;
          for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* irow =
                  input.data() +
                  ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
              float* wgrow =
                  grad_weight.data() + ((oc * cin + ic) * k + ky) * k;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                wgrow[kx] += g * irow[ix];
              }
            }
          }
        }
      }
      grad_bias[oc] += static_cast<float>(bias_acc);
    }
  }
}

void im2col(const Tensor& input, const Conv2dSpec& spec, Tensor& columns) {
  const std::size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  const std::size_t rows = n * ho * wo;
  const std::size_t cols = cin * k * k;
  if (columns.shape() != Shape{rows, cols}) columns = Tensor({rows, cols});

  float* out = columns.data();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        float* row = out + ((img * ho + oy) * wo + ox) * cols;
        std::size_t idx = 0;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride + ky) -
                static_cast<std::ptrdiff_t>(pad);
            for (std::size_t kx = 0; kx < k; ++kx, ++idx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride + kx) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h) || ix < 0 ||
                  ix >= static_cast<std::ptrdiff_t>(w)) {
                row[idx] = 0.0f;
              } else {
                row[idx] = input.at(img, ic, static_cast<std::size_t>(iy),
                                    static_cast<std::size_t>(ix));
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_forward_im2col(const Tensor& input, const Tensor& weight,
                           const Tensor& bias, const Conv2dSpec& spec,
                           Tensor& output, Tensor& scratch_columns) {
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  im2col(input, spec, scratch_columns);

  // columns (n*ho*wo × cin*k*k) · weightᵀ (cout × cin*k*k) = (n*ho*wo × cout)
  const Tensor weight2d = weight.reshaped(
      {spec.out_channels, spec.in_channels * spec.kernel * spec.kernel});
  Tensor result;
  matmul_nt(scratch_columns, weight2d, result);

  if (output.shape() != Shape{n, spec.out_channels, ho, wo}) {
    output = Tensor({n, spec.out_channels, ho, wo});
  }
  // Transpose (pixel-major × cout) into NCHW and add bias.
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const std::size_t row = (img * ho + oy) * wo + ox;
        for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
          output.at(img, oc, oy, ox) =
              result.at(row, oc) + bias[oc];
        }
      }
    }
  }
}

void max_pool_forward(const Tensor& input, std::size_t window, Tensor& output,
                      std::vector<std::size_t>& argmax) {
  FEDCLUST_REQUIRE(input.rank() == 4, "pool input must be NCHW");
  FEDCLUST_REQUIRE(window > 0, "pool window must be positive");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  FEDCLUST_REQUIRE(h % window == 0 && w % window == 0,
                   "pool window " << window << " must divide input "
                                  << h << "x" << w);
  const std::size_t ho = h / window, wo = w / window;
  if (output.shape() != Shape{n, c, ho, wo}) output = Tensor({n, c, ho, wo});
  argmax.assign(output.numel(), 0);

  std::size_t out_idx = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window; ++ky) {
            for (std::size_t kx = 0; kx < window; ++kx) {
              const std::size_t iy = oy * window + ky;
              const std::size_t ix = ox * window + kx;
              const std::size_t flat = ((img * c + ch) * h + iy) * w + ix;
              const float v = input[flat];
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          }
          output[out_idx] = best;
          argmax[out_idx] = best_idx;
        }
      }
    }
  }
}

void max_pool_backward(const Tensor& grad_output,
                       const std::vector<std::size_t>& argmax,
                       Tensor& grad_input) {
  FEDCLUST_REQUIRE(argmax.size() == grad_output.numel(),
                   "argmax does not match grad_output");
  grad_input.zero();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    grad_input[argmax[i]] += grad_output[i];
  }
}

void avg_pool_forward(const Tensor& input, std::size_t window,
                      Tensor& output) {
  FEDCLUST_REQUIRE(input.rank() == 4, "pool input must be NCHW");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  FEDCLUST_REQUIRE(h % window == 0 && w % window == 0,
                   "pool window must divide input");
  const std::size_t ho = h / window, wo = w / window;
  if (output.shape() != Shape{n, c, ho, wo}) output = Tensor({n, c, ho, wo});
  const float inv = 1.0f / static_cast<float>(window * window);

  std::size_t out_idx = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          double acc = 0.0;
          for (std::size_t ky = 0; ky < window; ++ky) {
            for (std::size_t kx = 0; kx < window; ++kx) {
              acc += input.at(img, ch, oy * window + ky, ox * window + kx);
            }
          }
          output[out_idx] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
}

void avg_pool_backward(const Tensor& grad_output, std::size_t window,
                       Tensor& grad_input) {
  const std::size_t n = grad_input.dim(0), c = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t ho = h / window, wo = w / window;
  FEDCLUST_REQUIRE(grad_output.shape() == Shape({n, c, ho, wo}),
                   "avg_pool_backward shape mismatch");
  const float inv = 1.0f / static_cast<float>(window * window);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t iy = 0; iy < h; ++iy) {
        for (std::size_t ix = 0; ix < w; ++ix) {
          grad_input.at(img, ch, iy, ix) =
              grad_output.at(img, ch, iy / window, ix / window) * inv;
        }
      }
    }
  }
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  FEDCLUST_REQUIRE(logits.rank() == 2, "softmax_rows needs a matrix");
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  if (probs.shape() != logits.shape()) probs = Tensor(logits.shape());
  for (std::size_t i = 0; i < rows; ++i) {
    const float* in = logits.data() + i * cols;
    float* out = probs.data() + i * cols;
    const float mx = *std::max_element(in, in + cols);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(in[j] - mx);
      sum += out[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t j = 0; j < cols; ++j) out[j] *= inv;
  }
}

void logsumexp_rows(const Tensor& logits, std::vector<float>& out) {
  FEDCLUST_REQUIRE(logits.rank() == 2, "logsumexp_rows needs a matrix");
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  out.assign(rows, 0.0f);
  for (std::size_t i = 0; i < rows; ++i) {
    const float* in = logits.data() + i * cols;
    const float mx = *std::max_element(in, in + cols);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) sum += std::exp(in[j] - mx);
    out[i] = mx + static_cast<float>(std::log(sum));
  }
}

}  // namespace fedclust::ops
