#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <vector>

#include "tensor/kernels.hpp"
#include "utils/thread_pool.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FEDCLUST_RESTRICT __restrict__
#else
#define FEDCLUST_RESTRICT
#endif

namespace fedclust::ops {
namespace {

void check_matrix(const Tensor& t, const char* name) {
  FEDCLUST_REQUIRE(t.rank() == 2, name << " must be rank-2, got "
                                       << shape_to_string(t.shape()));
}

// The GEMM row cores live in the dispatched kernel tables
// (kernels_scalar.cpp / kernels_simd.cpp). Each core computes a
// contiguous range [i0, i1) of output rows so the threaded wrappers can
// hand disjoint row blocks to workers; every core accumulates each C
// element in an order fixed by (i, j) and the problem size alone, so
// blocked, tiled, and threaded runs are bit-identical within a build.
// The wrappers below snapshot the active table once per call so a
// mid-operation set_simd_enabled() cannot mix tables across workers.

/// Runs `rows(i0, i1)` over [0, m), split into one contiguous block per
/// worker when the problem is big enough to amortize the fork/join.
template <typename RowsFn>
void run_row_blocks(std::size_t m, std::size_t flops, ThreadPool* pool,
                    RowsFn&& rows) {
  constexpr std::size_t kMinFlops = 1u << 21;  // ~2 MFLOP: below this the
                                               // fork/join dominates
  const std::size_t workers = pool != nullptr ? pool->size() : 1;
  if (workers <= 1 || flops < kMinFlops || m < 2 * workers) {
    rows(0, m);
    return;
  }
  const std::size_t chunk = (m + workers - 1) / workers;
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t i0 = std::min(m, w * chunk);
    const std::size_t i1 = std::min(m, i0 + chunk);
    if (i0 >= i1) break;
    futures.push_back(pool->submit([&rows, i0, i1] { rows(i0, i1); }));
  }
  for (auto& f : futures) f.get();
}

/// Reorders NCHW (n, c, h, w) into pixel-major (n·h·w × c).
void nchw_to_pixel_major(const Tensor& t, Tensor& out) {
  const std::size_t n = t.dim(0), c = t.dim(1), h = t.dim(2), w = t.dim(3);
  const std::size_t plane = h * w;
  out.resize({n * plane, c});
  const float* FEDCLUST_RESTRICT src = t.data();
  float* FEDCLUST_RESTRICT dst = out.data();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* FEDCLUST_RESTRICT p = src + (img * c + ch) * plane;
      float* FEDCLUST_RESTRICT q = dst + img * plane * c + ch;
      for (std::size_t i = 0; i < plane; ++i) q[i * c] = p[i];
    }
  }
}

}  // namespace

// -- GEMM -------------------------------------------------------------------

void matmul(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDCLUST_REQUIRE(b.dim(0) == k, "matmul inner dims " << k << " vs "
                                                       << b.dim(0));
  c.resize({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const KernelTable* kp = &kernels();
  run_row_blocks(m, 2 * m * n * k, pool, [=](std::size_t i0, std::size_t i1) {
    kp->gemm_nn_rows(pa, pb, pc, i0, i1, k, n);
  });
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  FEDCLUST_REQUIRE(b.dim(0) == k, "matmul_tn inner dims " << k << " vs "
                                                          << b.dim(0));
  c.resize({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const KernelTable* kp = &kernels();
  run_row_blocks(m, 2 * m * n * k, pool, [=](std::size_t i0, std::size_t i1) {
    kp->gemm_tn_rows(pa, pb, pc, i0, i1, k, m, n);
  });
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c, ThreadPool* pool) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FEDCLUST_REQUIRE(b.dim(1) == k, "matmul_nt inner dims " << k << " vs "
                                                          << b.dim(1));
  c.resize({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const KernelTable* kp = &kernels();
  run_row_blocks(m, 2 * m * n * k, pool, [=](std::size_t i0, std::size_t i1) {
    kp->gemm_nt_rows(pa, pb, pc, i0, i1, k, n);
  });
}

void matmul_naive(const Tensor& a, const Tensor& b, Tensor& c) {
  check_matrix(a, "A");
  check_matrix(b, "B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FEDCLUST_REQUIRE(b.dim(0) == k, "matmul inner dims " << k << " vs "
                                                       << b.dim(0));
  c.resize({m, n});
  c.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order: the inner loop streams B and C rows contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// -- Direct convolution ------------------------------------------------------

void conv2d_forward(const Tensor& input, const Tensor& weight,
                    const Tensor& bias, const Conv2dSpec& spec,
                    Tensor& output) {
  FEDCLUST_REQUIRE(input.rank() == 4, "conv input must be NCHW");
  const std::size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  FEDCLUST_REQUIRE(cin == spec.in_channels, "conv input channel mismatch");
  FEDCLUST_REQUIRE(
      weight.shape() ==
          Shape({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      "conv weight shape mismatch");
  FEDCLUST_REQUIRE(bias.shape() == Shape{spec.out_channels},
                   "conv bias shape mismatch");
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  if (output.shape() != Shape{n, spec.out_channels, ho, wo}) {
    output = Tensor({n, spec.out_channels, ho, wo});
  }

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      const float b = bias[oc];
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          double acc = b;
          for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* irow =
                  input.data() +
                  ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
              const float* wrow =
                  weight.data() + ((oc * cin + ic) * k + ky) * k;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += static_cast<double>(irow[ix]) * wrow[kx];
              }
            }
          }
          output.at(img, oc, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
}

void conv2d_backward_input(const Tensor& grad_output, const Tensor& weight,
                           const Conv2dSpec& spec, Tensor& grad_input) {
  FEDCLUST_REQUIRE(grad_output.rank() == 4 && grad_input.rank() == 4,
                   "conv backward tensors must be NCHW");
  const std::size_t n = grad_input.dim(0), cin = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t ho = grad_output.dim(2), wo = grad_output.dim(3);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  grad_input.zero();

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = grad_output.at(img, oc, oy, ox);
          if (g == 0.0f) continue;
          for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              float* grow =
                  grad_input.data() +
                  ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
              const float* wrow =
                  weight.data() + ((oc * cin + ic) * k + ky) * k;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                grow[ix] += g * wrow[kx];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_backward_params(const Tensor& input, const Tensor& grad_output,
                            const Conv2dSpec& spec, Tensor& grad_weight,
                            Tensor& grad_bias) {
  const std::size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t ho = grad_output.dim(2), wo = grad_output.dim(3);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  FEDCLUST_REQUIRE(
      grad_weight.shape() ==
          Shape({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      "grad_weight shape mismatch");
  FEDCLUST_REQUIRE(grad_bias.shape() == Shape{spec.out_channels},
                   "grad_bias shape mismatch");
  grad_weight.zero();
  grad_bias.zero();

  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
      double bias_acc = 0.0;
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = grad_output.at(img, oc, oy, ox);
          bias_acc += g;
          if (g == 0.0f) continue;
          for (std::size_t ic = 0; ic < cin; ++ic) {
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              const float* irow =
                  input.data() +
                  ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
              float* wgrow =
                  grad_weight.data() + ((oc * cin + ic) * k + ky) * k;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                wgrow[kx] += g * irow[ix];
              }
            }
          }
        }
      }
      grad_bias[oc] += static_cast<float>(bias_acc);
    }
  }
}

// -- im2col/GEMM convolution -------------------------------------------------

void im2col(const Tensor& input, const Conv2dSpec& spec, Tensor& columns) {
  const std::size_t n = input.dim(0), cin = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  const std::size_t rows = n * ho * wo;
  const std::size_t cols = cin * k * k;
  columns.resize({rows, cols});

  float* out = columns.data();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        float* row = out + ((img * ho + oy) * wo + ox) * cols;
        std::size_t idx = 0;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride + ky) -
                static_cast<std::ptrdiff_t>(pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              for (std::size_t kx = 0; kx < k; ++kx, ++idx) row[idx] = 0.0f;
              continue;
            }
            const float* irow =
                input.data() +
                ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
            for (std::size_t kx = 0; kx < k; ++kx, ++idx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride + kx) -
                  static_cast<std::ptrdiff_t>(pad);
              row[idx] = (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w))
                             ? 0.0f
                             : irow[ix];
            }
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, const Conv2dSpec& spec, Tensor& grad_input) {
  FEDCLUST_REQUIRE(grad_input.rank() == 4, "col2im output must be NCHW");
  const std::size_t n = grad_input.dim(0), cin = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t k = spec.kernel, pad = spec.padding, stride = spec.stride;
  const std::size_t cols = cin * k * k;
  FEDCLUST_REQUIRE(columns.shape() == Shape({n * ho * wo, cols}),
                   "col2im columns shape mismatch");
  grad_input.zero();

  const float* in = columns.data();
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oy = 0; oy < ho; ++oy) {
      for (std::size_t ox = 0; ox < wo; ++ox) {
        const float* row = in + ((img * ho + oy) * wo + ox) * cols;
        std::size_t idx = 0;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride + ky) -
                static_cast<std::ptrdiff_t>(pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) {
              idx += k;
              continue;
            }
            float* grow =
                grad_input.data() +
                ((img * cin + ic) * h + static_cast<std::size_t>(iy)) * w;
            for (std::size_t kx = 0; kx < k; ++kx, ++idx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride + kx) -
                  static_cast<std::ptrdiff_t>(pad);
              if (ix >= 0 && ix < static_cast<std::ptrdiff_t>(w)) {
                grow[ix] += row[idx];
              }
            }
          }
        }
      }
    }
  }
}

void conv2d_forward_im2col(const Tensor& input, const Tensor& weight,
                           const Tensor& bias, const Conv2dSpec& spec,
                           Tensor& output, Tensor& scratch_columns,
                           Tensor& scratch_pix, ThreadPool* pool) {
  FEDCLUST_REQUIRE(input.rank() == 4, "conv input must be NCHW");
  const std::size_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  FEDCLUST_REQUIRE(input.dim(1) == spec.in_channels,
                   "conv input channel mismatch");
  FEDCLUST_REQUIRE(
      weight.shape() ==
          Shape({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      "conv weight shape mismatch");
  FEDCLUST_REQUIRE(bias.shape() == Shape{spec.out_channels},
                   "conv bias shape mismatch");
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t cout = spec.out_channels;
  const std::size_t ckk = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t pixels = n * ho * wo;

  im2col(input, spec, scratch_columns);

  // columns (pixels × ckk) · weightᵀ (cout × ckk) = pix (pixels × cout).
  // The weight tensor is already contiguous in (cout × ckk) layout, so the
  // raw NT core runs on it without a reshape copy.
  scratch_pix.resize({pixels, cout});
  const float* pa = scratch_columns.data();
  const float* pb = weight.data();
  float* pc = scratch_pix.data();
  const KernelTable* kp = &kernels();
  run_row_blocks(pixels, 2 * pixels * cout * ckk, pool,
                 [=](std::size_t i0, std::size_t i1) {
                   kp->gemm_nt_rows(pa, pb, pc, i0, i1, ckk, cout);
                 });

  // Transpose (pixel-major × cout) into NCHW, adding bias on the way out.
  if (output.shape() != Shape{n, cout, ho, wo}) {
    output = Tensor({n, cout, ho, wo});
  }
  const std::size_t plane = ho * wo;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t oc = 0; oc < cout; ++oc) {
      const float b = bias[oc];
      const float* FEDCLUST_RESTRICT src = pc + img * plane * cout + oc;
      float* FEDCLUST_RESTRICT dst =
          output.data() + (img * cout + oc) * plane;
      for (std::size_t i = 0; i < plane; ++i) dst[i] = src[i * cout] + b;
    }
  }
}

void conv2d_backward_input_im2col(const Tensor& grad_output,
                                  const Tensor& weight, const Conv2dSpec& spec,
                                  Tensor& grad_input, Tensor& scratch_pix,
                                  Tensor& scratch_columns, ThreadPool* pool) {
  FEDCLUST_REQUIRE(grad_output.rank() == 4 && grad_input.rank() == 4,
                   "conv backward tensors must be NCHW");
  const std::size_t n = grad_input.dim(0), h = grad_input.dim(2),
                    w = grad_input.dim(3);
  const std::size_t ho = spec.out_size(h), wo = spec.out_size(w);
  const std::size_t cout = spec.out_channels;
  FEDCLUST_REQUIRE(grad_output.shape() == Shape({n, cout, ho, wo}),
                   "grad_output shape mismatch");
  const std::size_t ckk = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t pixels = n * ho * wo;

  nchw_to_pixel_major(grad_output, scratch_pix);

  // grad_cols (pixels × ckk) = grad_pix (pixels × cout) · W (cout × ckk).
  scratch_columns.resize({pixels, ckk});
  const float* pa = scratch_pix.data();
  const float* pb = weight.data();
  float* pc = scratch_columns.data();
  const KernelTable* kp = &kernels();
  run_row_blocks(pixels, 2 * pixels * cout * ckk, pool,
                 [=](std::size_t i0, std::size_t i1) {
                   kp->gemm_nn_rows(pa, pb, pc, i0, i1, cout, ckk);
                 });

  col2im(scratch_columns, spec, grad_input);
}

void conv2d_backward_params_im2col(const Tensor& grad_output,
                                   const Tensor& columns,
                                   const Conv2dSpec& spec, Tensor& grad_weight,
                                   Tensor& grad_bias, Tensor& scratch_pix,
                                   ThreadPool* pool) {
  FEDCLUST_REQUIRE(grad_output.rank() == 4, "conv backward needs NCHW grads");
  const std::size_t cout = spec.out_channels;
  const std::size_t ckk = spec.in_channels * spec.kernel * spec.kernel;
  const std::size_t pixels =
      grad_output.dim(0) * grad_output.dim(2) * grad_output.dim(3);
  FEDCLUST_REQUIRE(grad_output.dim(1) == cout, "grad_output channel mismatch");
  FEDCLUST_REQUIRE(columns.shape() == Shape({pixels, ckk}),
                   "columns do not match grad_output geometry");
  FEDCLUST_REQUIRE(
      grad_weight.shape() ==
          Shape({spec.out_channels, spec.in_channels, spec.kernel, spec.kernel}),
      "grad_weight shape mismatch");
  FEDCLUST_REQUIRE(grad_bias.shape() == Shape{spec.out_channels},
                   "grad_bias shape mismatch");

  nchw_to_pixel_major(grad_output, scratch_pix);

  // dW (cout × ckk) = grad_pixᵀ (pixels × cout)ᵀ · columns (pixels × ckk).
  // grad_weight is contiguous (cout × ckk), so the TN core writes it in
  // place — overwrite semantics for free.
  const float* pa = scratch_pix.data();
  const float* pb = columns.data();
  float* pc = grad_weight.data();
  const KernelTable* kp = &kernels();
  run_row_blocks(cout, 2 * pixels * cout * ckk, pool,
                 [=](std::size_t i0, std::size_t i1) {
                   kp->gemm_tn_rows(pa, pb, pc, i0, i1, pixels, cout, ckk);
                 });

  // grad_bias[oc] = Σ over pixels of grad_pix[p, oc].
  grad_bias.zero();
  float* gb = grad_bias.data();
  const float* pix = scratch_pix.data();
  for (std::size_t p = 0; p < pixels; ++p) {
    kp->add(pix + p * cout, gb, cout);
  }
}

// -- Pooling -----------------------------------------------------------------

void max_pool_forward(const Tensor& input, std::size_t window, Tensor& output,
                      std::vector<std::size_t>& argmax) {
  FEDCLUST_REQUIRE(input.rank() == 4, "pool input must be NCHW");
  FEDCLUST_REQUIRE(window > 0, "pool window must be positive");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  FEDCLUST_REQUIRE(h % window == 0 && w % window == 0,
                   "pool window " << window << " must divide input "
                                  << h << "x" << w);
  const std::size_t ho = h / window, wo = w / window;
  if (output.shape() != Shape{n, c, ho, wo}) output = Tensor({n, c, ho, wo});
  argmax.assign(output.numel(), 0);

  std::size_t out_idx = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window; ++ky) {
            for (std::size_t kx = 0; kx < window; ++kx) {
              const std::size_t iy = oy * window + ky;
              const std::size_t ix = ox * window + kx;
              const std::size_t flat = ((img * c + ch) * h + iy) * w + ix;
              const float v = input[flat];
              if (v > best) {
                best = v;
                best_idx = flat;
              }
            }
          }
          output[out_idx] = best;
          argmax[out_idx] = best_idx;
        }
      }
    }
  }
}

void max_pool_backward(const Tensor& grad_output,
                       const std::vector<std::size_t>& argmax,
                       Tensor& grad_input) {
  FEDCLUST_REQUIRE(argmax.size() == grad_output.numel(),
                   "argmax does not match grad_output");
  grad_input.zero();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    grad_input[argmax[i]] += grad_output[i];
  }
}

void avg_pool_forward(const Tensor& input, std::size_t window,
                      Tensor& output) {
  FEDCLUST_REQUIRE(input.rank() == 4, "pool input must be NCHW");
  const std::size_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  FEDCLUST_REQUIRE(h % window == 0 && w % window == 0,
                   "pool window must divide input");
  const std::size_t ho = h / window, wo = w / window;
  if (output.shape() != Shape{n, c, ho, wo}) output = Tensor({n, c, ho, wo});
  const float inv = 1.0f / static_cast<float>(window * window);

  std::size_t out_idx = 0;
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox, ++out_idx) {
          double acc = 0.0;
          for (std::size_t ky = 0; ky < window; ++ky) {
            for (std::size_t kx = 0; kx < window; ++kx) {
              acc += input.at(img, ch, oy * window + ky, ox * window + kx);
            }
          }
          output[out_idx] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
}

void avg_pool_backward(const Tensor& grad_output, std::size_t window,
                       Tensor& grad_input) {
  const std::size_t n = grad_input.dim(0), c = grad_input.dim(1),
                    h = grad_input.dim(2), w = grad_input.dim(3);
  const std::size_t ho = h / window, wo = w / window;
  FEDCLUST_REQUIRE(grad_output.shape() == Shape({n, c, ho, wo}),
                   "avg_pool_backward shape mismatch");
  const float inv = 1.0f / static_cast<float>(window * window);
  for (std::size_t img = 0; img < n; ++img) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (std::size_t iy = 0; iy < h; ++iy) {
        for (std::size_t ix = 0; ix < w; ++ix) {
          grad_input.at(img, ch, iy, ix) =
              grad_output.at(img, ch, iy / window, ix / window) * inv;
        }
      }
    }
  }
}

// -- Softmax / misc ----------------------------------------------------------

void softmax_rows(const Tensor& logits, Tensor& probs) {
  FEDCLUST_REQUIRE(logits.rank() == 2, "softmax_rows needs a matrix");
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  if (probs.shape() != logits.shape()) probs = Tensor(logits.shape());
  const KernelTable* kp = &kernels();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* in = logits.data() + i * cols;
    float* out = probs.data() + i * cols;
    const float mx = kp->max(in, cols);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(in[j] - mx);
      sum += out[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    kp->scale(inv, out, cols);
  }
}

void logsumexp_rows(const Tensor& logits, std::vector<float>& out) {
  FEDCLUST_REQUIRE(logits.rank() == 2, "logsumexp_rows needs a matrix");
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  out.assign(rows, 0.0f);
  const KernelTable* kp = &kernels();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* in = logits.data() + i * cols;
    const float mx = kp->max(in, cols);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) sum += std::exp(in[j] - mx);
    out[i] = mx + static_cast<float>(std::log(sum));
  }
}

}  // namespace fedclust::ops
