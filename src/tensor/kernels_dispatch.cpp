// Kernel dispatch: picks the active KernelTable once at startup.
//
// The SIMD table participates only when (a) the build compiled
// kernels_simd.cpp in (FEDCLUST_SIMD_KERNELS), and (b) the host passes
// the one-time runtime ISA check — a binary carrying AVX2 kernels falls
// back to the scalar table on a pre-AVX2 host instead of faulting.
// set_simd_enabled() lets tests and benchmarks flip between the two
// tables inside one binary for A/B comparisons.
#include <atomic>

#include "tensor/kernels.hpp"

namespace fedclust::ops {

#ifdef FEDCLUST_SIMD_KERNELS
// Defined in kernels_simd.cpp (no header: scalar-only builds omit the TU).
const KernelTable& simd_kernel_table();
bool simd_kernel_table_supported();
#endif

namespace {

const KernelTable* simd_table_if_supported() {
#ifdef FEDCLUST_SIMD_KERNELS
  static const bool supported = simd_kernel_table_supported();
  return supported ? &simd_kernel_table() : nullptr;
#else
  return nullptr;
#endif
}

std::atomic<const KernelTable*>& active_table() {
  static std::atomic<const KernelTable*> active{[] {
    const KernelTable* simd = simd_table_if_supported();
    return simd ? simd : &scalar_kernels();
  }()};
  return active;
}

}  // namespace

const KernelTable* simd_kernels() { return simd_table_if_supported(); }

const KernelTable& kernels() {
  return *active_table().load(std::memory_order_relaxed);
}

bool simd_compiled() {
#ifdef FEDCLUST_SIMD_KERNELS
  return true;
#else
  return false;
#endif
}

bool simd_active() {
  const KernelTable* simd = simd_table_if_supported();
  return simd && active_table().load(std::memory_order_relaxed) == simd;
}

void set_simd_enabled(bool enabled) {
  const KernelTable* simd = simd_table_if_supported();
  const KernelTable* next = (enabled && simd) ? simd : &scalar_kernels();
  active_table().store(next, std::memory_order_relaxed);
}

}  // namespace fedclust::ops
