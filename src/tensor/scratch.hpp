// Reusable per-layer scratch storage for the GEMM/im2col compute path.
//
// Hot training loops need several temporaries per batch (im2col columns,
// pixel-major GEMM results, gradient workspaces). Allocating them anew
// every batch would put a malloc/free pair on the critical path of every
// client step; a ScratchArena instead keeps one Tensor per slot alive
// across batches and reshapes it in place, so steady-state training does
// zero heap allocation per batch. The arena counts buffer growths, which
// is how tests assert the zero-allocation property.
#pragma once

#include <cstddef>
#include <deque>

#include "tensor/tensor.hpp"

namespace fedclust {

/// A small set of reusable Tensor slots addressed by index. Slots grow to
/// the high-water-mark shape of their use site and are then reused
/// without touching the heap. Slots are Tensors, so every workspace
/// inherits the 64-byte-aligned backing store (tensor/aligned.hpp) the
/// SIMD kernels expect.
class ScratchArena {
 public:
  ScratchArena() = default;

  /// Returns slot `key` resized to `shape`. The buffer is reused whenever
  /// its capacity suffices; contents are unspecified (callers overwrite).
  Tensor& acquire(std::size_t key, const Shape& shape);

  /// Returns slot `key` with its current shape intact (empty if never
  /// shaped). For kernels that resize their scratch in place, and for
  /// reading back a slot another pass filled (e.g. cached im2col columns).
  Tensor& slot(std::size_t key);

  /// Number of slots ever touched.
  std::size_t num_slots() const { return slots_.size(); }

  /// Cumulative count of heap (re)allocations performed by acquire().
  /// Stable across batches once every slot reached its steady-state
  /// shape — the property the Conv2d zero-allocation test checks.
  std::size_t allocations() const { return allocations_; }

  /// Total floats currently held across all slots' buffers.
  std::size_t footprint() const;

  /// Drops all slots (and their buffers).
  void reset();

 private:
  // deque: references to existing slots stay valid when a higher key
  // grows the container (callers hold several slots at once).
  std::deque<Tensor> slots_;
  std::size_t allocations_ = 0;
};

}  // namespace fedclust
