// Dense row-major float32 tensor.
//
// This is the numeric substrate for the from-scratch neural-network
// library: a contiguous buffer plus a shape, with cheap element access
// and a small set of structural operations. Heavy math kernels (matmul,
// conv2d, pooling) live in tensor/ops.hpp so they can be tested and
// benchmarked independently of the container.
//
// Design choices:
//  * float32 only — matches what FL systems ship over the wire, and the
//    communication accounting in src/fl meters parameter vectors at
//    float32 width.
//  * value semantics — copying a Tensor copies the buffer. Model cloning
//    in the FL engine relies on this being a deep copy.
//  * shapes up to rank 4 (N, C, H, W) cover every layer in this repo.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/aligned.hpp"
#include "utils/error.hpp"

namespace fedclust {

class Rng;

/// Shape of a tensor; rank 0 (scalar) through rank 4.
using Shape = std::vector<std::size_t>;

/// Returns the number of elements a shape describes (1 for rank 0).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

/// Dense row-major float tensor with value semantics.
class Tensor {
 public:
  /// Empty tensor: rank 0 with a single zero element is NOT created;
  /// default state has no elements and empty shape.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Copies the provided data into aligned storage; data.size() must
  /// equal shape_numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  // -- factories ----------------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);

  // -- structure ----------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  /// Size of dimension `d`; throws if d >= rank.
  std::size_t dim(std::size_t d) const;

  /// Returns a copy with a new shape; numel must match.
  Tensor reshaped(Shape new_shape) const;
  /// Reshapes in place; numel must match.
  void reshape(Shape new_shape);

  /// Resizes to a new shape, REUSING the existing buffer when its
  /// capacity suffices (contents are unspecified afterwards). This is
  /// what lets ScratchArena hand out per-batch workspaces without
  /// steady-state heap traffic.
  void resize(Shape new_shape);
  /// Allocated buffer capacity in floats (>= numel()).
  std::size_t buffer_capacity() const { return data_.capacity(); }

  // -- element access -----------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    FEDCLUST_DCHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    FEDCLUST_DCHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  /// 2-D access (rank-2 tensors).
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;
  /// 4-D access (rank-4 tensors, NCHW).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  // -- in-place arithmetic --------------------------------------------------
  void fill(float v);
  void zero() { fill(0.0f); }
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  /// this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  /// Elementwise multiply in place (shapes must match).
  void hadamard(const Tensor& other);

  // -- reductions -----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties). Requires numel > 0.
  std::size_t argmax() const;
  /// Euclidean norm of the flattened tensor.
  float norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  // 64-byte-aligned so SIMD kernels' leading vector loads on any buffer
  // (and ScratchArena slots, which are Tensors) sit on cache lines.
  AlignedFloatVector data_;
};

// -- non-member arithmetic ----------------------------------------------
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);
Tensor operator*(float scalar, Tensor rhs);

/// Dot product of two flattened tensors of equal numel.
float dot(const Tensor& a, const Tensor& b);
/// Euclidean distance between two flattened tensors of equal numel.
float euclidean_distance(const Tensor& a, const Tensor& b);
/// Cosine similarity of flattened tensors; 0 if either has zero norm.
float cosine_similarity(const Tensor& a, const Tensor& b);

}  // namespace fedclust
