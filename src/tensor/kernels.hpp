// Runtime-dispatched CPU kernel table: the single seam between the
// numeric call sites (tensor/ops, nn, fl, cluster) and the ISA-specific
// implementations.
//
// Two tables exist:
//  * scalar_kernels() — hand-written scalar loops, compiled with the
//    project's baseline flags. Always present; semantically identical to
//    the pre-SIMD code (double accumulation in reductions, fixed
//    per-element accumulation order in the GEMM cores).
//  * simd_kernels()   — the same kernel contracts implemented over
//    tensor/simd.hpp (AVX2+FMA on x86, NEON on aarch64), compiled in a
//    dedicated translation unit with the ISA flags when the build enables
//    FEDCLUST_SIMD. nullptr when not compiled in.
//
// kernels() returns the active table: the SIMD one iff it was compiled
// in, the host supports the ISA (one-time runtime check), and it has not
// been disabled via set_simd_enabled(false) — the override equivalence
// tests and benchmarks use to compare both paths inside one binary.
//
// Determinism contract: every kernel accumulates each output element in
// an order fixed by (element index, problem size) alone — never by
// thread count or caller-side chunking, provided callers split work on
// kChunkAlign boundaries (see weighted_accumulate). Scalar and SIMD
// tables may differ in low-order bits (different but fixed orders), so
// cross-BUILD equivalence is tolerance-based while within-build runs are
// bit-identical.
#pragma once

#include <cstddef>

namespace fedclust::ops {

/// Splitting granularity (in floats) callers must use when chunking a
/// flat range across threads: a multiple of every vector width and of
/// the 64-byte cache line, so each element keeps the same vector-lane
/// membership no matter how many chunks the range is cut into.
inline constexpr std::size_t kChunkAlign = 64;

/// ISA-specialized kernel entry points. All pointers are non-null.
struct KernelTable {
  const char* name;  ///< "scalar", "avx2+fma", or "neon"

  // -- GEMM row cores (contracts match tensor/ops.cpp wrappers) -----------
  /// C[i0:i1) = A(m×k)·B(k×n); C rows are overwritten.
  void (*gemm_nn_rows)(const float* a, const float* b, float* c,
                       std::size_t i0, std::size_t i1, std::size_t k,
                       std::size_t n);
  /// C[i0:i1) = Aᵀ(k×m)·B(k×n) with A stored k-major.
  void (*gemm_tn_rows)(const float* a, const float* b, float* c,
                       std::size_t i0, std::size_t i1, std::size_t k,
                       std::size_t m, std::size_t n);
  /// C[i0:i1) = A(m×k)·Bᵀ(n×k).
  void (*gemm_nt_rows)(const float* a, const float* b, float* c,
                       std::size_t i0, std::size_t i1, std::size_t k,
                       std::size_t n);

  // -- elementwise f32 ------------------------------------------------------
  void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
  void (*scale)(float s, float* x, std::size_t n);
  void (*add)(const float* x, float* y, std::size_t n);  ///< y += x
  void (*sub)(const float* x, float* y, std::size_t n);  ///< y -= x
  void (*mul)(const float* x, float* y, std::size_t n);  ///< y *= x
  /// y = a*x + b; x may alias y (in-place).
  void (*scale_shift)(const float* x, float* y, float a, float b,
                      std::size_t n);
  /// y = (x - mean) * inv  (BatchNorm normalize, subtract-then-scale order)
  void (*sub_mul)(const float* x, float* y, float mean, float inv,
                  std::size_t n);
  void (*relu_forward)(const float* x, float* y, std::size_t n);
  /// g = x > 0 ? g : 0
  void (*relu_backward)(const float* x, float* g, std::size_t n);

  // -- reductions (f32 in, f64 accumulation, fixed lane order) -------------
  double (*sum)(const float* x, std::size_t n);
  double (*dot)(const float* a, const float* b, std::size_t n);
  double (*sqnorm)(const float* x, std::size_t n);  ///< Σ x²
  double (*sqdist)(const float* a, const float* b, std::size_t n);  ///< Σ(a−b)²
  /// Σ (x − mean)², the BatchNorm variance pass.
  double (*sqdev)(const float* x, double mean, std::size_t n);
  float (*max)(const float* x, std::size_t n);  ///< n must be > 0

  // -- fused kernels --------------------------------------------------------
  /// out[i] = Σ_u coeff[u]·srcs[u][i] for i in [begin, end), accumulated
  /// in double in ascending u. Callers chunking [0, dim) across threads
  /// must cut on kChunkAlign boundaries for bit-identical results.
  void (*weighted_accumulate)(const float* const* srcs, const double* coeff,
                              std::size_t num, float* out, std::size_t begin,
                              std::size_t end);
  /// Streaming continuation of weighted_accumulate:
  /// acc[i] += Σ_u coeff[u]·srcs[u][i] for i in [begin, end), where `acc`
  /// is the caller's running double accumulator. Folding one update list
  /// through this kernel in slot-order batches and finally casting acc to
  /// float reproduces weighted_accumulate's output bit-for-bit for ANY
  /// batch/edge grouping — each element sees the identical operation
  /// sequence, only parked in memory between batches. This is what makes
  /// hierarchical (edge-tree) weighted-mean aggregation exact against the
  /// flat path. Same kChunkAlign chunking contract as
  /// weighted_accumulate.
  void (*weighted_accumulate_partial)(const float* const* srcs,
                                      const double* coeff, std::size_t num,
                                      double* acc, std::size_t begin,
                                      std::size_t end);
  /// dx[i] = scale·(dy[i] − mean_dy − xh[i]·mean_dy_xhat), double math.
  void (*bn_backward_dx)(const float* dy, const float* xh, float* dx,
                         double scale, double mean_dy, double mean_dy_xhat,
                         std::size_t n);

  // -- update-compression codecs (src/compress) ----------------------------
  /// q[i] = clamp(rint(x[i]·inv_scale), −qmax, qmax), round-to-nearest-even
  /// in every lane (the int8/int4 linear quantizer; qmax = 127 or 7).
  /// Strictly element-wise, so any kChunkAlign-aligned split is exact.
  /// Non-finite x[i] deterministically clamp to −qmax on every ISA —
  /// encoders pre-screen finiteness, this only pins the kernel contract.
  void (*quantize_i8)(const float* x, signed char* q, float inv_scale,
                      int qmax, std::size_t n);
  /// x[i] = q[i]·scale (the matching dequantizer).
  void (*dequantize_i8)(const signed char* q, float* x, float scale,
                        std::size_t n);
  /// max |x[i]| over [0, n); 0 for n == 0. Exact for finite inputs on
  /// every table (max is order-independent); callers screen non-finite
  /// values themselves before deriving quantizer scales from this.
  float (*absmax)(const float* x, std::size_t n);
};

/// The always-available scalar table.
const KernelTable& scalar_kernels();

/// The SIMD table, or nullptr when the build did not compile one in.
const KernelTable* simd_kernels();

/// The active table used by all call sites.
const KernelTable& kernels();

/// True when a SIMD table was compiled into this binary.
bool simd_compiled();

/// True when the SIMD table is compiled in, the host passes the runtime
/// ISA check, and it has not been disabled.
bool simd_active();

/// Force-enables/disables the SIMD table at runtime (tests/benchmarks
/// compare both paths in one binary). Enabling is a no-op when no SIMD
/// table is compiled in or the host lacks the ISA. Not thread-safe
/// against concurrently running kernels; flip only between operations.
void set_simd_enabled(bool enabled);

}  // namespace fedclust::ops
