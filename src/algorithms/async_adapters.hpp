// fl::AsyncAdapter bindings for the baseline algorithms.
//
// Each adapter wraps an algorithm's extracted state + round body
// (FedAvg/FedProx via per_cluster_fedavg_round, CFL via Cfl::round,
// IFCA via Ifca::round, PACFL via Pacfl::formation) so that
// fl::run_synchronized replays the classic run() loop bit-identically
// and — where cluster membership is static after formation —
// fl::run_async can drive the same state through buffered flushes.
//
// CFL re-clusters every round and IFCA re-estimates identities every
// round, so both are sync-only (supports_async() = false); FedAvg,
// FedProx, and PACFL are async-capable. FedClust's adapter lives in
// core/fedclust_async.hpp.
#pragma once

#include <optional>

#include "algorithms/cfl.hpp"
#include "algorithms/ifca.hpp"
#include "algorithms/pacfl.hpp"
#include "fl/async.hpp"

namespace fedclust::algorithms {

/// FedAvg — and, with a proximal coefficient, FedProx — as the
/// one-cluster adapter: a single global model everyone trains.
class GlobalAverageAdapter : public fl::AsyncAdapter {
 public:
  /// No `mu`: FedAvg. With `mu`: FedProx (local objective gains the
  /// proximal term, exactly as FedProx::run builds it).
  explicit GlobalAverageAdapter(std::optional<double> mu = std::nullopt)
      : mu_(mu) {}

  std::string name() const override { return mu_ ? "FedProx" : "FedAvg"; }
  std::size_t begin(fl::Federation& federation,
                    fl::RunResult& result) override;
  double sync_round(fl::Federation& federation, std::size_t round) override;
  fl::AccuracySummary evaluate(const fl::Federation& federation) const override;
  std::uint64_t fingerprint() const override;
  std::size_t num_clusters() const override { return 1; }
  void finish(fl::RunResult& result) override;

  bool supports_async() const override { return true; }
  std::size_t cluster_of(std::size_t) const override { return 0; }
  std::span<const float> cluster_model(std::size_t cluster) const override;
  void set_cluster_model(std::size_t cluster,
                         std::vector<float> weights) override;
  const fl::LocalTrainConfig* local_override() const override;

  void save_state(robust::RunCheckpoint& checkpoint) const override;
  void restore_state(fl::Federation& federation,
                     const robust::RunCheckpoint& checkpoint) override;

 private:
  std::optional<double> mu_;
  std::optional<fl::LocalTrainConfig> local_;
  std::vector<std::size_t> labels_;
  std::vector<std::vector<float>> cluster_weights_;
};

/// CFL under the wave driver. Sync-only: the eps1/eps2 split check is
/// part of every round, so membership is never static.
class CflAdapter : public fl::AsyncAdapter {
 public:
  explicit CflAdapter(CflConfig config) : algo_(config) {}

  std::string name() const override { return algo_.name(); }
  std::size_t begin(fl::Federation& federation,
                    fl::RunResult& result) override;
  double sync_round(fl::Federation& federation, std::size_t round) override;
  fl::AccuracySummary evaluate(const fl::Federation& federation) const override;
  std::uint64_t fingerprint() const override;
  std::size_t num_clusters() const override {
    return state_.cluster_weights.size();
  }
  void finish(fl::RunResult& result) override;

 private:
  Cfl algo_;
  CflState state_;
};

/// IFCA under the wave driver. Sync-only: identity estimation reruns
/// every round.
class IfcaAdapter : public fl::AsyncAdapter {
 public:
  explicit IfcaAdapter(IfcaConfig config) : algo_(config) {}

  std::string name() const override { return algo_.name(); }
  std::size_t begin(fl::Federation& federation,
                    fl::RunResult& result) override;
  double sync_round(fl::Federation& federation, std::size_t round) override;
  fl::AccuracySummary evaluate(const fl::Federation& federation) const override;
  std::uint64_t fingerprint() const override;
  std::size_t num_clusters() const override;
  void finish(fl::RunResult& result) override;

 private:
  Ifca algo_;
  IfcaState state_;
};

/// PACFL: one-shot data-subspace clustering in begin(), then static
/// per-cluster FedAvg — async-capable.
class PacflAdapter : public fl::AsyncAdapter {
 public:
  explicit PacflAdapter(PacflConfig config) : algo_(config) {}

  std::string name() const override { return algo_.name(); }
  std::size_t begin(fl::Federation& federation,
                    fl::RunResult& result) override;
  double sync_round(fl::Federation& federation, std::size_t round) override;
  fl::AccuracySummary evaluate(const fl::Federation& federation) const override;
  std::uint64_t fingerprint() const override;
  std::size_t num_clusters() const override { return cluster_weights_.size(); }
  void finish(fl::RunResult& result) override;

  bool supports_async() const override { return true; }
  std::size_t cluster_of(std::size_t client) const override {
    return labels_.at(client);
  }
  std::span<const float> cluster_model(std::size_t cluster) const override;
  void set_cluster_model(std::size_t cluster,
                         std::vector<float> weights) override;

  void save_state(robust::RunCheckpoint& checkpoint) const override;
  void restore_state(fl::Federation& federation,
                     const robust::RunCheckpoint& checkpoint) override;

 private:
  Pacfl algo_;
  std::vector<std::size_t> labels_;
  std::vector<std::vector<float>> cluster_weights_;
};

}  // namespace fedclust::algorithms
