#include "algorithms/cfl.hpp"

#include <algorithm>
#include <cmath>

#include "algorithms/common.hpp"
#include "check/audit.hpp"
#include "cluster/distance.hpp"
#include "cluster/hierarchical.hpp"

namespace fedclust::algorithms {
namespace {

double vector_norm(const std::vector<float>& v) {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

}  // namespace

CflState Cfl::init(const fl::Federation& federation) const {
  CflState state;
  state.labels.assign(federation.num_clients(), 0);
  state.cluster_weights = {federation.template_model().flat_weights()};
  return state;
}

double Cfl::round(fl::Federation& federation, std::size_t round_index,
                  CflState& state) const {
  std::vector<std::size_t>& labels = state.labels;
  std::vector<std::vector<float>>& cluster_weights = state.cluster_weights;

  const std::vector<std::size_t> participants =
      federation.sample_clients(round_index);

  for (std::size_t cid : participants) {
    federation.meter_download(cid, federation.model_size());
  }
  const std::vector<fl::ClientUpdate> updates = federation.train_clients(
      participants, round_index, [&](std::size_t cid) {
        return std::span<const float>(cluster_weights[labels[cid]]);
      });

  // Collect per-cluster update vectors Δ_i = w_i - w_cluster before the
  // aggregation overwrites the cluster weights.
  std::vector<std::vector<const fl::ClientUpdate*>> by_cluster(
      cluster_weights.size());
  double loss_sum = 0.0;
  for (const fl::ClientUpdate& u : updates) {
    federation.meter_upload(u.client_id, federation.model_size());
    loss_sum += u.train_loss;
    by_cluster[labels[u.client_id]].push_back(&u);
  }

  std::vector<std::vector<std::vector<float>>> deltas(cluster_weights.size());
  for (std::size_t c = 0; c < by_cluster.size(); ++c) {
    for (const fl::ClientUpdate* u : by_cluster[c]) {
      std::vector<float> d(u->weights.size());
      for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = u->weights[i] - cluster_weights[c][i];
      }
      deltas[c].push_back(std::move(d));
    }
  }

  // Standard per-cluster aggregation.
  for (std::size_t c = 0; c < by_cluster.size(); ++c) {
    if (by_cluster[c].empty()) continue;
    std::vector<fl::ClientUpdate> tmp;
    tmp.reserve(by_cluster[c].size());
    for (const fl::ClientUpdate* u : by_cluster[c]) tmp.push_back(*u);
    cluster_weights[c] = federation.aggregate(tmp, cluster_weights[c]);
  }

  // Split check per cluster (Sattler's eps1/eps2 criterion).
  if (round_index >= config_.warmup_rounds) {
    const std::size_t existing = cluster_weights.size();
    for (std::size_t c = 0; c < existing; ++c) {
      const auto& ds = deltas[c];
      if (ds.size() <= config_.min_cluster_size) continue;

      std::vector<float> mean(ds.front().size(), 0.0f);
      for (const auto& d : ds) {
        for (std::size_t i = 0; i < mean.size(); ++i) {
          mean[i] += d[i] / static_cast<float>(ds.size());
        }
      }
      double max_norm = 0.0;
      for (const auto& d : ds) max_norm = std::max(max_norm, vector_norm(d));
      if (vector_norm(mean) >= config_.eps1 || max_norm <= config_.eps2) {
        continue;
      }

      // Bipartition members along the cosine structure of their updates.
      const Matrix dist = cluster::pairwise_cosine_distance(ds);
      const cluster::Dendrogram dendro =
          cluster::agglomerative_cluster(dist, cluster::Linkage::kComplete);
      const std::vector<std::size_t> split = dendro.cut_k(2);

      // Members with split label 1 move to a brand-new cluster whose
      // model starts from the (already aggregated) parent weights.
      const std::size_t new_cluster = cluster_weights.size();
      bool any_moved = false;
      for (std::size_t m = 0; m < by_cluster[c].size(); ++m) {
        if (split[m] == 1) {
          labels[by_cluster[c][m]->client_id] = new_cluster;
          any_moved = true;
        }
      }
      if (any_moved) {
        cluster_weights.push_back(cluster_weights[c]);
      }
    }
  }

  return updates.empty() ? 0.0
                         : loss_sum / static_cast<double>(updates.size());
}

fl::RunResult Cfl::run(fl::Federation& federation, std::size_t rounds) {
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();

  CflState state = init(federation);

  for (std::size_t r = 0; r < rounds; ++r) {
    federation.comm().begin_round(r);
    const double loss = round(federation, r, state);
    const bool last = r + 1 == rounds;
    if (last || (r + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc = evaluate_clustered(
          federation, state.labels, state.cluster_weights);
      result.rounds.push_back(fl::make_round_metrics(
          r, acc, loss, federation, state.cluster_weights.size(),
          check::weights_fingerprint(state.cluster_weights)));
      if (last) result.final_accuracy = acc;
    }
  }

  result.cluster_labels = state.labels;
  return result;
}

}  // namespace fedclust::algorithms
