// PACFL — clustered FL via Principal Angles between Client data
// subspaces (Vahidian et al., AAAI 2023).
//
// One-shot like FedClust, but driven by RAW DATA instead of weights:
// before training, every client computes a truncated SVD of each local
// class's data matrix (flattened images as columns), uploads the leading
// left singular vectors, and the server clusters clients by the
// principal angles between those subspaces.
//
// Variation from the original: we use the mean of the principal angles
// between the clients' concatenated (re-orthonormalized) class bases as
// the dissimilarity, rather than the per-class-pair minimum-angle
// bookkeeping of the original code — the resulting proximity structure
// is the same for label-skew partitions, and the mean is
// rotation-invariant and needs no class alignment.
#pragma once

#include "cluster/hierarchical.hpp"
#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

struct PacflConfig {
  /// Singular vectors kept per present class (p in the paper).
  std::size_t subspace_rank = 3;
  /// Cap on samples per class entering the SVD (keeps the client-side
  /// cost bounded; the PACFL code subsamples similarly).
  std::size_t samples_per_class_cap = 30;
  cluster::Linkage linkage = cluster::Linkage::kAverage;
  /// HC cut threshold on the angle dissimilarity (radians); 0 = choose
  /// automatically from the dendrogram's largest gap.
  double threshold = 0.0;
  double min_gap_ratio = 2.0;
};

class Pacfl : public fl::Algorithm {
 public:
  explicit Pacfl(PacflConfig config) : config_(config) {}

  std::string name() const override { return "PACFL"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const PacflConfig& config() const { return config_; }

  /// The one-shot clustering step alone (exposed for tests/ablations):
  /// returns per-client labels and, through `dissimilarity_out` if
  /// non-null, the angle matrix. `upload_bytes_out` receives the total
  /// wire cost of shipping every basis; `basis_floats_out` the per-client
  /// basis sizes in float32 values (what run() meters and simulates).
  std::vector<std::size_t> cluster_clients(
      const fl::Federation& federation, Matrix* dissimilarity_out = nullptr,
      std::uint64_t* upload_bytes_out = nullptr,
      std::vector<std::size_t>* basis_floats_out = nullptr) const;

  /// The whole round-0 phase as run() executes it: opens comm round 0,
  /// clusters from subspace bases, meters and simulates the basis
  /// uploads, seeds one template copy per cluster into
  /// `cluster_weights_out`, and appends the round-0 metrics entry.
  /// Returns the labels. Shared by run() and the async adapter so
  /// formation is one code path.
  std::vector<std::size_t> formation(
      fl::Federation& federation, fl::RunResult& result,
      std::vector<std::vector<float>>& cluster_weights_out) const;

 private:
  PacflConfig config_;
};

}  // namespace fedclust::algorithms
