#include "algorithms/async_adapters.hpp"

#include "algorithms/common.hpp"
#include "check/audit.hpp"
#include "cluster/hierarchical.hpp"

namespace fedclust::algorithms {

// --- GlobalAverageAdapter (FedAvg / FedProx) -------------------------------

std::size_t GlobalAverageAdapter::begin(fl::Federation& federation,
                                        fl::RunResult& result) {
  result.cluster_labels.assign(federation.num_clients(), 0);
  labels_.assign(federation.num_clients(), 0);
  cluster_weights_.assign(1, federation.template_model().flat_weights());
  if (mu_) {
    fl::LocalTrainConfig local = federation.config().local;
    local.sgd.prox_mu = *mu_;
    local_ = local;
  }
  return 0;
}

double GlobalAverageAdapter::sync_round(fl::Federation& federation,
                                        std::size_t round) {
  return per_cluster_fedavg_round(federation, round, labels_, cluster_weights_,
                                  local_override());
}

fl::AccuracySummary GlobalAverageAdapter::evaluate(
    const fl::Federation& federation) const {
  return evaluate_clustered(federation, labels_, cluster_weights_);
}

std::uint64_t GlobalAverageAdapter::fingerprint() const {
  return check::weights_fingerprint(cluster_weights_);
}

void GlobalAverageAdapter::finish(fl::RunResult& result) {
  result.cluster_labels = labels_;
}

std::span<const float> GlobalAverageAdapter::cluster_model(
    std::size_t cluster) const {
  return std::span<const float>(cluster_weights_.at(cluster));
}

void GlobalAverageAdapter::set_cluster_model(std::size_t cluster,
                                             std::vector<float> weights) {
  cluster_weights_.at(cluster) = std::move(weights);
}

const fl::LocalTrainConfig* GlobalAverageAdapter::local_override() const {
  return local_ ? &*local_ : nullptr;
}

void GlobalAverageAdapter::save_state(
    robust::RunCheckpoint& checkpoint) const {
  checkpoint.labels.assign(labels_.begin(), labels_.end());
  checkpoint.cluster_weights = cluster_weights_;
}

void GlobalAverageAdapter::restore_state(
    fl::Federation& federation, const robust::RunCheckpoint& checkpoint) {
  labels_.assign(checkpoint.labels.begin(), checkpoint.labels.end());
  cluster_weights_ = checkpoint.cluster_weights;
  if (mu_) {
    fl::LocalTrainConfig local = federation.config().local;
    local.sgd.prox_mu = *mu_;
    local_ = local;
  }
}

// --- CflAdapter ------------------------------------------------------------

std::size_t CflAdapter::begin(fl::Federation& federation, fl::RunResult&) {
  state_ = algo_.init(federation);
  return 0;
}

double CflAdapter::sync_round(fl::Federation& federation, std::size_t round) {
  return algo_.round(federation, round, state_);
}

fl::AccuracySummary CflAdapter::evaluate(
    const fl::Federation& federation) const {
  return evaluate_clustered(federation, state_.labels, state_.cluster_weights);
}

std::uint64_t CflAdapter::fingerprint() const {
  return check::weights_fingerprint(state_.cluster_weights);
}

void CflAdapter::finish(fl::RunResult& result) {
  result.cluster_labels = state_.labels;
}

// --- IfcaAdapter -----------------------------------------------------------

std::size_t IfcaAdapter::begin(fl::Federation& federation, fl::RunResult&) {
  state_ = algo_.init(federation);
  return 0;
}

double IfcaAdapter::sync_round(fl::Federation& federation, std::size_t round) {
  return algo_.round(federation, round, state_);
}

fl::AccuracySummary IfcaAdapter::evaluate(
    const fl::Federation& federation) const {
  return evaluate_clustered(federation, state_.labels, state_.models);
}

std::uint64_t IfcaAdapter::fingerprint() const {
  return check::weights_fingerprint(state_.models);
}

std::size_t IfcaAdapter::num_clusters() const {
  return cluster::num_clusters(state_.labels);
}

void IfcaAdapter::finish(fl::RunResult& result) {
  result.cluster_labels = state_.labels;
}

// --- PacflAdapter ----------------------------------------------------------

std::size_t PacflAdapter::begin(fl::Federation& federation,
                                fl::RunResult& result) {
  labels_ = algo_.formation(federation, result, cluster_weights_);
  return 1;
}

double PacflAdapter::sync_round(fl::Federation& federation,
                                std::size_t round) {
  return per_cluster_fedavg_round(federation, round, labels_,
                                  cluster_weights_);
}

fl::AccuracySummary PacflAdapter::evaluate(
    const fl::Federation& federation) const {
  return evaluate_clustered(federation, labels_, cluster_weights_);
}

std::uint64_t PacflAdapter::fingerprint() const {
  return check::weights_fingerprint(cluster_weights_);
}

void PacflAdapter::finish(fl::RunResult& result) {
  result.cluster_labels = labels_;
}

std::span<const float> PacflAdapter::cluster_model(std::size_t cluster) const {
  return std::span<const float>(cluster_weights_.at(cluster));
}

void PacflAdapter::set_cluster_model(std::size_t cluster,
                                     std::vector<float> weights) {
  cluster_weights_.at(cluster) = std::move(weights);
}

void PacflAdapter::save_state(robust::RunCheckpoint& checkpoint) const {
  checkpoint.labels.assign(labels_.begin(), labels_.end());
  checkpoint.cluster_weights = cluster_weights_;
}

void PacflAdapter::restore_state(fl::Federation&,
                                 const robust::RunCheckpoint& checkpoint) {
  labels_.assign(checkpoint.labels.begin(), checkpoint.labels.end());
  cluster_weights_ = checkpoint.cluster_weights;
}

}  // namespace fedclust::algorithms
