// IFCA — the Iterative Federated Clustering Algorithm (Ghosh et al.,
// NeurIPS 2020).
//
// The server keeps k cluster models. Every round each participating
// client downloads ALL k models, picks the one with the lowest loss on
// its local data (cluster-identity estimation), trains that model, and
// uploads the result; the server averages per cluster.
//
// The paper's critique that FedClust addresses: k must be chosen a
// priori, and broadcasting k models multiplies the download cost.
#pragma once

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

struct IfcaConfig {
  std::size_t num_clusters = 2;
  /// Scale of the random perturbation that differentiates the k initial
  /// models (all derive from the federation's template).
  double init_perturbation = 0.05;
};

/// IFCA's evolving server state: the k cluster models plus the latest
/// per-client identity estimates. Separated out so the classic run()
/// loop and the engine-driven wave driver (fl::run_synchronized) execute
/// the exact same round body over the exact same state.
struct IfcaState {
  std::vector<std::vector<float>> models;
  std::vector<std::size_t> labels;
};

class Ifca : public fl::Algorithm {
 public:
  explicit Ifca(IfcaConfig config) : config_(config) {}

  std::string name() const override { return "IFCA"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const IfcaConfig& config() const { return config_; }

  /// Initial state: k perturbed copies of the template, everyone in
  /// cluster 0.
  IfcaState init(const fl::Federation& federation) const;

  /// One synchronous IFCA round over `state`: identity estimation over
  /// the k delivered models, training on the chosen model, per-cluster
  /// aggregation. The caller has opened the comm round. Returns the
  /// round's mean train loss.
  double round(fl::Federation& federation, std::size_t round_index,
               IfcaState& state) const;

 private:
  IfcaConfig config_;
};

}  // namespace fedclust::algorithms
