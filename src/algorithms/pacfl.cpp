#include "algorithms/pacfl.hpp"

#include <algorithm>
#include <numeric>

#include "algorithms/common.hpp"
#include "check/audit.hpp"
#include "linalg/svd.hpp"

namespace fedclust::algorithms {
namespace {

/// Client-side: orthonormal basis spanning the top-p directions of each
/// locally present class, concatenated column-wise (d × Σ_c p_c).
Matrix client_subspace_basis(const data::Dataset& train,
                             const PacflConfig& config) {
  const std::size_t d = train.spec().channels * train.spec().height *
                        train.spec().width;
  std::vector<std::vector<std::size_t>> by_class(train.spec().classes);
  for (std::size_t i = 0; i < train.size(); ++i) {
    by_class[static_cast<std::size_t>(train.label(i))].push_back(i);
  }

  std::vector<Matrix> blocks;
  std::size_t total_cols = 0;
  for (const auto& cls : by_class) {
    if (cls.empty()) continue;
    const std::size_t take =
        std::min(cls.size(), config.samples_per_class_cap);
    Matrix a(d, take);
    for (std::size_t j = 0; j < take; ++j) {
      const Tensor img = train.image(cls[j]);
      for (std::size_t i = 0; i < d; ++i) a(i, j) = img[i];
    }
    const std::size_t p = std::min(config.subspace_rank, take);
    Matrix u = truncated_left_singular_vectors_gram(a, p);
    total_cols += u.cols();
    blocks.push_back(std::move(u));
  }
  FEDCLUST_CHECK(total_cols > 0, "client has no data for PACFL basis");

  Matrix basis(d, total_cols);
  std::size_t col = 0;
  for (const Matrix& b : blocks) {
    for (std::size_t j = 0; j < b.cols(); ++j, ++col) {
      for (std::size_t i = 0; i < d; ++i) basis(i, col) = b(i, j);
    }
  }
  // Columns are orthonormal within a class but not across classes;
  // re-orthonormalize so principal angles are well-defined.
  const std::size_t rank = orthonormalize_columns(basis);
  if (rank < basis.cols()) {
    Matrix trimmed(d, rank);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < rank; ++j) trimmed(i, j) = basis(i, j);
    }
    return trimmed;
  }
  return basis;
}

}  // namespace

std::vector<std::size_t> Pacfl::cluster_clients(
    const fl::Federation& federation, Matrix* dissimilarity_out,
    std::uint64_t* upload_bytes_out,
    std::vector<std::size_t>* basis_floats_out) const {
  const std::size_t n = federation.num_clients();

  std::vector<Matrix> bases;
  bases.reserve(n);
  std::vector<std::size_t> basis_floats(n, 0);
  std::uint64_t upload_bytes = 0;
  for (std::size_t c = 0; c < n; ++c) {
    bases.push_back(
        client_subspace_basis(federation.client_data(c)->train, config_));
    basis_floats[c] = bases.back().rows() * bases.back().cols();
    upload_bytes += federation.upload_wire_bytes(basis_floats[c]);
  }

  Matrix dis(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const std::vector<double> angles = principal_angles(bases[i], bases[j]);
      const double mean =
          std::accumulate(angles.begin(), angles.end(), 0.0) /
          static_cast<double>(angles.size());
      dis(i, j) = mean;
      dis(j, i) = mean;
    }
  }

  const cluster::Dendrogram dendro =
      cluster::agglomerative_cluster(dis, config_.linkage);
  const double threshold =
      config_.threshold > 0.0
          ? config_.threshold
          : cluster::suggest_threshold(dendro, config_.min_gap_ratio);

  if (dissimilarity_out != nullptr) *dissimilarity_out = dis;
  if (upload_bytes_out != nullptr) *upload_bytes_out = upload_bytes;
  if (basis_floats_out != nullptr) *basis_floats_out = std::move(basis_floats);
  std::vector<std::size_t> labels = dendro.cut_threshold(threshold);
  if (federation.config().audit) {
    check::audit_dendrogram_monotone(dendro);
    check::audit_cluster_partition(labels);
  }
  return labels;
}

std::vector<std::size_t> Pacfl::formation(
    fl::Federation& federation, fl::RunResult& result,
    std::vector<std::vector<float>>& cluster_weights_out) const {
  // Round 0: one-shot clustering from data subspaces (upload only — no
  // model travels).
  federation.comm().begin_round(0);
  std::vector<std::size_t> basis_floats;
  std::vector<std::size_t> labels =
      cluster_clients(federation, nullptr, nullptr, &basis_floats);
  for (std::size_t c = 0; c < basis_floats.size(); ++c) {
    federation.meter_upload(c, basis_floats[c]);
  }
  // Formation is synchronous: the engine never trains here, so simulate
  // the basis uploads directly (no downlink payload, one SVD "epoch" of
  // local compute, everyone waits for everyone).
  if (federation.network_enabled()) {
    std::vector<net::ClientOp> ops;
    ops.reserve(basis_floats.size());
    for (std::size_t c = 0; c < basis_floats.size(); ++c) {
      ops.push_back(net::ClientOp{
          .client = c,
          .download_floats = 0,
          .upload_floats = basis_floats[c],
          .num_samples = federation.client_train_size(c),
          .epochs = 1,
          .churned = false,
          .upload_kind = net::MessageKind::kBasisUpload});
    }
    federation.simulate_network_round(0, ops, /*reliable=*/true);
  }

  cluster_weights_out.assign(cluster::num_clusters(labels),
                             federation.template_model().flat_weights());

  const fl::AccuracySummary acc =
      evaluate_clustered(federation, labels, cluster_weights_out);
  result.rounds.push_back(fl::make_round_metrics(
      0, acc, 0.0, federation, cluster_weights_out.size(),
      check::weights_fingerprint(cluster_weights_out)));
  return labels;
}

fl::RunResult Pacfl::run(fl::Federation& federation, std::size_t rounds) {
  FEDCLUST_REQUIRE(rounds >= 2, "PACFL needs the formation round plus at "
                                "least one training round");
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();

  std::vector<std::vector<float>> cluster_weights;
  const std::vector<std::size_t> labels =
      formation(federation, result, cluster_weights);

  // Rounds 1..R-1: per-cluster FedAvg.
  for (std::size_t round = 1; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const double loss = per_cluster_fedavg_round(federation, round, labels,
                                                 cluster_weights);
    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc =
          evaluate_clustered(federation, labels, cluster_weights);
      result.rounds.push_back(fl::make_round_metrics(
          round, acc, loss, federation, cluster_weights.size(),
          check::weights_fingerprint(cluster_weights)));
      if (last) result.final_accuracy = acc;
    }
  }

  result.cluster_labels = labels;
  return result;
}

}  // namespace fedclust::algorithms
