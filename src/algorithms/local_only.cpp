#include "algorithms/local_only.hpp"

#include "check/audit.hpp"

namespace fedclust::algorithms {

fl::RunResult LocalOnly::run(fl::Federation& federation, std::size_t rounds) {
  federation.reset_comm();

  // Nothing ever crosses the wire; the zero/zero payload spec keeps the
  // network simulator out of the round entirely.
  const fl::NetPayloads no_traffic{0, 0, net::MessageKind::kModelUpdate};

  fl::RunResult result;
  result.algorithm = name();
  const std::size_t n = federation.num_clients();
  // Every client is its own "cluster"; weights persist across rounds.
  result.cluster_labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.cluster_labels[i] = i;

  std::vector<std::vector<float>> weights(
      n, federation.template_model().flat_weights());

  for (std::size_t round = 0; round < rounds; ++round) {
    federation.comm().begin_round(round);  // stays at zero bytes
    std::vector<std::size_t> everyone(n);
    for (std::size_t i = 0; i < n; ++i) everyone[i] = i;
    const std::vector<fl::ClientUpdate> updates = federation.train_clients(
        everyone, round,
        [&](std::size_t cid) {
          return std::span<const float>(weights[cid]);
        },
        nullptr, /*allow_failures=*/true, &no_traffic);
    double loss_sum = 0.0;
    for (const fl::ClientUpdate& u : updates) {
      weights[u.client_id] = u.weights;
      loss_sum += u.train_loss;
    }

    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc =
          federation.evaluate_personalized([&](std::size_t cid) {
            return std::span<const float>(weights[cid]);
          });
      result.rounds.push_back(fl::make_round_metrics(
          round, acc, loss_sum / static_cast<double>(updates.size()),
          federation, n, check::weights_fingerprint(weights)));
      if (last) result.final_accuracy = acc;
    }
  }
  return result;
}

}  // namespace fedclust::algorithms
