#include "algorithms/fedavg.hpp"

#include "algorithms/common.hpp"
#include "check/audit.hpp"

namespace fedclust::algorithms {
namespace {

/// FedAvg and FedProx share everything except the local training config.
fl::RunResult run_global_averaging(const std::string& name,
                                   fl::Federation& federation,
                                   std::size_t rounds,
                                   const fl::LocalTrainConfig* override_cfg) {
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name;
  result.cluster_labels.assign(federation.num_clients(), 0);

  std::vector<std::vector<float>> global{
      federation.template_model().flat_weights()};
  const std::vector<std::size_t> labels(federation.num_clients(), 0);

  for (std::size_t round = 0; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const double loss = per_cluster_fedavg_round(federation, round, labels,
                                                 global, override_cfg);
    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc =
          evaluate_clustered(federation, labels, global);
      result.rounds.push_back(fl::make_round_metrics(
          round, acc, loss, federation, /*num_clusters=*/1,
          check::weights_fingerprint(global)));
      if (last) result.final_accuracy = acc;
    }
  }
  return result;
}

}  // namespace

fl::RunResult FedAvg::run(fl::Federation& federation, std::size_t rounds) {
  return run_global_averaging(name(), federation, rounds, nullptr);
}

fl::RunResult FedAvgM::run(fl::Federation& federation, std::size_t rounds) {
  FEDCLUST_REQUIRE(momentum_ >= 0.0 && momentum_ < 1.0,
                   "server momentum must be in [0, 1)");
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();
  result.cluster_labels.assign(federation.num_clients(), 0);

  std::vector<float> global = federation.template_model().flat_weights();
  std::vector<float> velocity(global.size(), 0.0f);

  for (std::size_t round = 0; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const std::vector<std::size_t> participants =
        federation.sample_clients(round);
    for (std::size_t cid : participants) {
      federation.meter_download(cid, federation.model_size());
    }
    const std::vector<fl::ClientUpdate> updates = federation.train_clients(
        participants, round,
        [&](std::size_t) { return std::span<const float>(global); });
    double loss_sum = 0.0;
    for (const fl::ClientUpdate& u : updates) {
      federation.meter_upload(u.client_id, federation.model_size());
      loss_sum += u.train_loss;
    }

    // Server update: v = beta*v + (avg - w); w += v. A round in which
    // every client dropped out leaves the model untouched.
    if (!updates.empty()) {
      const std::vector<float> averaged = federation.aggregate(updates, global);
      const float beta = static_cast<float>(momentum_);
      for (std::size_t i = 0; i < global.size(); ++i) {
        velocity[i] = beta * velocity[i] + (averaged[i] - global[i]);
        global[i] += velocity[i];
      }
    }

    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc = federation.evaluate_personalized(
          [&](std::size_t) { return std::span<const float>(global); });
      result.rounds.push_back(fl::make_round_metrics(
          round, acc,
          updates.empty() ? 0.0
                          : loss_sum / static_cast<double>(updates.size()),
          federation, 1,
          check::weights_fingerprint(std::span<const float>(global))));
      if (last) result.final_accuracy = acc;
    }
  }
  return result;
}

fl::RunResult FedProx::run(fl::Federation& federation, std::size_t rounds) {
  // Same engine config, but the local objective gains the proximal term
  // anchored at the model each client downloads (train_local captures the
  // reference at entry).
  fl::LocalTrainConfig local = federation.config().local;
  local.sgd.prox_mu = mu_;
  return run_global_averaging(name(), federation, rounds, &local);
}

}  // namespace fedclust::algorithms
