// FedAvg (McMahan et al., AISTATS 2017) — the canonical FL baseline —
// and FedProx (Li et al., MLSys 2020), which adds a proximal term to the
// local objective to curb client drift under heterogeneity.
#pragma once

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

/// Single global model, sample-weighted averaging each round.
class FedAvg : public fl::Algorithm {
 public:
  FedAvg() = default;

  std::string name() const override { return "FedAvg"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;
};

/// FedAvg whose local objective is F_i(w) + (mu/2)||w - w_global||^2.
class FedProx : public fl::Algorithm {
 public:
  explicit FedProx(double mu = 0.01) : mu_(mu) {}

  std::string name() const override { return "FedProx"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  double mu() const { return mu_; }

 private:
  double mu_;
};

/// FedAvgM (Hsu et al., 2019): FedAvg with server-side momentum — the
/// server treats the averaged client delta as a pseudo-gradient and
/// applies it through a momentum buffer. Dampens the oscillations that
/// label-skew drift induces in plain FedAvg. Extension baseline (not in
/// the paper's Table I).
class FedAvgM : public fl::Algorithm {
 public:
  explicit FedAvgM(double server_momentum = 0.9)
      : momentum_(server_momentum) {}

  std::string name() const override { return "FedAvgM"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  double server_momentum() const { return momentum_; }

 private:
  double momentum_;
};

}  // namespace fedclust::algorithms
