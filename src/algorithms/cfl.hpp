// CFL — Clustered Federated Learning (Sattler et al., IEEE TNNLS 2020).
//
// Starts with one cluster containing every client and recursively
// bipartitions: when a cluster's training has (nearly) converged — the
// norm of the mean client update falls below eps1 — while individual
// clients still push in conflicting directions — the max update norm
// stays above eps2 — the cluster is split in two along the cosine
// similarity structure of the client updates.
//
// This is the baseline whose weakness motivates FedClust: splits can only
// happen after the cluster has already converged, so stable clusters cost
// many communication rounds.
//
// Bipartition detail: Sattler et al. derive the optimal bipartition from
// the pairwise cosine similarity of updates; we realize it as a
// complete-linkage HC cut at k=2 on the cosine distance matrix, the
// standard practical approximation.
#pragma once

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

struct CflConfig {
  /// Split when ||mean update|| < eps1 ...
  double eps1 = 0.4;
  /// ... while max_i ||update_i|| > eps2.
  double eps2 = 0.6;
  /// Never split before this round (lets training leave the initial
  /// transient).
  std::size_t warmup_rounds = 2;
  /// Clusters at or below this size are never split further.
  std::size_t min_cluster_size = 2;
};

/// CFL's evolving server state: the cluster tree flattened to labels +
/// one model per cluster. Separated out so the classic run() loop and
/// the engine-driven wave driver (fl::run_synchronized) execute the
/// exact same round body over the exact same state.
struct CflState {
  std::vector<std::size_t> labels;
  std::vector<std::vector<float>> cluster_weights;
};

class Cfl : public fl::Algorithm {
 public:
  explicit Cfl(CflConfig config) : config_(config) {}

  std::string name() const override { return "CFL"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const CflConfig& config() const { return config_; }

  /// Initial state: one cluster holding every client.
  CflState init(const fl::Federation& federation) const;

  /// One synchronous CFL round over `state`: per-cluster training +
  /// aggregation, then (after warmup) Sattler's eps1/eps2 split check,
  /// possibly growing the cluster set. The caller has opened the comm
  /// round. Returns the round's mean train loss.
  double round(fl::Federation& federation, std::size_t round_index,
               CflState& state) const;

 private:
  CflConfig config_;
};

}  // namespace fedclust::algorithms
