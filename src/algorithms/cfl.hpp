// CFL — Clustered Federated Learning (Sattler et al., IEEE TNNLS 2020).
//
// Starts with one cluster containing every client and recursively
// bipartitions: when a cluster's training has (nearly) converged — the
// norm of the mean client update falls below eps1 — while individual
// clients still push in conflicting directions — the max update norm
// stays above eps2 — the cluster is split in two along the cosine
// similarity structure of the client updates.
//
// This is the baseline whose weakness motivates FedClust: splits can only
// happen after the cluster has already converged, so stable clusters cost
// many communication rounds.
//
// Bipartition detail: Sattler et al. derive the optimal bipartition from
// the pairwise cosine similarity of updates; we realize it as a
// complete-linkage HC cut at k=2 on the cosine distance matrix, the
// standard practical approximation.
#pragma once

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

struct CflConfig {
  /// Split when ||mean update|| < eps1 ...
  double eps1 = 0.4;
  /// ... while max_i ||update_i|| > eps2.
  double eps2 = 0.6;
  /// Never split before this round (lets training leave the initial
  /// transient).
  std::size_t warmup_rounds = 2;
  /// Clusters at or below this size are never split further.
  std::size_t min_cluster_size = 2;
};

class Cfl : public fl::Algorithm {
 public:
  explicit Cfl(CflConfig config) : config_(config) {}

  std::string name() const override { return "CFL"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const CflConfig& config() const { return config_; }

 private:
  CflConfig config_;
};

}  // namespace fedclust::algorithms
