#include "algorithms/common.hpp"

#include <algorithm>

namespace fedclust::algorithms {

double per_cluster_fedavg_round(
    fl::Federation& federation, std::size_t round,
    const std::vector<std::size_t>& labels,
    std::vector<std::vector<float>>& cluster_weights,
    const fl::LocalTrainConfig* config_override) {
  FEDCLUST_REQUIRE(labels.size() == federation.num_clients(),
                   "labels must cover every client");
  for (std::size_t l : labels) {
    FEDCLUST_REQUIRE(l < cluster_weights.size(),
                     "cluster label " << l << " has no model");
  }

  const std::vector<std::size_t> participants =
      federation.sample_clients(round);

  // Everyone downloads their cluster model; everyone who arrives in time
  // uploads a full one.
  for (std::size_t cid : participants) {
    federation.meter_download(cid, federation.model_size());
  }

  const std::vector<fl::ClientUpdate> updates = federation.train_clients(
      participants, round,
      [&](std::size_t cid) {
        return std::span<const float>(cluster_weights[labels[cid]]);
      },
      config_override);

  double loss_sum = 0.0;
  for (const fl::ClientUpdate& u : updates) {
    federation.meter_upload(u.client_id, federation.model_size());
    loss_sum += u.train_loss;
  }

  // Group this round's updates by cluster and average.
  std::vector<std::vector<fl::ClientUpdate>> by_cluster(
      cluster_weights.size());
  for (const fl::ClientUpdate& u : updates) {
    by_cluster[labels[u.client_id]].push_back(u);
  }
  for (std::size_t c = 0; c < by_cluster.size(); ++c) {
    if (!by_cluster[c].empty()) {
      cluster_weights[c] = federation.aggregate(by_cluster[c],
                                                cluster_weights[c]);
    }
  }
  return updates.empty() ? 0.0
                         : loss_sum / static_cast<double>(updates.size());
}

fl::AccuracySummary evaluate_clustered(
    const fl::Federation& federation, const std::vector<std::size_t>& labels,
    const std::vector<std::vector<float>>& cluster_weights) {
  FEDCLUST_REQUIRE(labels.size() == federation.num_clients(),
                   "labels must cover every client");
  return federation.evaluate_personalized([&](std::size_t cid) {
    return std::span<const float>(cluster_weights[labels[cid]]);
  });
}

}  // namespace fedclust::algorithms
