// FedPer (Arivazhagan et al., 2019) — personalization-layer FL.
//
// The model is split into a shared BASE (feature extractor, aggregated
// by the server like FedAvg) and a personal HEAD (the final classifier
// layer, which never leaves the device). This baseline is the
// personalization mirror image of FedClust's premise: both agree the
// final layer is where the data distribution lives — FedPer keeps it
// local per client, FedClust uses it to group clients. Not in the
// paper's Table I; included as an extension baseline.
#pragma once

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

struct FedPerConfig {
  /// Slice spec of the personal head (see core::resolve_partial_slices):
  /// default is the final layer's weight and bias.
  std::string head_spec = "final+bias";
};

class FedPer : public fl::Algorithm {
 public:
  explicit FedPer(FedPerConfig config = {}) : config_(config) {}

  std::string name() const override { return "FedPer"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const FedPerConfig& config() const { return config_; }

 private:
  FedPerConfig config_;
};

}  // namespace fedclust::algorithms
