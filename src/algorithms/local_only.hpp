// LocalOnly — the no-communication reference point.
//
// Every client trains its own model from the common initialization and
// never talks to the server. Under extreme label skew this is a strong
// baseline (each client's problem is small), and it brackets the
// clustered methods from the other side than FedAvg does: FedAvg shares
// everything, LocalOnly shares nothing, clustered FL sits between.
// Not part of the paper's Table I; included as an analysis baseline.
#pragma once

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

class LocalOnly : public fl::Algorithm {
 public:
  LocalOnly() = default;

  std::string name() const override { return "LocalOnly"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;
};

}  // namespace fedclust::algorithms
