// Helpers shared by the clustered and global FL algorithms.
//
// Every method in this repo — FedAvg, FedProx, CFL, IFCA, PACFL, and
// FedClust itself — eventually runs "per-cluster FedAvg" rounds: members
// of each cluster download that cluster's model, train locally and are
// averaged back. Global methods are the one-cluster special case.
#pragma once

#include <vector>

#include "fl/algorithm.hpp"

namespace fedclust::algorithms {

/// One synchronous round of per-cluster FedAvg.
///
/// * samples participants via federation.sample_clients(round);
/// * each sampled client downloads its cluster's model (metered at full
///   model size), trains locally, uploads the result (metered);
/// * each cluster with at least one sampled member is replaced by the
///   sample-weighted average of its members' updates.
///
/// `labels[i]` is client i's cluster; `cluster_weights[c]` that cluster's
/// model, updated in place. Returns the mean training loss across
/// participants.
double per_cluster_fedavg_round(
    fl::Federation& federation, std::size_t round,
    const std::vector<std::size_t>& labels,
    std::vector<std::vector<float>>& cluster_weights,
    const fl::LocalTrainConfig* config_override = nullptr);

/// Per-client accuracy where each client is evaluated on its cluster's
/// model.
fl::AccuracySummary evaluate_clustered(
    const fl::Federation& federation, const std::vector<std::size_t>& labels,
    const std::vector<std::vector<float>>& cluster_weights);

}  // namespace fedclust::algorithms
