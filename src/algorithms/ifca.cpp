#include "algorithms/ifca.hpp"

#include <limits>

#include "check/audit.hpp"
#include "cluster/hierarchical.hpp"
#include "utils/rng.hpp"

namespace fedclust::algorithms {

fl::RunResult Ifca::run(fl::Federation& federation, std::size_t rounds) {
  FEDCLUST_REQUIRE(config_.num_clusters >= 1, "IFCA needs k >= 1");
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();

  // k models: template plus small independent perturbations so the
  // cluster-identity estimation can break symmetry in round 0.
  const std::vector<float> base = federation.template_model().flat_weights();
  std::vector<std::vector<float>> models(config_.num_clusters, base);
  Rng init_rng = Rng(federation.config().seed).split(0x1fca);
  for (std::size_t k = 1; k < models.size(); ++k) {
    for (float& w : models[k]) {
      w += static_cast<float>(init_rng.normal(0.0, config_.init_perturbation));
    }
  }

  std::vector<std::size_t> labels(federation.num_clients(), 0);

  // Under the network simulator, a participant's download is all k models
  // (identity estimation) while the upload is the single chosen model.
  const fl::NetPayloads payloads{
      federation.model_size() * config_.num_clusters, federation.model_size(),
      net::MessageKind::kModelUpdate};

  for (std::size_t round = 0; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const std::vector<std::size_t> participants =
        federation.sample_clients(round);

    // Identity estimation sees each model as it arrives over the wire: when
    // a download codec is active the broadcast is lossy, so the clients must
    // score the decoded weights, not the server-side originals.  Zero-copy
    // views when compression is off.
    std::vector<std::vector<float>> decoded(models.size());
    std::vector<std::span<const float>> delivered(models.size());
    for (std::size_t k = 0; k < models.size(); ++k) {
      decoded[k] = federation.download_roundtrip(models[k]);
      delivered[k] = decoded[k].empty() ? std::span<const float>(models[k])
                                        : std::span<const float>(decoded[k]);
    }

    // Identity estimation: every participant downloads all k models and
    // evaluates them on its local training data.
    for (std::size_t cid : participants) {
      federation.meter_download(cid, federation.model_size() * models.size());
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_k = 0;
      for (std::size_t k = 0; k < models.size(); ++k) {
        const double loss = federation.client_train_loss(cid, delivered[k]);
        if (loss < best) {
          best = loss;
          best_k = k;
        }
      }
      labels[cid] = best_k;
    }

    // Local training on the chosen model.
    const std::vector<fl::ClientUpdate> updates = federation.train_clients(
        participants, round,
        [&](std::size_t cid) {
          return std::span<const float>(models[labels[cid]]);
        },
        nullptr, /*allow_failures=*/true, &payloads);

    double loss_sum = 0.0;
    std::vector<std::vector<fl::ClientUpdate>> by_cluster(models.size());
    for (const fl::ClientUpdate& u : updates) {
      federation.meter_upload(u.client_id, federation.model_size());
      loss_sum += u.train_loss;
      by_cluster[labels[u.client_id]].push_back(u);
    }
    for (std::size_t k = 0; k < models.size(); ++k) {
      if (!by_cluster[k].empty()) {
        models[k] = federation.aggregate(by_cluster[k], models[k]);
      }
    }

    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc =
          federation.evaluate_personalized([&](std::size_t cid) {
            return std::span<const float>(models[labels[cid]]);
          });
      result.rounds.push_back(fl::make_round_metrics(
          round, acc,
          updates.empty() ? 0.0
                          : loss_sum / static_cast<double>(updates.size()),
          federation, cluster::num_clusters(labels),
          check::weights_fingerprint(models)));
      if (last) result.final_accuracy = acc;
    }
  }

  result.cluster_labels = labels;
  return result;
}

}  // namespace fedclust::algorithms
