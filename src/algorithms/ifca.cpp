#include "algorithms/ifca.hpp"

#include <limits>

#include "algorithms/common.hpp"
#include "check/audit.hpp"
#include "cluster/hierarchical.hpp"
#include "utils/rng.hpp"

namespace fedclust::algorithms {

IfcaState Ifca::init(const fl::Federation& federation) const {
  FEDCLUST_REQUIRE(config_.num_clusters >= 1, "IFCA needs k >= 1");
  IfcaState state;
  // k models: template plus small independent perturbations so the
  // cluster-identity estimation can break symmetry in round 0.
  const std::vector<float> base = federation.template_model().flat_weights();
  state.models.assign(config_.num_clusters, base);
  Rng init_rng = Rng(federation.config().seed).split(0x1fca);
  for (std::size_t k = 1; k < state.models.size(); ++k) {
    for (float& w : state.models[k]) {
      w += static_cast<float>(init_rng.normal(0.0, config_.init_perturbation));
    }
  }
  state.labels.assign(federation.num_clients(), 0);
  return state;
}

double Ifca::round(fl::Federation& federation, std::size_t round_index,
                   IfcaState& state) const {
  std::vector<std::vector<float>>& models = state.models;
  std::vector<std::size_t>& labels = state.labels;

  // Under the network simulator, a participant's download is all k models
  // (identity estimation) while the upload is the single chosen model.
  const fl::NetPayloads payloads{
      federation.model_size() * config_.num_clusters, federation.model_size(),
      net::MessageKind::kModelUpdate};

  const std::vector<std::size_t> participants =
      federation.sample_clients(round_index);

  // Identity estimation sees each model as it arrives over the wire: when
  // a download codec is active the broadcast is lossy, so the clients must
  // score the decoded weights, not the server-side originals.  Zero-copy
  // views when compression is off.
  std::vector<std::vector<float>> decoded(models.size());
  std::vector<std::span<const float>> delivered(models.size());
  for (std::size_t k = 0; k < models.size(); ++k) {
    decoded[k] = federation.download_roundtrip(models[k]);
    delivered[k] = decoded[k].empty() ? std::span<const float>(models[k])
                                      : std::span<const float>(decoded[k]);
  }

  // Identity estimation: every participant downloads all k models and
  // evaluates them on its local training data.
  for (std::size_t cid : participants) {
    federation.meter_download(cid, federation.model_size() * models.size());
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_k = 0;
    for (std::size_t k = 0; k < models.size(); ++k) {
      const double loss = federation.client_train_loss(cid, delivered[k]);
      if (loss < best) {
        best = loss;
        best_k = k;
      }
    }
    labels[cid] = best_k;
  }

  // Local training on the chosen model.
  const std::vector<fl::ClientUpdate> updates = federation.train_clients(
      participants, round_index,
      [&](std::size_t cid) {
        return std::span<const float>(models[labels[cid]]);
      },
      nullptr, /*allow_failures=*/true, &payloads);

  double loss_sum = 0.0;
  std::vector<std::vector<fl::ClientUpdate>> by_cluster(models.size());
  for (const fl::ClientUpdate& u : updates) {
    federation.meter_upload(u.client_id, federation.model_size());
    loss_sum += u.train_loss;
    by_cluster[labels[u.client_id]].push_back(u);
  }
  for (std::size_t k = 0; k < models.size(); ++k) {
    if (!by_cluster[k].empty()) {
      models[k] = federation.aggregate(by_cluster[k], models[k]);
    }
  }
  return updates.empty() ? 0.0
                         : loss_sum / static_cast<double>(updates.size());
}

fl::RunResult Ifca::run(fl::Federation& federation, std::size_t rounds) {
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();

  IfcaState state = init(federation);

  for (std::size_t r = 0; r < rounds; ++r) {
    federation.comm().begin_round(r);
    const double loss = round(federation, r, state);
    const bool last = r + 1 == rounds;
    if (last || (r + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc =
          evaluate_clustered(federation, state.labels, state.models);
      result.rounds.push_back(fl::make_round_metrics(
          r, acc, loss, federation, cluster::num_clusters(state.labels),
          check::weights_fingerprint(state.models)));
      if (last) result.final_accuracy = acc;
    }
  }

  result.cluster_labels = state.labels;
  return result;
}

}  // namespace fedclust::algorithms
