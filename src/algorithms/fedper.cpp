#include "algorithms/fedper.hpp"

#include "check/audit.hpp"
#include "nn/slicing.hpp"

namespace fedclust::algorithms {

fl::RunResult FedPer::run(fl::Federation& federation, std::size_t rounds) {
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();
  const std::size_t n = federation.num_clients();
  result.cluster_labels.assign(n, 0);  // one shared base

  const std::vector<nn::ParamSlice> head =
      nn::resolve_partial_slices(federation.template_model(),
                                   config_.head_spec);
  const std::size_t head_floats = nn::slices_numel(head);
  FEDCLUST_REQUIRE(head_floats < federation.model_size(),
                   "FedPer head covers the whole model — nothing to share");

  // Global base weights live inside a full-size vector; personal heads
  // are stored per client and spliced in before local training.
  std::vector<float> global = federation.template_model().flat_weights();
  std::vector<std::vector<float>> heads(
      n, nn::extract_slices(global, head));

  auto splice_head = [&](std::vector<float>& full, std::size_t client) {
    std::size_t cursor = 0;
    for (const nn::ParamSlice& s : head) {
      for (std::size_t i = 0; i < s.size; ++i, ++cursor) {
        full[s.offset + i] = heads[client][cursor];
      }
    }
  };

  // Only the base crosses the wire, in both directions.
  const std::size_t base_floats = federation.model_size() - head_floats;
  const fl::NetPayloads payloads{base_floats, base_floats,
                                 net::MessageKind::kPartialUpdate};

  // Per-client start vectors must outlive train_clients' callback.
  std::vector<std::vector<float>> starts(n);

  for (std::size_t round = 0; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const std::vector<std::size_t> participants =
        federation.sample_clients(round);

    for (const std::size_t cid : participants) {
      federation.meter_download(cid, base_floats);  // base only; head is local
      starts[cid] = global;
      splice_head(starts[cid], cid);
    }

    const std::vector<fl::ClientUpdate> updates = federation.train_clients(
        participants, round,
        [&](std::size_t cid) {
          return std::span<const float>(starts[cid]);
        },
        nullptr, /*allow_failures=*/true, &payloads);

    double loss_sum = 0.0;
    for (const fl::ClientUpdate& u : updates) {
      federation.meter_upload(u.client_id, base_floats);
      loss_sum += u.train_loss;
      heads[u.client_id] = nn::extract_slices(u.weights, head);
    }

    // Aggregate the base; the heads stay personal. An all-dropout round
    // leaves the base unchanged.
    if (!updates.empty()) {
      std::vector<float> new_global = federation.aggregate(updates, global);
      // Restore the template head region of the global vector so the
      // global never carries any single client's head.
      std::size_t cursor = 0;
      const std::vector<float> template_head = nn::extract_slices(
          federation.template_model().flat_weights(), head);
      for (const nn::ParamSlice& s : head) {
        for (std::size_t i = 0; i < s.size; ++i, ++cursor) {
          new_global[s.offset + i] = template_head[cursor];
        }
      }
      global = std::move(new_global);
    }

    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      for (std::size_t cid = 0; cid < n; ++cid) {
        starts[cid] = global;
        splice_head(starts[cid], cid);
      }
      const fl::AccuracySummary acc =
          federation.evaluate_personalized([&](std::size_t cid) {
            return std::span<const float>(starts[cid]);
          });
      result.rounds.push_back(fl::make_round_metrics(
          round, acc,
          updates.empty() ? 0.0
                          : loss_sum / static_cast<double>(updates.size()),
          federation, /*num_clusters=*/1,
          // The served state is base + personal head per client; `starts`
          // holds exactly that after the refresh above.
          check::weights_fingerprint(starts)));
      if (last) result.final_accuracy = acc;
    }
  }
  return result;
}

}  // namespace fedclust::algorithms
