#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fedclust::partition {
namespace {

std::vector<std::vector<std::size_t>> indices_by_class(
    const data::Dataset& pool) {
  std::vector<std::vector<std::size_t>> by_class(pool.spec().classes);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    by_class[static_cast<std::size_t>(pool.label(i))].push_back(i);
  }
  return by_class;
}

}  // namespace

void dirichlet_deal_class(
    std::size_t class_size, std::size_t num_clients, double beta, Rng& rng,
    const std::function<void(std::size_t client, std::size_t offset,
                             std::size_t count)>& deal) {
  FEDCLUST_REQUIRE(num_clients > 0, "need at least one client");
  FEDCLUST_REQUIRE(beta > 0.0, "Dirichlet beta must be positive");
  if (class_size == 0) return;
  const std::vector<double> props = rng.dirichlet(beta, num_clients);
  // Deal the class's samples proportionally; cumulative rounding keeps
  // the total exact.
  double carry = 0.0;
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < num_clients; ++k) {
    const double want = props[k] * static_cast<double>(class_size) + carry;
    std::size_t take = static_cast<std::size_t>(want);
    carry = want - static_cast<double>(take);
    take = std::min(take, class_size - cursor);
    if (take > 0) deal(k, cursor, take);
    cursor += take;
  }
  // Any residue from rounding goes to the last clients.
  for (std::size_t k = num_clients; cursor < class_size; ++k) {
    deal(k % num_clients, cursor, 1);
    ++cursor;
  }
}

Partition dirichlet_partition(const data::Dataset& pool,
                              std::size_t num_clients, double beta, Rng& rng,
                              std::size_t min_samples) {
  FEDCLUST_REQUIRE(num_clients > 0, "need at least one client");
  FEDCLUST_REQUIRE(beta > 0.0, "Dirichlet beta must be positive");
  FEDCLUST_REQUIRE(pool.size() >= num_clients * min_samples,
                   "pool too small: " << pool.size() << " samples for "
                                      << num_clients << " clients");
  const auto by_class = indices_by_class(pool);

  // Re-draw until every client has at least min_samples (the standard
  // trick in the ICDE'22 reference code; tiny beta occasionally starves
  // a client).
  for (int attempt = 0; attempt < 100; ++attempt) {
    Partition part;
    part.client_indices.assign(num_clients, {});
    for (const auto& cls : by_class) {
      if (cls.empty()) continue;
      std::vector<std::size_t> shuffled = cls;
      rng.shuffle(shuffled);
      dirichlet_deal_class(
          shuffled.size(), num_clients, beta, rng,
          [&](std::size_t k, std::size_t offset, std::size_t count) {
            for (std::size_t t = 0; t < count; ++t) {
              part.client_indices[k].push_back(shuffled[offset + t]);
            }
          });
    }
    const bool ok =
        std::all_of(part.client_indices.begin(), part.client_indices.end(),
                    [&](const auto& v) { return v.size() >= min_samples; });
    if (ok) {
      for (auto& v : part.client_indices) std::sort(v.begin(), v.end());
      return part;
    }
  }
  FEDCLUST_CHECK(false, "dirichlet_partition failed to satisfy min_samples="
                            << min_samples << " after 100 attempts");
}

Partition shard_partition(const data::Dataset& pool, std::size_t num_clients,
                          std::size_t shards_per_client, Rng& rng) {
  FEDCLUST_REQUIRE(num_clients > 0 && shards_per_client > 0,
                   "bad shard_partition arguments");
  // Sort indices by label, then split into equal contiguous shards.
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pool.label(a) < pool.label(b);
  });
  const std::size_t num_shards = num_clients * shards_per_client;
  FEDCLUST_REQUIRE(pool.size() >= num_shards,
                   "pool smaller than the number of shards");
  std::vector<std::size_t> shard_order(num_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0);
  rng.shuffle(shard_order);

  Partition part;
  part.client_indices.assign(num_clients, {});
  const std::size_t shard_size = pool.size() / num_shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t client = s / shards_per_client;
    const std::size_t shard = shard_order[s];
    const std::size_t lo = shard * shard_size;
    // Last shard absorbs the remainder.
    const std::size_t hi =
        shard + 1 == num_shards ? pool.size() : lo + shard_size;
    for (std::size_t i = lo; i < hi; ++i) {
      part.client_indices[client].push_back(order[i]);
    }
  }
  for (auto& v : part.client_indices) std::sort(v.begin(), v.end());
  return part;
}

Partition iid_partition(const data::Dataset& pool, std::size_t num_clients,
                        Rng& rng) {
  FEDCLUST_REQUIRE(num_clients > 0, "need at least one client");
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Partition part;
  part.client_indices.assign(num_clients, {});
  for (std::size_t i = 0; i < order.size(); ++i) {
    part.client_indices[i % num_clients].push_back(order[i]);
  }
  for (auto& v : part.client_indices) std::sort(v.begin(), v.end());
  return part;
}

Partition quantity_skew_partition(const data::Dataset& pool,
                                  std::size_t num_clients, double beta,
                                  Rng& rng, std::size_t min_samples) {
  FEDCLUST_REQUIRE(num_clients > 0, "need at least one client");
  FEDCLUST_REQUIRE(beta > 0.0, "Dirichlet beta must be positive");
  FEDCLUST_REQUIRE(pool.size() >= num_clients * min_samples,
                   "pool too small for the requested minimum");

  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  // Guaranteed floor first, then Dirichlet shares over the remainder.
  const std::size_t floor_total = num_clients * min_samples;
  const std::size_t spare = pool.size() - floor_total;
  const std::vector<double> shares = rng.dirichlet(beta, num_clients);

  std::vector<std::size_t> counts(num_clients, min_samples);
  double carry = 0.0;
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < num_clients; ++k) {
    const double want = shares[k] * static_cast<double>(spare) + carry;
    std::size_t take = static_cast<std::size_t>(want);
    carry = want - static_cast<double>(take);
    take = std::min(take, spare - assigned);
    counts[k] += take;
    assigned += take;
  }
  // Rounding residue to the last clients.
  for (std::size_t k = 0; assigned < spare; ++k) {
    ++counts[k % num_clients];
    ++assigned;
  }

  Partition part;
  part.client_indices.assign(num_clients, {});
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < num_clients; ++k) {
    for (std::size_t i = 0; i < counts[k]; ++i) {
      part.client_indices[k].push_back(order[cursor++]);
    }
    std::sort(part.client_indices[k].begin(), part.client_indices[k].end());
  }
  return part;
}

Partition grouped_label_partition(
    const data::Dataset& pool, std::size_t num_clients,
    const std::vector<std::vector<std::int32_t>>& group_labels, Rng& rng,
    double within_group_beta) {
  FEDCLUST_REQUIRE(!group_labels.empty(), "need at least one group");
  FEDCLUST_REQUIRE(num_clients >= group_labels.size(),
                   "fewer clients than groups");
  const std::size_t num_groups = group_labels.size();

  // Round-robin client -> group assignment: clients {0, G, 2G, ...} in
  // group 0, etc. Keeps groups balanced for any client count.
  Partition part;
  part.client_indices.assign(num_clients, {});
  part.true_groups.resize(num_clients);
  std::vector<std::vector<std::size_t>> group_members(num_groups);
  for (std::size_t c = 0; c < num_clients; ++c) {
    const std::size_t g = c % num_groups;
    part.true_groups[c] = g;
    group_members[g].push_back(c);
  }

  const auto by_class = indices_by_class(pool);
  for (std::size_t g = 0; g < num_groups; ++g) {
    const auto& members = group_members[g];
    for (std::int32_t label : group_labels[g]) {
      FEDCLUST_REQUIRE(
          label >= 0 && static_cast<std::size_t>(label) < by_class.size(),
          "group label " << label << " out of range");
      std::vector<std::size_t> cls =
          by_class[static_cast<std::size_t>(label)];
      rng.shuffle(cls);
      if (within_group_beta > 0.0) {
        const std::vector<double> props =
            rng.dirichlet(within_group_beta, members.size());
        double carry = 0.0;
        std::size_t cursor = 0;
        for (std::size_t k = 0; k < members.size(); ++k) {
          const double want =
              props[k] * static_cast<double>(cls.size()) + carry;
          std::size_t take = static_cast<std::size_t>(want);
          carry = want - static_cast<double>(take);
          take = std::min(take, cls.size() - cursor);
          for (std::size_t t = 0; t < take; ++t) {
            part.client_indices[members[k]].push_back(cls[cursor++]);
          }
        }
        for (std::size_t k = 0; cursor < cls.size(); ++k) {
          part.client_indices[members[k % members.size()]].push_back(
              cls[cursor++]);
        }
      } else {
        for (std::size_t i = 0; i < cls.size(); ++i) {
          part.client_indices[members[i % members.size()]].push_back(cls[i]);
        }
      }
    }
  }
  for (auto& v : part.client_indices) std::sort(v.begin(), v.end());
  return part;
}

std::vector<data::Dataset> feature_skew_split(const data::Dataset& pool,
                                              std::size_t num_clients,
                                              double sigma, Rng& rng) {
  FEDCLUST_REQUIRE(num_clients > 0, "need at least one client");
  FEDCLUST_REQUIRE(sigma >= 0.0, "noise level must be non-negative");
  const Partition base = iid_partition(pool, num_clients, rng);

  std::vector<data::Dataset> out;
  out.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    const double level =
        num_clients > 1
            ? sigma * static_cast<double>(c) /
                  static_cast<double>(num_clients - 1)
            : 0.0;
    data::Dataset ds(pool.spec());
    for (const std::size_t i : base.client_indices[c]) {
      Tensor img = pool.image(i);
      if (level > 0.0) {
        for (auto& v : img.flat()) {
          v += static_cast<float>(rng.normal(0.0, level));
        }
      }
      ds.add(img, pool.label(i));
    }
    out.push_back(std::move(ds));
  }
  return out;
}

std::vector<data::Dataset> materialize(const data::Dataset& pool,
                                       const Partition& partition) {
  std::vector<data::Dataset> out;
  out.reserve(partition.num_clients());
  for (const auto& idx : partition.client_indices) {
    out.push_back(pool.subset(idx));
  }
  return out;
}

std::vector<std::vector<std::size_t>> label_histograms(
    const data::Dataset& pool, const Partition& partition) {
  std::vector<std::vector<std::size_t>> out(
      partition.num_clients(),
      std::vector<std::size_t>(pool.spec().classes, 0));
  for (std::size_t c = 0; c < partition.num_clients(); ++c) {
    for (std::size_t i : partition.client_indices[c]) {
      ++out[c][static_cast<std::size_t>(pool.label(i))];
    }
  }
  return out;
}

double heterogeneity_index(const data::Dataset& pool,
                           const Partition& partition) {
  const auto hists = label_histograms(pool, partition);
  const std::size_t n = hists.size();
  if (n < 2) return 0.0;

  // Normalize to distributions.
  std::vector<std::vector<double>> dists(n);
  for (std::size_t c = 0; c < n; ++c) {
    const double total = static_cast<double>(std::accumulate(
        hists[c].begin(), hists[c].end(), std::size_t{0}));
    dists[c].resize(hists[c].size());
    for (std::size_t k = 0; k < hists[c].size(); ++k) {
      dists[c][k] = total > 0.0 ? static_cast<double>(hists[c][k]) / total : 0.0;
    }
  }

  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double tv = 0.0;
      for (std::size_t k = 0; k < dists[i].size(); ++k) {
        tv += std::abs(dists[i][k] - dists[j][k]);
      }
      sum += 0.5 * tv;
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

}  // namespace fedclust::partition
