// Non-IID data partitioners.
//
// A partition maps every sample of a global pool to one of `num_clients`
// clients. The experiments use:
//  * Dirichlet(beta) label skew — the Table-I setting "Non-IID Dir(0.1)",
//    following Li et al., "Federated learning on non-IID data silos"
//    (ICDE 2022): for each class, the per-client share vector is drawn
//    from Dir(beta) and samples are dealt accordingly;
//  * pathological shards (McMahan et al.) — each client holds at most
//    `shards_per_client` label shards;
//  * explicit label groups — the Fig. 1 motivation setup, where clients
//    are pre-assigned to groups owning disjoint label subsets;
//  * IID — uniform random split (the beta -> infinity limit).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "utils/rng.hpp"

namespace fedclust::partition {

/// Result of partitioning: per-client sample indices into the pool, plus
/// (when the scheme defines one) the ground-truth group of each client.
struct Partition {
  std::vector<std::vector<std::size_t>> client_indices;
  /// Ground-truth cluster labels if the scheme implies them (explicit
  /// groups); empty otherwise.
  std::vector<std::size_t> true_groups;

  std::size_t num_clients() const { return client_indices.size(); }
};

/// Streams one class's Dirichlet(beta) deal without materializing any
/// index lists: draws ONE Dir(beta) share vector from `rng` and invokes
/// `deal(client, offset, count)` for every client receiving a non-empty
/// contiguous range [offset, offset+count) of the class's samples (in
/// whatever order the caller arranged them — dirichlet_partition shuffles
/// first, VirtualFleet deals positions of a virtual pool). Clients are
/// visited in ascending id, then the cumulative-rounding residue is dealt
/// round-robin one sample at a time, exactly like dirichlet_partition —
/// the eager partitioner is a thin wrapper over this and consumes the
/// identical RNG stream. No-op (zero RNG draws) when class_size == 0.
/// Memory: O(num_clients) for the share vector, independent of
/// class_size — the piece that lets a million-client fleet deal label
/// histograms without the O(fleet × samples) assignment matrix.
void dirichlet_deal_class(
    std::size_t class_size, std::size_t num_clients, double beta, Rng& rng,
    const std::function<void(std::size_t client, std::size_t offset,
                             std::size_t count)>& deal);

/// Dirichlet(beta) label-skew partition. Smaller beta = more skew.
/// Every client is guaranteed at least `min_samples` samples (re-draws
/// until satisfied, like the reference implementation of Li et al.).
Partition dirichlet_partition(const data::Dataset& pool,
                              std::size_t num_clients, double beta, Rng& rng,
                              std::size_t min_samples = 10);

/// Pathological shard partition: sort by label, cut into
/// num_clients*shards_per_client shards, deal shards randomly.
Partition shard_partition(const data::Dataset& pool, std::size_t num_clients,
                          std::size_t shards_per_client, Rng& rng);

/// IID uniform partition.
Partition iid_partition(const data::Dataset& pool, std::size_t num_clients,
                        Rng& rng);

/// Quantity-skew partition (Li et al. ICDE'22 "quantity distribution
/// skew"): label distributions stay IID, but per-client sample COUNTS
/// are drawn from Dir(beta) over the pool, so small beta gives a few
/// data-rich clients and many data-poor ones. Every client receives at
/// least `min_samples`.
Partition quantity_skew_partition(const data::Dataset& pool,
                                  std::size_t num_clients, double beta,
                                  Rng& rng, std::size_t min_samples = 10);

/// Explicit group partition: clients are split round-robin into
/// `group_labels.size()` groups; group g only receives samples whose
/// label appears in group_labels[g]. Within a group, that group's samples
/// are dealt IID (or with Dirichlet skew when beta > 0 is given).
/// Sets true_groups.
Partition grouped_label_partition(
    const data::Dataset& pool, std::size_t num_clients,
    const std::vector<std::vector<std::int32_t>>& group_labels, Rng& rng,
    double within_group_beta = 0.0);

/// Feature-distribution skew (Li et al. ICDE'22 "noise-based feature
/// skew"): the pool is split IID, then client i's PIXELS are perturbed
/// with Gaussian noise of level sigma * i / (num_clients - 1) — labels
/// stay balanced while feature distributions drift apart. Because this
/// transforms the data, it returns materialized per-client datasets
/// directly instead of an index partition.
std::vector<data::Dataset> feature_skew_split(const data::Dataset& pool,
                                              std::size_t num_clients,
                                              double sigma, Rng& rng);

/// Materializes per-client Datasets from a partition.
std::vector<data::Dataset> materialize(const data::Dataset& pool,
                                       const Partition& partition);

// -- statistics ------------------------------------------------------------

/// Per-client label histograms (num_clients × classes).
std::vector<std::vector<std::size_t>> label_histograms(
    const data::Dataset& pool, const Partition& partition);

/// Average pairwise total-variation distance between client label
/// distributions — a scalar "how non-IID is this partition" measure
/// (0 = identical marginals, -> 1 = disjoint).
double heterogeneity_index(const data::Dataset& pool,
                           const Partition& partition);

}  // namespace fedclust::partition
