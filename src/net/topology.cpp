#include "net/topology.hpp"

#include <algorithm>

#include "utils/error.hpp"

namespace fedclust::net {

std::size_t EdgeTopology::clamped_edges(std::size_t cohort) const {
  FEDCLUST_REQUIRE(num_edges > 0, "topology needs at least one edge");
  return std::max<std::size_t>(1, std::min(num_edges, cohort));
}

std::pair<std::size_t, std::size_t> EdgeTopology::slot_range(
    std::size_t edge, std::size_t cohort) const {
  const std::size_t edges = clamped_edges(cohort);
  FEDCLUST_REQUIRE(edge < edges, "edge index out of range");
  // Balanced contiguous split: edge e owns [e·n/E, (e+1)·n/E).
  return {edge * cohort / edges, (edge + 1) * cohort / edges};
}

std::uint64_t EdgeTopology::server_link_floats(
    std::size_t cohort, std::size_t model_floats) const {
  if (cohort == 0) return 0;
  return static_cast<std::uint64_t>(clamped_edges(cohort)) * model_floats;
}

}  // namespace fedclust::net
