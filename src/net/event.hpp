// Discrete-event core of the network simulator.
//
// Events carry a virtual timestamp (seconds) and a monotonically
// increasing push sequence number. The queue pops the minimum
// (time, seq), so simultaneous events resolve in push order — a total,
// deterministic order that never depends on thread count or scheduling.
// Processed events accumulate in a log; fingerprint() hashes the log so
// tests can assert bit-identical behaviour across runs.
#pragma once

#include <cstdint>
#include <vector>

namespace fedclust::net {

enum class EventKind : std::uint8_t {
  kBroadcastDelivered = 1,  ///< server -> client model arrived
  kComputeDone = 2,         ///< client finished local training
  kUploadAttempt = 3,       ///< client started sending its update
  kUploadDropped = 4,       ///< the attempt was lost in transit
  kUploadDelivered = 5,     ///< update arrived before the round closed
  kUploadLate = 6,          ///< update arrived after the round closed
  kUploadLost = 7,          ///< retries exhausted; update never arrived
  kDeadline = 8,            ///< the absolute round deadline fired
  kRoundClosed = 9,         ///< server stopped waiting for this round
};

const char* to_string(EventKind kind);

struct Event {
  double time = 0.0;         ///< virtual seconds since simulation start
  std::uint64_t seq = 0;     ///< push order (deterministic tiebreak)
  EventKind kind = EventKind::kRoundClosed;
  std::uint32_t round = 0;
  std::uint32_t client = 0;
  std::uint32_t attempt = 0;  ///< upload attempt index (0 = first send)
  std::uint64_t bytes = 0;    ///< framed wire size for transfer events
};

/// Binary min-heap on (time, seq). push() stamps the sequence number.
class EventQueue {
 public:
  void push(Event e);
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Removes and returns the earliest event; requires !empty().
  Event pop();

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// FNV-1a hash over every field of every event — two logs fingerprint
/// equal iff the simulations were event-for-event identical.
std::uint64_t fingerprint(const std::vector<Event>& log);

}  // namespace fedclust::net
