#include "net/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "utils/error.hpp"

namespace fedclust::net {
namespace {

// Purpose tags for the per-draw streams (arbitrary, fixed forever).
constexpr std::uint64_t kDownJitter = 0x6e01;
constexpr std::uint64_t kUpJitter = 0x6e02;
constexpr std::uint64_t kDrop = 0x6e03;
constexpr std::uint64_t kFleet = 0x6e7f;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Dispatch sequence numbers share the draw key's "round" slot with the
// synchronous round indices (formation rounds run through run_round even
// in an async run), so they are offset into their own half of the u32
// space — dispatch 0's jitter can never alias round 0's.
constexpr std::size_t kDispatchBase = 1u << 30;

}  // namespace

NetworkSimulator::NetworkSimulator(const NetworkConfig& config,
                                   std::vector<ClientLink> links,
                                   std::uint64_t seed)
    : config_(config), links_(std::move(links)), seed_(seed) {
  FEDCLUST_REQUIRE(!links_.empty(), "network simulator needs >= 1 link");
  FEDCLUST_REQUIRE(
      config_.straggler_frac > 0.0 && config_.straggler_frac <= 1.0,
      "straggler_frac must be in (0, 1]");
  FEDCLUST_REQUIRE(config_.deadline_s >= 0.0, "deadline_s must be >= 0");
  FEDCLUST_REQUIRE(config_.backoff_base_s >= 0.0,
                   "backoff_base_s must be >= 0");
  FEDCLUST_REQUIRE(config_.compute_s_per_sample >= 0.0,
                   "compute_s_per_sample must be >= 0");
}

NetworkSimulator::NetworkSimulator(const NetworkConfig& config,
                                   std::size_t num_clients,
                                   std::uint64_t seed)
    : NetworkSimulator(
          config,
          make_links(config.profile, num_clients, Rng(seed).split(kFleet)),
          seed) {}

Rng NetworkSimulator::draw(std::uint64_t purpose, std::size_t round,
                           std::size_t client, std::size_t attempt) const {
  return Rng(seed_).split(purpose).split(round).split(client).split(attempt);
}

RoundReport NetworkSimulator::run_round(std::size_t round,
                                        const std::vector<ClientOp>& ops,
                                        bool reliable) {
  RoundReport report;
  report.round = round;
  report.start = clock_;
  report.arrivals.resize(ops.size());

  // Per-op state, addressed by client id.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> op_of(links_.size(), kNone);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const ClientOp& op = ops[i];
    FEDCLUST_REQUIRE(op.client < links_.size(),
                     "client " << op.client << " has no link");
    FEDCLUST_REQUIRE(op_of[op.client] == kNone,
                     "client " << op.client << " appears twice in round "
                               << round);
    op_of[op.client] = i;
    report.arrivals[i].client = op.client;
  }

  EventQueue queue;
  const auto push = [&](double time, EventKind kind, std::size_t client,
                        std::size_t attempt, std::uint64_t bytes) {
    queue.push(Event{.time = time,
                     .kind = kind,
                     .round = static_cast<std::uint32_t>(round),
                     .client = static_cast<std::uint32_t>(client),
                     .attempt = static_cast<std::uint32_t>(attempt),
                     .bytes = bytes});
  };

  // All broadcasts leave the server at the round start, in parallel. A
  // zero-float download is a bare start-of-round ping (e.g. PACFL's
  // formation, where uploads derive from raw data): it still pays the
  // link latency but carries no accountable bytes.
  for (const ClientOp& op : ops) {
    Rng jitter = draw(kDownJitter, round, op.client, 0);
    const std::uint64_t down =
        op.download_bytes != 0
            ? op.download_bytes
            : (op.download_floats == 0 ? 0 : wire_bytes(op.download_floats));
    push(report.start + transfer_seconds(links_[op.client], down, jitter),
         EventKind::kBroadcastDelivered, op.client, 0, down);
  }
  if (!reliable && config_.deadline_s > 0.0 && !ops.empty()) {
    push(report.start + config_.deadline_s, EventKind::kDeadline, 0, 0, 0);
  }

  // Uploads expected from everyone the server broadcast to, minus churn.
  std::size_t expected = 0;
  for (const ClientOp& op : ops) expected += op.churned ? 0 : 1;
  const std::size_t need =
      !reliable && config_.straggler_frac < 1.0
          ? std::min<std::size_t>(
                expected,
                std::max<std::size_t>(
                    1, static_cast<std::size_t>(std::ceil(
                           config_.straggler_frac *
                           static_cast<double>(expected)))))
          : expected;

  double close = kInf;
  double last_resolution = report.start;
  std::size_t on_time = 0;

  while (!queue.empty()) {
    const Event e = queue.pop();
    log_.push_back(e);
    if (e.kind == EventKind::kDeadline) {
      if (close == kInf) close = e.time;
      continue;
    }
    const ClientOp& op = ops[op_of[e.client]];
    Arrival& arrival = report.arrivals[op_of[e.client]];

    switch (e.kind) {
      case EventKind::kBroadcastDelivered: {
        const double compute = static_cast<double>(op.num_samples) *
                               static_cast<double>(op.epochs) *
                               config_.compute_s_per_sample *
                               links_[op.client].compute_scale;
        if (op.churned) {
          // The device dies before its upload; the server only learns by
          // never hearing back.
          last_resolution = std::max(last_resolution, e.time + compute);
          break;
        }
        push(e.time + compute, EventKind::kComputeDone, e.client, 0, 0);
        break;
      }
      case EventKind::kComputeDone:
        push(e.time, EventKind::kUploadAttempt, e.client, 0,
             op.upload_bytes != 0 ? op.upload_bytes
                                  : wire_bytes(op.upload_floats));
        break;
      case EventKind::kUploadAttempt: {
        Rng jitter = draw(kUpJitter, round, e.client, e.attempt);
        const double arrive =
            e.time + transfer_seconds(links_[e.client], e.bytes, jitter);
        const double p = links_[e.client].drop_prob;
        const bool last_try = e.attempt >= config_.max_retries;
        bool dropped =
            p > 0.0 && draw(kDrop, round, e.client, e.attempt).bernoulli(p);
        if (reliable && last_try) dropped = false;  // formation never fails
        push(arrive,
             dropped ? EventKind::kUploadDropped : EventKind::kUploadDelivered,
             e.client, e.attempt, e.bytes);
        break;
      }
      case EventKind::kUploadDropped:
        if (e.attempt < config_.max_retries) {
          const double backoff =
              config_.backoff_base_s * std::ldexp(1.0, static_cast<int>(e.attempt));
          push(e.time + backoff, EventKind::kUploadAttempt, e.client,
               e.attempt + 1, e.bytes);
        } else {
          log_.push_back(Event{.time = e.time,
                               .kind = EventKind::kUploadLost,
                               .round = e.round,
                               .client = e.client,
                               .attempt = e.attempt,
                               .bytes = e.bytes});
          arrival.attempts = e.attempt + 1;
          arrival.time = e.time;
          last_resolution = std::max(last_resolution, e.time);
        }
        break;
      case EventKind::kUploadDelivered: {
        arrival.delivered = true;
        arrival.attempts = e.attempt + 1;
        arrival.time = e.time;
        arrival.late = e.time > close;
        if (arrival.late) {
          // Reclassify in the log so it reads as the server saw it.
          log_.back().kind = EventKind::kUploadLate;
        } else {
          ++on_time;
          if (on_time >= need && close == kInf) close = e.time;
        }
        last_resolution = std::max(last_resolution, e.time);
        break;
      }
      default:
        FEDCLUST_CHECK(false, "unexpected event in simulation loop");
    }
  }

  if (close == kInf) close = last_resolution;
  report.close = close;
  for (const Arrival& a : report.arrivals) {
    if (a.delivered && !a.late) ++report.accepted;
  }
  log_.push_back(Event{.time = close,
                       .kind = EventKind::kRoundClosed,
                       .round = static_cast<std::uint32_t>(round),
                       .client = 0,
                       .attempt = 0,
                       .bytes = 0});
  clock_ = std::max(clock_, close);
  reports_.push_back(report);
  return report;
}

OpOutcome NetworkSimulator::simulate_client_op(std::size_t dispatch,
                                               const ClientOp& op,
                                               double start) {
  FEDCLUST_REQUIRE(op.client < links_.size(),
                   "client " << op.client << " has no link");
  const std::size_t key = kDispatchBase + dispatch;
  const auto log = [&](double time, EventKind kind, std::size_t attempt,
                       std::uint64_t bytes) {
    log_.push_back(Event{.time = time,
                         .seq = static_cast<std::uint64_t>(attempt),
                         .kind = kind,
                         .round = static_cast<std::uint32_t>(key),
                         .client = static_cast<std::uint32_t>(op.client),
                         .attempt = static_cast<std::uint32_t>(attempt),
                         .bytes = bytes});
  };

  // Broadcast + compute, exactly as run_round charges them.
  Rng down_jitter = draw(kDownJitter, key, op.client, 0);
  const std::uint64_t down =
      op.download_bytes != 0
          ? op.download_bytes
          : (op.download_floats == 0 ? 0 : wire_bytes(op.download_floats));
  const double t_down =
      start + transfer_seconds(links_[op.client], down, down_jitter);
  log(t_down, EventKind::kBroadcastDelivered, 0, down);
  const double compute = static_cast<double>(op.num_samples) *
                         static_cast<double>(op.epochs) *
                         config_.compute_s_per_sample *
                         links_[op.client].compute_scale;

  OpOutcome out;
  if (op.churned) {
    // The device dies before uploading; its slot frees once the server
    // could at the earliest have heard back.
    out.finish = t_down + compute;
    return out;
  }
  log(t_down + compute, EventKind::kComputeDone, 0, 0);

  const std::uint64_t up = op.upload_bytes != 0
                               ? op.upload_bytes
                               : wire_bytes(op.upload_floats);
  double t = t_down + compute;
  for (std::size_t attempt = 0;; ++attempt) {
    log(t, EventKind::kUploadAttempt, attempt, up);
    Rng up_jitter = draw(kUpJitter, key, op.client, attempt);
    const double arrive = t + transfer_seconds(links_[op.client], up, up_jitter);
    const double p = links_[op.client].drop_prob;
    const bool dropped =
        p > 0.0 && draw(kDrop, key, op.client, attempt).bernoulli(p);
    if (!dropped) {
      log(arrive, EventKind::kUploadDelivered, attempt, up);
      out.delivered = true;
      out.finish = arrive;
      out.attempts = attempt + 1;
      return out;
    }
    log(arrive, EventKind::kUploadDropped, attempt, up);
    if (attempt >= config_.max_retries) {
      log(arrive, EventKind::kUploadLost, attempt, up);
      out.finish = arrive;
      out.attempts = attempt + 1;
      return out;
    }
    const double backoff =
        config_.backoff_base_s * std::ldexp(1.0, static_cast<int>(attempt));
    t = arrive + backoff;
  }
}

void NetworkSimulator::reset() {
  clock_ = 0.0;
  log_.clear();
  reports_.clear();
}

void NetworkSimulator::restore(double clock, std::vector<Event> log) {
  clock_ = clock;
  log_ = std::move(log);
  reports_.clear();
}

DeliveredBytes delivered_bytes(const std::vector<Event>& log) {
  DeliveredBytes out;
  for (const Event& e : log) {
    if (e.kind == EventKind::kBroadcastDelivered) out.download += e.bytes;
    if (e.kind == EventKind::kUploadDelivered) out.upload += e.bytes;
  }
  return out;
}

}  // namespace fedclust::net
