// Typed wire messages of the simulated federated network.
//
// Every transfer between server and clients is a framed message. Raw
// (uncompressed) frames are version 2:
//
//   magic "FCMG" | u16 version=2 | u16 kind | u32 round | u32 sender |
//   u64 payload_floats | u32 crc32(payload) | payload: packed
//   little-endian float32
//
// Codec frames (version 3) carry an update-codec payload instead of raw
// floats and add two fields so the receiver can pick the decoder and
// pre-size the output before touching the payload:
//
//   magic "FCMG" | u16 version=3 | u16 kind | u32 round | u32 sender |
//   u64 payload_floats (uncompressed length) | u16 codec |
//   u64 payload_bytes | u32 crc32(encoded payload) | encoded payload
//
// The header (28 bytes raw, 38 bytes codec) is charged on every
// simulated transfer, so byte accounting under the network layer
// reflects framed traffic instead of the bare `num_floats * 4` the
// CommMeter used historically. Raw payloads are weight vectors
// serialized through the nn/serialize wire codec; codec payloads are
// opaque bytes produced by a compress::UpdateCodec (this layer never
// interprets them — the u16 codec id is just carried). decode() rejects
// bad magic, unknown versions, truncated payloads, and payload bytes
// whose CRC-32 disagrees with the header — in both frame versions the
// CRC seals the bytes exactly as they travel, so corrupting a
// compressed payload surfaces at decode instead of as silently poisoned
// weights downstream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fedclust::net {

/// What a message carries; mirrors the protocol steps of the algorithms.
enum class MessageKind : std::uint16_t {
  kModelBroadcast = 1,  ///< server -> client: full (or cluster) model
  kModelUpdate = 2,     ///< client -> server: full post-training weights
  kPartialUpdate = 3,   ///< client -> server: FedClust's layer slice
  kBasisUpload = 4,     ///< client -> server: PACFL subspace basis
};

const char* to_string(MessageKind kind);

/// Sender id used for server-originated messages.
inline constexpr std::uint32_t kServerId = 0xffffffffu;

/// Raw (v2) frame: magic(4) + version(2) + kind(2) + round(4) +
/// sender(4) + length(8) + crc32(4).
inline constexpr std::size_t kHeaderBytes = 28;

/// Codec (v3) frame adds codec id(2) + payload_bytes(8).
inline constexpr std::size_t kCodecHeaderBytes = kHeaderBytes + 10;

/// Framed size on the wire of a raw message carrying `payload_floats`
/// float32 values.
constexpr std::uint64_t wire_bytes(std::size_t payload_floats) {
  return kHeaderBytes + static_cast<std::uint64_t>(payload_floats) * 4;
}

/// Framed size on the wire of a codec message whose encoded payload is
/// `payload_bytes` long.
constexpr std::uint64_t wire_bytes_encoded(std::size_t payload_bytes) {
  return kCodecHeaderBytes + static_cast<std::uint64_t>(payload_bytes);
}

struct MessageHeader {
  MessageKind kind = MessageKind::kModelBroadcast;
  std::uint32_t round = 0;
  std::uint32_t sender = kServerId;
  /// Uncompressed length in float32 values — of `payload` for raw
  /// frames; of the decoded output for codec frames (the encoder sets
  /// it, since the encoded bytes alone don't reveal it).
  std::uint64_t payload_floats = 0;
  /// compress::CodecKind wire id of the codec payload (v3 frames only;
  /// opaque to this layer). 0 on raw frames.
  std::uint16_t codec = 0;
  /// Encoded payload length in bytes (v3 frames only; encode() fills it
  /// from `encoded`).
  std::uint64_t payload_bytes = 0;
  /// CRC-32 of the payload bytes as framed; encode() fills it in,
  /// decode() verifies it.
  std::uint32_t payload_crc = 0;
};

struct Message {
  MessageHeader header;
  /// Chooses the frame version: false → v2 raw floats from `payload`,
  /// true → v3 codec bytes from `encoded` (header.payload_floats must
  /// then hold the uncompressed length).
  bool codec_frame = false;
  std::vector<float> payload;          ///< raw frames: payload_floats values
  std::vector<std::uint8_t> encoded;   ///< codec frames: opaque codec bytes
};

/// Frames `m` (header + payload) into a byte buffer; sets the header's
/// length and payload_crc fields from the payload actually framed.
std::vector<std::uint8_t> encode(const Message& m);

/// Parses a frame produced by encode(). Throws fedclust::Error on bad
/// magic, unsupported version, unknown kind, a payload length that
/// disagrees with the buffer, a payload checksum mismatch (wire
/// corruption), or trailing garbage.
Message decode(std::span<const std::uint8_t> buf);

}  // namespace fedclust::net
