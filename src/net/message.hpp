// Typed wire messages of the simulated federated network.
//
// Every transfer between server and clients is a framed message:
//
//   magic "FCMG" | u16 version | u16 kind | u32 round | u32 sender |
//   u64 payload_floats | u32 crc32(payload) | payload: packed
//   little-endian float32
//
// The 28-byte header is charged on every simulated transfer, so byte
// accounting under the network layer reflects framed traffic instead of
// the bare `num_floats * 4` the CommMeter used historically. Payloads
// are weight vectors serialized through the nn/serialize wire codec;
// decode() rejects bad magic, unknown versions, truncated payloads, and
// — since version 2 — payload bytes whose CRC-32 disagrees with the
// header, so wire corruption surfaces at decode instead of as silently
// poisoned weights downstream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fedclust::net {

/// What a message carries; mirrors the protocol steps of the algorithms.
enum class MessageKind : std::uint16_t {
  kModelBroadcast = 1,  ///< server -> client: full (or cluster) model
  kModelUpdate = 2,     ///< client -> server: full post-training weights
  kPartialUpdate = 3,   ///< client -> server: FedClust's layer slice
  kBasisUpload = 4,     ///< client -> server: PACFL subspace basis
};

const char* to_string(MessageKind kind);

/// Sender id used for server-originated messages.
inline constexpr std::uint32_t kServerId = 0xffffffffu;

/// magic(4) + version(2) + kind(2) + round(4) + sender(4) + length(8) +
/// crc32(4).
inline constexpr std::size_t kHeaderBytes = 28;

/// Framed size on the wire of a message carrying `payload_floats`
/// float32 values.
constexpr std::uint64_t wire_bytes(std::size_t payload_floats) {
  return kHeaderBytes + static_cast<std::uint64_t>(payload_floats) * 4;
}

struct MessageHeader {
  MessageKind kind = MessageKind::kModelBroadcast;
  std::uint32_t round = 0;
  std::uint32_t sender = kServerId;
  std::uint64_t payload_floats = 0;
  /// CRC-32 of the encoded payload bytes; encode() fills it in, decode()
  /// verifies it.
  std::uint32_t payload_crc = 0;
};

struct Message {
  MessageHeader header;
  std::vector<float> payload;  ///< header.payload_floats values
};

/// Frames `m` (header + payload) into a byte buffer; sets the header's
/// payload_floats and payload_crc from the payload.
std::vector<std::uint8_t> encode(const Message& m);

/// Parses a frame produced by encode(). Throws fedclust::Error on bad
/// magic, unsupported version, unknown kind, a payload length that
/// disagrees with the buffer, a payload checksum mismatch (wire
/// corruption), or trailing garbage.
Message decode(std::span<const std::uint8_t> buf);

}  // namespace fedclust::net
