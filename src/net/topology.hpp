// Static two-level aggregation tree for cross-device rounds.
//
// Flat aggregation ships every cohort update to the server — O(cohort)
// resident updates and O(cohort × model) bytes on the server's ingress
// link. A two-level tree splits the round's cohort (by slot in the sorted
// cohort list) into `num_edges` contiguous, balanced groups; each edge
// aggregator folds its group's updates into one running partial, and the
// server folds the edge partials in edge order. Because the engine folds
// every update through one shared slot-ordered double accumulator
// (ops::weighted_accumulate_partial), the tree result is bit-identical
// to flat weighted_average for ANY edge count — see
// fl::Federation::train_clients_folded.
//
// Robust rules (trimmed mean / median / norm-clip) and server-side
// validation need the full update sample per coordinate and therefore
// cannot fold; they gather at the root (explicit O(cohort × model)
// memory note in DESIGN.md §4f).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace fedclust::net {

struct EdgeTopology {
  /// Edge aggregators between clients and server; 1 = flat.
  std::size_t num_edges = 1;

  /// Effective edge count for a cohort: at least 1, at most the cohort
  /// size (an edge with no clients sends nothing).
  std::size_t clamped_edges(std::size_t cohort) const;

  /// Contiguous [begin, end) of cohort slots handled by `edge`; balanced
  /// to within one slot.
  std::pair<std::size_t, std::size_t> slot_range(std::size_t edge,
                                                 std::size_t cohort) const;

  /// float32 values crossing the edge→server links in one round: one
  /// partial-aggregate frame per non-empty edge, versus `cohort` full
  /// update frames flat — the tree's bandwidth headline.
  std::uint64_t server_link_floats(std::size_t cohort,
                                   std::size_t model_floats) const;
};

}  // namespace fedclust::net
