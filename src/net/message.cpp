#include "net/message.hpp"

#include <cstring>

#include "nn/serialize.hpp"
#include "utils/crc32.hpp"
#include "utils/error.hpp"

namespace fedclust::net {
namespace {

constexpr char kMagic[4] = {'F', 'C', 'M', 'G'};
// Version 2 added the payload CRC-32 field to the frame header.
constexpr std::uint16_t kRawVersion = 2;
// Version 3 frames carry an update-codec payload (codec id +
// encoded-byte length in the header; CRC sealing the encoded bytes).
constexpr std::uint16_t kCodecVersion = 3;

void splice_crc(std::vector<std::uint8_t>& buf, std::size_t crc_pos,
                std::size_t payload_pos) {
  const std::uint32_t crc =
      crc32(buf.data() + payload_pos, buf.size() - payload_pos);
  buf[crc_pos] = static_cast<std::uint8_t>(crc & 0xff);
  buf[crc_pos + 1] = static_cast<std::uint8_t>((crc >> 8) & 0xff);
  buf[crc_pos + 2] = static_cast<std::uint8_t>((crc >> 16) & 0xff);
  buf[crc_pos + 3] = static_cast<std::uint8_t>((crc >> 24) & 0xff);
}

}  // namespace

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kModelBroadcast:
      return "model_broadcast";
    case MessageKind::kModelUpdate:
      return "model_update";
    case MessageKind::kPartialUpdate:
      return "partial_update";
    case MessageKind::kBasisUpload:
      return "basis_upload";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Message& m) {
  std::vector<std::uint8_t> buf;
  if (m.codec_frame) {
    buf.reserve(kCodecHeaderBytes + m.encoded.size());
    nn::wire::put_bytes(buf, kMagic, sizeof(kMagic));
    nn::wire::put_u16(buf, kCodecVersion);
    nn::wire::put_u16(buf, static_cast<std::uint16_t>(m.header.kind));
    nn::wire::put_u32(buf, m.header.round);
    nn::wire::put_u32(buf, m.header.sender);
    // The uncompressed length cannot be recovered from the encoded
    // bytes, so the caller-provided header value goes on the wire.
    nn::wire::put_u64(buf, m.header.payload_floats);
    nn::wire::put_u16(buf, m.header.codec);
    nn::wire::put_u64(buf, static_cast<std::uint64_t>(m.encoded.size()));
    // Checksum the payload exactly as it goes on the wire: the encoded
    // codec bytes, not the floats they decode to.
    const std::size_t crc_pos = buf.size();
    nn::wire::put_u32(buf, 0);
    const std::size_t payload_pos = buf.size();
    nn::wire::put_bytes(buf, m.encoded.data(), m.encoded.size());
    splice_crc(buf, crc_pos, payload_pos);
    return buf;
  }
  buf.reserve(kHeaderBytes + m.payload.size() * 4);
  nn::wire::put_bytes(buf, kMagic, sizeof(kMagic));
  nn::wire::put_u16(buf, kRawVersion);
  nn::wire::put_u16(buf, static_cast<std::uint16_t>(m.header.kind));
  nn::wire::put_u32(buf, m.header.round);
  nn::wire::put_u32(buf, m.header.sender);
  nn::wire::put_u64(buf, static_cast<std::uint64_t>(m.payload.size()));
  // Checksum the payload exactly as it goes on the wire: encode it first,
  // CRC the encoded bytes, then splice the checksum into the header slot.
  const std::size_t crc_pos = buf.size();
  nn::wire::put_u32(buf, 0);
  const std::size_t payload_pos = buf.size();
  nn::wire::put_f32(buf, m.payload);
  splice_crc(buf, crc_pos, payload_pos);
  return buf;
}

Message decode(std::span<const std::uint8_t> buf) {
  nn::wire::Reader r(buf);
  char magic[4];
  r.raw(magic, sizeof(magic));
  FEDCLUST_CHECK(std::memcmp(magic, kMagic, 4) == 0,
                 "not a fedclust network message");
  const std::uint16_t version = r.u16();
  FEDCLUST_CHECK(version == kRawVersion || version == kCodecVersion,
                 "unsupported message version " << version);

  Message m;
  const std::uint16_t kind = r.u16();
  FEDCLUST_CHECK(kind >= 1 &&
                     kind <= static_cast<std::uint16_t>(
                                 MessageKind::kBasisUpload),
                 "unknown message kind " << kind);
  m.header.kind = static_cast<MessageKind>(kind);
  m.header.round = r.u32();
  m.header.sender = r.u32();
  m.header.payload_floats = r.u64();
  if (version == kCodecVersion) {
    m.codec_frame = true;
    m.header.codec = r.u16();
    m.header.payload_bytes = r.u64();
    m.header.payload_crc = r.u32();
    FEDCLUST_CHECK(r.remaining() == m.header.payload_bytes,
                   "message payload length mismatch: header says "
                       << m.header.payload_bytes << " bytes, buffer has "
                       << r.remaining());
  } else {
    m.header.payload_crc = r.u32();
    FEDCLUST_CHECK(r.remaining() == m.header.payload_floats * 4,
                   "message payload length mismatch: header says "
                       << m.header.payload_floats * 4 << " bytes, buffer has "
                       << r.remaining());
  }
  const std::uint32_t actual_crc =
      crc32(buf.data() + r.position(), r.remaining());
  FEDCLUST_CHECK(actual_crc == m.header.payload_crc,
                 "message payload checksum mismatch: header says 0x"
                     << std::hex << m.header.payload_crc << ", payload hashes "
                     << "to 0x" << actual_crc
                     << " — frame corrupted in transit");
  if (m.codec_frame) {
    m.encoded.resize(m.header.payload_bytes);
    r.raw(m.encoded.data(), m.encoded.size());
  } else {
    m.payload.resize(m.header.payload_floats);
    r.f32(m.payload);
  }
  return m;
}

}  // namespace fedclust::net
