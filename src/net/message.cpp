#include "net/message.hpp"

#include <cstring>

#include "nn/serialize.hpp"
#include "utils/error.hpp"

namespace fedclust::net {
namespace {

constexpr char kMagic[4] = {'F', 'C', 'M', 'G'};
constexpr std::uint16_t kVersion = 1;

}  // namespace

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kModelBroadcast:
      return "model_broadcast";
    case MessageKind::kModelUpdate:
      return "model_update";
    case MessageKind::kPartialUpdate:
      return "partial_update";
    case MessageKind::kBasisUpload:
      return "basis_upload";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode(const Message& m) {
  std::vector<std::uint8_t> buf;
  buf.reserve(kHeaderBytes + m.payload.size() * 4);
  nn::wire::put_bytes(buf, kMagic, sizeof(kMagic));
  nn::wire::put_u16(buf, kVersion);
  nn::wire::put_u16(buf, static_cast<std::uint16_t>(m.header.kind));
  nn::wire::put_u32(buf, m.header.round);
  nn::wire::put_u32(buf, m.header.sender);
  nn::wire::put_u64(buf, static_cast<std::uint64_t>(m.payload.size()));
  nn::wire::put_f32(buf, m.payload);
  return buf;
}

Message decode(std::span<const std::uint8_t> buf) {
  nn::wire::Reader r(buf);
  char magic[4];
  r.raw(magic, sizeof(magic));
  FEDCLUST_CHECK(std::memcmp(magic, kMagic, 4) == 0,
                 "not a fedclust network message");
  const std::uint16_t version = r.u16();
  FEDCLUST_CHECK(version == kVersion,
                 "unsupported message version " << version);

  Message m;
  const std::uint16_t kind = r.u16();
  FEDCLUST_CHECK(kind >= 1 &&
                     kind <= static_cast<std::uint16_t>(
                                 MessageKind::kBasisUpload),
                 "unknown message kind " << kind);
  m.header.kind = static_cast<MessageKind>(kind);
  m.header.round = r.u32();
  m.header.sender = r.u32();
  m.header.payload_floats = r.u64();
  FEDCLUST_CHECK(r.remaining() == m.header.payload_floats * 4,
                 "message payload length mismatch: header says "
                     << m.header.payload_floats * 4 << " bytes, buffer has "
                     << r.remaining());
  m.payload.resize(m.header.payload_floats);
  r.f32(m.payload);
  return m;
}

}  // namespace fedclust::net
