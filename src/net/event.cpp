#include "net/event.hpp"

#include <algorithm>
#include <bit>

#include "utils/error.hpp"

namespace fedclust::net {
namespace {

bool later(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kBroadcastDelivered:
      return "broadcast_delivered";
    case EventKind::kComputeDone:
      return "compute_done";
    case EventKind::kUploadAttempt:
      return "upload_attempt";
    case EventKind::kUploadDropped:
      return "upload_dropped";
    case EventKind::kUploadDelivered:
      return "upload_delivered";
    case EventKind::kUploadLate:
      return "upload_late";
    case EventKind::kUploadLost:
      return "upload_lost";
    case EventKind::kDeadline:
      return "deadline";
    case EventKind::kRoundClosed:
      return "round_closed";
  }
  return "unknown";
}

void EventQueue::push(Event e) {
  e.seq = next_seq_++;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

Event EventQueue::pop() {
  FEDCLUST_REQUIRE(!heap_.empty(), "pop on empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Event e = heap_.back();
  heap_.pop_back();
  return e;
}

std::uint64_t fingerprint(const std::vector<Event>& log) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  for (const Event& e : log) {
    mix(std::bit_cast<std::uint64_t>(e.time));
    mix(e.seq);
    mix(static_cast<std::uint64_t>(e.kind));
    mix(e.round);
    mix(e.client);
    mix(e.attempt);
    mix(e.bytes);
  }
  return h;
}

}  // namespace fedclust::net
