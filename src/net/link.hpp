// Per-client link and device models for the network simulator.
//
// Each client owns a ClientLink: base latency, bandwidth, jitter, drop
// probability, and a device compute-speed multiplier. Named profiles
// build homogeneous (lan/wan) or per-client-drawn (cellular,
// heterogeneous) populations from a seeded Rng, so a (profile, seed)
// pair always yields the same fleet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "utils/rng.hpp"

namespace fedclust::net {

struct ClientLink {
  double latency_s = 0.0;      ///< one-way propagation delay
  double bandwidth_Bps = 0.0;  ///< bytes per second (> 0)
  double jitter_s = 0.0;       ///< max added uniform latency noise
  double drop_prob = 0.0;      ///< per-message loss probability
  double compute_scale = 1.0;  ///< device slowdown factor (1 = reference)
};

enum class Profile {
  kLan,            ///< datacenter-grade: ~1 Gbps, 1 ms, lossless
  kWan,            ///< broadband: 20 Mbps, 50 ms, light loss
  kCellular,       ///< mobile: 2-10 Mbps, high latency/jitter/loss,
                   ///< per-client bandwidth and compute draws
  kHeterogeneous,  ///< mixed fleet: each client drawn lan/wan/cellular
};

/// Parses "lan"/"wan"/"cellular"/"heterogeneous"; throws on anything else.
Profile profile_from_string(const std::string& name);
const char* to_string(Profile profile);
/// All named profiles, in a stable order (for "--profile all" sweeps).
std::vector<Profile> all_profiles();

/// Builds the per-client fleet for a profile. Each client's draws come
/// from an independent child stream of `rng`, keyed by client index, so
/// the fleet is identical across runs for the same (profile, seed).
std::vector<ClientLink> make_links(Profile profile, std::size_t num_clients,
                                   Rng rng);

/// Seconds to push `bytes` through `link`: latency + bytes/bandwidth +
/// a uniform jitter draw from `rng` (deterministic given the stream).
double transfer_seconds(const ClientLink& link, std::uint64_t bytes,
                        Rng& rng);

}  // namespace fedclust::net
