#include "net/link.hpp"

#include "utils/error.hpp"

namespace fedclust::net {
namespace {

ClientLink lan_link() {
  return {.latency_s = 1e-3,
          .bandwidth_Bps = 125e6,  // 1 Gbps
          .jitter_s = 2e-4,
          .drop_prob = 0.0,
          .compute_scale = 1.0};
}

ClientLink wan_link() {
  return {.latency_s = 0.05,
          .bandwidth_Bps = 2.5e6,  // 20 Mbps
          .jitter_s = 0.01,
          .drop_prob = 0.01,
          .compute_scale = 1.0};
}

/// Cellular draws vary per client: bandwidth 2-10 Mbps, latency
/// 60-150 ms, and a 1-3x device slowdown.
ClientLink cellular_link(Rng& rng) {
  return {.latency_s = rng.uniform(0.06, 0.15),
          .bandwidth_Bps = rng.uniform(2.5e5, 1.25e6),
          .jitter_s = 0.03,
          .drop_prob = 0.03,
          .compute_scale = rng.uniform(1.0, 3.0)};
}

}  // namespace

Profile profile_from_string(const std::string& name) {
  if (name == "lan") return Profile::kLan;
  if (name == "wan") return Profile::kWan;
  if (name == "cellular") return Profile::kCellular;
  if (name == "heterogeneous") return Profile::kHeterogeneous;
  FEDCLUST_REQUIRE(false, "unknown network profile '"
                              << name
                              << "' (want lan|wan|cellular|heterogeneous)");
}

const char* to_string(Profile profile) {
  switch (profile) {
    case Profile::kLan:
      return "lan";
    case Profile::kWan:
      return "wan";
    case Profile::kCellular:
      return "cellular";
    case Profile::kHeterogeneous:
      return "heterogeneous";
  }
  return "unknown";
}

std::vector<Profile> all_profiles() {
  return {Profile::kLan, Profile::kWan, Profile::kCellular,
          Profile::kHeterogeneous};
}

std::vector<ClientLink> make_links(Profile profile, std::size_t num_clients,
                                   Rng rng) {
  std::vector<ClientLink> links;
  links.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    Rng crng = rng.split(c);
    switch (profile) {
      case Profile::kLan:
        links.push_back(lan_link());
        break;
      case Profile::kWan:
        links.push_back(wan_link());
        break;
      case Profile::kCellular:
        links.push_back(cellular_link(crng));
        break;
      case Profile::kHeterogeneous: {
        // 40% lan-class, 35% wan-class, 25% cellular-class devices, with
        // an extra compute spread so stragglers exist on every tier.
        const std::size_t tier = crng.categorical({0.40, 0.35, 0.25});
        ClientLink link = tier == 0   ? lan_link()
                          : tier == 1 ? wan_link()
                                      : cellular_link(crng);
        link.compute_scale *= crng.uniform(0.5, 2.0);
        links.push_back(link);
        break;
      }
    }
  }
  return links;
}

double transfer_seconds(const ClientLink& link, std::uint64_t bytes,
                        Rng& rng) {
  FEDCLUST_REQUIRE(link.bandwidth_Bps > 0.0, "link bandwidth must be > 0");
  double t = link.latency_s + static_cast<double>(bytes) / link.bandwidth_Bps;
  if (link.jitter_s > 0.0) t += rng.uniform(0.0, link.jitter_s);
  return t;
}

}  // namespace fedclust::net
