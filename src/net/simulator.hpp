// Deterministic discrete-event simulation of synchronous FL rounds.
//
// One round, as the simulator models it:
//
//   server broadcast --> client compute --> client upload (with retries)
//
// Broadcasts go out in parallel at the round's start; each client's
// compute time is charged from its sample count x epochs x a per-sample
// cost model x the device's compute_scale; uploads can be dropped
// (per-link probability) and are retried with exponential backoff up to
// max_retries times. The server closes the round at the earliest of:
//   * the absolute deadline (deadline_s, if set),
//   * the straggler cutoff: the arrival of the first
//     ceil(straggler_frac x expected) uploads (if straggler_frac < 1),
//   * every expected upload resolving (delivered or lost).
// Uploads arriving after the close are "late" and, like lost ones, never
// reach the aggregator.
//
// Determinism contract: every stochastic draw (jitter, drops) comes from
// a splittable stream keyed by (seed, round, client, attempt, purpose) —
// never from a shared mutable stream — and ties in the event queue break
// by push order. Identical (config, seed, ops) therefore produce
// bit-identical event logs and round reports, regardless of thread
// count anywhere else in the process.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/event.hpp"
#include "net/link.hpp"
#include "net/message.hpp"

namespace fedclust::net {

/// Knobs of the simulated network, carried inside FederationConfig.
/// Default-constructed = disabled: the engine then meters bare float
/// bytes exactly as it did before the network layer existed.
struct NetworkConfig {
  bool enabled = false;
  Profile profile = Profile::kLan;
  /// Absolute per-round deadline in simulated seconds; 0 = none.
  double deadline_s = 0.0;
  /// Close the round once this fraction of expected uploads arrived
  /// (0 < frac <= 1); 1 = wait for everyone.
  double straggler_frac = 1.0;
  /// Resend attempts after a dropped upload (total sends <= 1 + retries).
  std::size_t max_retries = 3;
  /// Attempt i waits backoff_base_s * 2^(i-1) before resending.
  double backoff_base_s = 0.5;
  /// Reference device cost of one training sample for one epoch.
  double compute_s_per_sample = 2e-4;
  /// Stream for jitter/drop draws; 0 = derive from the federation seed.
  std::uint64_t seed = 0;
};

/// One client's part in a round: what it receives, computes, and sends.
struct ClientOp {
  std::size_t client = 0;
  std::size_t download_floats = 0;  ///< broadcast payload to this client
  std::size_t upload_floats = 0;    ///< update payload it sends back
  std::size_t num_samples = 0;      ///< local train set size (compute cost)
  std::size_t epochs = 0;           ///< local epochs (compute cost)
  /// Device churn: the client receives the broadcast but dies before
  /// uploading (the engine's dropout injection).
  bool churned = false;
  MessageKind upload_kind = MessageKind::kModelUpdate;
  /// Framed-byte overrides for codec traffic: when non-zero, this exact
  /// byte count is charged for the transfer instead of
  /// wire_bytes(*_floats). The engine sets these to
  /// wire_bytes_encoded(codec payload) when compression is on; zero
  /// keeps the historical raw-float32 framing bit-identical.
  std::uint64_t download_bytes = 0;
  std::uint64_t upload_bytes = 0;
};

/// Outcome of one asynchronously dispatched op (simulate_client_op).
struct OpOutcome {
  bool delivered = false;    ///< the upload physically arrived
  double finish = 0.0;       ///< arrival (or final resolution) time
  std::size_t attempts = 0;  ///< sends consumed (0 when churned)
};

/// Outcome of one op, in ops order.
struct Arrival {
  std::size_t client = 0;
  bool delivered = false;     ///< the update physically arrived
  bool late = false;          ///< ... but after the round closed
  double time = 0.0;          ///< arrival (or final resolution) time
  std::size_t attempts = 0;   ///< sends consumed (1 = no retries)
};

struct RoundReport {
  std::size_t round = 0;
  double start = 0.0;
  double close = 0.0;  ///< when the server stopped waiting
  std::vector<Arrival> arrivals;
  std::size_t accepted = 0;  ///< delivered && !late
};

class NetworkSimulator {
 public:
  /// Explicit fleet — what tests use to pin exact timings.
  NetworkSimulator(const NetworkConfig& config,
                   std::vector<ClientLink> links, std::uint64_t seed);
  /// Fleet drawn from the config's profile for `num_clients` clients.
  NetworkSimulator(const NetworkConfig& config, std::size_t num_clients,
                   std::uint64_t seed);

  /// Simulates one synchronous round over `ops` and advances the virtual
  /// clock to the round's close. `reliable` models protocol steps that
  /// must hear from every client (e.g. FedClust's formation round): no
  /// deadline, no straggler cutoff, and the final retry never drops.
  RoundReport run_round(std::size_t round, const std::vector<ClientOp>& ops,
                        bool reliable = false);

  /// Simulates one completion-driven dispatch for the async engine: the
  /// broadcast leaves the server at `start`, the client computes, and the
  /// upload goes through the same jitter/drop/backoff pipeline as a
  /// run_round op. `dispatch` is the globally unique dispatch sequence
  /// number — it keys every stochastic draw (offset into its own stream
  /// space so dispatch 0 never aliases round 0's draws) and appears as
  /// the event log's round field. Events are appended to the log grouped
  /// per op, in causal order; there is no deadline, straggler cutoff, or
  /// reliability override — a lost upload simply re-dispatches later.
  /// Does NOT advance the clock (the scheduler owns it: advance_clock).
  OpOutcome simulate_client_op(std::size_t dispatch, const ClientOp& op,
                               double start);

  /// Monotonically advances the virtual clock to at least `t`.
  void advance_clock(double t) { clock_ = std::max(clock_, t); }

  double now() const { return clock_; }
  const std::vector<Event>& log() const { return log_; }
  const std::vector<RoundReport>& round_reports() const { return reports_; }
  const std::vector<ClientLink>& links() const { return links_; }
  const NetworkConfig& config() const { return config_; }
  std::uint64_t fingerprint() const { return net::fingerprint(log_); }

  /// Clears the clock, log, and reports (pairs with CommMeter::reset).
  void reset();

  /// Restores the virtual clock and event log from a checkpoint. Reports
  /// are per-run diagnostics and start empty; every future draw is keyed
  /// functionally by (seed, round, client, attempt), so no RNG state
  /// needs restoring.
  void restore(double clock, std::vector<Event> log);

 private:
  Rng draw(std::uint64_t purpose, std::size_t round, std::size_t client,
           std::size_t attempt) const;

  NetworkConfig config_;
  std::vector<ClientLink> links_;
  std::uint64_t seed_ = 0;
  double clock_ = 0.0;
  std::vector<Event> log_;
  std::vector<RoundReport> reports_;
};

/// Sums framed bytes of delivered traffic in an event log: broadcasts
/// (server -> client) and on-time uploads (client -> server). The
/// CommMeter's totals are exactly this view when the simulator is on.
struct DeliveredBytes {
  std::uint64_t download = 0;
  std::uint64_t upload = 0;
};
DeliveredBytes delivered_bytes(const std::vector<Event>& log);

}  // namespace fedclust::net
