// Partial-weight selection — the "strategically selected" model slice
// FedClust uploads instead of the full model (paper §II/Fig. 1).
//
// The implementation lives in nn/slicing.hpp because it is a generic
// model-weights utility (FedPer reuses it for its personal head); this
// header re-exports it under the core namespace, where the FedClust API
// surfaces it.
#pragma once

#include "nn/slicing.hpp"

namespace fedclust::core {

using nn::extract_slices;
using nn::resolve_partial_slices;
using nn::slices_numel;

}  // namespace fedclust::core
