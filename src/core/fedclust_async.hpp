// FedClust bound to the fl/async engine.
//
// begin() runs the exact round-0 formation phase FedClust::run executes
// (FedClust::formation_phase — one code path); afterwards cluster
// membership is static, so the buffered async driver can stream
// per-cluster flushes. Under fl::run_synchronized this adapter replays
// the classic run() loop bit-identically (the SyncEquivalence gate pins
// it); under fl::run_async it is the paper's method with FedBuff-style
// buffered aggregation per cluster.
#pragma once

#include "core/fedclust.hpp"
#include "fl/async.hpp"

namespace fedclust::core {

class FedClustAsync : public fl::AsyncAdapter {
 public:
  explicit FedClustAsync(FedClustConfig config) : algo_(config) {}

  std::string name() const override { return algo_.name(); }
  std::size_t begin(fl::Federation& federation,
                    fl::RunResult& result) override;
  double sync_round(fl::Federation& federation, std::size_t round) override;
  fl::AccuracySummary evaluate(const fl::Federation& federation) const override;
  std::uint64_t fingerprint() const override;
  std::size_t num_clusters() const override { return cluster_weights_.size(); }
  void finish(fl::RunResult& result) override;

  bool supports_async() const override { return true; }
  std::size_t cluster_of(std::size_t client) const override {
    return labels_.at(client);
  }
  std::span<const float> cluster_model(std::size_t cluster) const override;
  void set_cluster_model(std::size_t cluster,
                         std::vector<float> weights) override;

  void save_state(robust::RunCheckpoint& checkpoint) const override;
  void restore_state(fl::Federation& federation,
                     const robust::RunCheckpoint& checkpoint) override;

  /// The clustering outcome begin() produced (formation artifacts kept
  /// for newcomer admission, as in FedClust::last_clustering).
  const ClusteringOutcome& outcome() const { return outcome_; }

 private:
  FedClust algo_;
  ClusteringOutcome outcome_;
  std::vector<std::size_t> labels_;
  std::vector<std::vector<float>> cluster_weights_;
};

}  // namespace fedclust::core
