#include "core/fedclust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "algorithms/common.hpp"
#include "check/audit.hpp"
#include "cluster/distance.hpp"
#include "cluster/dynamic.hpp"
#include "cluster/metrics.hpp"
#include "cluster/routing.hpp"
#include "fl/trainer.hpp"

namespace fedclust::core {
namespace {

/// Newcomer-warmup stream tag: keeps the arrival's solo training draw
/// independent of the same (client, round) training-round stream.
constexpr std::uint64_t kNewcomerWarmupTag = 0x7d10;

/// Mean per-client accuracy by cluster; NaN for clusters with no finite
/// member entry (empty, or every member departed — their per_client
/// slots are NaN under a drift plan), which freezes the detector window.
std::vector<double> cluster_accuracies(const fl::AccuracySummary& acc,
                                       const std::vector<std::size_t>& labels,
                                       std::size_t clusters) {
  std::vector<double> sum(clusters, 0.0);
  std::vector<std::size_t> count(clusters, 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double a = i < acc.per_client.size()
                         ? acc.per_client[i]
                         : std::numeric_limits<double>::quiet_NaN();
    if (!std::isfinite(a)) continue;
    sum[labels[i]] += a;
    ++count[labels[i]];
  }
  std::vector<double> out(clusters,
                          std::numeric_limits<double>::quiet_NaN());
  for (std::size_t c = 0; c < clusters; ++c) {
    if (count[c] > 0) out[c] = sum[c] / static_cast<double>(count[c]);
  }
  return out;
}

}  // namespace

ClusteringOutcome FedClust::form_clusters(fl::Federation& federation,
                                          std::size_t round) const {
  const nn::Model& tmpl = federation.template_model();
  const std::vector<nn::ParamSlice> slices =
      resolve_partial_slices(tmpl, config_.partial_spec);
  const std::vector<float> init_weights = tmpl.flat_weights();

  // Warmup round: every client trains from the common initialization.
  fl::LocalTrainConfig warmup = federation.config().local;
  if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;

  std::vector<std::size_t> everyone(federation.num_clients());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;

  // The paper's formation round covers all available clients, so the
  // warmup is exempt from dropout injection — and under the simulated
  // network it runs as a reliable round that waits for every upload.
  // With fault injection, crashed clients still go missing even here.
  const fl::NetPayloads payloads{federation.model_size(),
                                 slices_numel(slices),
                                 net::MessageKind::kPartialUpdate};
  const std::size_t n = federation.num_clients();

  ClusteringOutcome out;
  out.partial_weights.resize(n);
  std::vector<bool> reported(n, false);
  const auto record = [&](const std::vector<fl::ClientUpdate>& updates) {
    for (const fl::ClientUpdate& u : updates) {
      std::vector<float> partial = extract_slices(u.weights, slices);
      // With validation off, corrupted uploads reach us unscreened; a
      // non-finite partial would poison the proximity matrix, so treat
      // it as missing and let the retry waves ask again.
      bool finite = true;
      for (const float x : partial) {
        if (!std::isfinite(x)) {
          finite = false;
          break;
        }
      }
      if (!finite) continue;
      out.partial_weights[u.client_id] = std::move(partial);
      reported[u.client_id] = true;
    }
  };
  record(federation.train_clients(
      everyone, round,
      [&](std::size_t) { return std::span<const float>(init_weights); },
      &warmup, /*allow_failures=*/false, &payloads));

  // Bounded re-solicitation of the missing uploads. Each wave carries a
  // fresh fault attempt, so a transiently crashed client can answer the
  // retry; quarantined clients are not asked again.
  for (std::size_t attempt = 1; attempt <= config_.formation_retries;
       ++attempt) {
    std::vector<std::size_t> missing;
    for (std::size_t c = 0; c < n; ++c) {
      const bool quarantined = federation.config().robust.validate.enabled &&
                               federation.quarantine().quarantined(c);
      if (!reported[c] && !quarantined) missing.push_back(c);
    }
    if (missing.empty()) break;
    out.resolicited.push_back(missing);
    record(federation.train_clients(
        missing, round,
        [&](std::size_t) { return std::span<const float>(init_weights); },
        &warmup, /*allow_failures=*/false, &payloads, attempt));
  }

  for (std::size_t c = 0; c < n; ++c) {
    (reported[c] ? out.reporters : out.deferred).push_back(c);
  }

  // Wire accounting: full model down per solicitation, partial up per
  // arrived report (faults off: exactly one of each per client).
  std::size_t solicitations = n;
  for (const auto& wave : out.resolicited) solicitations += wave.size();
  out.download_bytes =
      federation.download_wire_bytes(federation.model_size()) * solicitations;
  out.upload_bytes =
      federation.upload_wire_bytes(slices_numel(slices)) * out.reporters.size();

  // Quorum gate: clustering over a sliver of the population would bake
  // an unrepresentative partition in for the whole run.
  const std::size_t quorum = static_cast<std::size_t>(std::ceil(
      config_.min_formation_quorum * static_cast<double>(n)));
  if (out.reporters.size() < quorum) {
    FEDCLUST_CHECK(
        config_.formation_fallback !=
            FedClustConfig::FormationFallback::kAbort,
        "formation quorum failed: " << out.reporters.size() << " of " << n
                                    << " clients reported (quorum "
                                    << quorum << ")");
    out.labels.assign(n, 0);
    out.fallback_global = true;
    if (federation.config().audit) {
      check::audit_cluster_partition(out.labels);
    }
    return out;
  }

  // Server side: proximity matrix -> HC -> cut, over the reporters.
  std::vector<std::vector<float>> reporter_partials;
  reporter_partials.reserve(out.reporters.size());
  for (const std::size_t c : out.reporters) {
    reporter_partials.push_back(out.partial_weights[c]);
  }
  out.proximity = cluster::pairwise_euclidean(reporter_partials);
  out.dendrogram = cluster::agglomerative_cluster(out.proximity,
                                                  config_.linkage);

  const CutPolicy policy = config_.threshold > 0.0
                               ? CutPolicy::kFixedThreshold
                               : config_.cut_policy;
  switch (policy) {
    case CutPolicy::kFixedThreshold:
      out.threshold = config_.threshold;
      out.labels = out.dendrogram.cut_threshold(out.threshold);
      break;
    case CutPolicy::kRelativeThreshold: {
      double mean_distance = 0.0;
      std::size_t pairs = 0;
      for (std::size_t i = 0; i < out.proximity.rows(); ++i) {
        for (std::size_t j = i + 1; j < out.proximity.cols(); ++j) {
          mean_distance += out.proximity(i, j);
          ++pairs;
        }
      }
      if (pairs > 0) mean_distance /= static_cast<double>(pairs);
      out.threshold = config_.rel_factor * mean_distance;
      out.labels = out.dendrogram.cut_threshold(out.threshold);
      break;
    }
    case CutPolicy::kLargestGap:
      out.threshold =
          cluster::suggest_threshold(out.dendrogram, config_.min_gap_ratio);
      out.labels = out.dendrogram.cut_threshold(out.threshold);
      break;
    case CutPolicy::kSilhouette: {
      const std::size_t m = out.reporters.size();
      const std::size_t k_max = std::max<std::size_t>(
          2, config_.max_clusters > 0 ? config_.max_clusters : m / 2);
      double best_score = -2.0;
      std::vector<std::size_t> best = std::vector<std::size_t>(m, 0);
      std::size_t best_k = 1;
      for (std::size_t k = 2; k <= std::min(k_max, m); ++k) {
        std::vector<std::size_t> labels = out.dendrogram.cut_k(k);
        const double score = cluster::silhouette(out.proximity, labels);
        if (score > best_score) {
          best_score = score;
          best = std::move(labels);
          best_k = k;
        }
      }
      if (best_score < config_.min_silhouette) {
        // No clustering structure at any k: keep one cluster.
        out.labels.assign(m, 0);
        out.threshold = out.dendrogram.merges.empty()
                            ? 0.0
                            : out.dendrogram.merges.back().distance + 1.0;
      } else {
        out.labels = std::move(best);
        // Report the equivalent distance cut for interpretability: the
        // distance of the first merge the cut rejected.
        const std::size_t applied = m - best_k;
        out.threshold = applied < out.dendrogram.merges.size()
                            ? out.dendrogram.merges[applied].distance
                            : out.dendrogram.merges.back().distance + 1.0;
      }
      break;
    }
  }
  // The cut above labeled the reporters (proximity rows); expand to a
  // per-client vector. Deferred clients hold a provisional 0 until the
  // newcomer path places them (run() does this before round 1).
  if (out.reporters.size() != n) {
    std::vector<std::size_t> full(n, 0);
    for (std::size_t i = 0; i < out.reporters.size(); ++i) {
      full[out.reporters[i]] = out.labels[i];
    }
    out.labels = std::move(full);
  }

  if (federation.config().audit) {
    // The one-shot formation is FedClust's load-bearing step: verify the
    // uploaded slices are finite, the Lance–Williams merges never invert
    // (what the largest-gap threshold scan assumes), and the cut produced
    // a genuine partition with consecutive cluster ids.
    for (std::size_t c = 0; c < out.partial_weights.size(); ++c) {
      if (out.partial_weights[c].empty()) continue;  // deferred client
      const std::string context =
          "formation partial weights of client " + std::to_string(c);
      check::assert_all_finite(out.partial_weights[c], context.c_str());
    }
    check::audit_dendrogram_monotone(out.dendrogram);
    check::audit_cluster_partition(out.labels);
  }
  return out;
}

ClusteringOutcome FedClust::formation_phase(
    fl::Federation& federation, fl::RunResult& result,
    std::vector<std::size_t>& labels_out,
    std::vector<std::vector<float>>& cluster_weights_out) const {
  // Round 0: one-shot weight-driven cluster formation. Every client
  // downloads the full initial model and uploads only its partial slice;
  // a re-solicited client downloads once more per retry wave.
  federation.comm().begin_round(0);
  ClusteringOutcome outcome = form_clusters(federation, /*round=*/0);
  const std::size_t partial_floats = slices_numel(resolve_partial_slices(
      federation.template_model(), config_.partial_spec));
  for (std::size_t c = 0; c < federation.num_clients(); ++c) {
    federation.meter_download(c, federation.model_size());
  }
  for (const auto& wave : outcome.resolicited) {
    for (const std::size_t c : wave) {
      federation.meter_download(c, federation.model_size());
    }
  }
  for (const std::size_t c : outcome.reporters) {
    federation.meter_upload(c, partial_floats);
  }

  std::vector<std::size_t>& labels = labels_out;
  labels = outcome.labels;
  std::vector<std::vector<float>>& cluster_weights = cluster_weights_out;
  cluster_weights.assign(cluster::num_clusters(labels),
                         federation.template_model().flat_weights());

  if (config_.warm_start_classifier) {
    // The server already holds every member's round-0 partial upload;
    // seed each cluster's slice with the member mean. Zero extra bytes.
    const std::vector<nn::ParamSlice> slices = resolve_partial_slices(
        federation.template_model(), config_.partial_spec);
    const auto members = cluster::members_by_cluster(labels);
    for (std::size_t c = 0; c < members.size(); ++c) {
      // Deferred clients have no stored upload yet — average the
      // contributors that do.
      std::vector<std::size_t> contributors;
      for (const std::size_t m : members[c]) {
        if (!outcome.partial_weights[m].empty()) contributors.push_back(m);
      }
      if (contributors.empty()) continue;
      const std::size_t dim = outcome.partial_weights[contributors[0]].size();
      std::vector<double> mean(dim, 0.0);
      for (const std::size_t m : contributors) {
        for (std::size_t i = 0; i < dim; ++i) {
          mean[i] += outcome.partial_weights[m][i];
        }
      }
      const double inv = 1.0 / static_cast<double>(contributors.size());
      std::size_t cursor = 0;
      for (const nn::ParamSlice& s : slices) {
        for (std::size_t i = 0; i < s.size; ++i, ++cursor) {
          cluster_weights[c][s.offset + i] =
              static_cast<float>(mean[cursor] * inv);
        }
      }
    }
  }

  // Deferred clients (no formation upload after every retry) join via
  // the newcomer path: solo warmup, nearest cluster by stored partials.
  // This still happens inside round 0, so its traffic is metered — and
  // simulated — before the round-0 snapshot.
  for (const std::size_t cid : outcome.deferred) {
    fl::LocalTrainConfig warmup = federation.config().local;
    if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;
    const std::vector<net::ClientOp> ops{
        {.client = cid,
         .download_floats = federation.model_size(),
         .upload_floats = partial_floats,
         .num_samples = federation.client_train_size(cid),
         .epochs = warmup.epochs,
         .churned = false,
         .upload_kind = net::MessageKind::kPartialUpdate,
         .download_bytes =
             federation.codec_download_op_bytes(federation.model_size())}};
    federation.simulate_network_round(0, ops, /*reliable=*/true);
    federation.meter_download(cid, federation.model_size());
    federation.meter_upload(cid, partial_floats);
    std::vector<float> partial;
    labels[cid] = assign_newcomer(
        federation.template_model(), federation.client_data(cid)->train,
        federation.config().local, federation.client_rng(cid, 0), outcome,
        &partial);
    outcome.partial_weights[cid] = std::move(partial);
    outcome.labels[cid] = labels[cid];
  }

  {
    const fl::AccuracySummary acc =
        algorithms::evaluate_clustered(federation, labels, cluster_weights);
    result.rounds.push_back(fl::make_round_metrics(
        0, acc, 0.0, federation, cluster_weights.size(),
        check::weights_fingerprint(cluster_weights)));
  }
  return outcome;
}

fl::RunResult FedClust::run(fl::Federation& federation, std::size_t rounds) {
  FEDCLUST_REQUIRE(rounds >= 2, "FedClust needs the formation round plus at "
                                "least one training round");
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();

  std::vector<std::size_t> labels;
  std::vector<std::vector<float>> cluster_weights;
  ClusteringOutcome outcome =
      formation_phase(federation, result, labels, cluster_weights);
  std::optional<fl::DriftDetector> detector;
  if (config_.dynamic.enabled) {
    detector.emplace(config_.dynamic.detector);
    detector->start(cluster_weights.size());
  }
  if (config_.checkpoint_every > 0) {
    robust::save_checkpoint(
        make_checkpoint(federation, /*next_round=*/1, labels, cluster_weights,
                        outcome, result,
                        detector ? &*detector : nullptr, /*recoveries=*/0),
        config_.checkpoint_path);
  }

  // Rounds 1..R-1: FedAvg within each cluster.
  run_rounds(federation, 1, rounds, labels, cluster_weights, outcome, result,
             detector ? &*detector : nullptr, /*recoveries=*/0);

  result.cluster_labels = labels;
  result.cluster_weights = std::move(cluster_weights);
  last_clustering_ = std::move(outcome);
  return result;
}

void FedClust::run_rounds(fl::Federation& federation, std::size_t first,
                          std::size_t rounds,
                          std::vector<std::size_t>& labels,
                          std::vector<std::vector<float>>& cluster_weights,
                          ClusteringOutcome& outcome, fl::RunResult& result,
                          fl::DriftDetector* detector,
                          std::size_t recoveries) {
  for (std::size_t round = first; round < rounds; ++round) {
    federation.comm().begin_round(round);
    if (federation.drift_enabled()) {
      admit_churn(federation, round, labels, outcome, detector);
    }
    const double loss = algorithms::per_cluster_fedavg_round(
        federation, round, labels, cluster_weights);
    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      fl::AccuracySummary acc = algorithms::evaluate_clustered(
          federation, labels, cluster_weights);
      fl::RoundMetrics metrics = fl::make_round_metrics(
          round, acc, loss, federation, cluster_weights.size(),
          check::weights_fingerprint(cluster_weights));
      if (detector != nullptr) {
        const std::vector<fl::DriftAlarm> alarms = detector->observe(
            round,
            cluster_accuracies(acc, labels, cluster_weights.size()));
        metrics.drift_score = detector->last_score();
        metrics.drift_alarms = alarms.size();
        const bool budget_left = config_.dynamic.max_recoveries == 0 ||
                                 recoveries < config_.dynamic.max_recoveries;
        if (!alarms.empty() && !last && budget_left) {
          const std::size_t applied = recover_clusters(
              federation, round, alarms, labels, cluster_weights, outcome,
              *detector);
          metrics.reclusters = applied;
          if (applied > 0) {
            ++recoveries;
            // The partition changed after the eval above: fingerprint
            // and cluster count should describe what round+1 trains on.
            metrics.num_clusters = cluster_weights.size();
            metrics.weights_fp = check::weights_fingerprint(cluster_weights);
          }
        }
      }
      result.rounds.push_back(metrics);
      if (last) result.final_accuracy = acc;
    }
    if (config_.checkpoint_every > 0 &&
        round % config_.checkpoint_every == 0) {
      robust::save_checkpoint(
          make_checkpoint(federation, round + 1, labels, cluster_weights,
                          outcome, result, detector, recoveries),
          config_.checkpoint_path);
    }
  }
}

void FedClust::admit_churn(fl::Federation& federation, std::size_t round,
                           std::vector<std::size_t>& labels,
                           ClusteringOutcome& outcome,
                           fl::DriftDetector* detector) const {
  const robust::DriftPlan* plan = federation.drift_plan();
  // Sets the drifted fleet's round and forgives the arrivals' inherited
  // quarantine strikes before anything samples or trains this round.
  federation.drift_advance(round);

  for (const std::size_t slot : plan->departures_at(round)) {
    // The stored anchor belongs to the departed tenant; the slot keeps
    // its label (it simply stops being sampled) but must never pull a
    // future newcomer toward the old tenant's weights.
    outcome.partial_weights[slot].clear();
    if (detector != nullptr) {
      detector->note(round, fl::DriftLogKind::kDeparture, slot);
    }
  }

  const std::vector<std::size_t> arrivals = plan->arrivals_at(round);
  if (arrivals.empty()) return;
  const std::size_t partial_floats = slices_numel(resolve_partial_slices(
      federation.template_model(), config_.partial_spec));
  fl::LocalTrainConfig warmup = federation.config().local;
  if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;
  for (const std::size_t slot : arrivals) {
    // The paper's real-time accommodation, verbatim from the deferred
    // path of formation_phase: solo warmup from the initial model (a
    // reliable exchange — the newcomer has no deadline to miss), then
    // nearest-cluster routing over the stored anchors.
    const std::vector<net::ClientOp> ops{
        {.client = slot,
         .download_floats = federation.model_size(),
         .upload_floats = partial_floats,
         .num_samples = federation.client_train_size(slot),
         .epochs = warmup.epochs,
         .churned = false,
         .upload_kind = net::MessageKind::kPartialUpdate,
         .download_bytes =
             federation.codec_download_op_bytes(federation.model_size())}};
    federation.simulate_network_round(round, ops, /*reliable=*/true);
    federation.meter_download(slot, federation.model_size());
    federation.meter_upload(slot, partial_floats);
    std::vector<float> partial;
    labels[slot] = assign_newcomer(
        federation.template_model(), federation.client_data(slot)->train,
        federation.config().local,
        federation.client_rng(slot, round).split(kNewcomerWarmupTag), outcome,
        &partial);
    outcome.partial_weights[slot] = std::move(partial);
    outcome.labels[slot] = labels[slot];
    if (detector != nullptr) {
      detector->note(round, fl::DriftLogKind::kArrival, slot,
                     static_cast<double>(labels[slot]));
    }
  }
}

std::size_t FedClust::recover_clusters(
    fl::Federation& federation, std::size_t round,
    const std::vector<fl::DriftAlarm>& alarms,
    std::vector<std::size_t>& labels,
    std::vector<std::vector<float>>& cluster_weights,
    ClusteringOutcome& outcome, fl::DriftDetector& detector) const {
  std::vector<std::size_t> flagged;
  flagged.reserve(alarms.size());
  for (const fl::DriftAlarm& a : alarms) flagged.push_back(a.cluster);
  std::sort(flagged.begin(), flagged.end());

  // Fresh anchors: the flagged clusters' active members re-run the
  // formation protocol (full model down, partial up) as a reliable
  // exchange, so the repair sees the drifted distributions — the stored
  // round-0 anchors are exactly what drift invalidated.
  std::vector<std::size_t> members;
  for (std::size_t c = 0; c < labels.size(); ++c) {
    if (!std::binary_search(flagged.begin(), flagged.end(), labels[c])) {
      continue;
    }
    if (!federation.client_active(round, c)) continue;
    members.push_back(c);
  }
  if (members.empty()) {
    // Nothing to re-anchor (everyone departed); the detector still
    // resets so the dead cluster cannot re-alarm every eval.
    detector.reset(round, cluster_weights.size());
    return 0;
  }

  const nn::Model& tmpl = federation.template_model();
  const std::vector<nn::ParamSlice> slices =
      resolve_partial_slices(tmpl, config_.partial_spec);
  const std::vector<float> init_weights = tmpl.flat_weights();
  fl::LocalTrainConfig warmup = federation.config().local;
  if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;
  const fl::NetPayloads payloads{federation.model_size(),
                                 slices_numel(slices),
                                 net::MessageKind::kPartialUpdate};
  // fault_attempt 64 keeps the re-anchor fault draws independent of the
  // round's training draws and of any formation retry wave (0..retries).
  const std::vector<fl::ClientUpdate> updates = federation.train_clients(
      members, round,
      [&](std::size_t) { return std::span<const float>(init_weights); },
      &warmup, /*allow_failures=*/false, &payloads, /*fault_attempt=*/64);
  for (const std::size_t c : members) {
    federation.meter_download(c, federation.model_size());
  }
  for (const fl::ClientUpdate& u : updates) {
    federation.meter_upload(u.client_id, slices_numel(slices));
    std::vector<float> partial = extract_slices(u.weights, slices);
    bool finite = true;
    for (const float x : partial) {
      if (!std::isfinite(x)) {
        finite = false;
        break;
      }
    }
    // A non-finite (corrupted) re-anchor keeps the stored one — worse
    // than fresh but never poisonous.
    if (finite) outcome.partial_weights[u.client_id] = std::move(partial);
  }

  cluster::ReclusterConfig rc;
  rc.linkage = config_.linkage;
  rc.threshold = outcome.threshold;
  rc.gaussian_sigma = config_.dynamic.gaussian_sigma;
  rc.reassign_margin = config_.dynamic.reassign_margin;
  std::vector<std::uint8_t> active(labels.size(), 1);
  for (std::size_t c = 0; c < labels.size(); ++c) {
    active[c] = federation.client_active(round, c) ? 1 : 0;
  }
  const cluster::ReclusterResult repaired =
      cluster::recluster(outcome.partial_weights, labels, flagged, active, rc);

  // Server models follow the parent mapping: kept clusters keep their
  // model, splits start from the flagged parent's, drained ones vanish.
  std::vector<std::vector<float>> next(repaired.parent.size());
  for (std::size_t j = 0; j < repaired.parent.size(); ++j) {
    next[j] = cluster_weights[repaired.parent[j]];
  }
  cluster_weights = std::move(next);
  labels = repaired.labels;
  outcome.labels = labels;
  if (federation.config().audit) {
    check::audit_cluster_partition(labels);
  }
  detector.reset(round, cluster_weights.size());
  return 1;
}

robust::RunCheckpoint FedClust::make_checkpoint(
    const fl::Federation& federation, std::size_t next_round,
    const std::vector<std::size_t>& labels,
    const std::vector<std::vector<float>>& cluster_weights,
    const ClusteringOutcome& outcome, const fl::RunResult& result,
    const fl::DriftDetector* detector, std::size_t recoveries) const {
  robust::RunCheckpoint ck;
  ck.next_round = next_round;
  ck.seed = federation.config().seed;
  ck.labels.assign(labels.begin(), labels.end());
  ck.cluster_weights = cluster_weights;
  ck.partial_weights = outcome.partial_weights;
  if (detector != nullptr) {
    ck.drift = detector->snapshot(recoveries);
    ck.drift.threshold = outcome.threshold;
  }
  ck.rounds.reserve(result.rounds.size());
  for (const fl::RoundMetrics& m : result.rounds) {
    ck.rounds.push_back(robust::RoundRecord{
        .round = m.round,
        .acc_mean = m.acc_mean,
        .acc_std = m.acc_std,
        .train_loss = m.train_loss,
        .cum_upload = m.cum_upload,
        .cum_download = m.cum_download,
        .num_clusters = m.num_clusters,
        .sim_seconds = m.sim_seconds,
        .weights_fp = m.weights_fp,
        .drift_score = m.drift_score,
        .drift_alarms = m.drift_alarms,
        .reclusters = m.reclusters});
  }
  const fl::CommMeter& comm = federation.comm();
  ck.comm.round_download = comm.round_download();
  ck.comm.round_upload = comm.round_upload();
  ck.comm.client_download = comm.per_client_download();
  ck.comm.client_upload = comm.per_client_upload();
  ck.comm.total_download = comm.total_download();
  ck.comm.total_upload = comm.total_upload();
  if (federation.network_enabled()) {
    ck.net.present = true;
    ck.net.clock = federation.network()->now();
    ck.net.log = federation.network()->log();
  }
  const robust::Quarantine& q = federation.quarantine();
  ck.quarantine_counts.assign(q.strike_counts().begin(),
                              q.strike_counts().end());
  ck.quarantine_max_strikes = q.max_strikes();
  return ck;
}

fl::RunResult FedClust::resume(fl::Federation& federation,
                               const robust::RunCheckpoint& checkpoint,
                               std::size_t rounds) {
  FEDCLUST_REQUIRE(checkpoint.seed == federation.config().seed,
                   "checkpoint seed " << checkpoint.seed
                                      << " does not match federation seed "
                                      << federation.config().seed);
  FEDCLUST_REQUIRE(checkpoint.labels.size() == federation.num_clients(),
                   "checkpoint covers " << checkpoint.labels.size()
                                        << " clients, federation has "
                                        << federation.num_clients());
  FEDCLUST_REQUIRE(checkpoint.next_round >= 1 && checkpoint.next_round < rounds,
                   "cannot resume at round " << checkpoint.next_round
                                             << " of a " << rounds
                                             << "-round run");
  FEDCLUST_REQUIRE(
      checkpoint.net.present == federation.network_enabled(),
      "checkpoint and federation disagree on the network simulator");

  federation.comm().restore(checkpoint.comm.round_download,
                            checkpoint.comm.round_upload,
                            checkpoint.comm.client_download,
                            checkpoint.comm.client_upload,
                            checkpoint.comm.total_download,
                            checkpoint.comm.total_upload);
  FEDCLUST_REQUIRE(federation.comm().round_count() == checkpoint.next_round,
                   "checkpoint comm series inconsistent with round index");
  if (federation.network_enabled()) {
    federation.network()->restore(checkpoint.net.clock, checkpoint.net.log);
  }
  federation.quarantine().restore(
      std::vector<std::size_t>(checkpoint.quarantine_counts.begin(),
                               checkpoint.quarantine_counts.end()),
      checkpoint.quarantine_max_strikes);

  fl::RunResult result;
  result.algorithm = name();
  result.rounds.reserve(checkpoint.rounds.size());
  for (const robust::RoundRecord& m : checkpoint.rounds) {
    result.rounds.push_back(fl::RoundMetrics{
        .round = static_cast<std::size_t>(m.round),
        .acc_mean = m.acc_mean,
        .acc_std = m.acc_std,
        .train_loss = m.train_loss,
        .cum_upload = m.cum_upload,
        .cum_download = m.cum_download,
        .num_clusters = static_cast<std::size_t>(m.num_clusters),
        .sim_seconds = m.sim_seconds,
        .weights_fp = m.weights_fp,
        .drift_score = m.drift_score,
        .drift_alarms = static_cast<std::size_t>(m.drift_alarms),
        .reclusters = static_cast<std::size_t>(m.reclusters)});
  }

  std::vector<std::size_t> labels(checkpoint.labels.begin(),
                                  checkpoint.labels.end());
  std::vector<std::vector<float>> cluster_weights = checkpoint.cluster_weights;
  ClusteringOutcome outcome;
  outcome.partial_weights = checkpoint.partial_weights;
  outcome.labels = labels;
  // Dynamic checkpoints carry the formation run's applied cut; static
  // ones never split, so the config value (possibly 0) is fine.
  outcome.threshold =
      checkpoint.drift.present ? checkpoint.drift.threshold : config_.threshold;

  std::optional<fl::DriftDetector> detector;
  std::size_t recoveries = 0;
  if (config_.dynamic.enabled) {
    detector.emplace(config_.dynamic.detector);
    if (checkpoint.drift.present) {
      detector->restore(checkpoint.drift);
      recoveries = static_cast<std::size_t>(checkpoint.drift.recoveries);
    } else {
      detector->start(cluster_weights.size());
    }
  }
  if (federation.drift_enabled()) {
    federation.drift_resume(checkpoint.next_round);
  }

  run_rounds(federation, checkpoint.next_round, rounds, labels,
             cluster_weights, outcome, result,
             detector ? &*detector : nullptr, recoveries);
  result.cluster_labels = labels;
  result.cluster_weights = std::move(cluster_weights);
  last_clustering_ = std::move(outcome);
  return result;
}

std::size_t FedClust::assign_newcomer(
    const nn::Model& template_model, const data::Dataset& newcomer_train,
    const fl::LocalTrainConfig& local_config, Rng rng,
    const ClusteringOutcome& outcome, std::vector<float>* partial_out) const {
  FEDCLUST_REQUIRE(!outcome.labels.empty(),
                   "clustering outcome has no members");

  // The newcomer repeats the formation protocol solo: train from the
  // initial global model, extract the same partial slice.
  fl::LocalTrainConfig warmup = local_config;
  if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;
  nn::Model model = template_model.clone();
  fl::train_local(model, newcomer_train, warmup, rng);

  const std::vector<nn::ParamSlice> slices =
      resolve_partial_slices(template_model, config_.partial_spec);
  const std::vector<float> partial =
      extract_slices(model.flat_weights(), slices);
  if (partial_out != nullptr) *partial_out = partial;

  // Nearest cluster by mean Euclidean distance to the stored member
  // uploads. The distance/argmin pair lives in cluster/routing so the
  // serving router applies bit-identical assignment semantics.
  const std::size_t k = cluster::num_clusters(outcome.labels);
  const std::vector<double> means = cluster::mean_cluster_distances(
      partial, outcome.partial_weights, outcome.labels, k);
  return cluster::nearest_cluster(means);
}

}  // namespace fedclust::core
