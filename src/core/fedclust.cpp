#include "core/fedclust.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "algorithms/common.hpp"
#include "check/audit.hpp"
#include "cluster/distance.hpp"
#include "cluster/metrics.hpp"
#include "fl/trainer.hpp"

namespace fedclust::core {

ClusteringOutcome FedClust::form_clusters(fl::Federation& federation,
                                          std::size_t round) const {
  const nn::Model& tmpl = federation.template_model();
  const std::vector<nn::ParamSlice> slices =
      resolve_partial_slices(tmpl, config_.partial_spec);
  const std::vector<float> init_weights = tmpl.flat_weights();

  // Warmup round: every client trains from the common initialization.
  fl::LocalTrainConfig warmup = federation.config().local;
  if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;

  std::vector<std::size_t> everyone(federation.num_clients());
  for (std::size_t i = 0; i < everyone.size(); ++i) everyone[i] = i;

  // The paper's formation round covers all available clients, so the
  // warmup is exempt from dropout injection — and under the simulated
  // network it runs as a reliable round that waits for every upload.
  const fl::NetPayloads payloads{federation.model_size(),
                                 slices_numel(slices),
                                 net::MessageKind::kPartialUpdate};
  const std::vector<fl::ClientUpdate> updates = federation.train_clients(
      everyone, round,
      [&](std::size_t) { return std::span<const float>(init_weights); },
      &warmup, /*allow_failures=*/false, &payloads);

  ClusteringOutcome out;
  out.partial_weights.resize(federation.num_clients());
  for (const fl::ClientUpdate& u : updates) {
    out.partial_weights[u.client_id] = extract_slices(u.weights, slices);
  }

  // Wire accounting: full model down (initial broadcast), partial up.
  out.download_bytes =
      federation.wire_bytes(federation.model_size()) * federation.num_clients();
  out.upload_bytes =
      federation.wire_bytes(slices_numel(slices)) * federation.num_clients();

  // Server side: proximity matrix -> HC -> cut.
  out.proximity = cluster::pairwise_euclidean(out.partial_weights);
  out.dendrogram = cluster::agglomerative_cluster(out.proximity,
                                                  config_.linkage);

  const CutPolicy policy = config_.threshold > 0.0
                               ? CutPolicy::kFixedThreshold
                               : config_.cut_policy;
  switch (policy) {
    case CutPolicy::kFixedThreshold:
      out.threshold = config_.threshold;
      out.labels = out.dendrogram.cut_threshold(out.threshold);
      break;
    case CutPolicy::kRelativeThreshold: {
      double mean_distance = 0.0;
      std::size_t pairs = 0;
      for (std::size_t i = 0; i < out.proximity.rows(); ++i) {
        for (std::size_t j = i + 1; j < out.proximity.cols(); ++j) {
          mean_distance += out.proximity(i, j);
          ++pairs;
        }
      }
      if (pairs > 0) mean_distance /= static_cast<double>(pairs);
      out.threshold = config_.rel_factor * mean_distance;
      out.labels = out.dendrogram.cut_threshold(out.threshold);
      break;
    }
    case CutPolicy::kLargestGap:
      out.threshold =
          cluster::suggest_threshold(out.dendrogram, config_.min_gap_ratio);
      out.labels = out.dendrogram.cut_threshold(out.threshold);
      break;
    case CutPolicy::kSilhouette: {
      const std::size_t n = federation.num_clients();
      const std::size_t k_max = std::max<std::size_t>(
          2, config_.max_clusters > 0 ? config_.max_clusters : n / 2);
      double best_score = -2.0;
      std::vector<std::size_t> best = std::vector<std::size_t>(n, 0);
      std::size_t best_k = 1;
      for (std::size_t k = 2; k <= std::min(k_max, n); ++k) {
        std::vector<std::size_t> labels = out.dendrogram.cut_k(k);
        const double score = cluster::silhouette(out.proximity, labels);
        if (score > best_score) {
          best_score = score;
          best = std::move(labels);
          best_k = k;
        }
      }
      if (best_score < config_.min_silhouette) {
        // No clustering structure at any k: keep one cluster.
        out.labels.assign(n, 0);
        out.threshold = out.dendrogram.merges.empty()
                            ? 0.0
                            : out.dendrogram.merges.back().distance + 1.0;
      } else {
        out.labels = std::move(best);
        // Report the equivalent distance cut for interpretability: the
        // distance of the first merge the cut rejected.
        const std::size_t applied = n - best_k;
        out.threshold = applied < out.dendrogram.merges.size()
                            ? out.dendrogram.merges[applied].distance
                            : out.dendrogram.merges.back().distance + 1.0;
      }
      break;
    }
  }
  if (federation.config().audit) {
    // The one-shot formation is FedClust's load-bearing step: verify the
    // uploaded slices are finite, the Lance–Williams merges never invert
    // (what the largest-gap threshold scan assumes), and the cut produced
    // a genuine partition with consecutive cluster ids.
    for (std::size_t c = 0; c < out.partial_weights.size(); ++c) {
      const std::string context =
          "formation partial weights of client " + std::to_string(c);
      check::assert_all_finite(out.partial_weights[c], context.c_str());
    }
    check::audit_dendrogram_monotone(out.dendrogram);
    check::audit_cluster_partition(out.labels);
  }
  return out;
}

fl::RunResult FedClust::run(fl::Federation& federation, std::size_t rounds) {
  FEDCLUST_REQUIRE(rounds >= 2, "FedClust needs the formation round plus at "
                                "least one training round");
  federation.reset_comm();

  fl::RunResult result;
  result.algorithm = name();

  // Round 0: one-shot weight-driven cluster formation. Every client
  // downloads the full initial model and uploads only its partial slice.
  federation.comm().begin_round(0);
  ClusteringOutcome outcome = form_clusters(federation, /*round=*/0);
  const std::size_t partial_floats = slices_numel(resolve_partial_slices(
      federation.template_model(), config_.partial_spec));
  for (std::size_t c = 0; c < federation.num_clients(); ++c) {
    federation.meter_download(c, federation.model_size());
    federation.meter_upload(c, partial_floats);
  }

  const std::vector<std::size_t>& labels = outcome.labels;
  std::vector<std::vector<float>> cluster_weights(
      cluster::num_clusters(labels),
      federation.template_model().flat_weights());

  if (config_.warm_start_classifier) {
    // The server already holds every member's round-0 partial upload;
    // seed each cluster's slice with the member mean. Zero extra bytes.
    const std::vector<nn::ParamSlice> slices = resolve_partial_slices(
        federation.template_model(), config_.partial_spec);
    const auto members = cluster::members_by_cluster(labels);
    for (std::size_t c = 0; c < members.size(); ++c) {
      if (members[c].empty()) continue;
      const std::size_t dim = outcome.partial_weights[members[c][0]].size();
      std::vector<double> mean(dim, 0.0);
      for (const std::size_t m : members[c]) {
        for (std::size_t i = 0; i < dim; ++i) {
          mean[i] += outcome.partial_weights[m][i];
        }
      }
      const double inv = 1.0 / static_cast<double>(members[c].size());
      std::size_t cursor = 0;
      for (const nn::ParamSlice& s : slices) {
        for (std::size_t i = 0; i < s.size; ++i, ++cursor) {
          cluster_weights[c][s.offset + i] =
              static_cast<float>(mean[cursor] * inv);
        }
      }
    }
  }

  {
    const fl::AccuracySummary acc =
        algorithms::evaluate_clustered(federation, labels, cluster_weights);
    result.rounds.push_back(fl::make_round_metrics(
        0, acc, 0.0, federation, cluster_weights.size(),
        check::weights_fingerprint(cluster_weights)));
  }

  // Rounds 1..R-1: FedAvg within each cluster.
  for (std::size_t round = 1; round < rounds; ++round) {
    federation.comm().begin_round(round);
    const double loss = algorithms::per_cluster_fedavg_round(
        federation, round, labels, cluster_weights);
    const bool last = round + 1 == rounds;
    if (last || (round + 1) % federation.config().eval_every == 0) {
      const fl::AccuracySummary acc = algorithms::evaluate_clustered(
          federation, labels, cluster_weights);
      result.rounds.push_back(fl::make_round_metrics(
          round, acc, loss, federation, cluster_weights.size(),
          check::weights_fingerprint(cluster_weights)));
      if (last) result.final_accuracy = acc;
    }
  }

  result.cluster_labels = labels;
  last_clustering_ = std::move(outcome);
  return result;
}

std::size_t FedClust::assign_newcomer(
    const nn::Model& template_model, const data::Dataset& newcomer_train,
    const fl::LocalTrainConfig& local_config, Rng rng,
    const ClusteringOutcome& outcome, std::vector<float>* partial_out) const {
  FEDCLUST_REQUIRE(!outcome.labels.empty(),
                   "clustering outcome has no members");

  // The newcomer repeats the formation protocol solo: train from the
  // initial global model, extract the same partial slice.
  fl::LocalTrainConfig warmup = local_config;
  if (config_.warmup_epochs > 0) warmup.epochs = config_.warmup_epochs;
  nn::Model model = template_model.clone();
  fl::train_local(model, newcomer_train, warmup, rng);

  const std::vector<nn::ParamSlice> slices =
      resolve_partial_slices(template_model, config_.partial_spec);
  const std::vector<float> partial =
      extract_slices(model.flat_weights(), slices);
  if (partial_out != nullptr) *partial_out = partial;

  // Nearest cluster by mean Euclidean distance to stored member vectors.
  const std::size_t k = cluster::num_clusters(outcome.labels);
  std::vector<double> sum(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  for (std::size_t i = 0; i < outcome.labels.size(); ++i) {
    const std::vector<float>& member = outcome.partial_weights[i];
    FEDCLUST_REQUIRE(member.size() == partial.size(),
                     "stored partial weights do not match newcomer slice");
    double s = 0.0;
    for (std::size_t d = 0; d < partial.size(); ++d) {
      const double diff =
          static_cast<double>(member[d]) - static_cast<double>(partial[d]);
      s += diff * diff;
    }
    sum[outcome.labels[i]] += std::sqrt(s);
    ++count[outcome.labels[i]];
  }
  std::size_t best = 0;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    if (count[c] == 0) continue;
    const double mean = sum[c] / static_cast<double>(count[c]);
    if (mean < best_mean) {
      best_mean = mean;
      best = c;
    }
  }
  return best;
}

}  // namespace fedclust::core
