#include "core/fedclust_async.hpp"

#include "algorithms/common.hpp"
#include "check/audit.hpp"

namespace fedclust::core {

std::size_t FedClustAsync::begin(fl::Federation& federation,
                                 fl::RunResult& result) {
  outcome_ =
      algo_.formation_phase(federation, result, labels_, cluster_weights_);
  return 1;
}

double FedClustAsync::sync_round(fl::Federation& federation,
                                 std::size_t round) {
  return algorithms::per_cluster_fedavg_round(federation, round, labels_,
                                              cluster_weights_);
}

fl::AccuracySummary FedClustAsync::evaluate(
    const fl::Federation& federation) const {
  return algorithms::evaluate_clustered(federation, labels_, cluster_weights_);
}

std::uint64_t FedClustAsync::fingerprint() const {
  return check::weights_fingerprint(cluster_weights_);
}

void FedClustAsync::finish(fl::RunResult& result) {
  result.cluster_labels = labels_;
  result.cluster_weights = cluster_weights_;
}

std::span<const float> FedClustAsync::cluster_model(
    std::size_t cluster) const {
  return std::span<const float>(cluster_weights_.at(cluster));
}

void FedClustAsync::set_cluster_model(std::size_t cluster,
                                      std::vector<float> weights) {
  cluster_weights_.at(cluster) = std::move(weights);
}

void FedClustAsync::save_state(robust::RunCheckpoint& checkpoint) const {
  checkpoint.labels.assign(labels_.begin(), labels_.end());
  checkpoint.cluster_weights = cluster_weights_;
  checkpoint.partial_weights = outcome_.partial_weights;
}

void FedClustAsync::restore_state(fl::Federation&,
                                  const robust::RunCheckpoint& checkpoint) {
  labels_.assign(checkpoint.labels.begin(), checkpoint.labels.end());
  cluster_weights_ = checkpoint.cluster_weights;
  outcome_ = ClusteringOutcome{};
  outcome_.partial_weights = checkpoint.partial_weights;
  outcome_.labels = labels_;
}

}  // namespace fedclust::core
