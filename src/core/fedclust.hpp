// FedClust — weight-driven one-shot clustered federated learning.
// This module implements the paper's contribution (§III):
//
//  1. the server broadcasts the initial global model to all clients;
//  2. clients train locally for a few epochs and upload ONLY the final
//     (classifier) layer's weights — a proxy for their underlying data
//     distribution (§II, Fig. 1);
//  3. the server builds the pairwise Euclidean proximity matrix of those
//     partial weights;
//  4. agglomerative hierarchical clustering with a distance-threshold cut
//     groups clients — no predefined cluster count;
//  5. from the next round on, each cluster runs FedAvg independently.
//
// Newcomers are accommodated in real time: a new client trains the same
// warmup locally and is assigned to the cluster whose members' stored
// partial weights are nearest on average (steps 1-3 for one client, no
// re-clustering).
#pragma once

#include <optional>

#include "cluster/hierarchical.hpp"
#include "core/partial_weights.hpp"
#include "fl/algorithm.hpp"

namespace fedclust::core {

/// How the dendrogram is cut into flat clusters. The paper prescribes a
/// distance threshold but leaves its choice open; both automatic
/// policies below need no tuning.
enum class CutPolicy {
  /// Cut at rel_factor × (mean pairwise distance). Scale-invariant, so
  /// one factor works across datasets/models; at the default 0.9 the
  /// granularity tracks the accuracy-optimal clustering on Dirichlet
  /// label-skew populations. Default.
  kRelativeThreshold,
  /// Maximize the mean silhouette over k = 2..max_clusters; falls back
  /// to one cluster when even the best silhouette shows no structure.
  /// Favors the coarsest geometric structure — right for populations
  /// with a few crisp groups, too coarse for smooth Dirichlet skew.
  kSilhouette,
  /// Cut in the middle of the largest gap between consecutive merge
  /// distances. Crisper but degenerates to k=2 on smooth dendrograms.
  kLargestGap,
  /// Use FedClustConfig::threshold as a fixed distance cut.
  kFixedThreshold,
};

struct FedClustConfig {
  /// Local epochs of the warmup (cluster-formation) round; 0 = use the
  /// federation's configured local epochs.
  std::size_t warmup_epochs = 0;
  /// Which weights clients upload for clustering; see
  /// resolve_partial_slices for the accepted specs. Default: final layer.
  std::string partial_spec = "final";
  cluster::Linkage linkage = cluster::Linkage::kAverage;
  CutPolicy cut_policy = CutPolicy::kRelativeThreshold;
  /// Fixed distance cut; setting it > 0 implies kFixedThreshold.
  double threshold = 0.0;
  /// kRelativeThreshold: cut at this fraction of the mean pairwise
  /// distance.
  double rel_factor = 0.9;
  /// kLargestGap: required gap size relative to the mean merge step.
  double min_gap_ratio = 2.0;
  /// kSilhouette: candidate k ranges over [2, max_clusters];
  /// 0 = num_clients / 2.
  std::size_t max_clusters = 0;
  /// kSilhouette: below this best-silhouette value the population is
  /// considered unclusterable and kept as one cluster.
  double min_silhouette = 0.05;
  /// Extension beyond the paper: initialize each cluster model's
  /// uploaded slice with the mean of its members' round-0 uploads (the
  /// server already holds them), instead of the raw initialization.
  /// Costs no extra communication; ablated in bench/comm_cost.
  bool warm_start_classifier = false;
};

/// Everything the server learns in the one-shot clustering round. Kept
/// around to admit newcomers without re-clustering.
struct ClusteringOutcome {
  std::vector<std::vector<float>> partial_weights;  ///< per client
  Matrix proximity;                                 ///< Euclidean distances
  cluster::Dendrogram dendrogram;
  double threshold = 0.0;  ///< the cut actually applied
  std::vector<std::size_t> labels;
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
};

class FedClust : public fl::Algorithm {
 public:
  explicit FedClust(FedClustConfig config) : config_(config) {}

  std::string name() const override { return "FedClust"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const FedClustConfig& config() const { return config_; }

  /// The one-shot formation step alone (round 0). Exposed for the Fig. 1
  /// reproduction, the ablations, and the newcomer bench. Does not meter
  /// communication; run() does.
  ClusteringOutcome form_clusters(fl::Federation& federation,
                                  std::size_t round = 0) const;

  /// State captured by the last run() (empty before the first run).
  const std::optional<ClusteringOutcome>& last_clustering() const {
    return last_clustering_;
  }

  /// Dynamic newcomer admission: trains `newcomer_train` locally from the
  /// initial global model, extracts the partial weights, and returns the
  /// cluster whose members are closest on average. `outcome` is typically
  /// last_clustering(); `template_model` must match the federation's.
  /// Also returns the newcomer's partial vector via `partial_out` when
  /// non-null (so callers can append it to the outcome).
  std::size_t assign_newcomer(const nn::Model& template_model,
                              const data::Dataset& newcomer_train,
                              const fl::LocalTrainConfig& local_config,
                              Rng rng, const ClusteringOutcome& outcome,
                              std::vector<float>* partial_out = nullptr) const;

 private:
  FedClustConfig config_;
  std::optional<ClusteringOutcome> last_clustering_;
};

}  // namespace fedclust::core
