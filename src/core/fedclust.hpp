// FedClust — weight-driven one-shot clustered federated learning.
// This module implements the paper's contribution (§III):
//
//  1. the server broadcasts the initial global model to all clients;
//  2. clients train locally for a few epochs and upload ONLY the final
//     (classifier) layer's weights — a proxy for their underlying data
//     distribution (§II, Fig. 1);
//  3. the server builds the pairwise Euclidean proximity matrix of those
//     partial weights;
//  4. agglomerative hierarchical clustering with a distance-threshold cut
//     groups clients — no predefined cluster count;
//  5. from the next round on, each cluster runs FedAvg independently.
//
// Newcomers are accommodated in real time: a new client trains the same
// warmup locally and is assigned to the cluster whose members' stored
// partial weights are nearest on average (steps 1-3 for one client, no
// re-clustering).
#pragma once

#include <optional>

#include "cluster/hierarchical.hpp"
#include "core/partial_weights.hpp"
#include "fl/algorithm.hpp"
#include "fl/drift.hpp"
#include "robust/checkpoint.hpp"

namespace fedclust::core {

/// How the dendrogram is cut into flat clusters. The paper prescribes a
/// distance threshold but leaves its choice open; both automatic
/// policies below need no tuning.
enum class CutPolicy {
  /// Cut at rel_factor × (mean pairwise distance). Scale-invariant, so
  /// one factor works across datasets/models; at the default 0.9 the
  /// granularity tracks the accuracy-optimal clustering on Dirichlet
  /// label-skew populations. Default.
  kRelativeThreshold,
  /// Maximize the mean silhouette over k = 2..max_clusters; falls back
  /// to one cluster when even the best silhouette shows no structure.
  /// Favors the coarsest geometric structure — right for populations
  /// with a few crisp groups, too coarse for smooth Dirichlet skew.
  kSilhouette,
  /// Cut in the middle of the largest gap between consecutive merge
  /// distances. Crisper but degenerates to k=2 on smooth dendrograms.
  kLargestGap,
  /// Use FedClustConfig::threshold as a fixed distance cut.
  kFixedThreshold,
};

struct FedClustConfig {
  /// Local epochs of the warmup (cluster-formation) round; 0 = use the
  /// federation's configured local epochs.
  std::size_t warmup_epochs = 0;
  /// Which weights clients upload for clustering; see
  /// resolve_partial_slices for the accepted specs. Default: final layer.
  std::string partial_spec = "final";
  cluster::Linkage linkage = cluster::Linkage::kAverage;
  CutPolicy cut_policy = CutPolicy::kRelativeThreshold;
  /// Fixed distance cut; setting it > 0 implies kFixedThreshold.
  double threshold = 0.0;
  /// kRelativeThreshold: cut at this fraction of the mean pairwise
  /// distance.
  double rel_factor = 0.9;
  /// kLargestGap: required gap size relative to the mean merge step.
  double min_gap_ratio = 2.0;
  /// kSilhouette: candidate k ranges over [2, max_clusters];
  /// 0 = num_clients / 2.
  std::size_t max_clusters = 0;
  /// kSilhouette: below this best-silhouette value the population is
  /// considered unclusterable and kept as one cluster.
  double min_silhouette = 0.05;
  /// Extension beyond the paper: initialize each cluster model's
  /// uploaded slice with the mean of its members' round-0 uploads (the
  /// server already holds them), instead of the raw initialization.
  /// Costs no extra communication; ablated in bench/comm_cost.
  bool warm_start_classifier = false;

  // --- Formation-round fault tolerance -----------------------------------
  /// Re-solicitation waves for formation uploads that never arrived
  /// (client crashed, or its upload was quarantined). Each wave re-runs
  /// the warmup solicitation for the missing clients only, with an
  /// independent fault draw.
  std::size_t formation_retries = 2;
  /// Minimum fraction of clients whose formation upload must arrive
  /// (after retries) for clustering to proceed.
  double min_formation_quorum = 0.5;
  /// Below quorum: fall back to one global cluster (plain FedAvg over
  /// whoever is alive) or abort the run with fedclust::Error.
  enum class FormationFallback { kGlobalFedAvg, kAbort };
  FormationFallback formation_fallback = FormationFallback::kGlobalFedAvg;

  // --- Drift-robust dynamic clustering ------------------------------------
  /// FedClust-dynamic: watch per-cluster accuracy trajectories and repair
  /// the partition online when they drift (see fl/drift.hpp and
  /// cluster/dynamic.hpp). Off by default — the static paper algorithm is
  /// then bit-identical to before. Orthogonal to the scenario injection
  /// knob (fl::FederationConfig::drift): churn admission (departures
  /// leaving the sample pool, newcomers routed via the paper's
  /// assign_newcomer path) always runs when a drift plan is configured;
  /// detection + split/merge recovery only run when `enabled` here.
  struct DynamicConfig {
    bool enabled = false;
    fl::DriftDetectorConfig detector{};
    /// Soft-membership move margin / Gaussian width; see
    /// cluster::ReclusterConfig.
    double reassign_margin = 1.0;
    double gaussian_sigma = 0.0;
    /// Re-clustering recoveries allowed per run; 0 = unlimited.
    std::size_t max_recoveries = 0;
  };
  DynamicConfig dynamic{};

  // --- Crash recovery ----------------------------------------------------
  /// Write a robust::RunCheckpoint after every round r with
  /// r % checkpoint_every == 0 (round 0 included); 0 = never checkpoint.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path = "fedclust_run.ckpt";
};

/// Everything the server learns in the one-shot clustering round. Kept
/// around to admit newcomers without re-clustering.
struct ClusteringOutcome {
  /// Per-client formation uploads; EMPTY vector for a deferred client
  /// whose upload never arrived (filled in later by the newcomer path).
  std::vector<std::vector<float>> partial_weights;
  /// Euclidean distances over `reporters` (row i = reporters[i]). With
  /// no faults reporters is every client, so rows = client ids as before.
  Matrix proximity;
  cluster::Dendrogram dendrogram;
  double threshold = 0.0;  ///< the cut actually applied
  /// Per-client cluster assignment (ALL clients; a deferred client holds
  /// a provisional 0 until the newcomer path places it).
  std::vector<std::size_t> labels;
  std::uint64_t upload_bytes = 0;
  std::uint64_t download_bytes = 0;
  /// Sorted ids whose formation upload arrived (possibly after retries).
  std::vector<std::size_t> reporters;
  /// Sorted ids still missing after every retry — run() admits them via
  /// the newcomer path before round 1.
  std::vector<std::size_t> deferred;
  /// Clients solicited in each retry wave (wave w = attempt w + 1), for
  /// download metering.
  std::vector<std::vector<std::size_t>> resolicited;
  /// Quorum failed: everyone was labeled 0 (global FedAvg fallback).
  bool fallback_global = false;
};

class FedClust : public fl::Algorithm {
 public:
  explicit FedClust(FedClustConfig config) : config_(config) {}

  std::string name() const override { return "FedClust"; }
  fl::RunResult run(fl::Federation& federation, std::size_t rounds) override;

  const FedClustConfig& config() const { return config_; }

  /// The one-shot formation step alone (round 0). Exposed for the Fig. 1
  /// reproduction, the ablations, and the newcomer bench. Does not meter
  /// communication; run() does.
  ClusteringOutcome form_clusters(fl::Federation& federation,
                                  std::size_t round = 0) const;

  /// The whole round-0 phase as run() executes it: opens comm round 0,
  /// forms clusters, meters the formation traffic, warm-starts the
  /// classifier slices, admits deferred clients via the newcomer path,
  /// and appends the round-0 metrics entry. Fills `labels_out` /
  /// `cluster_weights_out` and returns the clustering outcome. Shared by
  /// run() and the async adapter so formation is one code path.
  ClusteringOutcome formation_phase(
      fl::Federation& federation, fl::RunResult& result,
      std::vector<std::size_t>& labels_out,
      std::vector<std::vector<float>>& cluster_weights_out) const;

  /// State captured by the last run() (empty before the first run).
  const std::optional<ClusteringOutcome>& last_clustering() const {
    return last_clustering_;
  }

  /// Dynamic newcomer admission: trains `newcomer_train` locally from the
  /// initial global model, extracts the partial weights, and returns the
  /// cluster whose members are closest on average. `outcome` is typically
  /// last_clustering(); `template_model` must match the federation's.
  /// Also returns the newcomer's partial vector via `partial_out` when
  /// non-null (so callers can append it to the outcome).
  std::size_t assign_newcomer(const nn::Model& template_model,
                              const data::Dataset& newcomer_train,
                              const fl::LocalTrainConfig& local_config,
                              Rng rng, const ClusteringOutcome& outcome,
                              std::vector<float>* partial_out = nullptr) const;

  /// Continues a killed run from a checkpoint written by this config.
  /// The federation must be constructed with the same data, config, and
  /// seed as the original run; every per-(round, client) stream is
  /// derived functionally from the seed, so the resumed trajectory is
  /// bit-identical to the uninterrupted one (same per-round weights_fp).
  fl::RunResult resume(fl::Federation& federation,
                       const robust::RunCheckpoint& checkpoint,
                       std::size_t rounds);

 private:
  /// Rounds [first, rounds): per-cluster FedAvg + metrics + checkpoint
  /// writes, plus — under a drift plan / dynamic mode — churn admission,
  /// drift detection, and split/merge recovery (labels, cluster models
  /// and stored anchors then evolve in place). Shared by run() and
  /// resume(); `detector` is null for static runs, `recoveries` seeds
  /// the recovery budget (non-zero when resuming).
  void run_rounds(fl::Federation& federation, std::size_t first,
                  std::size_t rounds, std::vector<std::size_t>& labels,
                  std::vector<std::vector<float>>& cluster_weights,
                  ClusteringOutcome& outcome, fl::RunResult& result,
                  fl::DriftDetector* detector, std::size_t recoveries);
  /// Departure/arrival handling at round entry: departed slots lose
  /// their stored anchor, newcomers run the paper's solo warmup and are
  /// routed to the nearest cluster (reliably simulated + metered).
  void admit_churn(fl::Federation& federation, std::size_t round,
                   std::vector<std::size_t>& labels,
                   ClusteringOutcome& outcome,
                   fl::DriftDetector* detector) const;
  /// Alarm response: re-solicit fresh anchors from the flagged clusters'
  /// active members, repair the partition via cluster::recluster, remap
  /// the server models along the parent mapping, reset the detector.
  /// Returns the number of re-clusterings applied (0 when no flagged
  /// cluster had an active member to re-anchor).
  std::size_t recover_clusters(fl::Federation& federation, std::size_t round,
                               const std::vector<fl::DriftAlarm>& alarms,
                               std::vector<std::size_t>& labels,
                               std::vector<std::vector<float>>& cluster_weights,
                               ClusteringOutcome& outcome,
                               fl::DriftDetector& detector) const;
  /// Snapshot of everything resume() needs after `next_round - 1`.
  robust::RunCheckpoint make_checkpoint(
      const fl::Federation& federation, std::size_t next_round,
      const std::vector<std::size_t>& labels,
      const std::vector<std::vector<float>>& cluster_weights,
      const ClusteringOutcome& outcome, const fl::RunResult& result,
      const fl::DriftDetector* detector, std::size_t recoveries) const;

  FedClustConfig config_;
  std::optional<ClusteringOutcome> last_clustering_;
};

}  // namespace fedclust::core
