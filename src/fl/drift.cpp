#include "fl/drift.hpp"

#include <algorithm>
#include <cmath>

#include "utils/error.hpp"

namespace fedclust::fl {
namespace {

double mean(const double* begin, const double* end) {
  double s = 0.0;
  for (const double* p = begin; p != end; ++p) s += *p;
  return s / static_cast<double>(end - begin);
}

}  // namespace

const char* to_string(DriftLogKind kind) {
  switch (kind) {
    case DriftLogKind::kBreach:
      return "breach";
    case DriftLogKind::kAlarm:
      return "alarm";
    case DriftLogKind::kRecovery:
      return "recovery";
    case DriftLogKind::kArrival:
      return "arrival";
    case DriftLogKind::kDeparture:
      return "departure";
  }
  return "?";
}

DriftDetector::DriftDetector(DriftDetectorConfig config) : cfg_(config) {
  FEDCLUST_REQUIRE(cfg_.window >= 2, "detector window must be >= 2");
  FEDCLUST_REQUIRE(cfg_.drop_threshold > 0.0,
                   "drop_threshold must be positive");
  FEDCLUST_REQUIRE(cfg_.hysteresis >= 1, "hysteresis must be >= 1");
}

void DriftDetector::start(std::size_t clusters) {
  windows_.assign(clusters, {});
  streaks_.assign(clusters, 0);
  cooldown_left_ = 0;
  last_score_ = 0.0;
}

std::vector<DriftAlarm> DriftDetector::observe(
    std::size_t round, const std::vector<double>& cluster_acc) {
  FEDCLUST_REQUIRE(cluster_acc.size() == windows_.size(),
                   "observed " << cluster_acc.size() << " clusters, detector "
                               << "tracks " << windows_.size());
  last_score_ = 0.0;
  std::vector<DriftAlarm> alarms;
  const bool holdoff = cooldown_left_ > 0;
  if (holdoff) --cooldown_left_;
  for (std::size_t c = 0; c < cluster_acc.size(); ++c) {
    if (!std::isfinite(cluster_acc[c])) continue;  // window freezes
    std::vector<double>& w = windows_[c];
    w.push_back(cluster_acc[c]);
    if (w.size() > cfg_.window) w.erase(w.begin());
    if (holdoff) {
      streaks_[c] = 0;
      continue;
    }
    if (w.size() < cfg_.window) continue;  // still filling
    const std::size_t half = cfg_.window / 2;
    const double ref = mean(w.data(), w.data() + half);
    const double cur = mean(w.data() + half, w.data() + w.size());
    const double drop = ref - cur;
    last_score_ = std::max(last_score_, drop);
    if (drop > cfg_.drop_threshold) {
      ++streaks_[c];
      log_.push_back({round, DriftLogKind::kBreach, c, drop});
      if (streaks_[c] >= cfg_.hysteresis) {
        alarms.push_back({round, c, drop});
        log_.push_back({round, DriftLogKind::kAlarm, c, drop});
      }
    } else {
      streaks_[c] = 0;
    }
  }
  return alarms;
}

void DriftDetector::reset(std::size_t round, std::size_t clusters) {
  windows_.assign(clusters, {});
  streaks_.assign(clusters, 0);
  cooldown_left_ = cfg_.cooldown;
  last_score_ = 0.0;
  log_.push_back({round, DriftLogKind::kRecovery, clusters,
                  static_cast<double>(clusters)});
}

void DriftDetector::note(std::size_t round, DriftLogKind kind,
                         std::size_t subject, double value) {
  log_.push_back({round, kind, subject, value});
}

robust::DriftSnapshot DriftDetector::snapshot(std::size_t recoveries) const {
  robust::DriftSnapshot snap;
  snap.present = true;
  snap.recoveries = recoveries;
  snap.cooldown = cooldown_left_;
  snap.streaks.assign(streaks_.begin(), streaks_.end());
  snap.windows = windows_;
  return snap;
}

void DriftDetector::restore(const robust::DriftSnapshot& snap) {
  FEDCLUST_REQUIRE(snap.streaks.size() == snap.windows.size(),
                   "drift snapshot streak/window size mismatch");
  windows_ = snap.windows;
  streaks_.assign(snap.streaks.begin(), snap.streaks.end());
  cooldown_left_ = static_cast<std::size_t>(snap.cooldown);
  last_score_ = 0.0;
}

}  // namespace fedclust::fl
