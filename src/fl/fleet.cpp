#include "fl/fleet.hpp"

#include "utils/error.hpp"

namespace fedclust::fl {

EagerFleet::EagerFleet(std::vector<ClientData> clients)
    : clients_(std::move(clients)) {}

std::size_t EagerFleet::train_size(std::size_t client) const {
  FEDCLUST_REQUIRE(client < clients_.size(), "client id out of range");
  return clients_[client].train.size();
}

std::shared_ptr<const ClientData> EagerFleet::get(std::size_t client) const {
  FEDCLUST_REQUIRE(client < clients_.size(), "client id out of range");
  // Aliasing constructor with an empty owner: non-owning view into the
  // vector, valid for the fleet's lifetime (the Federation keeps the
  // fleet alive for the whole run).
  return std::shared_ptr<const ClientData>(std::shared_ptr<const void>(),
                                           &clients_[client]);
}

}  // namespace fedclust::fl
