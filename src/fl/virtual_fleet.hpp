// Lazy million-client fleet: partition spec + per-client label
// histograms, with shards regenerated on demand.
//
// Resident state is O(fleet × classes) uint32 histogram cells (~40 MB at
// one million clients × 10 classes) plus a small bounded LRU cache of
// materialized shards — never O(fleet × samples) pixels. Each client's
// shard is a pure function of (spec.seed, client): the label histogram
// comes from a streaming Dirichlet deal over a virtual class-balanced
// pool (partition::dirichlet_deal_class, the same dealing protocol as
// the eager dirichlet_partition), and the pixels come from the synthetic
// generator driven by the client's split RNG stream. Materialization is
// therefore bit-reproducible: get(c) returns identical bytes no matter
// when, how often, in which order, or on which thread it is called —
// the property the eager-vs-lazy equivalence tests pin down against
// materialize_all().
//
// min_train_samples deviation: the eager partitioner re-draws the whole
// partition (up to 100 attempts) until no client is starved. At 1M
// clients with beta = 0.1 a global re-draw essentially never converges,
// so the virtual fleet instead tops up each starved client's dominant
// class deterministically until its train split reaches the floor. This
// perturbs the ideal Dirichlet marginals only on starved clients.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/synthetic.hpp"
#include "fl/fleet.hpp"

namespace fedclust::fl {

struct VirtualFleetSpec {
  data::SyntheticKind dataset = data::SyntheticKind::kFmnist;
  std::size_t num_clients = 1000;
  /// Dirichlet concentration for the label skew (Table-I protocol).
  double dirichlet_beta = 0.1;
  /// Mean samples dealt per client; the virtual pool holds
  /// num_clients × samples_per_client samples, class-balanced.
  std::size_t samples_per_client = 24;
  /// Per-(client, class) test share: floor(dealt × test_fraction) goes to
  /// the local test split (stratified, mirroring the local skew).
  double test_fraction = 0.25;
  /// Floor on every client's train split (see header note on top-up).
  std::size_t min_train_samples = 8;
  /// Materialized shards kept hot in the LRU cache. Evicted shards stay
  /// alive while someone holds their shared_ptr.
  std::size_t cache_capacity = 64;
  std::uint64_t seed = 1;
};

class VirtualFleet final : public ClientSource {
 public:
  /// Standard construction: generator difficulty from spec.dataset.
  explicit VirtualFleet(const VirtualFleetSpec& spec);
  /// Test hook: explicit generator geometry (e.g. tiny 8×8 images).
  VirtualFleet(const VirtualFleetSpec& spec,
               const data::SyntheticSpec& synthetic);

  const VirtualFleetSpec& spec() const { return spec_; }
  const data::ImageSpec& image_spec() const {
    return generator_.image_spec();
  }

  std::size_t num_clients() const override { return spec_.num_clients; }
  std::size_t train_size(std::size_t client) const override;
  std::shared_ptr<const ClientData> get(std::size_t client) const override;
  std::size_t resident() const override;

  /// The client's dealt per-class sample counts (train + test).
  std::span<const std::uint32_t> dealt_histogram(std::size_t client) const;

  /// Materializes every client eagerly — the reference the equivalence
  /// tests compare the lazy path against. O(fleet × samples) memory;
  /// only sensible for small fleets.
  std::vector<ClientData> materialize_all() const;

 private:
  void build_histograms();
  /// Pure function of (spec_.seed, client) — the lazy/eager seam.
  ClientData make_client(std::size_t client) const;
  std::uint32_t test_count(std::size_t client, std::size_t cls) const;

  VirtualFleetSpec spec_;
  data::SyntheticGenerator generator_;
  std::size_t classes_ = 0;
  /// Flat num_clients × classes dealt counts.
  std::vector<std::uint32_t> hist_;
  /// Per-client train totals (dealt minus test shares), precomputed so
  /// train_size() is O(1).
  std::vector<std::uint32_t> train_total_;

  // Bounded LRU cache over materialized shards. mutable: get() is
  // logically const.
  mutable std::mutex mutex_;
  mutable std::list<std::pair<std::size_t, std::shared_ptr<const ClientData>>>
      lru_;
  mutable std::unordered_map<std::size_t, decltype(lru_)::iterator> cache_;
};

}  // namespace fedclust::fl
