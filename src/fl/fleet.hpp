// Client-population abstraction: eager (fully materialized) vs lazy
// (virtualized) fleets.
//
// The pre-virtualization engine owned a std::vector<ClientData> — O(fleet)
// resident memory even though a cross-device round only ever touches a
// ~1% cohort. ClientSource decouples "how many clients exist and how big
// their shards are" (cheap metadata the engine reads every round) from
// "hand me client c's actual samples" (materialized on demand, possibly
// transiently). EagerFleet wraps the classic vector so every existing
// construction path behaves exactly as before; VirtualFleet
// (fl/virtual_fleet.hpp) regenerates shards from the splittable RNG.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fl/types.hpp"

namespace fedclust::fl {

/// Provider of per-client datasets. Implementations must be thread-safe:
/// the engine calls get() concurrently from its training pool.
class ClientSource {
 public:
  virtual ~ClientSource() = default;

  virtual std::size_t num_clients() const = 0;

  /// Local train-set size WITHOUT materializing the shard. The engine
  /// reads this for every solicited client each round (FedAvg weighting,
  /// network ops), so it must be O(1).
  virtual std::size_t train_size(std::size_t client) const = 0;

  /// The client's train/test shard. May materialize lazily; the returned
  /// pointer keeps the shard alive independently of any source-internal
  /// cache eviction.
  virtual std::shared_ptr<const ClientData> get(std::size_t client) const = 0;

  /// Client shards currently resident in memory (diagnostics; fleet
  /// benches report this to demonstrate sub-linear residency).
  virtual std::size_t resident() const = 0;
};

/// The classic fully-materialized population. get() aliases into the
/// owned vector — no copies, no cache, lifetime bound to the fleet (which
/// the Federation owns for the whole run).
class EagerFleet final : public ClientSource {
 public:
  explicit EagerFleet(std::vector<ClientData> clients);

  std::size_t num_clients() const override { return clients_.size(); }
  std::size_t train_size(std::size_t client) const override;
  std::shared_ptr<const ClientData> get(std::size_t client) const override;
  std::size_t resident() const override { return clients_.size(); }

 private:
  std::vector<ClientData> clients_;
};

}  // namespace fedclust::fl
