#include "fl/virtual_fleet.hpp"

#include <algorithm>

#include "partition/partition.hpp"
#include "utils/error.hpp"

namespace fedclust::fl {
namespace {

// Split tags for the fleet's RNG streams (independent of the engine's
// 0x10000/0x20000/0x30000 families).
constexpr std::uint64_t kDealStream = 0x5EED00;
constexpr std::uint64_t kClientDataStream = 0xF1EE70;

}  // namespace

VirtualFleet::VirtualFleet(const VirtualFleetSpec& spec)
    : spec_(spec), generator_(spec.dataset, spec.seed) {
  build_histograms();
}

VirtualFleet::VirtualFleet(const VirtualFleetSpec& spec,
                           const data::SyntheticSpec& synthetic)
    : spec_(spec), generator_(synthetic, spec.seed) {
  build_histograms();
}

void VirtualFleet::build_histograms() {
  FEDCLUST_REQUIRE(spec_.num_clients > 0, "fleet needs at least one client");
  FEDCLUST_REQUIRE(spec_.samples_per_client > 0,
                   "samples_per_client must be positive");
  FEDCLUST_REQUIRE(spec_.min_train_samples > 0,
                   "min_train_samples must be positive (every client needs "
                   "training data)");
  FEDCLUST_REQUIRE(spec_.test_fraction >= 0.0 && spec_.test_fraction < 1.0,
                   "test_fraction must be in [0, 1)");
  classes_ = generator_.image_spec().classes;
  hist_.assign(spec_.num_clients * classes_, 0);

  // Deal a virtual class-balanced pool of num_clients × samples_per_client
  // samples through the same streaming Dirichlet protocol as the eager
  // partitioner — but only the per-client COUNTS are recorded; no index
  // lists, no pixels.
  const std::size_t total = spec_.num_clients * spec_.samples_per_client;
  Rng deal_rng = Rng(spec_.seed).split(kDealStream);
  for (std::size_t k = 0; k < classes_; ++k) {
    const std::size_t class_size =
        total / classes_ + (k < total % classes_ ? 1 : 0);
    partition::dirichlet_deal_class(
        class_size, spec_.num_clients, spec_.dirichlet_beta, deal_rng,
        [&](std::size_t client, std::size_t /*offset*/, std::size_t count) {
          hist_[client * classes_ + k] += static_cast<std::uint32_t>(count);
        });
  }

  // Train totals after the stratified test share, then the deterministic
  // top-up for starved clients (see header): bump the client's dominant
  // class until its train split reaches the floor. A global re-draw — the
  // eager partitioner's strategy — does not converge at fleet scale.
  train_total_.assign(spec_.num_clients, 0);
  for (std::size_t c = 0; c < spec_.num_clients; ++c) {
    std::uint32_t train = 0;
    for (std::size_t k = 0; k < classes_; ++k) {
      train += hist_[c * classes_ + k] - test_count(c, k);
    }
    if (train < spec_.min_train_samples) {
      std::size_t dominant = c % classes_;
      std::uint32_t best = 0;
      for (std::size_t k = 0; k < classes_; ++k) {
        if (hist_[c * classes_ + k] > best) {
          best = hist_[c * classes_ + k];
          dominant = k;
        }
      }
      while (train < spec_.min_train_samples) {
        ++hist_[c * classes_ + dominant];
        train = 0;
        for (std::size_t k = 0; k < classes_; ++k) {
          train += hist_[c * classes_ + k] - test_count(c, k);
        }
      }
    }
    train_total_[c] = train;
  }
}

std::uint32_t VirtualFleet::test_count(std::size_t client,
                                       std::size_t cls) const {
  return static_cast<std::uint32_t>(
      static_cast<double>(hist_[client * classes_ + cls]) *
      spec_.test_fraction);
}

std::size_t VirtualFleet::train_size(std::size_t client) const {
  FEDCLUST_REQUIRE(client < spec_.num_clients, "client id out of range");
  return train_total_[client];
}

std::span<const std::uint32_t> VirtualFleet::dealt_histogram(
    std::size_t client) const {
  FEDCLUST_REQUIRE(client < spec_.num_clients, "client id out of range");
  return {hist_.data() + client * classes_, classes_};
}

ClientData VirtualFleet::make_client(std::size_t client) const {
  std::vector<std::size_t> train_counts(classes_);
  std::vector<std::size_t> test_counts(classes_);
  for (std::size_t k = 0; k < classes_; ++k) {
    const std::uint32_t dealt = hist_[client * classes_ + k];
    const std::uint32_t tc = test_count(client, k);
    train_counts[k] = dealt - tc;
    test_counts[k] = tc;
  }
  // One stream per client, consumed train-then-test: materialization is a
  // pure function of (seed, client), never of call order or caching.
  Rng rng = Rng(spec_.seed).split(kClientDataStream).split(client);
  ClientData out;
  out.train = generator_.generate_per_class(train_counts, rng);
  out.test = generator_.generate_per_class(test_counts, rng);
  if (out.test.empty()) out.test = out.train;  // tiny shards: test on train
  return out;
}

std::shared_ptr<const ClientData> VirtualFleet::get(std::size_t client) const {
  FEDCLUST_REQUIRE(client < spec_.num_clients, "client id out of range");
  {
    std::lock_guard lock(mutex_);
    const auto it = cache_.find(client);
    if (it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      return it->second->second;
    }
  }
  // Generate outside the lock; a concurrent miss on the same client
  // produces identical bytes, so last-writer-wins insertion is benign.
  auto shard = std::make_shared<const ClientData>(make_client(client));
  std::lock_guard lock(mutex_);
  const auto it = cache_.find(client);
  if (it != cache_.end()) return it->second->second;
  lru_.emplace_front(client, shard);
  cache_[client] = lru_.begin();
  while (lru_.size() > std::max<std::size_t>(1, spec_.cache_capacity)) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();  // holders of the shared_ptr keep the shard alive
  }
  return shard;
}

std::size_t VirtualFleet::resident() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::vector<ClientData> VirtualFleet::materialize_all() const {
  std::vector<ClientData> out;
  out.reserve(spec_.num_clients);
  for (std::size_t c = 0; c < spec_.num_clients; ++c) {
    out.push_back(make_client(c));
  }
  return out;
}

}  // namespace fedclust::fl
