// ClientSource decorator applying a robust::DriftPlan's label drift.
//
// DriftFleet wraps any inner source (EagerFleet, VirtualFleet) and
// serves each client's shard transformed by the plan's cumulative drift
// at the current round. Shards whose transform is the identity pass
// straight through (zero copies, bit-identical to the drift-free fleet);
// transformed shards are cached per slot keyed by the plan's transform
// signature, so repeated gets within a drift epoch materialize once.
// Sample counts are preserved by construction, so train_size() can
// delegate to the inner source and FedAvg weighting never changes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fl/fleet.hpp"
#include "robust/drift.hpp"

namespace fedclust::fl {

class DriftFleet final : public ClientSource {
 public:
  DriftFleet(std::shared_ptr<const ClientSource> inner,
             std::shared_ptr<const robust::DriftPlan> plan);

  /// Advances the fleet's clock. Rounds are monotone within a run; the
  /// engine calls this at the top of each training round (never from the
  /// worker pool, so a plain store under the cache mutex suffices).
  void set_round(std::size_t round);
  std::size_t round() const;

  const robust::DriftPlan& plan() const { return *plan_; }

  std::size_t num_clients() const override { return inner_->num_clients(); }
  std::size_t train_size(std::size_t client) const override {
    return inner_->train_size(client);  // drift rewrites labels only
  }
  std::shared_ptr<const ClientData> get(std::size_t client) const override;
  std::size_t resident() const override;

 private:
  struct CacheEntry {
    std::uint64_t signature = 0;
    std::shared_ptr<const ClientData> shard;
  };

  std::shared_ptr<const ClientSource> inner_;
  std::shared_ptr<const robust::DriftPlan> plan_;
  mutable std::mutex mu_;
  std::size_t round_ = 0;
  mutable std::vector<CacheEntry> cache_;  // one slot per client
};

}  // namespace fedclust::fl
