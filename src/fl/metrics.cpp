#include "fl/metrics.hpp"

#include "check/audit.hpp"
#include "utils/error.hpp"

namespace fedclust::fl {

const RoundMetrics& RunResult::final_round() const {
  FEDCLUST_REQUIRE(!rounds.empty(), "run has no evaluated rounds");
  return rounds.back();
}

bool RunResult::rounds_to_accuracy(double target, std::size_t& round_out,
                                   std::uint64_t& bytes_out) const {
  for (const RoundMetrics& r : rounds) {
    if (r.acc_mean >= target) {
      round_out = r.round;
      bytes_out = r.cum_upload + r.cum_download;
      return true;
    }
  }
  return false;
}

bool RunResult::time_to_accuracy(double target, double& seconds_out) const {
  for (const RoundMetrics& r : rounds) {
    if (r.acc_mean >= target) {
      seconds_out = r.sim_seconds;
      return true;
    }
  }
  return false;
}

RoundMetrics make_round_metrics(std::size_t round, const AccuracySummary& acc,
                                double train_loss,
                                const Federation& federation,
                                std::size_t num_clusters,
                                std::uint64_t weights_fp) {
  RoundMetrics m;
  m.round = round;
  m.acc_mean = acc.mean;
  m.acc_std = acc.std;
  m.train_loss = train_loss;
  m.cum_upload = federation.comm().total_upload();
  m.cum_download = federation.comm().total_download();
  m.num_clusters = num_clusters;
  m.sim_seconds = federation.sim_time();
  m.weights_fp = weights_fp;
  if (federation.config().audit && federation.network_enabled()) {
    // Every evaluated round re-checks the whole-run totals, so a parity
    // break is caught within eval_every rounds of its introduction.
    check::audit_comm_parity(m.cum_download, m.cum_upload,
                             federation.network()->log());
  }
  return m;
}

}  // namespace fedclust::fl
