#include "fl/drift_fleet.hpp"

#include "utils/error.hpp"

namespace fedclust::fl {

DriftFleet::DriftFleet(std::shared_ptr<const ClientSource> inner,
                       std::shared_ptr<const robust::DriftPlan> plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  FEDCLUST_REQUIRE(inner_ != nullptr && plan_ != nullptr,
                   "drift fleet needs an inner source and a plan");
  FEDCLUST_REQUIRE(plan_->num_clients() == inner_->num_clients(),
                   "drift plan sized for " << plan_->num_clients()
                                           << " clients, fleet has "
                                           << inner_->num_clients());
  cache_.resize(inner_->num_clients());
}

void DriftFleet::set_round(std::size_t round) {
  std::lock_guard<std::mutex> lock(mu_);
  round_ = round;
}

std::size_t DriftFleet::round() const {
  std::lock_guard<std::mutex> lock(mu_);
  return round_;
}

std::shared_ptr<const ClientData> DriftFleet::get(std::size_t client) const {
  FEDCLUST_REQUIRE(client < cache_.size(), "client index out of range");
  std::size_t round = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round = round_;
  }
  const std::uint64_t sig = plan_->transform_signature(round, client);
  if (sig == 0) return inner_->get(client);  // identity: no copy, no cache
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_[client].signature == sig && cache_[client].shard) {
      return cache_[client].shard;
    }
  }
  // Materialize outside the lock; concurrent racers build bit-identical
  // shards (the transform is pure), so last-writer-wins is harmless.
  const std::shared_ptr<const ClientData> base = inner_->get(client);
  auto shard = std::make_shared<ClientData>(ClientData{
      plan_->transform(round, client, base->train, /*split_tag=*/0),
      plan_->transform(round, client, base->test, /*split_tag=*/1)});
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_[client] = CacheEntry{sig, shard};
  }
  return shard;
}

std::size_t DriftFleet::resident() const {
  std::size_t cached = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const CacheEntry& e : cache_) {
      if (e.shard) ++cached;
    }
  }
  return inner_->resident() + cached;
}

}  // namespace fedclust::fl
