// Event-driven asynchronous federation (FedBuff-style buffered
// aggregation) over the net/ discrete-event simulator.
//
// The synchronous engine is a lockstep barrier: every round waits for
// the slowest surviving client, so on straggler-heavy fleets
// sim_seconds is set by the tail, not by compute. This engine removes
// the barrier: each client re-dispatches the moment its upload
// resolves, and the server applies a buffer of K updates per cluster
// with staleness-weighted mixing
//
//   c_i  ∝  num_samples_i × λ(s_i),   λ(s) = 1 / (1 + s)^a  (or ≡ 1),
//
// where s_i counts the cluster-model versions applied between the
// update's dispatch and its flush. Virtual time (net::Simulator::now())
// drives all metrics; one RoundMetrics entry per evaluated buffer flush
// turns time_to_accuracy into the primary axis.
//
// Determinism argument: the event timeline (dispatch order, arrival
// times, flush boundaries) depends only on (seed, dispatch seq, client,
// attempt) draws and payload sizes — never on trained weights — so the
// scheduler simulates each op's complete network fate at dispatch time
// and trains lazily at flush time, in buffer (arrival) order, with
// slot-ordered writes. Thread counts, kernel threads, and the
// `concurrency` cap only change how the flush's training work is
// executed, not what is computed: trajectories are bit-identical across
// all of them (the same argument the synchronous engine makes, applied
// per flush instead of per round).
//
// The synchronous engine survives as the exact special case
// buffer_k == cohort with unit staleness weights: run_synchronized
// drives the same extracted per-round bodies the classic Algorithm::run
// loops call, so the SyncEquivalence CI gate can pin the two
// bit-identical (same shape as CodecParity).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fl/metrics.hpp"
#include "robust/checkpoint.hpp"

namespace fedclust::fl {

/// Staleness decay shape for buffered mixing weights.
enum class StalenessKind : std::uint8_t {
  kConstant = 0,    ///< λ(s) ≡ 1 — plain FedAvg weighting
  kPolynomial = 1,  ///< λ(s) = 1 / (1 + s)^exponent (FedBuff's default)
};

/// λ(staleness) under the chosen decay; exact 1.0 at staleness 0.
double staleness_weight(StalenessKind kind, double exponent,
                        std::size_t staleness);

/// current + lr * (target - current), per coordinate in double. The
/// server-side LR-decay blend a staleness spike applies to a flush's
/// aggregate (see AsyncConfig::lr_decay_staleness); exposed for tests.
std::vector<float> decay_toward(std::span<const float> current,
                                std::span<const float> target, double lr);

/// Knobs of the buffered async engine.
struct AsyncConfig {
  /// Updates buffered per cluster before a flush aggregates them.
  std::size_t buffer_k = 16;
  /// Mixing-weight decay against the broadcast version each update was
  /// computed from.
  StalenessKind staleness_fn = StalenessKind::kPolynomial;
  double staleness_exponent = 0.5;
  /// Discard updates staler than this many applied versions (0 = keep
  /// everything). With validation enabled a discard is also a
  /// quarantine strike (robust::RejectReason::kStaleness).
  std::size_t max_staleness = 0;
  /// Modeled concurrent trainers: at most this many clients hold an
  /// outstanding dispatch at once (FedBuff's Mc). 0 = the whole fleet.
  /// SEMANTIC knob — it changes the event timeline and the trajectory.
  std::size_t inflight = 0;
  /// Server-side training-executor width per flush: how many buffered
  /// updates train at once when the flush materializes them. 0 = all.
  /// EXECUTION knob — trajectories are bit-identical across settings.
  std::size_t concurrency = 0;
  /// Server-side learning-rate decay on staleness spikes: when a flush's
  /// kept updates have mean staleness > lr_decay_staleness, the mixed
  /// model only moves `lr_decay` of the way from the current cluster
  /// model toward the aggregate — a stale burst (buffer drained after a
  /// straggler wave) nudges the server instead of yanking it. 0 disables
  /// the knob entirely (bit-identical to the pre-knob engine), and
  /// lr_decay = 1 blends nothing out (also bit-identical). Stateless —
  /// a pure function of the flush batch — so checkpoints are unchanged.
  double lr_decay_staleness = 0.0;
  /// Blend factor applied on a staleness spike (0 < lr_decay <= 1).
  double lr_decay = 0.5;
  /// Evaluate (and record metrics) every this many flushes; 0 = the
  /// federation's eval_every. The final flush is always evaluated.
  std::size_t eval_every_flushes = 0;
  /// Write a robust::RunCheckpoint (FCKP v2, with the in-flight buffer
  /// and dispatch frontier) every this many flushes; 0 = never.
  std::size_t checkpoint_every = 0;
  std::string checkpoint_path = "fedclust_async.ckpt";
};

/// Algorithm adapter for the event-driven engine. One adapter instance
/// holds the algorithm's server-side state (labels, cluster models) and
/// exposes the pieces the two drivers need: run_synchronized() replays
/// the classic per-round body, run_async() reads/writes cluster models
/// around buffer flushes. Adapters are single-run objects.
class AsyncAdapter {
 public:
  virtual ~AsyncAdapter() = default;

  virtual std::string name() const = 0;

  /// Runs the algorithm's formation phase exactly as its classic run()
  /// does (metering, simulated rounds, the round-0 metrics entry when it
  /// has one) and initializes the adapter's state. The caller has
  /// already reset comm. Returns the first trainable round index (0 for
  /// FedAvg/FedProx/CFL/IFCA, 1 for PACFL/FedClust).
  virtual std::size_t begin(Federation& federation, RunResult& result) = 0;

  /// One classic synchronous round (the extracted body the algorithm's
  /// own run() loop calls). The caller has opened the comm round.
  /// Returns the round's mean train loss.
  virtual double sync_round(Federation& federation, std::size_t round) = 0;

  virtual AccuracySummary evaluate(const Federation& federation) const = 0;
  /// Fingerprint of the adapter's server-side model state
  /// (check::weights_fingerprint over what the classic run() hashes).
  virtual std::uint64_t fingerprint() const = 0;
  virtual std::size_t num_clusters() const = 0;
  /// Copies final labels / cluster models into the result.
  virtual void finish(RunResult& result) = 0;

  // -- async-mode surface (static cluster assignment) ---------------------
  /// Whether the algorithm can run buffered: cluster membership must be
  /// static after begin() (CFL re-clusters per round and IFCA re-estimates
  /// identities per round — both are sync-only).
  virtual bool supports_async() const { return false; }
  virtual std::size_t cluster_of(std::size_t client) const {
    (void)client;
    return 0;
  }
  virtual std::span<const float> cluster_model(std::size_t cluster) const;
  virtual void set_cluster_model(std::size_t cluster,
                                 std::vector<float> weights);
  /// Per-client local-training override the algorithm applies every
  /// round (FedProx's proximal term); null = the federation's config.
  virtual const LocalTrainConfig* local_override() const { return nullptr; }

  // -- checkpoint surface (async runs) ------------------------------------
  /// Fills the adapter-owned checkpoint fields (labels, cluster_weights,
  /// formation artifacts).
  virtual void save_state(robust::RunCheckpoint& checkpoint) const;
  /// Restores them on resume (inverse of save_state + begin()'s state
  /// setup, without re-running formation).
  virtual void restore_state(Federation& federation,
                             const robust::RunCheckpoint& checkpoint);
};

/// Wave driver: the classic synchronous loop, expressed over the adapter
/// — reset comm, formation via begin(), then per round begin_round +
/// sync_round + the eval cadence every classic run() uses. Bit-identical
/// to the algorithm's own run() by construction (both call the same
/// extracted bodies in the same order); the SyncEquivalence gate pins
/// this.
RunResult run_synchronized(Federation& federation, AsyncAdapter& adapter,
                           std::size_t rounds);

/// Event-driven driver: after the formation phase, every client cycles
/// download → compute → upload → re-dispatch continuously (bounded by
/// config.inflight); per-cluster buffers flush independently once they
/// hold buffer_k arrived updates. Runs until `flushes` buffer flushes
/// have been applied. Requires the network simulator and an adapter with
/// supports_async(). Metrics: one RoundMetrics per evaluated flush, with
/// round = first_round + flush index and sim_seconds = virtual time at
/// the flush.
RunResult run_async(Federation& federation, AsyncAdapter& adapter,
                    const AsyncConfig& config, std::size_t flushes);

/// Continues a killed async run from a checkpoint written by run_async
/// (FCKP v2 with the async block). The federation must be constructed
/// with the same data, config, and seed; the resumed trajectory is
/// bit-identical to the uninterrupted one.
RunResult resume_async(Federation& federation, AsyncAdapter& adapter,
                       const AsyncConfig& config,
                       const robust::RunCheckpoint& checkpoint,
                       std::size_t flushes);

}  // namespace fedclust::fl
