// The federated-learning simulation engine.
//
// A Federation owns the client population (private train/test splits),
// the model template every algorithm starts from, a thread pool that
// trains sampled clients in parallel, and the communication meter.
//
// Determinism: all randomness derives from config.seed through splittable
// streams keyed by (client, round), so results are bit-identical
// regardless of thread count or scheduling order.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "compress/codec.hpp"
#include "fl/comm.hpp"
#include "fl/fleet.hpp"
#include "fl/model_pool.hpp"
#include "fl/trainer.hpp"
#include "fl/types.hpp"
#include "net/simulator.hpp"
#include "net/topology.hpp"
#include "nn/model.hpp"
#include "robust/aggregate.hpp"
#include "robust/drift.hpp"
#include "robust/fault.hpp"
#include "utils/thread_pool.hpp"

namespace fedclust::fl {

class DriftFleet;

/// Engine-level configuration shared by all algorithms.
struct FederationConfig {
  LocalTrainConfig local{};
  /// Fraction of clients sampled each round (1.0 = full participation,
  /// the Table-I setting for 20 clients).
  double participation = 1.0;
  /// Worker threads for parallel client training; 0 = hardware default.
  std::size_t threads = 0;
  /// Worker threads for intra-model kernels (blocked-GEMM row splitting)
  /// — a separate pool lent to every trained/evaluated model. 0 disables
  /// kernel threading. Prefer `threads` (client-level parallelism) when
  /// many clients train per round; kernel threads pay off when few, large
  /// models train at a time. Deterministic either way: each kernel worker
  /// owns disjoint output rows and element-wise math is unchanged.
  std::size_t kernel_threads = 0;
  /// Failure injection: probability that a sampled client drops out of a
  /// round after being selected (device churn). The failed client's
  /// update simply never arrives; deterministic per (seed, client,
  /// round).
  double dropout = 0.0;
  std::uint64_t seed = 42;
  /// Evaluate (and record metrics) every this many rounds; the final
  /// round is always evaluated.
  std::size_t eval_every = 1;
  /// Simulated network (latency/bandwidth/stragglers/deadlines).
  /// Disabled by default: byte accounting and algorithm behaviour are
  /// then exactly the pre-network engine's.
  net::NetworkConfig network{};
  /// Runtime invariant auditing (src/check): finite-value sweeps over
  /// every client update and the local-training state, aggregation
  /// weight-conservation and convex-envelope checks, and CommMeter-vs-
  /// event-log byte parity at every evaluated round. Audits throw
  /// fedclust::Error on violation. Off by default — audited runs pay one
  /// extra sweep over each weight vector per round.
  bool audit = false;
  /// Update compression (src/compress): upload/download codecs applied
  /// to every full-model transfer — payload degradation is simulated
  /// (clients train from decode(encode(broadcast)), the server
  /// aggregates decode(encode(update))) and all byte accounting switches
  /// to encoded frame sizes. Disabled by default: no codec objects are
  /// constructed and the engine's code path, trajectories, and byte
  /// accounting are exactly the pre-compression engine's. Sub-model side
  /// channels (FedClust's formation slice, FedPer's base exchange, PACFL
  /// bases) always ship raw — codecs carry per-tensor scales over the
  /// full model layout, so partial payloads fall back to raw framing in
  /// both the transfer and its metering.
  compress::CompressionConfig compression{};
  /// Deterministic fault injection (client crashes, stale replays,
  /// corrupted uploads). Disabled by default. Note that injected
  /// non-finite corruption reaching the aggregator will — correctly —
  /// trip the `audit` finite sweep unless `robust.validate` screens it
  /// out first. Declared last: the member name shadows namespace
  /// `robust` for later declarations in this scope.
  robust::FaultConfig faults{};
  /// Deterministic distribution drift and churn (robust/drift.hpp):
  /// scheduled label rotation/shift, departures, newcomer cohorts. When
  /// enabled the engine wraps its client source in a DriftFleet, filters
  /// sampling and evaluation to active slots, and wipes a slot's
  /// quarantine strikes when a newcomer takes it over. Disabled by
  /// default: no plan is built and the engine is bit-identical to a
  /// drift-free build. Synchronous engine only (the async scheduler has
  /// no round clock to advance the fleet by).
  robust::DriftConfig drift{};
  /// Robust aggregation rule + server-side update validation/quarantine.
  /// Default = plain weighted mean, no validation: the engine is then
  /// bit-identical to the pre-robustness engine.
  robust::RobustConfig robust{};
};

/// Per-direction payload sizes, in float32 values, of one simulated
/// round trip. Algorithms that ship something other than a full model
/// each way (FedClust's partial upload, IFCA's k-model download, FedPer's
/// base-only exchange) pass this to train_clients. A zero/zero spec
/// means the step never touches the network (LocalOnly).
struct NetPayloads {
  std::size_t download_floats = 0;
  std::size_t upload_floats = 0;
  net::MessageKind upload_kind = net::MessageKind::kModelUpdate;
};

/// Mean/std of per-client accuracy — the paper's reported metric.
struct AccuracySummary {
  double mean = 0.0;
  double std = 0.0;
  std::vector<double> per_client;
};

class Federation {
 public:
  /// `template_model` must already have initialized parameters; every
  /// algorithm clones it so all methods start from identical weights.
  /// This overload wraps the vector in an EagerFleet — the classic fully
  /// resident population, behaviour unchanged.
  Federation(nn::Model template_model, std::vector<ClientData> clients,
             FederationConfig config);

  /// Virtualized population: `source` materializes shards on demand
  /// (e.g. a VirtualFleet regenerating them from the splittable RNG), so
  /// resident memory scales with the sampled cohort, not the fleet.
  Federation(nn::Model template_model, std::shared_ptr<ClientSource> source,
             FederationConfig config);

  std::size_t num_clients() const { return source_->num_clients(); }
  /// The client's train/test shard; may materialize lazily. The returned
  /// pointer keeps the shard alive — hold it across use.
  std::shared_ptr<const ClientData> client_data(std::size_t i) const;
  /// Local train-set size without materializing the shard (O(1)).
  std::size_t client_train_size(std::size_t i) const;
  const ClientSource& source() const { return *source_; }
  const FederationConfig& config() const { return config_; }
  CommMeter& comm() { return comm_; }
  const CommMeter& comm() const { return comm_; }

  /// The network simulator, or null when config().network.enabled is
  /// false.
  net::NetworkSimulator* network() { return net_.get(); }
  const net::NetworkSimulator* network() const { return net_.get(); }
  bool network_enabled() const { return net_ != nullptr; }
  /// Virtual seconds elapsed so far (0 when the network is disabled).
  double sim_time() const { return net_ ? net_->now() : 0.0; }

  /// RAW wire size of a `num_floats` payload: framed message bytes under
  /// the simulated network, bare float bytes otherwise. This is the
  /// codec-free framing — metering call sites go through
  /// download_wire_bytes / upload_wire_bytes, which fall back to this
  /// whenever no codec applies to the transfer.
  std::uint64_t wire_bytes(std::size_t num_floats) const {
    return net_ ? net::wire_bytes(num_floats)
                : CommMeter::float_bytes(num_floats);
  }

  /// Accountable bytes of one server -> client transfer of `num_floats`
  /// values: the download codec's encoded frame size when compression
  /// applies (num_floats is one or more whole models), raw framing
  /// otherwise. Under the simulated network the v3 codec header is
  /// included; without it the bare encoded payload is counted (the
  /// codec-frame analogue of historical bare float bytes — identity
  /// encodes to exactly num_floats * 4, keeping disabled-mode accounting
  /// bit-identical).
  std::uint64_t download_wire_bytes(std::size_t num_floats) const;
  /// Same for one client -> server transfer under the upload codec.
  std::uint64_t upload_wire_bytes(std::size_t num_floats) const;

  /// Meters one server -> client transfer of `num_floats` values,
  /// attributed to `client`.
  void meter_download(std::size_t client, std::size_t num_floats) {
    comm_.download(download_wire_bytes(num_floats), client);
  }
  /// Meters one client -> server transfer of `num_floats` values.
  void meter_upload(std::size_t client, std::size_t num_floats) {
    comm_.upload(upload_wire_bytes(num_floats), client);
  }

  /// Framed v3 byte size for a simulated ClientOp override: non-zero —
  /// net::wire_bytes_encoded(codec frame) — exactly when the codec
  /// applies to a `num_floats` transfer; 0 keeps the op on raw framing.
  /// Exposed so protocol drivers building their own ClientOps (FedClust's
  /// deferred-newcomer rounds) charge the same bytes the meter records.
  std::uint64_t codec_download_op_bytes(std::size_t num_floats) const;
  std::uint64_t codec_upload_op_bytes(std::size_t num_floats) const;

  /// True when config().compression.enabled constructed codecs.
  bool compression_enabled() const { return up_codec_ != nullptr; }
  const compress::UpdateCodec* upload_codec() const { return up_codec_.get(); }
  const compress::UpdateCodec* download_codec() const {
    return down_codec_.get();
  }
  /// Per-tensor segment sizes of one model (nn::Model::slices order).
  std::span<const std::size_t> codec_layout() const { return layout_; }

  /// The weights a client actually receives when the server sends
  /// `server_weights` (one whole model): decode(encode(w)) under the
  /// download codec. Returns an empty vector when compression is off —
  /// callers then keep using `server_weights` itself, zero-copy (IFCA's
  /// cluster-identity estimation goes through this so clients score the
  /// models they would really see).
  std::vector<float> download_roundtrip(
      std::span<const float> server_weights) const;

  /// Resets communication accounting, the network simulator's clock,
  /// log, and reports, AND the quarantine strike ledger. Algorithms call
  /// this at run() entry.
  void reset_comm();

  /// Simulates a round the engine does not train (e.g. PACFL's formation,
  /// where clients upload subspace bases computed from raw data). No-op
  /// when the network is disabled.
  void simulate_network_round(std::size_t round,
                              const std::vector<net::ClientOp>& ops,
                              bool reliable = true);

  /// Deep copy of the common initial model.
  nn::Model make_model() const { return template_.clone(); }
  const nn::Model& template_model() const { return template_; }
  /// Learnable scalars per model (full update size on the wire).
  std::size_t model_size() const { return model_size_; }

  /// Independent stream for (client, round) — identical across runs.
  Rng client_rng(std::size_t client, std::size_t round) const;
  /// Independent stream for round-level decisions (client sampling).
  Rng round_rng(std::size_t round) const;

  /// Clients participating in `round` (sorted ids). With participation
  /// 1.0 this is everyone. Quarantined clients are excluded — the server
  /// stops soliciting them (identity when validation is off or no client
  /// has been quarantined).
  std::vector<std::size_t> sample_clients(std::size_t round) const;

  /// Trains the listed clients in parallel, each starting from
  /// `start_weights_for(client_id)` (which must stay valid for the call).
  /// Returns updates in input order. Does NOT meter communication — the
  /// algorithm decides what actually crossed the wire (e.g. FedClust
  /// uploads only final-layer weights in round 0).
  ///
  /// When config().dropout > 0 and `allow_failures` is true, each client
  /// independently drops out with that probability and its update is
  /// omitted from the result (so the result may be shorter than
  /// `clients`). Pass allow_failures = false for protocol steps that
  /// must hear from everyone (e.g. FedClust's formation round, which the
  /// paper runs over all available clients).
  ///
  /// With the network simulator enabled, the whole round trip (broadcast
  /// -> compute -> upload with drops/retries) is simulated first:
  /// clients whose upload misses the round's deadline or straggler
  /// cutoff, or is lost after all retries, are omitted from the result —
  /// and are never trained, since the outcome is known up front.
  /// `net_payloads` sizes the transfers (defaults to a full model each
  /// way); a formation step (allow_failures = false) is simulated as a
  /// reliable round that waits for everyone.
  /// With config().faults enabled, the fault plan is consulted per
  /// solicited client: crashed clients are dropped like churn, stale
  /// replays train from the run's initial weights, and corrupted uploads
  /// are mutated after training. With config().robust.validate enabled,
  /// every arrived update is screened (shape / finite / norm envelope);
  /// rejections are dropped from the result, metered as received
  /// traffic, and charged as quarantine strikes. `fault_attempt`
  /// distinguishes re-solicitations of the same round (formation
  /// hardening) so their fault draws are independent.
  std::vector<ClientUpdate> train_clients(
      const std::vector<std::size_t>& clients, std::size_t round,
      const std::function<std::span<const float>(std::size_t)>&
          start_weights_for,
      const LocalTrainConfig* config_override = nullptr,
      bool allow_failures = true, const NetPayloads* net_payloads = nullptr,
      std::size_t fault_attempt = 0);

  /// Result of a trained-and-folded round (train_clients_folded).
  struct FoldResult {
    /// The aggregated weighted-mean model; empty when no update survived
    /// the round (callers keep the previous model, like the flat path).
    std::vector<float> weights;
    /// Clients whose updates were folded, in slot (ascending solicited)
    /// order.
    std::vector<std::size_t> contributors;
    /// Plain mean of the contributors' train losses.
    double mean_train_loss = 0.0;
    /// True when the robust-rule / validation fallback gathered all
    /// updates at the root instead of folding.
    bool gathered = false;
  };

  /// Cross-device round: trains the listed clients and folds their
  /// updates through a two-level edge-aggregator tree WITHOUT ever
  /// holding O(cohort) updates — resident updates are bounded by the
  /// training pool's width per edge batch, and each edge contributes its
  /// slot range to one shared slot-ordered double accumulator
  /// (ops::weighted_accumulate_partial). Under the default kWeightedMean
  /// rule the result is bit-identical to train_clients + aggregate for
  /// ANY topology.num_edges (every element sees the identical operation
  /// sequence). Churn, network fate, faults, and metering behave exactly
  /// like train_clients (allow_failures = true).
  ///
  /// MEMORY NOTE: robust rules (trimmed mean / median / norm-clip) and
  /// server-side validation need the full cohort's updates at once
  /// (per-coordinate order statistics, cohort-median norm envelopes);
  /// those configurations fall back to gather-at-root — O(cohort × model)
  /// server memory, flagged by FoldResult::gathered.
  FoldResult train_clients_folded(
      const std::vector<std::size_t>& clients, std::size_t round,
      const std::function<std::span<const float>(std::size_t)>&
          start_weights_for,
      const net::EdgeTopology& topology,
      const LocalTrainConfig* config_override = nullptr,
      const NetPayloads* net_payloads = nullptr);

  /// Whether a given client drops out of a given round under the
  /// configured dropout probability (deterministic).
  bool client_fails(std::size_t client, std::size_t round) const;

  /// Pool for intra-model kernel row-splitting (null when
  /// config().kernel_threads == 0). Lent to models this engine trains.
  ThreadPool* kernel_pool() const { return kernel_pool_.get(); }

  /// Pool usable for between-round server-side work (aggregation). Safe
  /// to borrow whenever no train_clients call is in flight.
  ThreadPool* aggregation_pool() const { return &pool_; }

  /// Aggregation seam every algorithm goes through. Under the default
  /// kWeightedMean rule this is weighted_average over the aggregation
  /// pool, plus — under config().audit — verification that the
  /// coefficients conserve mass and every output coordinate stays inside
  /// the inputs' convex envelope (check::audit_aggregation). Other rules
  /// dispatch to robust::robust_aggregate; `reference` is the pre-round
  /// model anchoring kNormClip deltas (ignored by the other rules, may
  /// be empty).
  std::vector<float> aggregate(const std::vector<ClientUpdate>& updates,
                               std::span<const float> reference = {});

  /// aggregate() with explicit mixing coefficients (must be normalized;
  /// one per update). The async engine passes staleness-discounted
  /// sample weights here; aggregate() itself routes through this with
  /// aggregation_coefficients(updates), so unit staleness is bit-identical
  /// to the synchronous rule by construction. Robust rules and the
  /// sign-SGD majority vote receive the same coefficients.
  std::vector<float> aggregate_weighted(
      const std::vector<ClientUpdate>& updates,
      const std::vector<double>& coefficients,
      std::span<const float> reference = {});

  /// Trains one client for the async engine's buffer flush: the same
  /// pooled-clone / payload-fault / RNG pipeline as a synchronous round
  /// with round == `dispatch` (the globally unique dispatch sequence
  /// number), starting from `start` — the weights the client received at
  /// dispatch time, already download-codec decoded by the scheduler.
  /// Does NOT meter, simulate, or screen; the scheduler owns arrival
  /// fate and transport_and_screen owns the upload leg.
  ClientUpdate train_dispatch(std::size_t client, std::size_t dispatch,
                              std::span<const float> start,
                              const LocalTrainConfig* config_override) const;

  /// Slot-aligned result of transport_and_screen: every update trained,
  /// with per-slot screening verdicts (all-accepted when validation is
  /// off).
  struct ScreenedBatch {
    std::vector<ClientUpdate> updates;
    std::vector<std::uint8_t> accepted;
  };

  /// Applies the upload leg to a buffer of trained updates exactly as
  /// train_clients does for a synchronous cohort: upload-codec transport
  /// (the aggregator only ever sees decode(encode(update))), and — with
  /// validation enabled — encode + codec-envelope + decode-then-screen
  /// against each update's own broadcast reference `starts[i]`.
  /// Rejections are charged as quarantine strikes; the caller meters
  /// traffic (arrived bytes crossed the wire whether or not screening
  /// keeps them). Updates must be whole models.
  ScreenedBatch transport_and_screen(
      std::vector<ClientUpdate> updates,
      const std::vector<std::span<const float>>& starts);

  /// The run's drift plan, or null when config().drift is disabled.
  const robust::DriftPlan* drift_plan() const { return drift_plan_.get(); }
  bool drift_enabled() const { return drift_plan_ != nullptr; }

  /// Advances the drift clock to `round` (monotone; no-op when drift is
  /// off or the clock is already there). Applies the churn bookkeeping
  /// for every round crossed: newcomer slots get a clean quarantine
  /// ledger — strikes must never leak from a departed client to the
  /// newcomer reusing its slot. train_clients calls this at round entry;
  /// protocol drivers that need the fleet advanced earlier (newcomer
  /// admission before training) may call it themselves.
  void drift_advance(std::size_t round);

  /// Primes the drift clock after a checkpoint resume: positions the
  /// fleet at `next_round - 1` WITHOUT replaying churn bookkeeping (the
  /// restored quarantine ledger already reflects it).
  void drift_resume(std::size_t next_round);

  /// Whether `client`'s slot is active at `round` (always true with
  /// drift off; false between a departure and the slot's reuse).
  bool client_active(std::size_t round, std::size_t client) const;

  /// The run's fault-injection plan (inert unless config().faults is
  /// enabled).
  const robust::FaultPlan& fault_plan() const { return fault_plan_; }
  /// Server-side strike ledger (only fed when config().robust.validate
  /// is enabled).
  robust::Quarantine& quarantine() { return quarantine_; }
  const robust::Quarantine& quarantine() const { return quarantine_; }

  /// Loss/accuracy of a weight vector on one client's local test split.
  EvalResult evaluate_client(std::size_t client,
                             std::span<const float> weights) const;

  /// Mean loss of a weight vector on one client's TRAIN split (IFCA's
  /// cluster-identity estimation reads this).
  double client_train_loss(std::size_t client,
                           std::span<const float> weights) const;

  /// Per-client test accuracy (parallel over clients) where client i is
  /// evaluated with `weights_for(i)`; cluster methods pass their cluster
  /// model, global methods the single global model. O(fleet) memory and
  /// evaluation work — the classic small-federation path; fleet-scale
  /// drivers use evaluate_cohort.
  AccuracySummary evaluate_personalized(
      const std::function<std::span<const float>(std::size_t)>& weights_for)
      const;

  /// Accuracy mean/std over an explicit client subset via streaming
  /// (Welford) reduction — per_client stays empty, memory O(cohort) for
  /// the parallel scratch only.
  AccuracySummary evaluate_cohort(
      const std::vector<std::size_t>& clients,
      const std::function<std::span<const float>(std::size_t)>& weights_for)
      const;

  /// The model-clone pool recycling training/evaluation clones across
  /// rounds (diagnostics: created() is the engine's clone high-water).
  const ModelPool& model_pool() const { return model_pool_; }

 private:
  /// Shared solicitation pipeline of train_clients and
  /// train_clients_folded: quarantine filter → fault fate → churn →
  /// simulated network fate. Returns the clients whose updates will
  /// arrive, in ascending solicited order.
  std::vector<std::size_t> round_survivors(
      const std::vector<std::size_t>& clients, std::size_t round,
      const LocalTrainConfig& local, bool allow_failures,
      const NetPayloads* net_payloads, std::size_t fault_attempt);

  /// Trains one surviving client (pooled clone, payload faults applied) —
  /// the single code path both flat and folded rounds go through, so
  /// their per-client math is identical by construction.
  ClientUpdate train_one(
      std::size_t cid, std::size_t round,
      const std::function<std::span<const float>(std::size_t)>&
          start_weights_for,
      const LocalTrainConfig& local, std::size_t fault_attempt) const;

  /// Encoded payload bytes of `codec` for a num_floats transfer that
  /// codec_applies; repeats the model layout for multi-model payloads.
  std::uint64_t encoded_payload_bytes(const compress::UpdateCodec& codec,
                                      std::size_t num_floats) const;
  /// Whether a codec covers a transfer: one or more whole models.
  bool codec_applies(std::size_t num_floats) const {
    return num_floats > 0 && model_size_ > 0 && num_floats % model_size_ == 0;
  }

  nn::Model template_;
  std::shared_ptr<ClientSource> source_;
  FederationConfig config_;
  std::size_t model_size_ = 0;
  /// The template's flat weights — what a stale-replay fault trains from.
  std::vector<float> initial_weights_;
  robust::FaultPlan fault_plan_;
  robust::Quarantine quarantine_;
  /// Drift machinery (null/idle unless config.drift.enabled): the plan,
  /// the fleet decorator source_ points at, and the advanced-to round.
  std::shared_ptr<const robust::DriftPlan> drift_plan_;
  std::shared_ptr<DriftFleet> drift_fleet_;
  std::size_t drift_round_ = 0;
  bool drift_primed_ = false;
  /// Update codecs (null unless config.compression.enabled) and the
  /// per-tensor segment layout they quantize over.
  std::unique_ptr<compress::UpdateCodec> up_codec_;
  std::unique_ptr<compress::UpdateCodec> down_codec_;
  std::vector<std::size_t> layout_;
  mutable ThreadPool pool_;
  std::unique_ptr<ThreadPool> kernel_pool_;
  mutable ModelPool model_pool_;
  CommMeter comm_;
  std::unique_ptr<net::NetworkSimulator> net_;
};

/// Sample-count-weighted average of client weight vectors (FedAvg's
/// aggregation rule). All updates must have equal length. Single fused
/// pass: each output element is reduced in double across updates and
/// written once. With a pool, large models are chunked into contiguous
/// per-worker dimension ranges (deterministic — per-element math is
/// independent of the chunking).
std::vector<float> weighted_average(const std::vector<ClientUpdate>& updates,
                                    ThreadPool* pool = nullptr);

/// weighted_average with caller-supplied normalized coefficients (one per
/// update). The default entry point computes aggregation_coefficients and
/// forwards here, so passing those coefficients explicitly is
/// bit-identical — the seam the async engine's staleness-weighted flush
/// mixes through.
std::vector<float> weighted_average_with(
    const std::vector<ClientUpdate>& updates,
    const std::vector<double>& coefficients, ThreadPool* pool = nullptr);

/// The normalized per-update coefficients weighted_average applies
/// (num_samples / total). Exposed so the aggregation audit can verify
/// conservation against exactly what the reduction used.
std::vector<double> aggregation_coefficients(
    const std::vector<ClientUpdate>& updates);

}  // namespace fedclust::fl
